//! Facade crate re-exporting the GraLMatch workspace public API.
pub use gralmatch_blocking as blocking;
pub use gralmatch_core as core;
pub use gralmatch_datagen as datagen;
pub use gralmatch_graph as graph;
pub use gralmatch_lm as lm;
pub use gralmatch_records as records;
pub use gralmatch_text as text;
pub use gralmatch_util as util;
