//! Quickstart: the full GraLMatch workflow (paper Figure 1) in ~60 lines.
//!
//! Generate a small synthetic benchmark, fine-tune a pairwise matcher,
//! block candidates, predict, clean up the prediction graph, and print the
//! three-stage evaluation.
//!
//! Run with: `cargo run --example quickstart --release`

use gralmatch::core::{run_domain_with_matcher, CompanyDomain, PipelineConfig};
use gralmatch::datagen::{generate, GenerationConfig};
use gralmatch::lm::{train, ModelSpec};
use gralmatch::records::{DatasetSplit, SplitRatios};
use gralmatch::util::SplitRng;

fn main() {
    // 1. A small synthetic benchmark (500 company groups across 5 vendors).
    let mut config = GenerationConfig::synthetic_full();
    config.num_entities = 500;
    let data = generate(&config).expect("valid config");
    println!(
        "generated {} company records / {} security records",
        data.companies.len(),
        data.securities.len()
    );

    // 2. Fine-tune the pairwise matcher on 60 % of the record groups.
    let companies = data.companies.records();
    let gt = data.companies.ground_truth();
    let split = DatasetSplit::new(&gt, SplitRatios::default(), &mut SplitRng::new(42));
    let spec = ModelSpec::DistilBert128All;
    let encoded = spec.encode_records(companies);
    let (matcher, report) =
        train(companies, &encoded, &gt, &split, &spec.train_config()).expect("training");
    println!(
        "fine-tuned {} in {:.1}s (best epoch {}, val loss {:.4})",
        spec,
        report.train_seconds,
        report.best_epoch + 1,
        report.val_losses[report.best_epoch]
    );

    // 3. The company matching domain: its Table 2 blocking recipe is
    // ID overlap (through securities) + token overlap.
    let domain = CompanyDomain::new(companies, data.securities.records());

    // 4-5. The staged pipeline: blocking -> pairwise matching -> GraLMatch
    // Graph Cleanup (γ=25, μ=5) -> entity groups.
    let pipeline = PipelineConfig::new(25, 5).with_pre_cleanup(50);
    let outcome =
        run_domain_with_matcher(&domain, &matcher, &encoded, &pipeline).expect("pipeline runs");
    println!(
        "blocking produced {} candidate pairs",
        outcome.num_candidates
    );

    // 6. The three-stage evaluation of the paper's Table 4.
    println!("\nstage                 precision  recall   F1       ClPur");
    println!(
        "pairwise (blocked)    {:>8.2}% {:>7.2}% {:>7.2}%      -",
        outcome.pairwise.precision * 100.0,
        outcome.pairwise.recall * 100.0,
        outcome.pairwise.f1 * 100.0
    );
    println!(
        "pre graph cleanup     {:>8.2}% {:>7.2}% {:>7.2}%   {:.2}",
        outcome.pre_cleanup.pairs.precision * 100.0,
        outcome.pre_cleanup.pairs.recall * 100.0,
        outcome.pre_cleanup.pairs.f1 * 100.0,
        outcome.pre_cleanup.cluster_purity
    );
    println!(
        "post graph cleanup    {:>8.2}% {:>7.2}% {:>7.2}%   {:.2}",
        outcome.post_cleanup.pairs.precision * 100.0,
        outcome.post_cleanup.pairs.recall * 100.0,
        outcome.post_cleanup.pairs.f1 * 100.0,
        outcome.post_cleanup.cluster_purity
    );
    println!(
        "\ncleanup removed {} pre-cleanup + {} min-cut + {} betweenness edges; {} groups",
        outcome.cleanup_report.pre_cleanup_removed,
        outcome.cleanup_report.mincut_removed,
        outcome.cleanup_report.betweenness_removed,
        outcome.groups.len()
    );
    println!("\nper-stage trace:\n{}", outcome.trace);
}
