//! The Figure 2 mini-dataset, built record by record.
//!
//! Four data sources carry records of "Crowdstrike" (entity A),
//! "Crowdstreet" (entity B), plus a lastminute.com/Travix merger and a
//! Herotel/Hearst acquisition — the exact constellation of the paper's
//! Figure 2. The example runs ID-overlap blocking and shows which matches
//! identifiers find, which need text, and which need transitivity.
//!
//! Run with: `cargo run --example figure2_records --release`

use gralmatch::blocking::{
    Blocker, BlockingContext, BlockingKind, CandidateSet, SecurityIdOverlap,
};
use gralmatch::records::{
    CompanyRecord, EntityId, IdCode, IdKind, RecordId, SecurityRecord, SourceId,
};

fn main() {
    // Companies (ids 0..) — names as the four vendors spell them.
    let companies = vec![
        company(0, 0, "lastminute.com", 10),
        company(1, 0, "Herotel", 11),
        company(2, 0, "Crowdstrike Plt.", 12),
        company(3, 0, "Crowdstreet Inc.", 13),
        company(4, 1, "lastminute.com NV", 10),
        company(5, 1, "Herotel Ltd", 11),
        company(6, 1, "Crowd Strike Platforms", 12),
        company(7, 1, "CrowdStreet", 13),
        company(8, 2, "Lastminute Group", 10),
        company(9, 2, "Crowdstrike Holdings", 12),
        company(10, 2, "Crowdstreet Marketplace", 13),
        company(11, 3, "Travix", 14), // merger counterpart
        company(12, 3, "Hearst", 15), // acquirer of Herotel
        company(13, 3, "CROWDSTRIKE", 12),
    ];

    // Securities: ISIN overlaps encode Figure 2's colored links.
    let securities = vec![
        sec(0, 0, "Crowdstrike Registered Shs", 2, "US31807756E", 12),
        sec(1, 2, "Crowdstrike Holdings ORD", 9, "US31807756E", 12), // orange link
        sec(2, 1, "Crowd Strike Shs", 6, "US318077DSIE", 12),
        sec(3, 3, "CROWDSTRIKE ORD", 13, "US318077DSIE", 12), // violet link
        sec(4, 0, "lastminute ORD", 0, "NL0000LMIN1", 10),
        // The merger: this record's identifier was overwritten with Travix's.
        sec(5, 2, "Lastminute Group Shs", 8, "NL0000TRVX9", 10),
        sec(6, 3, "Travix Units", 11, "NL0000TRVX9", 14),
        // The acquisition: Herotel's security re-identified as Hearst's.
        sec(7, 1, "Herotel Shs", 5, "US44HEARST1", 11),
        sec(8, 3, "Hearst Common Stock", 12, "US44HEARST1", 15),
    ];

    let mut candidates = CandidateSet::new();
    SecurityIdOverlap.block(&securities, &BlockingContext::sequential(), &mut candidates);

    println!("ID-overlap candidate security pairs (Figure 2's colored links):");
    for pair in candidates.pairs_sorted() {
        let a = &securities[pair.a.0 as usize];
        let b = &securities[pair.b.0 as usize];
        let verdict = if a.entity == b.entity {
            "TRUE match"
        } else {
            "FALSE (drift!)"
        };
        println!(
            "  {} <-> {}  [{}]  {}",
            a.name, b.name, a.id_codes[0].value, verdict
        );
        assert!(candidates.from_blocking(pair, BlockingKind::IdOverlap));
    }

    println!("\nwhat identifiers cannot do:");
    println!("  * records #2/#6/#9/#13 (Crowdstrike variants) share no LEI — only");
    println!("    text alignment can link sources 0,1,2,3 into one group, at the");
    println!("    risk of confusing them with #3/#7/#10 (Crowdstreet).");
    println!("  * the lastminute/Travix ISIN overlap above is a merger artifact —");
    println!("    a FALSE match that survives any identifier heuristic.");
    println!("  * Herotel's group is only completable transitively through the");
    println!("    re-identified security (#7 -> #8), as in Figure 3.");

    let _ = companies;
}

fn company(id: u32, source: u16, name: &str, entity: u32) -> CompanyRecord {
    CompanyRecord::new(RecordId(id), SourceId(source), name).with_entity(EntityId(entity))
}

fn sec(id: u32, source: u16, name: &str, issuer: u32, isin: &str, entity: u32) -> SecurityRecord {
    SecurityRecord::new(RecordId(id), SourceId(source), name, RecordId(issuer))
        .with_entity(EntityId(entity))
        .with_code(IdCode::new(IdKind::Isin, isin))
}
