//! Securities matching with the Issuer-Match blocking.
//!
//! The domain scenario from the paper's introduction: securities with
//! generic names ("Registered Shs", "ORD") and drifting identifiers can only
//! be matched through their issuers. This example matches companies first,
//! then feeds the company groups into the Issuer-Match blocking for
//! securities — the two-level pipeline of Section 5.3.1.
//!
//! Run with: `cargo run --example securities_matching --release`

use gralmatch::core::{
    blocked_candidates, entity_groups, group_assignment, prediction_graph, run_domain_with_matcher,
    CompanyDomain, FixedScorerProvider, MatchEngine, MatchingDomain, PipelineConfig,
    SecurityDomain, ShardPlan,
};
use gralmatch::datagen::{generate, GenerationConfig};
use gralmatch::lm::{predict_positive_with, train, MatcherScorer, ModelSpec};
use gralmatch::records::{DatasetSplit, SplitRatios};
use gralmatch::util::{Parallelism, SplitRng};

fn main() {
    let mut config = GenerationConfig::synthetic_full();
    config.num_entities = 400;
    let data = generate(&config).expect("valid config");
    let companies = data.companies.records();
    let securities = data.securities.records();
    println!(
        "{} companies issue {} securities across 5 vendors",
        companies.len(),
        securities.len()
    );

    // --- Level 1: match companies -------------------------------------
    let company_gt = data.companies.ground_truth();
    let split = DatasetSplit::new(&company_gt, SplitRatios::default(), &mut SplitRng::new(1));
    let spec = ModelSpec::DistilBert128All;
    let encoded_companies = spec.encode_records(companies);
    let (company_matcher, _) = train(
        companies,
        &encoded_companies,
        &company_gt,
        &split,
        &spec.train_config(),
    )
    .expect("company training");
    let company_cands = blocked_candidates(&CompanyDomain::new(companies, securities));
    let company_pairs = company_cands.pairs_sorted();
    let company_scorer = MatcherScorer::new(&company_matcher, &encoded_companies);
    let predicted = predict_positive_with(
        &company_scorer,
        &company_pairs,
        &Parallelism::Fixed(4).pool_for(company_pairs.len()),
    );
    let company_graph = prediction_graph(companies.len(), &predicted);
    let company_groups = entity_groups(&company_graph);
    println!(
        "level 1: {} company pairs predicted -> {} company groups",
        predicted.len(),
        company_groups.len()
    );

    // --- Level 2: match securities through their issuers ---------------
    let security_gt = data.securities.ground_truth();
    let security_split =
        DatasetSplit::new(&security_gt, SplitRatios::default(), &mut SplitRng::new(2));
    let encoded_securities = spec.encode_records(securities);
    let (security_matcher, _) = train(
        securities,
        &encoded_securities,
        &security_gt,
        &security_split,
        &spec.train_config(),
    )
    .expect("security training");

    let issuer_groups = group_assignment(&company_groups);
    let security_domain = SecurityDomain::new(securities, &issuer_groups);
    let security_cands = blocked_candidates(&security_domain);
    println!(
        "level 2: issuer-match + ID-overlap blocking -> {} candidate pairs",
        security_cands.len()
    );

    let outcome = run_domain_with_matcher(
        &security_domain,
        &security_matcher,
        &encoded_securities,
        &PipelineConfig::new(25, 5),
    )
    .expect("pipeline runs");
    println!(
        "securities post-cleanup: P {:.2}% R {:.2}% F1 {:.2}% ClPur {:.2} ({} groups)",
        outcome.post_cleanup.pairs.precision * 100.0,
        outcome.post_cleanup.pairs.recall * 100.0,
        outcome.post_cleanup.pairs.f1 * 100.0,
        outcome.post_cleanup.cluster_purity,
        outcome.groups.len()
    );
    println!(
        "\nwhy issuer match matters: securities found only via issuer context = {}",
        security_cands
            .pairs_sorted()
            .iter()
            .filter(
                |&&p| security_cands.only_from(p, gralmatch::blocking::BlockingKind::IssuerMatch)
            )
            .count()
    );

    // --- Same match as a long-lived engine, sharded 4 ways --------------
    // One bootstrap batch under a 4-shard plan; the engine then serves
    // group lookups from its standing index and would absorb upsert
    // batches from here (see the `serve` binary for the full lifecycle).
    let scorer = MatcherScorer::new(&security_matcher, &encoded_securities);
    let (engine, load) = MatchEngine::bootstrap_domain(
        &security_domain,
        ShardPlan::new(4),
        Box::new(FixedScorerProvider(&scorer)),
        PipelineConfig::new(25, 5),
    )
    .expect("engine bootstrap runs");
    let sharded = engine.evaluate(security_domain.ground_truth(), &load);
    println!(
        "\nengine x4 shards: {} candidates, {} components re-cleaned in the merge",
        sharded.num_candidates, load.touched_components
    );
    println!(
        "engine post-cleanup F1 {:.2}% vs one-shot wrapper {:.2}% ({} vs {} groups)",
        sharded.post_cleanup.pairs.f1 * 100.0,
        outcome.post_cleanup.pairs.f1 * 100.0,
        sharded.groups.len(),
        outcome.groups.len()
    );
    let probe = sharded.groups[0][0];
    let group = engine.group_of(probe).expect("live record resolves");
    println!(
        "lookup: record {} -> group {} with members {:?}",
        probe.0,
        group.0,
        engine.group_members(group).unwrap()
    );
    println!("per-stage trace:\n{}", sharded.trace);
}
