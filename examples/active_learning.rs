//! Active learning: spending a labeling budget well.
//!
//! The paper's -15K experiments show a *small, precise* training set beats
//! a big noisy one end-to-end. This example takes the next step the related
//! work suggests: choose which pairs to label with uncertainty sampling
//! instead of labeling whatever comes first, and compare the resulting
//! matcher against random labeling at the same budget.
//!
//! Run with: `cargo run --example active_learning --release`

use gralmatch::core::{blocked_candidates, pairwise_metrics, CompanyDomain};
use gralmatch::datagen::{generate, GenerationConfig};
use gralmatch::lm::{
    active_learning_loop, predict_positive_with, ActiveConfig, MatcherScorer, ModelSpec,
    QueryStrategy,
};
use gralmatch::util::Parallelism;

fn main() {
    let mut config = GenerationConfig::synthetic_full();
    config.num_entities = 400;
    let data = generate(&config).expect("valid config");
    let companies = data.companies.records();
    let gt = data.companies.ground_truth();
    let spec = ModelSpec::DistilBert128All;
    let encoded = spec.encode_records(companies);

    // The labeling pool = blocked candidate pairs (what an annotator would
    // actually be shown).
    let candidates = blocked_candidates(&CompanyDomain::new(companies, data.securities.records()));
    let pool = candidates.pairs_sorted();
    println!(
        "{} candidate pairs; labeling budget: 600 pairs ({}% of the pool)",
        pool.len(),
        600 * 100 / pool.len().max(1)
    );

    for (strategy, name) in [
        (QueryStrategy::Random, "random labeling"),
        (QueryStrategy::Uncertainty, "uncertainty sampling"),
    ] {
        let al_config = ActiveConfig {
            budget: 600,
            batch_size: 100,
            ..ActiveConfig::default()
        };
        let (matcher, reports) =
            active_learning_loop(&encoded, &pool, &gt, strategy, &al_config).expect("loop");
        let scorer = MatcherScorer::new(&matcher, &encoded);
        let predicted =
            predict_positive_with(&scorer, &pool, &Parallelism::Fixed(4).pool_for(pool.len()));
        let metrics = pairwise_metrics(&predicted, &gt);
        let positives = reports.last().map_or(0, |r| r.positives_found);
        println!(
            "\n{name}:\n  positives surfaced while labeling: {positives}\n  resulting matcher on the full pool: P {:.2}% R {:.2}% F1 {:.2}%",
            metrics.precision * 100.0,
            metrics.recall * 100.0,
            metrics.f1 * 100.0
        );
    }

    println!("\nUncertainty sampling spends labels at the decision boundary, so the");
    println!("same budget surfaces more informative pairs — the practical answer to");
    println!("the paper's observation that labeling effort, not model size, is the");
    println!("bottleneck for entity group matching.");
}
