//! Transitive matches and the false-positive cascade (Figures 3 & 4).
//!
//! Demonstrates the paper's core observation on a hand-built scenario:
//! a single false positive pairwise prediction between two large groups
//! implies a quadratic number of false *transitive* matches, and the
//! GraLMatch Graph Cleanup repairs exactly that.
//!
//! Run with: `cargo run --example transitive_matches --release`

use gralmatch::core::{
    entity_groups, graph_cleanup, group_metrics, prediction_graph, CleanupConfig,
};
use gralmatch::records::{EntityId, GroundTruth, RecordId, RecordPair};

fn clique_pairs(members: &[u32]) -> Vec<RecordPair> {
    let mut pairs = Vec::new();
    for i in 0..members.len() {
        for j in (i + 1)..members.len() {
            pairs.push(RecordPair::new(RecordId(members[i]), RecordId(members[j])));
        }
    }
    pairs
}

fn main() {
    // Two ground-truth entities of 8 records each ("Crowdstrike" and
    // "Crowdstreet"), both perfectly matched pairwise…
    let group_a: Vec<u32> = (0..8).collect();
    let group_b: Vec<u32> = (8..16).collect();
    let gt = GroundTruth::from_assignments(
        group_a
            .iter()
            .map(|&r| (RecordId(r), EntityId(1)))
            .chain(group_b.iter().map(|&r| (RecordId(r), EntityId(2)))),
    );
    let mut predicted = clique_pairs(&group_a);
    predicted.extend(clique_pairs(&group_b));
    let clean_count = predicted.len();

    // …plus ONE false positive bridging them.
    predicted.push(RecordPair::new(RecordId(7), RecordId(8)));
    println!(
        "{} correct pairwise predictions + 1 false positive",
        clean_count
    );

    let mut graph = prediction_graph(16, &predicted);
    let merged = entity_groups(&graph);
    let pre = group_metrics(&merged, &gt);
    println!(
        "\nwith transitive closure, the merged 16-record component implies {} pairs,",
        16 * 15 / 2
    );
    println!(
        "of which {} are false -> pre-cleanup precision {:.1}%, cluster purity {:.2}",
        16 * 15 / 2 - 56,
        pre.pairs.precision * 100.0,
        pre.cluster_purity
    );
    assert_eq!(pre.pairs.fp, 64, "8x8 cross pairs are all false");

    // GraLMatch: the bridge is a minimum edge cut of weight 1.
    let report = graph_cleanup(&mut graph, &CleanupConfig::new(10, 8));
    let repaired = entity_groups(&graph);
    let post = group_metrics(&repaired, &gt);
    println!(
        "\nGraLMatch removed {} edge(s) in {} min-cut round(s):",
        report.mincut_removed, report.mincut_rounds
    );
    println!(
        "post-cleanup precision {:.1}%, recall {:.1}%, cluster purity {:.2} ({} groups)",
        post.pairs.precision * 100.0,
        post.pairs.recall * 100.0,
        post.cluster_purity,
        repaired.len()
    );
    assert_eq!(post.pairs.precision, 1.0);
    assert_eq!(post.pairs.recall, 1.0);

    // The arithmetic of the cascade, as a table.
    println!("\nhow one false positive scales with group size k (k + k records):");
    println!("k     implied false matches   pre-cleanup precision");
    for k in [2u64, 4, 8, 16, 32, 64] {
        let true_pairs = k * (k - 1); // both groups
        let total = (2 * k) * (2 * k - 1) / 2;
        let false_pairs = total - true_pairs;
        println!(
            "{k:<5} {false_pairs:<23} {:.1}%",
            true_pairs as f64 / total as f64 * 100.0
        );
    }
}
