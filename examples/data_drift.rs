//! Data drift: acquisitions, mergers, and why identifiers lie.
//!
//! Reproduces the paper's Section 3 narrative on a generated dataset:
//! * records sharing an identifier are **not** necessarily matches
//!   (mergers overwrite codes across distinct entities),
//! * true matches may share **no** identifier (acquisitions, missing data)
//!   and are only reachable transitively.
//!
//! Run with: `cargo run --example data_drift --release`

use gralmatch::datagen::{generate, GenerationConfig};
use gralmatch::records::{Record, SecurityRecord};
use gralmatch::util::FxHashMap;

fn main() {
    let mut config = GenerationConfig::synthetic_full();
    config.num_entities = 2_000;
    // Crank drift up so the phenomenon is visible in a small sample.
    config.artifacts.acquisition = 0.05;
    config.artifacts.merger = 0.05;
    let data = generate(&config).expect("valid config");
    let securities = data.securities.records();

    // Index securities by identifier code value.
    let mut by_code: FxHashMap<&str, Vec<&SecurityRecord>> = FxHashMap::default();
    for security in securities {
        for code in security.id_codes() {
            by_code
                .entry(code.value.as_str())
                .or_default()
                .push(security);
        }
    }

    // 1. Identifier overlap pairs that are NOT true matches (merger bait).
    let mut false_id_pairs = 0u64;
    let mut true_id_pairs = 0u64;
    for holders in by_code.values() {
        for i in 0..holders.len() {
            for j in (i + 1)..holders.len() {
                if holders[i].entity == holders[j].entity {
                    true_id_pairs += 1;
                } else {
                    false_id_pairs += 1;
                }
            }
        }
    }
    println!("identifier-overlap record pairs (the 'benchmark heuristic'):");
    println!("  true matches : {true_id_pairs}");
    println!("  FALSE matches: {false_id_pairs}  <- mergers overwrote codes across entities");

    // 2. True matches with no identifier overlap at all.
    let gt = data.securities.ground_truth();
    let mut no_overlap_matches = 0u64;
    let mut total_matches = 0u64;
    for (_, members) in gt.groups() {
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                total_matches += 1;
                let a = &securities[members[i].0 as usize];
                let b = &securities[members[j].0 as usize];
                let codes_a: gralmatch::util::FxHashSet<&str> =
                    a.id_codes().iter().map(|c| c.value.as_str()).collect();
                if !b
                    .id_codes()
                    .iter()
                    .any(|c| codes_a.contains(c.value.as_str()))
                {
                    no_overlap_matches += 1;
                }
            }
        }
    }
    println!("\ntrue security matches: {total_matches}");
    println!(
        "  matchable only WITHOUT identifier overlap: {no_overlap_matches} ({:.1}%)",
        no_overlap_matches as f64 / total_matches as f64 * 100.0
    );
    println!("  (acquisition overwrites, NoIdOverlaps artifact, missing codes)");

    println!("\nconclusion, as in the paper: identifier equality is neither sound");
    println!("nor complete — text alignment AND transitive information are needed,");
    println!("and the false positives they introduce call for the graph cleanup.");

    assert!(false_id_pairs > 0, "mergers must create false ID pairs");
    assert!(no_overlap_matches > 0, "drift must hide some true matches");
}
