//! Failure-injection and degenerate-input tests: the pipeline must stay
//! well-behaved (no panics, sane metrics) under hostile conditions.

use gralmatch::blocking::CandidateSet;
use gralmatch::core::{
    blocked_candidates, entity_groups, graph_cleanup, group_metrics, prediction_graph,
    run_with_candidates, CleanupConfig, CompanyDomain, PipelineConfig,
};
use gralmatch::datagen::{generate, GenerationConfig};
use gralmatch::graph::Graph;
use gralmatch::lm::{EncodedRecord, MatcherScorer, PairwiseMatcher};
use gralmatch::records::{GroundTruth, RecordId, RecordPair};

/// A matcher that predicts EVERYTHING as a match (worst-case precision).
struct AlwaysYes;
impl PairwiseMatcher for AlwaysYes {
    fn score(&self, _: &EncodedRecord, _: &EncodedRecord) -> f32 {
        1.0
    }
}

/// A matcher that predicts NOTHING as a match.
struct AlwaysNo;
impl PairwiseMatcher for AlwaysNo {
    fn score(&self, _: &EncodedRecord, _: &EncodedRecord) -> f32 {
        0.0
    }
}

fn small_setup() -> (
    gralmatch::datagen::FinancialDataset,
    Vec<EncodedRecord>,
    GroundTruth,
    CandidateSet,
) {
    let mut config = GenerationConfig::synthetic_full();
    config.num_entities = 100;
    let data = generate(&config).unwrap();
    let companies = data.companies.records();
    let encoded = gralmatch::lm::ModelSpec::DistilBert128All.encode_records(companies);
    let gt = data.companies.ground_truth();
    let candidates = blocked_candidates(&CompanyDomain::new(companies, data.securities.records()));
    (data, encoded, gt, candidates)
}

/// Drive the post-blocking stages with a custom matcher over a candidate
/// set (the cached-blocking engine path, `run_with_candidates`).
fn run_matching<M: PairwiseMatcher>(
    num_records: usize,
    candidates: &CandidateSet,
    matcher: &M,
    encoded: &[EncodedRecord],
    gt: &GroundTruth,
    config: &PipelineConfig,
) -> gralmatch::core::MatchingOutcome {
    run_with_candidates(
        num_records,
        candidates,
        &MatcherScorer::new(matcher, encoded),
        gt,
        config,
    )
    .expect("pipeline runs")
}

#[test]
fn always_yes_matcher_is_repaired_by_cleanup() {
    let (data, encoded, gt, candidates) = small_setup();
    let config = PipelineConfig::new(25, 5).with_pre_cleanup(50);
    let outcome = run_matching(
        data.companies.len(),
        &candidates,
        &AlwaysYes,
        &encoded,
        &gt,
        &config,
    );
    // Pairwise precision is the candidate base rate (terrible); the cleanup
    // must still terminate and produce bounded groups.
    assert!(outcome.pairwise.precision < 0.9);
    assert!(outcome.groups.iter().all(|g| g.len() <= 5));
    assert!(outcome.post_cleanup.pairs.precision >= outcome.pre_cleanup.pairs.precision);
}

#[test]
fn always_no_matcher_yields_singletons() {
    let (data, encoded, gt, candidates) = small_setup();
    let config = PipelineConfig::new(25, 5);
    let outcome = run_matching(
        data.companies.len(),
        &candidates,
        &AlwaysNo,
        &encoded,
        &gt,
        &config,
    );
    assert_eq!(outcome.num_predicted, 0);
    assert_eq!(outcome.pairwise.recall, 0.0);
    assert_eq!(outcome.groups.len(), data.companies.len());
    // Everything-singleton is trivially "pure".
    assert_eq!(outcome.post_cleanup.cluster_purity, 1.0);
}

#[test]
fn empty_candidate_set_is_fine() {
    let (data, encoded, gt, _) = small_setup();
    let empty = CandidateSet::new();
    let config = PipelineConfig::new(25, 5);
    let outcome = run_matching(
        data.companies.len(),
        &empty,
        &AlwaysYes,
        &encoded,
        &gt,
        &config,
    );
    assert_eq!(outcome.num_candidates, 0);
    assert_eq!(outcome.pairwise.f1, 0.0);
}

#[test]
fn cleanup_on_empty_and_tiny_graphs() {
    let mut empty = Graph::new();
    let report = graph_cleanup(&mut empty, &CleanupConfig::new(25, 5));
    assert_eq!(report.mincut_removed + report.betweenness_removed, 0);

    let mut single_edge = Graph::from_edges([(0, 1)]);
    graph_cleanup(&mut single_edge, &CleanupConfig::new(25, 5));
    assert_eq!(single_edge.num_edges(), 1);
}

#[test]
fn mu_of_one_fully_shatters() {
    // μ = 1 is the degenerate "no groups allowed" configuration: every
    // edge must be removed, no panics.
    let mut graph = Graph::from_edges([(0, 1), (1, 2), (2, 0), (3, 4)]);
    graph_cleanup(&mut graph, &CleanupConfig::new(2, 1));
    assert_eq!(graph.num_edges(), 0);
}

#[test]
fn metrics_with_fully_unlabeled_ground_truth() {
    let gt = GroundTruth::default();
    let pairs = vec![RecordPair::new(RecordId(0), RecordId(1))];
    let metrics = gralmatch::core::pairwise_metrics(&pairs, &gt);
    assert_eq!(metrics.tp, 0);
    assert_eq!(metrics.fp, 1);
    assert_eq!(metrics.recall, 0.0);

    let graph = prediction_graph(3, &pairs);
    let groups = entity_groups(&graph);
    let group_m = group_metrics(&groups, &gt);
    assert_eq!(group_m.pairs.tp, 0);
    assert!(group_m.cluster_purity <= 1.0);
}

#[test]
fn single_record_dataset() {
    let mut config = GenerationConfig::synthetic_full();
    config.num_entities = 1;
    let data = generate(&config).unwrap();
    assert!(!data.companies.is_empty());
    let gt = data.companies.ground_truth();
    // Blocking on a single entity across sources still works.
    let candidates = blocked_candidates(&CompanyDomain::new(
        data.companies.records(),
        data.securities.records(),
    ));
    let encoded =
        gralmatch::lm::ModelSpec::DistilBert128All.encode_records(data.companies.records());
    let outcome = run_matching(
        data.companies.len(),
        &candidates,
        &AlwaysYes,
        &encoded,
        &gt,
        &PipelineConfig::new(25, 5),
    );
    // One entity: even all-yes predictions are all true.
    assert_eq!(outcome.pairwise.fp, 0);
}

#[test]
fn scores_are_always_finite_probabilities() {
    let (_, encoded, _, candidates) = small_setup();
    let matcher = gralmatch::lm::HeuristicMatcher::default();
    for pair in candidates.pairs_sorted().into_iter().take(500) {
        let score = matcher.score(&encoded[pair.a.0 as usize], &encoded[pair.b.0 as usize]);
        assert!(score.is_finite());
        assert!((0.0..=1.0).contains(&score));
    }
}
