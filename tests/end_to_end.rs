//! Cross-crate integration tests: datagen → blocking → lm → core pipeline.

use gralmatch::core::{
    blocked_candidates, run_domain, run_domain_with_matcher, CleanupVariant, CompanyDomain,
    OracleMatcher, OracleScorer, PipelineConfig, SecurityDomain,
};
use gralmatch::datagen::{generate, GenerationConfig};
use gralmatch::lm::{train, ModelSpec};
use gralmatch::records::{DatasetSplit, Record, RecordId, SplitRatios};
use gralmatch::util::{FxHashMap, Parallelism, SplitRng};

fn small_data(entities: usize, seed: u64) -> gralmatch::datagen::FinancialDataset {
    let mut config = GenerationConfig::synthetic_full();
    config.num_entities = entities;
    config.seed = seed;
    generate(&config).expect("valid config")
}

#[test]
fn oracle_end_to_end_recovers_groups() {
    let data = small_data(200, 1);
    let companies = data.companies.records();
    let gt = data.companies.ground_truth();
    let domain = CompanyDomain::new(companies, data.securities.records());
    let config = PipelineConfig::new(25, 5).with_pre_cleanup(50);
    let outcome = run_domain(&domain, &OracleScorer::new(&gt), &config).unwrap();
    assert_eq!(outcome.pairwise.precision, 1.0);
    assert!(
        outcome.post_cleanup.pairs.f1 > 0.65,
        "{:?}",
        outcome.post_cleanup
    );
    // μ bound holds for every final group.
    assert!(outcome.groups.iter().all(|g| g.len() <= 5));
}

#[test]
fn trained_model_beats_untrained_threshold() {
    let data = small_data(150, 2);
    let companies = data.companies.records();
    let gt = data.companies.ground_truth();
    let split = DatasetSplit::new(&gt, SplitRatios::default(), &mut SplitRng::new(5));
    let spec = ModelSpec::DistilBert128All;
    let encoded = spec.encode_records(companies);
    let (matcher, report) = train(companies, &encoded, &gt, &split, &spec.train_config()).unwrap();
    assert!(report.train_losses.last().unwrap() < &0.25);
    let domain = CompanyDomain::new(companies, data.securities.records());
    let config = PipelineConfig::new(25, 5).with_pre_cleanup(50);
    let outcome = run_domain_with_matcher(&domain, &matcher, &encoded, &config).unwrap();
    assert!(outcome.pairwise.f1 > 0.5, "pairwise {:?}", outcome.pairwise);
    assert!(outcome.post_cleanup.cluster_purity > 0.8);
}

#[test]
fn cleanup_never_grows_components() {
    let data = small_data(150, 3);
    let companies = data.companies.records();
    let gt = data.companies.ground_truth();
    let domain = CompanyDomain::new(companies, data.securities.records());
    // A deliberately noisy matcher: flip several negatives to positives.
    let negatives: Vec<_> = blocked_candidates(&domain)
        .pairs_sorted()
        .into_iter()
        .filter(|&p| !gt.is_match_pair(p))
        .take(10)
        .collect();
    let oracle = OracleMatcher::with_flips(&gt, negatives);
    let config = PipelineConfig::new(25, 5).with_pre_cleanup(50);
    let outcome = run_domain(&domain, &oracle.scorer(), &config).unwrap();
    let pre_max = outcome.pre_cleanup.pairs.fp; // false closure pairs before cleanup
    let post_max = outcome.post_cleanup.pairs.fp;
    assert!(
        post_max <= pre_max,
        "cleanup must not increase false pairs: {pre_max} -> {post_max}"
    );
    assert!(outcome.post_cleanup.pairs.precision >= outcome.pre_cleanup.pairs.precision);
}

#[test]
fn sensitivity_variants_agree_on_easy_graphs() {
    let data = small_data(120, 4);
    let companies = data.companies.records();
    let gt = data.companies.ground_truth();
    let domain = CompanyDomain::new(companies, data.securities.records());
    let oracle = OracleMatcher::new(&gt);
    let mut results = Vec::new();
    for variant in [
        CleanupVariant::Full,
        CleanupVariant::MinCutOnly,
        CleanupVariant::BetweennessOnly,
        CleanupVariant::HalfGamma,
    ] {
        let config = PipelineConfig {
            cleanup: gralmatch::core::CleanupConfig::new(25, 5)
                .with_pre_cleanup(50)
                .variant(variant),
            parallelism: Parallelism::Fixed(2),
        };
        let outcome = run_domain(&domain, &oracle.scorer(), &config).unwrap();
        results.push(outcome.post_cleanup.pairs.f1);
    }
    // With perfect predictions the variants must land within a few points
    // of each other (the paper reports near-identical scores).
    let min = results.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = results.iter().cloned().fold(0.0, f64::max);
    assert!(max - min < 0.05, "variants diverged: {results:?}");
}

#[test]
fn securities_issuer_match_pipeline() {
    let data = small_data(150, 6);
    let securities = data.securities.records();
    let security_gt = data.securities.ground_truth();
    // Ground-truth company groups as issuer input (upper bound).
    let mut issuer_groups: FxHashMap<RecordId, u32> = FxHashMap::default();
    for company in data.companies.records() {
        issuer_groups.insert(company.id(), company.entity.unwrap().0);
    }
    let domain = SecurityDomain::new(securities, &issuer_groups);
    let oracle = OracleMatcher::new(&security_gt);
    let config = PipelineConfig::new(25, 5);
    let outcome = run_domain(&domain, &oracle.scorer(), &config).unwrap();
    assert!(outcome.pairwise.recall > 0.6, "{:?}", outcome.pairwise);
    assert_eq!(outcome.pairwise.precision, 1.0);
}

#[test]
fn pipeline_deterministic_across_runs() {
    let run = || {
        let data = small_data(100, 9);
        let companies = data.companies.records();
        let gt = data.companies.ground_truth();
        let domain = CompanyDomain::new(companies, data.securities.records());
        let oracle = OracleMatcher::new(&gt);
        let config = PipelineConfig::new(25, 5).with_pre_cleanup(50);
        let outcome = run_domain(&domain, &oracle.scorer(), &config).unwrap();
        (
            outcome.num_candidates,
            outcome.num_predicted,
            outcome.groups.len(),
            outcome.post_cleanup.pairs.tp,
        )
    };
    assert_eq!(run(), run());
}
