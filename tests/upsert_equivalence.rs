//! Property tests: incremental upserts are transparent.
//!
//! For seeded random datasets, an initial load followed by **any**
//! partition of the remaining records into upsert batches — batch splits
//! ∈ {1, 3, 8}, with delete/re-insert churn woven through the replay —
//! must land on exactly the groups of a one-shot
//! [`run_sharded`](gralmatch::core::run_sharded) over the final
//! population. Incrementality is an execution strategy, not a semantics
//! change. The offline build has no `proptest`, so cases are
//! deterministic seeded instances (the seed is printed in every assertion
//! message).

use gralmatch::blocking::Blocker;
use gralmatch::core::{
    run_sharded, CompanyDomain, MatchingDomain, OracleMatcher, OracleScorer, PipelineConfig,
    PipelineState, SecurityDomain, ShardKey, ShardPlan, UpsertBatch,
};
use gralmatch::datagen::{generate, FinancialDataset, GenerationConfig};
use gralmatch::records::{IdCode, IdKind, Record, RecordId, RecordPair, SecurityRecord, SourceId};
use gralmatch::util::FxHashMap;

const BATCH_SPLITS: [usize; 3] = [1, 3, 8];

fn dataset(seed: u64) -> FinancialDataset {
    let mut config = GenerationConfig::synthetic_full();
    config.num_entities = 90;
    config.seed = seed;
    generate(&config).unwrap()
}

fn company_groups(data: &FinancialDataset) -> FxHashMap<RecordId, u32> {
    data.companies
        .records()
        .iter()
        .map(|company| (company.id, company.entity.unwrap().0))
        .collect()
}

/// Order-insensitive normal form: sorted members, groups sorted.
fn normalize(groups: &[Vec<RecordId>]) -> Vec<Vec<RecordId>> {
    let mut out: Vec<Vec<RecordId>> = groups
        .iter()
        .map(|group| {
            let mut g = group.clone();
            g.sort_unstable();
            g
        })
        .collect();
    out.sort();
    out
}

/// Replay `records` as initial load (first `initial` records) + `k` insert
/// batches over the remainder, weaving delete/re-insert churn through the
/// replay: batch `j` deletes a small slice of already-loaded records and
/// the next batch re-inserts it, so every record of the final population
/// has been through the standing state and some have been retracted and
/// reconciled twice. Returns the final groups.
fn replay<R, F>(
    records: &[R],
    strategies: &[Box<dyn Blocker<R> + '_>],
    scorer: &dyn gralmatch::lm::PairScorer,
    config: &PipelineConfig,
    plan: ShardPlan,
    k: usize,
    context: F,
) -> Vec<Vec<RecordId>>
where
    R: Record + Clone + Sync,
    F: Fn(&str) -> String,
{
    let initial = records.len() * 3 / 5;
    let (mut state, _) = PipelineState::initial_load(
        plan,
        records[..initial].to_vec(),
        strategies,
        scorer,
        config,
    )
    .unwrap_or_else(|e| panic!("{}: {e:?}", context("initial load")));

    let remainder = &records[initial..];
    let chunk = remainder.len().div_ceil(k);
    let mut pending: Vec<R> = Vec::new();
    let mut last_groups = Vec::new();
    for (j, slice) in remainder.chunks(chunk.max(1)).enumerate() {
        // Churn: retract a small slice of the initially loaded records;
        // the next batch brings it back.
        let churn: Vec<R> = records[gralmatch::core::churn_window(initial, j, 4)]
            .iter()
            .filter(|r| state.is_live(r.id()))
            .cloned()
            .collect();
        let batch = UpsertBatch {
            inserts: slice.iter().cloned().chain(pending.drain(..)).collect(),
            updates: Vec::new(),
            deletes: churn.iter().map(|r| r.id()).collect(),
        };
        let outcome = state
            .apply(&batch, strategies, scorer, config)
            .unwrap_or_else(|e| panic!("{}: {e:?}", context(&format!("batch {j}"))));
        last_groups = outcome.groups;
        pending = churn;
    }
    if !pending.is_empty() {
        let outcome = state
            .apply(&UpsertBatch::inserting(pending), strategies, scorer, config)
            .unwrap_or_else(|e| panic!("{}: {e:?}", context("churn restore")));
        last_groups = outcome.groups;
    }
    assert_eq!(
        state.num_live(),
        records.len(),
        "{}",
        context("replay must end at the full population")
    );
    last_groups
}

#[test]
fn replayed_security_upserts_match_one_shot_groups() {
    for seed in [7u64, 19] {
        let data = dataset(seed);
        let securities = data.securities.records();
        let group_of = company_groups(&data);
        let domain = SecurityDomain::new(securities, &group_of);
        let gt = domain.ground_truth().clone();
        let scorer = OracleScorer::new(&gt);
        let config = PipelineConfig::new(25, 5);
        let plan = ShardPlan::new(4);
        let one_shot = run_sharded(&domain, &scorer, &config, &plan).unwrap();
        let strategies = domain.blocking_strategies();

        for k in BATCH_SPLITS {
            let groups = replay(securities, &strategies, &scorer, &config, plan, k, |what| {
                format!("seed {seed}, {k} batches, {what}")
            });
            assert_eq!(
                normalize(&groups),
                normalize(&one_shot.outcome.groups),
                "seed {seed}, {k} batches: incremental groups diverged"
            );
        }
    }
}

#[test]
fn replayed_company_upserts_match_one_shot_groups() {
    // Companies exercise the token-overlap delta path (per-shard text
    // recount) plus the id-overlap join through the security universe.
    for seed in [13u64] {
        let data = dataset(seed);
        let companies = data.companies.records();
        let domain = CompanyDomain::new(companies, data.securities.records());
        let gt = domain.ground_truth().clone();
        let scorer = OracleScorer::new(&gt);
        let config = PipelineConfig::new(25, 5).with_pre_cleanup(50);
        let plan = ShardPlan::new(4);
        let one_shot = run_sharded(&domain, &scorer, &config, &plan).unwrap();
        let strategies = domain.blocking_strategies();

        for k in BATCH_SPLITS {
            let groups = replay(companies, &strategies, &scorer, &config, plan, k, |what| {
                format!("seed {seed}, {k} batches, {what}")
            });
            assert_eq!(
                normalize(&groups),
                normalize(&one_shot.outcome.groups),
                "seed {seed}, {k} batches: incremental groups diverged"
            );
        }
    }
}

/// Securities fixture for the handcrafted scenarios: id, source, entity,
/// identifier codes.
fn security(id: u32, source: u16, entity: u32, codes: &[&str]) -> SecurityRecord {
    let mut record = SecurityRecord::new(
        RecordId(id),
        SourceId(source),
        "Registered Shs",
        RecordId(1000 + entity),
    )
    .with_entity(gralmatch::records::EntityId(entity));
    for code in codes {
        record.id_codes.push(IdCode::new(IdKind::Isin, *code));
    }
    record
}

#[test]
fn delete_heavy_batch_splits_a_bridged_component() {
    // Two 2-record entities bridged by one *false positive* edge (an
    // oracle flip on the shared-code pair s1–s2): the raw component is a
    // path s0–s1–s2–s3. Deleting s1 must split it — the retracted raw
    // edges mark both sides dirty and the merge re-cleans them — leaving
    // exactly {s2, s3} and the singleton {s0}.
    let records = vec![
        security(0, 0, 1, &["AAA"]),
        security(1, 1, 1, &["AAA", "XBRIDGE"]),
        security(2, 2, 2, &["BBB", "XBRIDGE"]),
        security(3, 3, 2, &["BBB"]),
    ];
    let group_of: FxHashMap<RecordId, u32> = FxHashMap::default();
    let domain = SecurityDomain::new(&records, &group_of);
    let gt = domain.ground_truth().clone();
    let oracle = OracleMatcher::with_flips(&gt, vec![RecordPair::new(RecordId(1), RecordId(2))]);
    let scorer = oracle.scorer();
    let config = PipelineConfig::new(25, 5);
    let strategies = domain.blocking_strategies();

    let (mut state, load) = PipelineState::initial_load(
        ShardPlan::new(2),
        records.clone(),
        &strategies,
        &scorer,
        &config,
    )
    .unwrap();
    // The flip bridges the two entities into one 4-record component, small
    // enough (≤ μ) to survive the cleanup.
    assert_eq!(normalize(&load.groups).last().unwrap().len(), 4);

    let outcome = state
        .apply(
            &UpsertBatch {
                inserts: Vec::new(),
                updates: Vec::new(),
                deletes: vec![RecordId(1)],
            },
            &strategies,
            &scorer,
            &config,
        )
        .unwrap();
    assert!(
        outcome.retracted_predictions >= 2,
        "s0–s1 and s1–s2 retract"
    );
    assert!(outcome.touched_components >= 1);
    let expected = vec![vec![RecordId(0)], vec![RecordId(2), RecordId(3)]];
    assert_eq!(normalize(&outcome.groups), expected);
}

#[test]
fn delete_heavy_replay_matches_one_shot_over_survivors() {
    // Delete ~a third of a seeded dataset across two delete-only batches,
    // then compare against a one-shot sharded run over a densely
    // re-indexed copy of the survivors (monotone re-indexing preserves all
    // id-based tie-breaks, so the runs are comparable bit for bit).
    let seed = 31u64;
    let data = dataset(seed);
    let securities = data.securities.records();
    let group_of = company_groups(&data);
    let domain = SecurityDomain::new(securities, &group_of);
    let gt = domain.ground_truth().clone();
    let scorer = OracleScorer::new(&gt);
    let config = PipelineConfig::new(25, 5);
    let plan = ShardPlan::new(4);
    let strategies = domain.blocking_strategies();

    let (mut state, _) =
        PipelineState::initial_load(plan, securities.to_vec(), &strategies, &scorer, &config)
            .unwrap();
    let doomed: Vec<RecordId> = securities
        .iter()
        .map(|r| r.id)
        .filter(|id| id.0 % 3 == 0)
        .collect();
    let mut last_groups = Vec::new();
    for half in doomed.chunks(doomed.len().div_ceil(2)) {
        let outcome = state
            .apply(
                &UpsertBatch {
                    inserts: Vec::new(),
                    updates: Vec::new(),
                    deletes: half.to_vec(),
                },
                &strategies,
                &scorer,
                &config,
            )
            .unwrap();
        last_groups = outcome.groups;
    }

    // One-shot over the survivors, re-indexed densely in id order.
    let survivors: Vec<SecurityRecord> = securities
        .iter()
        .filter(|r| r.id.0 % 3 != 0)
        .cloned()
        .collect();
    let mut dense = survivors.clone();
    let mut back_to_original: Vec<RecordId> = Vec::with_capacity(dense.len());
    for (position, record) in dense.iter_mut().enumerate() {
        back_to_original.push(record.id);
        record.id = RecordId(position as u32);
    }
    let dense_domain = SecurityDomain::new(&dense, &group_of);
    let dense_gt = dense_domain.ground_truth().clone();
    let dense_scorer = OracleScorer::new(&dense_gt);
    let one_shot = run_sharded(&dense_domain, &dense_scorer, &config, &plan).unwrap();
    let mapped: Vec<Vec<RecordId>> = one_shot
        .outcome
        .groups
        .iter()
        .map(|group| {
            group
                .iter()
                .map(|id| back_to_original[id.0 as usize])
                .collect()
        })
        .collect();
    assert_eq!(
        normalize(&last_groups),
        normalize(&mapped),
        "seed {seed}: delete-heavy incremental diverged from one-shot over survivors"
    );
}

#[test]
fn upsert_bridges_components_across_shards() {
    // Source-keyed sharding: {s0, s1} live in shard 0, {s2, s3} in shard
    // 1, same entity, no standing candidate between the sides. Inserting
    // s4 — which shares a code with each side — must merge all five into
    // one group via boundary candidates from the global hash join, exactly
    // as a one-shot sharded run over the full five would.
    let records = vec![
        security(0, 0, 1, &["AAA"]),
        security(1, 2, 1, &["AAA"]),
        security(2, 1, 1, &["BBB"]),
        security(3, 3, 1, &["BBB"]),
        security(4, 4, 1, &["AAA", "BBB"]),
    ];
    let group_of: FxHashMap<RecordId, u32> = FxHashMap::default();
    let domain = SecurityDomain::new(&records, &group_of);
    let gt = domain.ground_truth().clone();
    let scorer = OracleScorer::new(&gt);
    let config = PipelineConfig::new(25, 5);
    let plan = ShardPlan::new(2).with_key(ShardKey::Source);
    let strategies = domain.blocking_strategies();

    let (mut state, load) =
        PipelineState::initial_load(plan, records[..4].to_vec(), &strategies, &scorer, &config)
            .unwrap();
    assert_eq!(
        normalize(&load.groups),
        vec![
            vec![RecordId(0), RecordId(1)],
            vec![RecordId(2), RecordId(3)],
        ],
        "standing components stay shard-local before the bridge"
    );

    let outcome = state
        .apply(
            &UpsertBatch::inserting(vec![records[4].clone()]),
            &strategies,
            &scorer,
            &config,
        )
        .unwrap();
    assert!(
        outcome.boundary_merges >= 1,
        "the bridge must union previously distinct components"
    );
    assert_eq!(
        normalize(&outcome.groups),
        vec![(0..5).map(RecordId).collect::<Vec<_>>()]
    );

    let one_shot = run_sharded(&domain, &scorer, &config, &plan).unwrap();
    assert_eq!(
        normalize(&outcome.groups),
        normalize(&one_shot.outcome.groups)
    );
}
