//! Compiled featurization ≡ reference featurization, property-style.
//!
//! The compiled path (`lm::compiled`) claims **bit-for-bit** equality with
//! the set-based reference `featurize` — indices, value bit patterns, and
//! the L2 normalization included, because both paths canonicalize through
//! the same `(index, value-bits)` sort before accumulating the norm. Like
//! `tests/proptest_invariants.rs`, these run seeded random instances (no
//! external proptest crate): every case draws from a [`SplitRng`] stream
//! and reproduces exactly by the seed printed in each assertion.

use gralmatch::datagen::{generate, GenerationConfig};
use gralmatch::lm::{
    featurize, CompiledDataset, CompiledScorer, EncodedRecord, FeatureConfig, HeuristicMatcher,
    MatcherScorer, ModelSpec, PairFeatures, PairScorer, PairwiseMatcher, TrainedMatcher,
};
use gralmatch::records::{RecordId, RecordPair};
use gralmatch::util::SplitRng;

fn assert_bit_identical(
    case: u64,
    pair: (u32, u32),
    reference: &PairFeatures,
    fast: &PairFeatures,
) {
    assert_eq!(
        reference.indices, fast.indices,
        "case {case}: indices diverge for pair {pair:?}"
    );
    for (slot, (a, b)) in reference.values.iter().zip(&fast.values).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "case {case}: value bits diverge at slot {slot} of pair {pair:?} ({a} vs {b})"
        );
    }
    assert_eq!(reference.values.len(), fast.values.len(), "case {case}");
}

/// Random token stream exercising every reference-path edge: encoder
/// markers (skipped), empty records, sub-3-char tokens (whole-token
/// trigrams), duplicates (set semantics), and multi-byte characters.
fn random_stream(rng: &mut SplitRng) -> EncodedRecord {
    const WORDS: &[&str] = &[
        "crowdstrike",
        "crowdstreet",
        "holdings",
        "austin",
        "zürich",
        "a",
        "ab",
        "x9",
        "inc",
        "us31807756e",
        "[col]",
        "[val]",
        "[unk]",
        "name",
        "œstrogen",
    ];
    let len = rng.next_below(12);
    let tokens = (0..len)
        .map(|_| WORDS[rng.next_below(WORDS.len())].to_string())
        .collect();
    EncodedRecord { tokens }
}

#[test]
fn compiled_equals_reference_on_random_streams() {
    let config = FeatureConfig::default();
    for case in 0..48u64 {
        let mut rng = SplitRng::new(0xFEA7).split_index(case);
        let num_records = rng.range_inclusive(2, 24);
        let records: Vec<EncodedRecord> =
            (0..num_records).map(|_| random_stream(&mut rng)).collect();
        let compiled = CompiledDataset::compile(&records, &config);
        for _ in 0..32 {
            let a = rng.next_below(num_records);
            let b = rng.next_below(num_records);
            let reference = featurize(&records[a], &records[b], &config);
            let fast = compiled.featurize_pair(a as u32, b as u32);
            assert_bit_identical(case, (a as u32, b as u32), &reference, &fast);
        }
    }
}

#[test]
fn compiled_equals_reference_on_company_and_security_records() {
    let mut gen_config = GenerationConfig::synthetic_full();
    gen_config.num_entities = 60;
    let data = generate(&gen_config).unwrap();
    let config = FeatureConfig::default();
    // Plain (no markers) and DITTO (marker-heavy) encoders, both domains.
    for spec in [ModelSpec::DistilBert128All, ModelSpec::Ditto128] {
        for encoded in [
            spec.encode_records(data.companies.records()),
            spec.encode_records(data.securities.records()),
        ] {
            let compiled = CompiledDataset::compile(&encoded, &config);
            let mut rng = SplitRng::new(0xFEA8).split(spec.display_name());
            for case in 0..200u64 {
                let a = rng.next_below(encoded.len());
                let b = rng.next_below(encoded.len());
                let reference = featurize(&encoded[a], &encoded[b], &config);
                let fast = compiled.featurize_pair(a as u32, b as u32);
                assert_bit_identical(case, (a as u32, b as u32), &reference, &fast);
            }
        }
    }
}

#[test]
fn compiled_scorers_match_encoded_scorers_exactly() {
    use gralmatch::records::{DatasetSplit, SplitRatios};
    let mut gen_config = GenerationConfig::synthetic_full();
    gen_config.num_entities = 80;
    let data = generate(&gen_config).unwrap();
    let companies = data.companies.records();
    let encoded = ModelSpec::DistilBert128All.encode_records(companies);
    let gt = data.companies.ground_truth();
    let split = DatasetSplit::new(&gt, SplitRatios::default(), &mut SplitRng::new(7));
    let (trained, _): (TrainedMatcher, _) = gralmatch::lm::train(
        companies,
        &encoded,
        &gt,
        &split,
        &ModelSpec::DistilBert128All.train_config(),
    )
    .unwrap();
    let heuristic = HeuristicMatcher::default();

    let compiled = CompiledDataset::compile(&encoded, &trained.feature_config());
    let mut rng = SplitRng::new(0xFEA9);
    for case in 0..300u64 {
        let a = rng.next_below(companies.len()) as u32;
        let b = rng.next_below(companies.len()) as u32;
        if a == b {
            continue;
        }
        let pair = RecordPair::new(RecordId(a), RecordId(b));
        let via_encoded = MatcherScorer::new(&trained, &encoded).score_pair(pair);
        let via_compiled = CompiledScorer::new(&trained, &compiled).score_pair(pair);
        assert_eq!(
            via_encoded.to_bits(),
            via_compiled.to_bits(),
            "case {case}: trained scorer diverges on {pair:?}"
        );
        let heuristic_encoded = MatcherScorer::new(&heuristic, &encoded).score_pair(pair);
        let heuristic_compiled = CompiledScorer::new(&heuristic, &compiled).score_pair(pair);
        assert_eq!(
            heuristic_encoded.to_bits(),
            heuristic_compiled.to_bits(),
            "case {case}: heuristic scorer diverges on {pair:?}"
        );
    }
}

#[test]
fn incremental_recompiles_converge_to_a_fresh_compile() {
    // Mutating records one at a time (the upsert path) must land on the
    // same featurization as compiling the final dataset from scratch.
    let config = FeatureConfig::default();
    for case in 0..24u64 {
        let mut rng = SplitRng::new(0xFEAA).split_index(case);
        let num_records = rng.range_inclusive(3, 16);
        let initial: Vec<EncodedRecord> =
            (0..num_records).map(|_| random_stream(&mut rng)).collect();
        let mut live = initial.clone();
        let mut compiled = CompiledDataset::compile(&initial, &config);

        // A churn burst: replace / clear / re-fill random slots.
        for _ in 0..rng.range_inclusive(1, 8) {
            let id = rng.next_below(num_records);
            if rng.next_below(4) == 0 {
                live[id] = EncodedRecord { tokens: Vec::new() };
                compiled.clear_record(id as u32);
            } else {
                let replacement = random_stream(&mut rng);
                live[id] = replacement.clone();
                compiled.recompile_record(id as u32, &replacement);
            }
        }

        let fresh = CompiledDataset::compile(&live, &config);
        for a in 0..num_records {
            for b in 0..num_records {
                let incremental = compiled.featurize_pair(a as u32, b as u32);
                let from_scratch = fresh.featurize_pair(a as u32, b as u32);
                assert_bit_identical(case, (a as u32, b as u32), &from_scratch, &incremental);
                let reference = featurize(&live[a], &live[b], &config);
                assert_bit_identical(case, (a as u32, b as u32), &reference, &incremental);
            }
        }
    }
}
