//! Property-style tests on the dataset generator and text substrate.
//!
//! Seeded-random replacements for the former `proptest` suite (the offline
//! build has no registry access): each case derives its inputs from a
//! [`SplitRng`] stream keyed by the case index, so failures reproduce by
//! the seed printed in the assertion message.

use gralmatch::datagen::{generate, paraphrase::paraphrase, GenerationConfig};
use gralmatch::lm::{DittoEncoder, PairEncoder, PlainEncoder};
use gralmatch::records::Record;
use gralmatch::text::{jaccard, jaro_winkler, levenshtein, normalized_levenshtein, tokenize};
use gralmatch::util::{csv, SplitRng};

/// Random lowercase ASCII word of length `0..=max_len`.
fn random_word(rng: &mut SplitRng, max_len: usize) -> String {
    let len = rng.next_below(max_len + 1);
    (0..len)
        .map(|_| (b'a' + rng.next_below(26) as u8) as char)
        .collect()
}

/// Random printable-ish string (letters, digits, spaces, punctuation,
/// some multi-byte codepoints) of length `0..=max_len`.
fn random_text(rng: &mut SplitRng, max_len: usize) -> String {
    const EXTRA: [char; 8] = ['é', 'ß', 'λ', '中', '😀', '\t', '"', ','];
    let len = rng.next_below(max_len + 1);
    (0..len)
        .map(|_| match rng.next_below(10) {
            0..=4 => (b'a' + rng.next_below(26) as u8) as char,
            5 | 6 => (b'0' + rng.next_below(10) as u8) as char,
            7 => ' ',
            8 => *rng.pick(&EXTRA),
            _ => (b'A' + rng.next_below(26) as u8) as char,
        })
        .collect()
}

#[test]
fn generation_is_deterministic_under_seed() {
    for case in 0..8u64 {
        let mut rng = SplitRng::new(0xD1).split_index(case);
        let mut config = GenerationConfig::synthetic_full();
        config.seed = rng.next_below(1000) as u64;
        config.num_entities = rng.range_inclusive(20, 80);
        let a = generate(&config).unwrap();
        let b = generate(&config).unwrap();
        assert_eq!(a.companies.len(), b.companies.len(), "case {case}");
        assert_eq!(a.securities.len(), b.securities.len(), "case {case}");
        let i = a.companies.len() / 2;
        assert_eq!(
            &a.companies.records()[i],
            &b.companies.records()[i],
            "case {case}"
        );
    }
}

#[test]
fn generated_references_are_consistent() {
    for case in 0..8u64 {
        let mut config = GenerationConfig::synthetic_full();
        config.seed = 0xD2 + case;
        config.num_entities = 30;
        let data = generate(&config).unwrap();
        for security in data.securities.records() {
            let issuer = data.companies.get(security.issuer);
            assert_eq!(issuer.source(), security.source(), "case {case}");
            assert!(issuer.securities.contains(&security.id), "case {case}");
        }
        for company in data.companies.records() {
            for &sid in &company.securities {
                assert_eq!(data.securities.get(sid).issuer, company.id, "case {case}");
            }
        }
    }
}

#[test]
fn levenshtein_triangle_inequality() {
    for case in 0..200u64 {
        let mut rng = SplitRng::new(0xD3).split_index(case);
        let a = random_word(&mut rng, 12);
        let b = random_word(&mut rng, 12);
        let c = random_word(&mut rng, 12);
        let ab = levenshtein(&a, &b);
        let bc = levenshtein(&b, &c);
        let ac = levenshtein(&a, &c);
        assert!(ac <= ab + bc, "case {case}: {a:?} {b:?} {c:?}");
    }
}

#[test]
fn levenshtein_identity_and_symmetry() {
    for case in 0..200u64 {
        let mut rng = SplitRng::new(0xD4).split_index(case);
        let a = random_word(&mut rng, 16);
        let b = random_word(&mut rng, 16);
        assert_eq!(levenshtein(&a, &a), 0, "case {case}");
        assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a), "case {case}");
    }
}

#[test]
fn similarity_ranges() {
    for case in 0..200u64 {
        let mut rng = SplitRng::new(0xD5).split_index(case);
        let a = random_text(&mut rng, 24);
        let b = random_text(&mut rng, 24);
        for value in [normalized_levenshtein(&a, &b), jaro_winkler(&a, &b)] {
            assert!(
                (0.0..=1.0 + 1e-9).contains(&value),
                "case {case}: {value} for {a:?} / {b:?}"
            );
        }
        let ta = tokenize(&a);
        let tb = tokenize(&b);
        let j = jaccard(&ta, &tb);
        assert!((0.0..=1.0).contains(&j), "case {case}");
    }
}

#[test]
fn tokenize_produces_lowercase_alphanumerics() {
    for case in 0..200u64 {
        let mut rng = SplitRng::new(0xD6).split_index(case);
        let text = random_text(&mut rng, 60);
        for token in tokenize(&text) {
            assert!(!token.is_empty(), "case {case}");
            assert!(
                token.chars().all(|c| c.is_alphanumeric()),
                "case {case}: {token:?}"
            );
            // Lowercasing is idempotent: some codepoints (math capitals)
            // report is_uppercase() but have no lowercase mapping, so the
            // invariant is fixpoint-ness, not absence of uppercase.
            assert_eq!(token.to_lowercase(), token, "case {case}");
        }
    }
}

#[test]
fn encoders_respect_budget() {
    for case in 0..64u64 {
        let mut rng = SplitRng::new(0xD7).split_index(case);
        let name: String = (0..rng.next_below(201))
            .map(|_| match rng.next_below(4) {
                0 => ' ',
                1 => (b'0' + rng.next_below(10) as u8) as char,
                2 => (b'A' + rng.next_below(26) as u8) as char,
                _ => (b'a' + rng.next_below(26) as u8) as char,
            })
            .collect();
        let budget = rng.range_inclusive(8, 255);
        let record = gralmatch::records::CompanyRecord::new(
            gralmatch::records::RecordId(0),
            gralmatch::records::SourceId(0),
            name,
        );
        let plain = PlainEncoder::new(budget).encode(&record);
        let ditto = DittoEncoder::new(budget).encode(&record);
        assert!(plain.len() <= budget / 2, "case {case}");
        assert!(ditto.len() <= budget / 2, "case {case}");
    }
}

#[test]
fn csv_round_trips() {
    for case in 0..100u64 {
        let mut rng = SplitRng::new(0xD8).split_index(case);
        // Random rows of random cells. Normalize \r out (the line-based
        // reader treats \r\n as \n) and drop rows of exactly one empty
        // field: CSV cannot distinguish them from blank lines, which
        // parsers skip.
        let rows: Vec<Vec<String>> = (0..rng.next_below(8))
            .map(|_| {
                let cells = rng.range_inclusive(1, 4);
                (0..cells)
                    .map(|_| random_text(&mut rng, 20).replace('\r', ""))
                    .collect::<Vec<String>>()
            })
            .filter(|row| !(row.len() == 1 && row[0].is_empty()))
            .collect();
        let text = csv::to_csv_string(&rows);
        let parsed = csv::parse_csv(&text).unwrap();
        assert_eq!(parsed, rows, "case {case}");
    }
}

#[test]
fn paraphrase_deterministic_and_keeps_length_sane() {
    for case in 0..100u64 {
        let seed = 0xD9 ^ case;
        let text = "Provider of cloud security solutions for enterprises.";
        let a = paraphrase(text, 0.6, &mut SplitRng::new(seed));
        let b = paraphrase(text, 0.6, &mut SplitRng::new(seed));
        assert_eq!(a, b, "case {case}");
        assert!(a.len() < text.len() * 3, "case {case}");
        assert!(!a.is_empty(), "case {case}");
    }
}
