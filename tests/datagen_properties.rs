//! Property-based tests on the dataset generator and text substrate.

use gralmatch::datagen::{generate, paraphrase::paraphrase, GenerationConfig};
use gralmatch::lm::{DittoEncoder, PairEncoder, PlainEncoder};
use gralmatch::records::Record;
use gralmatch::text::{jaccard, jaro_winkler, levenshtein, normalized_levenshtein, tokenize};
use gralmatch::util::{csv, SplitRng};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generation_is_deterministic_under_seed(seed in 0u64..1000, entities in 20usize..80) {
        let mut config = GenerationConfig::synthetic_full();
        config.seed = seed;
        config.num_entities = entities;
        let a = generate(&config).unwrap();
        let b = generate(&config).unwrap();
        prop_assert_eq!(a.companies.len(), b.companies.len());
        prop_assert_eq!(a.securities.len(), b.securities.len());
        let i = a.companies.len() / 2;
        prop_assert_eq!(&a.companies.records()[i], &b.companies.records()[i]);
    }

    #[test]
    fn generated_references_are_consistent(seed in 0u64..200) {
        let mut config = GenerationConfig::synthetic_full();
        config.seed = seed;
        config.num_entities = 30;
        let data = generate(&config).unwrap();
        for security in data.securities.records() {
            let issuer = data.companies.get(security.issuer);
            prop_assert_eq!(issuer.source(), security.source());
            prop_assert!(issuer.securities.contains(&security.id));
        }
        for company in data.companies.records() {
            for &sid in &company.securities {
                prop_assert_eq!(data.securities.get(sid).issuer, company.id);
            }
        }
    }

    #[test]
    fn levenshtein_triangle_inequality(a in "[a-z]{0,12}", b in "[a-z]{0,12}", c in "[a-z]{0,12}") {
        let ab = levenshtein(&a, &b);
        let bc = levenshtein(&b, &c);
        let ac = levenshtein(&a, &c);
        prop_assert!(ac <= ab + bc);
    }

    #[test]
    fn levenshtein_identity_and_symmetry(a in "[a-z]{0,16}", b in "[a-z]{0,16}") {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
    }

    #[test]
    fn similarity_ranges(a in ".{0,24}", b in ".{0,24}") {
        for value in [
            normalized_levenshtein(&a, &b),
            jaro_winkler(&a, &b),
        ] {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&value), "{value}");
        }
        let ta = tokenize(&a);
        let tb = tokenize(&b);
        let j = jaccard(&ta, &tb);
        prop_assert!((0.0..=1.0).contains(&j));
    }

    #[test]
    fn tokenize_produces_lowercase_alphanumerics(text in ".{0,60}") {
        for token in tokenize(&text) {
            prop_assert!(!token.is_empty());
            prop_assert!(token.chars().all(|c| c.is_alphanumeric()));
            // Lowercasing is idempotent: some codepoints (math capitals)
            // report is_uppercase() but have no lowercase mapping, so the
            // invariant is fixpoint-ness, not absence of uppercase.
            prop_assert_eq!(token.to_lowercase(), token);
        }
    }

    #[test]
    fn encoders_respect_budget(name in "[A-Za-z0-9 ]{0,200}", budget in 8usize..256) {
        let record = gralmatch::records::CompanyRecord::new(
            gralmatch::records::RecordId(0),
            gralmatch::records::SourceId(0),
            name,
        );
        let plain = PlainEncoder::new(budget).encode(&record);
        let ditto = DittoEncoder::new(budget).encode(&record);
        prop_assert!(plain.len() <= budget / 2);
        prop_assert!(ditto.len() <= budget / 2);
    }

    #[test]
    fn csv_round_trips(rows in proptest::collection::vec(
        proptest::collection::vec("[^\u{0}]{0,20}", 1..5), 0..8)
    ) {
        // Normalize \r out (the line-based reader treats \r\n as \n) and
        // drop rows of exactly one empty field: CSV cannot distinguish them
        // from blank lines, which parsers skip.
        let rows: Vec<Vec<String>> = rows
            .into_iter()
            .map(|row| row.into_iter().map(|cell| cell.replace('\r', "")).collect::<Vec<String>>())
            .filter(|row: &Vec<String>| !(row.len() == 1 && row[0].is_empty()))
            .collect();
        let text = csv::to_csv_string(&rows);
        let parsed = csv::parse_csv(&text).unwrap();
        prop_assert_eq!(parsed, rows);
    }

    #[test]
    fn paraphrase_deterministic_and_keeps_length_sane(seed in 0u64..500) {
        let text = "Provider of cloud security solutions for enterprises.";
        let a = paraphrase(text, 0.6, &mut SplitRng::new(seed));
        let b = paraphrase(text, 0.6, &mut SplitRng::new(seed));
        prop_assert_eq!(&a, &b);
        prop_assert!(a.len() < text.len() * 3);
        prop_assert!(!a.is_empty());
    }
}
