//! Property tests: the `MatchEngine` is the legacy pipelines, verbatim.
//!
//! For seeded random datasets, `MatchEngine::bootstrap` + **any**
//! partition of the remaining records into replayed delta batches — batch
//! splits ∈ {1, 3, 8}, with delete/re-insert churn woven through — must
//! land on exactly the groups of the legacy one-shot
//! [`run_sharded`](gralmatch::core::run_sharded) oracle over the final
//! population. This is the contract that let the one-shot and sharded
//! entry points become thin wrappers over the engine: execution shape is
//! a strategy, never a semantics change. One case scores the engine side
//! through a matcher **loaded from disk** (`SavedModel` round-trip) while
//! the oracle scores through the in-memory original, so the equivalence
//! also gates model persistence and the provider's per-record incremental
//! encoding.

use gralmatch::blocking::Blocker;
use gralmatch::core::{
    run_sharded, CompanyDomain, CompiledScorerProvider, FixedScorerProvider, MatchEngine,
    MatchingDomain, OracleScorer, PipelineConfig, ScorerProvider, SecurityDomain, ShardPlan,
    UpsertBatch,
};
use gralmatch::datagen::{generate, FinancialDataset, GenerationConfig};
use gralmatch::lm::{CompiledDataset, CompiledScorer, ModelSpec, PairwiseMatcher, SavedModel};
use gralmatch::records::{DatasetSplit, Record, RecordId, SplitRatios};
use gralmatch::util::{FxHashMap, SplitRng};

const BATCH_SPLITS: [usize; 3] = [1, 3, 8];

fn dataset(seed: u64) -> FinancialDataset {
    let mut config = GenerationConfig::synthetic_full();
    config.num_entities = 90;
    config.seed = seed;
    generate(&config).unwrap()
}

fn company_groups(data: &FinancialDataset) -> FxHashMap<RecordId, u32> {
    data.companies
        .records()
        .iter()
        .map(|company| (company.id, company.entity.unwrap().0))
        .collect()
}

fn normalize(groups: &[Vec<RecordId>]) -> Vec<Vec<RecordId>> {
    let mut out: Vec<Vec<RecordId>> = groups
        .iter()
        .map(|group| {
            let mut g = group.clone();
            g.sort_unstable();
            g
        })
        .collect();
    out.sort();
    out
}

/// Drive one engine through an initial load + `k` churn-weaving delta
/// batches (batch `j` deletes a small slice of loaded records, batch
/// `j + 1` re-inserts it), ending at the full population. Returns the
/// engine's final groups — read back through the group-lookup index, so
/// the replay also exercises the incremental index maintenance.
fn replay_engine<'a, R>(
    records: &[R],
    strategies: Vec<Box<dyn Blocker<R> + 'a>>,
    provider: Box<dyn ScorerProvider<R> + 'a>,
    config: &PipelineConfig,
    plan: ShardPlan,
    k: usize,
    context: &str,
) -> Vec<Vec<RecordId>>
where
    R: Record + Clone + Sync,
{
    let initial = records.len() * 3 / 5;
    let (mut engine, _) = MatchEngine::bootstrap(
        plan,
        records[..initial].to_vec(),
        strategies,
        provider,
        config.clone(),
    )
    .unwrap_or_else(|e| panic!("{context}: initial load: {e:?}"));

    let remainder = &records[initial..];
    let chunk = remainder.len().div_ceil(k);
    let mut pending: Vec<R> = Vec::new();
    for (j, slice) in remainder.chunks(chunk.max(1)).enumerate() {
        let churn: Vec<R> = records[gralmatch::core::churn_window(initial, j, 4)]
            .iter()
            .filter(|r| engine.group_of(r.id()).is_some())
            .cloned()
            .collect();
        let batch = UpsertBatch {
            inserts: slice.iter().cloned().chain(pending.drain(..)).collect(),
            updates: Vec::new(),
            deletes: churn.iter().map(|r| r.id()).collect(),
        };
        engine
            .apply_batch(&batch)
            .unwrap_or_else(|e| panic!("{context}: batch {j}: {e:?}"));
        pending = churn;
    }
    if !pending.is_empty() {
        engine
            .apply_batch(&UpsertBatch::inserting(pending))
            .unwrap_or_else(|e| panic!("{context}: churn restore: {e:?}"));
    }
    assert_eq!(
        engine.stats().num_live,
        records.len(),
        "{context}: replay must end at the full population"
    );
    engine.groups()
}

#[test]
fn engine_replay_matches_legacy_sharded_oracle_on_securities() {
    for seed in [5u64, 23] {
        let data = dataset(seed);
        let securities = data.securities.records();
        let group_of = company_groups(&data);
        let domain = SecurityDomain::new(securities, &group_of);
        let gt = domain.ground_truth().clone();
        let scorer = OracleScorer::new(&gt);
        let config = PipelineConfig::new(25, 5);
        let plan = ShardPlan::new(4);
        let one_shot = run_sharded(&domain, &scorer, &config, &plan).unwrap();

        for k in BATCH_SPLITS {
            let groups = replay_engine(
                securities,
                domain.blocking_strategies(),
                Box::new(FixedScorerProvider(&scorer)),
                &config,
                plan,
                k,
                &format!("seed {seed}, {k} batches"),
            );
            assert_eq!(
                normalize(&groups),
                normalize(&one_shot.outcome.groups),
                "seed {seed}, {k} batches: engine diverged from the legacy oracle"
            );
        }
    }
}

#[test]
fn engine_replay_matches_legacy_sharded_oracle_on_companies() {
    for seed in [17u64] {
        let data = dataset(seed);
        let companies = data.companies.records();
        let domain = CompanyDomain::new(companies, data.securities.records());
        let gt = domain.ground_truth().clone();
        let scorer = OracleScorer::new(&gt);
        let config = PipelineConfig::new(25, 5).with_pre_cleanup(50);
        let plan = ShardPlan::new(4);
        let one_shot = run_sharded(&domain, &scorer, &config, &plan).unwrap();

        for k in BATCH_SPLITS {
            let groups = replay_engine(
                companies,
                domain.blocking_strategies(),
                Box::new(FixedScorerProvider(&scorer)),
                &config,
                plan,
                k,
                &format!("seed {seed}, {k} batches"),
            );
            assert_eq!(
                normalize(&groups),
                normalize(&one_shot.outcome.groups),
                "seed {seed}, {k} batches: engine diverged from the legacy oracle"
            );
        }
    }
}

#[test]
fn engine_with_disk_loaded_matcher_matches_oracle_scoring_the_original() {
    // Train a real matcher, persist it, and replay the engine **through
    // the reloaded model** while the legacy oracle scores through the
    // in-memory original over batch-encoded records. Equality means the
    // SavedModel round-trip is score-exact and the provider's per-record
    // incremental encode+compile equals the up-front dataset compile.
    let seed = 41u64;
    let data = dataset(seed);
    let securities = data.securities.records();
    let gt = data.securities.ground_truth();
    let spec = ModelSpec::DistilBert128All;
    let encoded = spec.encode_records(securities);
    let split = DatasetSplit::new(&gt, SplitRatios::default(), &mut SplitRng::new(seed));
    let (matcher, _) =
        gralmatch::lm::train(securities, &encoded, &gt, &split, &spec.train_config()).unwrap();

    let dir = std::env::temp_dir().join("gralmatch-engine-equivalence");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("securities-{seed}.json"));
    SavedModel::new(spec, matcher.clone()).save(&path).unwrap();
    let loaded = SavedModel::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded.spec, spec);

    let group_of = company_groups(&data);
    let domain = SecurityDomain::new(securities, &group_of);
    let config = PipelineConfig::new(25, 5);
    let plan = ShardPlan::new(3);

    // Legacy oracle: the original matcher over the one-shot compile.
    let compiled = CompiledDataset::compile(&encoded, &matcher.feature_config());
    let scorer = CompiledScorer::new(&matcher, &compiled);
    let one_shot = run_sharded(&domain, &scorer, &config, &plan).unwrap();

    // Engine: the reloaded matcher, encoding records as batches arrive.
    let provider = CompiledScorerProvider::new(loaded.matcher, loaded.spec.encoder());
    let groups = replay_engine(
        securities,
        domain.blocking_strategies(),
        Box::new(provider),
        &config,
        plan,
        3,
        &format!("seed {seed}, disk-loaded matcher"),
    );
    assert_eq!(
        normalize(&groups),
        normalize(&one_shot.outcome.groups),
        "seed {seed}: disk-loaded engine diverged from the in-memory oracle"
    );
}
