//! Dataset interchange: generated benchmarks survive a CSV round trip with
//! full fidelity, including ground truth and cross-references.

use gralmatch::datagen::{generate, GenerationConfig};
use gralmatch::records::csv_io::{
    companies_from_csv, companies_to_csv, securities_from_csv, securities_to_csv,
};
use gralmatch::records::Record;

#[test]
fn generated_benchmark_round_trips_through_csv() {
    let mut config = GenerationConfig::synthetic_full();
    config.num_entities = 200;
    let data = generate(&config).unwrap();

    let companies_csv = companies_to_csv(&data.companies);
    let securities_csv = securities_to_csv(&data.securities);

    let companies = companies_from_csv(&companies_csv).unwrap();
    let securities = securities_from_csv(&securities_csv).unwrap();

    assert_eq!(companies.records(), data.companies.records());
    assert_eq!(securities.records(), data.securities.records());

    // Ground truth is intact after the round trip.
    let gt_before = data.companies.ground_truth();
    let gt_after = companies.ground_truth();
    assert_eq!(gt_before.num_entities(), gt_after.num_entities());
    assert_eq!(gt_before.num_true_pairs(), gt_after.num_true_pairs());

    // Cross-references still resolve.
    for security in securities.records() {
        let issuer = companies.get(security.issuer);
        assert_eq!(issuer.source(), security.source());
        assert!(issuer.securities.contains(&security.id));
    }
}

#[test]
fn csv_headers_stable() {
    let mut config = GenerationConfig::synthetic_full();
    config.num_entities = 5;
    let data = generate(&config).unwrap();
    let companies_csv = companies_to_csv(&data.companies);
    let securities_csv = securities_to_csv(&data.securities);
    assert!(companies_csv.starts_with(
        "id,source,entity,name,city,region,country_code,short_description,id_codes,securities"
    ));
    assert!(securities_csv.starts_with("id,source,entity,name,type,listings,id_codes,issuer"));
}

#[test]
fn csv_sizes_are_proportional() {
    let mut config = GenerationConfig::synthetic_full();
    config.num_entities = 50;
    let data = generate(&config).unwrap();
    let csv = companies_to_csv(&data.companies);
    let lines = csv.lines().count();
    assert_eq!(
        lines,
        data.companies.len() + 1,
        "one row per record + header"
    );
}
