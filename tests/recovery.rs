//! Crash-recovery property tests for the binary snapshot + WAL path.
//!
//! A durable [`MatchEngine`] is "crashed" (dropped without a final
//! checkpoint) after every prefix of a seeded delete-bearing churn batch
//! sequence, then recovered with
//! [`recover_engine`](gralmatch::core::recover_engine). The oracle is a
//! plain in-memory engine replaying the same sequence: for every crash
//! point the recovered engine must reproduce the oracle's normalized
//! groups and epoch exactly — whatever mix of checkpointed snapshot and
//! replayed WAL frames the crash left behind — and must keep accepting
//! batches afterwards. Companies and securities both run, so the
//! property holds across record codecs, not just one domain.
//!
//! Crash *inside* a batch is covered too: a frame appended to the WAL
//! whose apply never happened (the write-ahead ordering) must be
//! replayed on recovery, and a crash *inside* a checkpoint (snapshot
//! written, WAL not yet truncated) must skip the already-incorporated
//! frames by seq. Damage cases close the loop: a flipped snapshot
//! byte is a refused [`Corrupt`](gralmatch::util::Error::Corrupt) load,
//! a truncated WAL tail is dropped cleanly with the torn frame reported.

use gralmatch::blocking::{Blocker, SecurityIdOverlap, TokenOverlap, TokenOverlapConfig};
use gralmatch::core::{
    churn_window, persist, recover_engine, scorer_provider, CheckpointPolicy, MatchEngine,
    PipelineConfig, ShardPlan, UpsertBatch, WalWriter,
};
use gralmatch::datagen::{generate, FinancialDataset, GenerationConfig};
use gralmatch::records::{CompanyRecord, Record, RecordId, SecurityRecord};
use gralmatch::util::{BinRecord, Error};
use std::path::{Path, PathBuf};

fn dataset(seed: u64) -> FinancialDataset {
    let mut config = GenerationConfig::synthetic_full();
    config.num_entities = 40;
    config.seed = seed;
    generate(&config).unwrap()
}

/// Order-insensitive normal form: sorted members, groups sorted.
fn normalize(groups: &[Vec<RecordId>]) -> Vec<Vec<RecordId>> {
    let mut out: Vec<Vec<RecordId>> = groups
        .iter()
        .map(|group| {
            let mut g = group.clone();
            g.sort_unstable();
            g
        })
        .collect();
    out.sort();
    out
}

/// Seeded churn sequence: inserts over the held-out remainder with
/// delete/re-insert windows woven through, so recovery must reproduce
/// retractions, not just appends.
fn batch_sequence<R: Record + Clone>(
    records: &[R],
    initial: usize,
    k: usize,
) -> Vec<UpsertBatch<R>> {
    let remainder = &records[initial..];
    let chunk = remainder.len().div_ceil(k).max(1);
    let mut batches = Vec::new();
    let mut pending: Vec<R> = Vec::new();
    for (j, slice) in remainder.chunks(chunk).enumerate() {
        let churn: Vec<R> = records[churn_window(initial, j, 4)]
            .iter()
            .filter(|record| !pending.iter().any(|p| p.id() == record.id()))
            .cloned()
            .collect();
        batches.push(UpsertBatch {
            inserts: slice.iter().cloned().chain(pending.drain(..)).collect(),
            updates: Vec::new(),
            deletes: churn.iter().map(|record| record.id()).collect(),
        });
        pending = churn;
    }
    if !pending.is_empty() {
        batches.push(UpsertBatch::inserting(pending));
    }
    batches
}

fn security_lineup<'a>() -> Vec<Box<dyn Blocker<SecurityRecord> + 'a>> {
    vec![
        Box::new(SecurityIdOverlap),
        Box::new(TokenOverlap::new(TokenOverlapConfig::default())),
    ]
}

fn company_lineup<'a>() -> Vec<Box<dyn Blocker<CompanyRecord> + 'a>> {
    vec![Box::new(TokenOverlap::new(TokenOverlapConfig::default()))]
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gralmatch-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create recovery scratch dir");
    dir
}

/// Tight policy so the crash points cover every recovery shape: fresh
/// checkpoint with an empty log, snapshot + partial log, and a log right
/// at the threshold boundary.
fn tight_policy() -> CheckpointPolicy {
    CheckpointPolicy {
        max_wal_batches: 2,
        max_wal_bytes: u64::MAX,
        fsync: false,
    }
}

/// The property: crash after `j` applied batches, recover, and the engine
/// must equal the oracle prefix — for every `j`, in every domain.
fn crash_at_every_prefix<R>(records: &[R], lineup: fn() -> Vec<Box<dyn Blocker<R>>>, tag: &str)
where
    R: Record + Clone + Sync + BinRecord + 'static,
{
    let config = PipelineConfig::new(25, 5);
    let plan = ShardPlan::new(2);
    let initial = records.len() * 3 / 5;
    let batches = batch_sequence(records, initial, 5);
    assert!(
        batches.iter().any(|batch| !batch.deletes.is_empty()),
        "the sequence must bear deletes to exercise retraction"
    );

    // Oracle: normalized groups after every prefix, in memory.
    let mut oracle = Vec::new();
    let (mut engine, _) = MatchEngine::bootstrap(
        plan,
        records[..initial].to_vec(),
        lineup(),
        scorer_provider::<R>(None),
        config.clone(),
    )
    .expect("oracle bootstrap");
    oracle.push(normalize(&engine.groups()));
    for batch in &batches {
        engine.apply_batch(batch).expect("oracle batch applies");
        oracle.push(normalize(&engine.groups()));
    }

    let dir = scratch_dir(tag);
    for j in 0..=batches.len() {
        let snapshot_path = dir.join(format!("crash-{j}.bin"));
        {
            let (mut engine, _) = MatchEngine::bootstrap(
                plan,
                records[..initial].to_vec(),
                lineup(),
                scorer_provider::<R>(None),
                config.clone(),
            )
            .expect("durable bootstrap");
            engine
                .enable_durability(&snapshot_path, tight_policy())
                .expect("enable durability");
            for batch in &batches[..j] {
                engine.apply_batch(batch).expect("durable batch applies");
            }
            // Crash: drop without a final checkpoint.
        }
        let (mut recovered, report) = recover_engine(
            &snapshot_path,
            lineup(),
            scorer_provider::<R>(None),
            config.clone(),
            tight_policy(),
        )
        .expect("recovery succeeds");
        assert!(!report.truncated_tail, "clean crash left no torn frame");
        assert_eq!(report.batches_skipped, 0, "clean crash left no stale frame");
        assert_eq!(
            report.snapshot_epoch as usize + report.batches_replayed,
            j + 1,
            "crash point {j}: snapshot epoch + replayed frames must land on the crash epoch"
        );
        assert_eq!(
            recovered.snapshot().epoch(),
            j as u64 + 1,
            "crash point {j}: recovered epoch"
        );
        assert_eq!(
            normalize(&recovered.groups()),
            oracle[j],
            "crash point {j}: recovered groups diverged from the oracle prefix"
        );
        // Recovery re-arms durability: the engine keeps accepting batches
        // and ends equal to the full oracle run.
        assert!(recovered.is_durable());
        for batch in &batches[j..] {
            recovered
                .apply_batch(batch)
                .expect("post-recovery batch applies");
        }
        assert_eq!(
            normalize(&recovered.groups()),
            oracle[batches.len()],
            "crash point {j}: post-recovery catch-up diverged"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn securities_recover_exactly_at_every_crash_point() {
    let data = dataset(31);
    crash_at_every_prefix(data.securities.records(), security_lineup, "sec");
}

#[test]
fn companies_recover_exactly_at_every_crash_point() {
    let data = dataset(47);
    crash_at_every_prefix(data.companies.records(), company_lineup, "comp");
}

/// Normalized oracle groups per batch prefix.
type PrefixOracle = Vec<Vec<Vec<RecordId>>>;

/// Prepare a durable securities engine with `applied` batches applied,
/// then "crash" it. Returns the snapshot path, the full batch sequence,
/// and the oracle groups per prefix.
fn crashed_securities(
    dir: &Path,
    applied: usize,
) -> (PathBuf, Vec<UpsertBatch<SecurityRecord>>, PrefixOracle) {
    let data = dataset(59);
    let records = data.securities.records();
    let config = PipelineConfig::new(25, 5);
    let initial = records.len() * 3 / 5;
    let batches = batch_sequence(records, initial, 4);
    assert!(applied < batches.len());

    let mut oracle = Vec::new();
    let (mut engine, _) = MatchEngine::bootstrap(
        ShardPlan::new(2),
        records[..initial].to_vec(),
        security_lineup(),
        scorer_provider::<SecurityRecord>(None),
        config.clone(),
    )
    .expect("oracle bootstrap");
    oracle.push(normalize(&engine.groups()));
    for batch in &batches {
        engine.apply_batch(batch).expect("oracle batch applies");
        oracle.push(normalize(&engine.groups()));
    }

    let snapshot_path = dir.join("state.bin");
    let (mut engine, _) = MatchEngine::bootstrap(
        ShardPlan::new(2),
        records[..initial].to_vec(),
        security_lineup(),
        scorer_provider::<SecurityRecord>(None),
        config,
    )
    .expect("durable bootstrap");
    // Generous policy: every applied batch stays in the WAL.
    let policy = CheckpointPolicy {
        max_wal_batches: usize::MAX,
        max_wal_bytes: u64::MAX,
        fsync: false,
    };
    engine
        .enable_durability(&snapshot_path, policy)
        .expect("enable durability");
    for batch in &batches[..applied] {
        engine.apply_batch(batch).expect("durable batch applies");
    }
    (snapshot_path, batches, oracle)
}

fn recover_securities(
    snapshot_path: &Path,
) -> gralmatch::util::Result<(
    MatchEngine<'static, SecurityRecord>,
    persist::RecoveryReport,
)> {
    recover_engine(
        snapshot_path,
        security_lineup(),
        scorer_provider::<SecurityRecord>(None),
        PipelineConfig::new(25, 5),
        CheckpointPolicy::default(),
    )
}

/// The write-ahead ordering: a batch whose frame reached the log but
/// whose apply never ran (crash between append and publish) is part of
/// the durable history and must be replayed.
#[test]
fn wal_frame_without_apply_is_replayed() {
    let dir = scratch_dir("midbatch");
    let (snapshot_path, batches, oracle) = crashed_securities(&dir, 2);
    // Simulate the torn apply: frame 3 lands in the WAL, the in-memory
    // apply never happens.
    let mut wal = WalWriter::open(&persist::wal_path(&snapshot_path), false).expect("reopen WAL");
    assert_eq!(wal.frames(), 2, "two applied batches sit in the log");
    wal.append(wal.last_seq() + 1, &persist::encode_batch(&batches[2]))
        .expect("append unapplied frame");
    drop(wal);

    let (recovered, report) = recover_securities(&snapshot_path).expect("recovery succeeds");
    assert_eq!(report.batches_replayed, 3);
    assert!(!report.truncated_tail);
    assert_eq!(
        normalize(&recovered.groups()),
        oracle[3],
        "the logged-but-unapplied batch must be part of the recovered state"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A crash *between* a checkpoint's snapshot write and its WAL truncate
/// leaves a snapshot that already incorporates every logged frame.
/// Recovery must skip those frames by seq — replaying one would
/// double-apply its inserts/deletes, fail validation, and leave the
/// store unrecoverable after a routine auto-checkpoint crash.
#[test]
fn interrupted_checkpoint_never_replays_incorporated_frames() {
    let dir = scratch_dir("ckpt");
    let (snapshot_path, batches, oracle) = crashed_securities(&dir, 3);
    // Simulate the interrupted checkpoint: rewrite the snapshot at the
    // fully-applied state (exactly what `checkpoint` writes) and leave
    // the three logged frames in place.
    {
        let (engine, report) = recover_securities(&snapshot_path).expect("staging recovery");
        assert_eq!(report.batches_replayed, 3);
        let bytes = persist::encode_state(
            engine.state(),
            engine.snapshot().epoch(),
            engine.stats().batches_applied,
        );
        persist::write_atomic(&snapshot_path, &bytes, false).expect("write snapshot");
    }

    let (mut recovered, report) = recover_securities(&snapshot_path).expect("recovery succeeds");
    assert_eq!(
        report.batches_skipped, 3,
        "the snapshot already incorporates every logged frame"
    );
    assert_eq!(report.batches_replayed, 0);
    assert!(!report.truncated_tail);
    assert_eq!(normalize(&recovered.groups()), oracle[3]);
    // The re-armed engine keeps accepting batches past the stale frames.
    for batch in &batches[3..] {
        recovered
            .apply_batch(batch)
            .expect("post-recovery batch applies");
    }
    assert_eq!(normalize(&recovered.groups()), oracle[batches.len()]);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A truncated final frame (torn write at crash) is dropped cleanly: the
/// complete prefix replays, and the report flags the torn tail.
#[test]
fn torn_wal_tail_is_truncated_not_fatal() {
    let dir = scratch_dir("torn");
    let (snapshot_path, _, oracle) = crashed_securities(&dir, 3);
    let wal = persist::wal_path(&snapshot_path);
    let len = std::fs::metadata(&wal).expect("WAL exists").len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&wal)
        .expect("open WAL");
    file.set_len(len - 3).expect("tear the final frame");
    drop(file);

    let (recovered, report) = recover_securities(&snapshot_path).expect("recovery succeeds");
    assert!(report.truncated_tail, "the torn frame must be reported");
    assert_eq!(report.batches_replayed, 2, "only complete frames replay");
    assert_eq!(normalize(&recovered.groups()), oracle[2]);
    // The torn bytes are gone from the re-armed log: a fresh recovery
    // sees a clean two-frame WAL.
    let (_, report) = recover_securities(&snapshot_path).expect("second recovery succeeds");
    assert!(!report.truncated_tail);
    assert_eq!(report.batches_replayed, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A damaged snapshot must refuse to load — [`Error::Corrupt`], not a
/// panic and not a silently wrong engine.
#[test]
fn flipped_snapshot_byte_is_refused_as_corrupt() {
    let dir = scratch_dir("corrupt");
    let (snapshot_path, _, _) = crashed_securities(&dir, 1);
    let mut bytes = std::fs::read(&snapshot_path).expect("read snapshot");
    let last = bytes.len() - 9; // inside the final section's payload
    bytes[last] ^= 0x01;
    std::fs::write(&snapshot_path, &bytes).expect("write damaged snapshot");

    let err = match recover_securities(&snapshot_path) {
        Ok(_) => panic!("damaged snapshot must not load"),
        Err(err) => err,
    };
    assert!(
        matches!(err, Error::Corrupt(_)),
        "expected Error::Corrupt, got {err:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
