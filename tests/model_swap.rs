//! Hot model swap on a live tenant: a rejected swap must leave the old
//! scorer serving **bit-identically**, and an accepted swap must change
//! scoring only for *subsequent* batches — standing groups are never
//! re-scored, other tenants' epochs never move.

use gralmatch::blocking::{Blocker, SecurityIdOverlap, TokenOverlap, TokenOverlapConfig};
use gralmatch::core::{
    model_fingerprint, scorer_provider, EngineHost, EngineTenant, HostError, MatchEngine,
    PipelineConfig, ShardPlan, TenantEngine, UpsertBatch,
};
use gralmatch::datagen::{generate, FinancialDataset, GenerationConfig};
use gralmatch::lm::{FeatureConfig, LogisticModel, ModelSpec, SavedModel, TrainedMatcher};
use gralmatch::records::{CompanyRecord, RecordId, RecordPair, SecurityRecord};
use gralmatch::util::ToJson;

fn dataset() -> FinancialDataset {
    let mut config = GenerationConfig::synthetic_full();
    config.num_entities = 50;
    generate(&config).unwrap()
}

fn security_lineup() -> Vec<Box<dyn Blocker<SecurityRecord>>> {
    vec![
        Box::new(SecurityIdOverlap),
        Box::new(TokenOverlap::new(TokenOverlapConfig::default())),
    ]
}

fn security_tenant(records: Vec<SecurityRecord>) -> EngineTenant<SecurityRecord> {
    let (engine, _) = MatchEngine::bootstrap(
        ShardPlan::new(2),
        records,
        security_lineup(),
        scorer_provider(None),
        PipelineConfig::new(25, 5),
    )
    .unwrap();
    EngineTenant::new("securities", engine, model_fingerprint("securities", None))
}

fn company_tenant(records: Vec<CompanyRecord>) -> EngineTenant<CompanyRecord> {
    let (engine, _) = MatchEngine::bootstrap(
        ShardPlan::new(2),
        records,
        vec![Box::new(TokenOverlap::new(TokenOverlapConfig::default()))],
        scorer_provider(None),
        PipelineConfig::new(25, 5),
    )
    .unwrap();
    EngineTenant::new("companies", engine, model_fingerprint("companies", None))
}

/// An untrained but loadable model: scores differ from the heuristic's
/// token-overlap scores for essentially every pair.
fn test_model() -> SavedModel {
    let matcher = TrainedMatcher::new(
        LogisticModel::new(FeatureConfig::default().dim()),
        FeatureConfig::default(),
    );
    SavedModel::new(ModelSpec::Ditto128, matcher)
}

/// A spread of live pairs to probe the scorer with.
fn sample_pairs(count: u32) -> Vec<RecordPair> {
    (0..count)
        .map(|i| RecordPair::new(RecordId(2 * i), RecordId(2 * i + 1)))
        .collect()
}

/// Bit-exact scores — `f32` equality would paper over regime blends.
fn score_bits(tenant: &dyn TenantEngine, pairs: &[RecordPair]) -> Vec<u32> {
    pairs
        .iter()
        .map(|pair| tenant.score_pair(*pair).to_bits())
        .collect()
}

fn normalize(groups: Vec<Vec<RecordId>>) -> Vec<Vec<RecordId>> {
    let mut out: Vec<Vec<RecordId>> = groups
        .into_iter()
        .map(|mut group| {
            group.sort_unstable();
            group
        })
        .collect();
    out.sort();
    out
}

#[test]
fn rejected_swap_leaves_the_old_scorer_serving_bit_identically() {
    let data = dataset();
    let mut host = EngineHost::new();
    host.add_tenant(
        "sec",
        Box::new(security_tenant(data.securities.records().to_vec())),
    )
    .unwrap();
    host.add_tenant(
        "comp",
        Box::new(company_tenant(data.companies.records().to_vec())),
    )
    .unwrap();

    let pairs = sample_pairs(20);
    let before = score_bits(host.tenant("sec").unwrap(), &pairs);
    let heuristic = model_fingerprint("securities", None);
    let model = test_model();

    // A sidecar recorded for another domain is a fingerprint mismatch.
    let wrong_domain = model_fingerprint("companies", Some(&model));
    let err = host.swap_model("sec", model.clone(), Some(&wrong_domain));
    assert!(matches!(err, Err(HostError::ModelRejected(_))), "{err:?}");

    // So is a corrupted digest.
    let mut corrupted = model_fingerprint("securities", Some(&model));
    corrupted.push('0');
    let err = host.swap_model("sec", model, Some(&corrupted));
    assert!(matches!(err, Err(HostError::ModelRejected(_))), "{err:?}");

    // The old scorer keeps serving: same fingerprint, same epoch, and
    // every probed pair scores to the exact same bits.
    let sec = host.tenant("sec").unwrap();
    assert_eq!(sec.fingerprint(), heuristic);
    assert_eq!(sec.snapshot().epoch(), 1);
    assert_eq!(score_bits(sec, &pairs), before);
    // And the other tenant never noticed.
    assert_eq!(host.tenant("comp").unwrap().snapshot().epoch(), 1);
}

#[test]
fn accepted_swap_changes_scoring_only_for_subsequent_batches() {
    let data = dataset();
    let records = data.securities.records().to_vec();
    let initial = records.len() - 6;

    // Twin tenants over the same bootstrap; `swapped` gets the model,
    // `control` keeps the heuristic.
    let mut host = EngineHost::new();
    host.add_tenant(
        "swapped",
        Box::new(security_tenant(records[..initial].to_vec())),
    )
    .unwrap();
    host.add_tenant(
        "control",
        Box::new(security_tenant(records[..initial].to_vec())),
    )
    .unwrap();

    let pairs = sample_pairs(20);
    let before = score_bits(host.tenant("swapped").unwrap(), &pairs);
    assert_eq!(
        score_bits(host.tenant("control").unwrap(), &pairs),
        before,
        "twins must start from identical scoring"
    );
    let standing = normalize(host.tenant("control").unwrap().snapshot().groups());

    let model = test_model();
    let fingerprint = model_fingerprint("securities", Some(&model));
    let adopted = host
        .swap_model("swapped", model, Some(&fingerprint))
        .expect("matching sidecar is accepted");
    assert_eq!(adopted, fingerprint);

    // The swap republished (epoch bump) but re-scored nothing: standing
    // groups are exactly the control's.
    let swapped = host.tenant("swapped").unwrap();
    assert_eq!(swapped.snapshot().epoch(), 2);
    assert_eq!(normalize(swapped.snapshot().groups()), standing);
    assert_eq!(host.tenant("control").unwrap().snapshot().epoch(), 1);

    // Future scoring goes through the new model — and only on the
    // swapped tenant.
    let after = score_bits(swapped, &pairs);
    assert_ne!(after, before, "the new model must change pair scores");
    assert_eq!(score_bits(host.tenant("control").unwrap(), &pairs), before);

    // Subsequent batches apply under each tenant's own regime.
    let growth = UpsertBatch::inserting(records[initial..].to_vec()).to_json();
    for name in ["swapped", "control"] {
        let tenant = host.tenant_mut(name).unwrap();
        let (outcome, _) = tenant
            .apply_batch_json(&growth)
            .expect("growth batch applies");
        assert_eq!(outcome.inserted, records.len() - initial);
    }
    assert_eq!(host.tenant("swapped").unwrap().snapshot().epoch(), 3);
    assert_eq!(host.tenant("control").unwrap().snapshot().epoch(), 2);
    assert_eq!(host.tenant("swapped").unwrap().fingerprint(), fingerprint);
}
