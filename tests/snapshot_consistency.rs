//! Property test: concurrent readers never observe a half-applied batch.
//!
//! A writer drives a `MatchEngine` through a seeded sequence of
//! delete-bearing churn batches while reader threads hammer the published
//! [`GroupSnapshot`](gralmatch::core::GroupSnapshot) through their own
//! [`PublishedReader`]s. The oracle is a second engine replaying the
//! *same* batch sequence up front, recording the exact normalized groups
//! at every epoch. Every snapshot a racing reader loads must then:
//!
//! * carry a monotonically non-decreasing epoch,
//! * match the oracle's groups for that epoch **exactly** — i.e. it is
//!   the pre-batch state or the post-batch state of some batch, never a
//!   blend, and
//! * be internally consistent: every member of every group maps back to
//!   that group via `group_of`, and the group's root answers `members`
//!   with the same member list.

use gralmatch::blocking::{Blocker, SecurityIdOverlap, TokenOverlap, TokenOverlapConfig};
use gralmatch::core::{
    churn_window, model_fingerprint, scorer_provider, EngineHost, EngineTenant,
    FixedScorerProvider, MatchEngine, MatchingDomain, OracleScorer, PipelineConfig, SecurityDomain,
    ShardPlan, UpsertBatch,
};
use gralmatch::datagen::{generate, FinancialDataset, GenerationConfig};
use gralmatch::records::{CompanyRecord, Record, RecordId, SecurityRecord};
use gralmatch::util::{FxHashMap, PublishedReader};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const READERS: usize = 3;

fn dataset(seed: u64) -> FinancialDataset {
    let mut config = GenerationConfig::synthetic_full();
    config.num_entities = 60;
    config.seed = seed;
    generate(&config).unwrap()
}

fn company_groups(data: &FinancialDataset) -> FxHashMap<RecordId, u32> {
    data.companies
        .records()
        .iter()
        .map(|company| (company.id, company.entity.unwrap().0))
        .collect()
}

/// Order-insensitive normal form: sorted members, groups sorted.
fn normalize(groups: &[Vec<RecordId>]) -> Vec<Vec<RecordId>> {
    let mut out: Vec<Vec<RecordId>> = groups
        .iter()
        .map(|group| {
            let mut g = group.clone();
            g.sort_unstable();
            g
        })
        .collect();
    out.sort();
    out
}

/// The deterministic batch sequence both engines replay: inserts over the
/// held-out remainder with delete/re-insert churn woven through (batch
/// `j` deletes a small window of loaded records, batch `j + 1` restores
/// it), ending back at the full population.
fn batch_sequence(
    records: &[SecurityRecord],
    initial: usize,
    k: usize,
) -> Vec<UpsertBatch<SecurityRecord>> {
    let remainder = &records[initial..];
    let chunk = remainder.len().div_ceil(k).max(1);
    let mut batches = Vec::new();
    let mut pending: Vec<SecurityRecord> = Vec::new();
    for (j, slice) in remainder.chunks(chunk).enumerate() {
        let churn: Vec<SecurityRecord> = records[churn_window(initial, j, 4)]
            .iter()
            .filter(|record| !pending.iter().any(|p| p.id == record.id))
            .cloned()
            .collect();
        batches.push(UpsertBatch {
            inserts: slice.iter().cloned().chain(pending.drain(..)).collect(),
            updates: Vec::new(),
            deletes: churn.iter().map(|record| record.id()).collect(),
        });
        pending = churn;
    }
    if !pending.is_empty() {
        batches.push(UpsertBatch::inserting(pending));
    }
    batches
}

/// One reader's pass over a loaded snapshot: exact oracle match plus
/// internal `group_of` ↔ `members` agreement.
fn check_snapshot(
    snapshot: &gralmatch::core::GroupSnapshot,
    oracle: &FxHashMap<u64, Vec<Vec<RecordId>>>,
) {
    let epoch = snapshot.epoch();
    let expected = oracle
        .get(&epoch)
        .unwrap_or_else(|| panic!("reader loaded unknown epoch {epoch}"));
    let groups = normalize(&snapshot.groups());
    assert_eq!(
        &groups, expected,
        "epoch {epoch} snapshot diverged from the oracle replay"
    );
    for group in &groups {
        // Roots are the smallest member of their group.
        let root = *group.first().expect("snapshot groups are non-empty");
        let mut members = snapshot
            .group_members(root)
            .unwrap_or_else(|| panic!("epoch {epoch}: group {root:?} lost its member list"))
            .to_vec();
        members.sort_unstable();
        assert_eq!(&members, group, "epoch {epoch}: members({root:?}) disagree");
        for &id in group {
            assert_eq!(
                snapshot.group_of(id),
                Some(root),
                "epoch {epoch}: member {id:?} does not map back to its group"
            );
        }
    }
}

#[test]
fn racing_readers_observe_only_oracle_epochs() {
    let data = dataset(77);
    let securities = data.securities.records();
    let group_of = company_groups(&data);
    let domain = SecurityDomain::new(securities, &group_of);
    let gt = domain.ground_truth().clone();
    let scorer = OracleScorer::new(&gt);
    let config = PipelineConfig::new(25, 5);
    let plan = ShardPlan::new(2);
    let initial = securities.len() * 3 / 5;
    let batches = batch_sequence(securities, initial, 6);
    assert!(
        batches.iter().any(|batch| !batch.deletes.is_empty()),
        "the sequence must bear deletes to exercise retraction"
    );

    // Oracle replay: the exact groups at every epoch.
    let mut oracle: FxHashMap<u64, Vec<Vec<RecordId>>> = FxHashMap::default();
    {
        let (mut engine, outcome) = MatchEngine::bootstrap(
            plan,
            securities[..initial].to_vec(),
            domain.blocking_strategies(),
            Box::new(FixedScorerProvider(&scorer)),
            config.clone(),
        )
        .expect("oracle bootstrap");
        oracle.insert(outcome.epoch, normalize(&engine.groups()));
        for batch in &batches {
            let outcome = engine.apply_batch(batch).expect("oracle batch applies");
            oracle.insert(outcome.epoch, normalize(&engine.groups()));
        }
    }
    let final_epoch = batches.len() as u64 + 1;
    assert!(oracle.contains_key(&1) && oracle.contains_key(&final_epoch));

    // Live run: readers race the writer through the same sequence.
    let (mut engine, _) = MatchEngine::bootstrap(
        plan,
        securities[..initial].to_vec(),
        domain.blocking_strategies(),
        Box::new(FixedScorerProvider(&scorer)),
        config.clone(),
    )
    .expect("live bootstrap");
    let source = engine.snapshot_source();
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..READERS)
            .map(|_| {
                let source = source.clone();
                let (stop, oracle) = (&stop, &oracle);
                scope.spawn(move || {
                    let mut reader = PublishedReader::new(source);
                    let mut last_epoch = 0;
                    let mut checks: u64 = 0;
                    loop {
                        // Read the stop flag *before* loading: seeing it
                        // set guarantees the final publish is visible, so
                        // the loop always ends on the final epoch.
                        let done = stop.load(Ordering::Acquire);
                        let snapshot = reader.current();
                        assert!(
                            snapshot.epoch() >= last_epoch,
                            "epoch regressed: {last_epoch} -> {}",
                            snapshot.epoch()
                        );
                        last_epoch = snapshot.epoch();
                        check_snapshot(snapshot, oracle);
                        checks += 1;
                        if done && last_epoch == final_epoch {
                            return checks;
                        }
                    }
                })
            })
            .collect();

        for batch in &batches {
            engine.apply_batch(batch).expect("live batch applies");
        }
        stop.store(true, Ordering::Release);

        for handle in handles {
            let checks = handle.join().expect("reader panicked");
            assert!(checks > 0, "reader never checked a snapshot");
        }
    });
    assert_eq!(engine.snapshot().epoch(), final_epoch);
    assert_eq!(engine.stats().num_live, securities.len());
}

fn security_lineup() -> Vec<Box<dyn Blocker<SecurityRecord>>> {
    vec![
        Box::new(SecurityIdOverlap),
        Box::new(TokenOverlap::new(TokenOverlapConfig::default())),
    ]
}

/// Two tenants in one [`EngineHost`]: churn on one must never move the
/// other's epoch or replace its published snapshot. The churning tenant's
/// racing readers are still held to the full single-tenant oracle — tenant
/// isolation must not come at the cost of per-tenant consistency.
#[test]
fn two_tenant_host_isolates_epochs_between_tenants() {
    let data = dataset(91);
    let securities = data.securities.records();
    let companies = data.companies.records();
    let config = PipelineConfig::new(25, 5);
    let plan = ShardPlan::new(2);
    let initial = securities.len() * 3 / 5;
    let batches = batch_sequence(securities, initial, 6);
    assert!(batches.iter().any(|batch| !batch.deletes.is_empty()));

    // Oracle: a twin securities engine replaying the same sequence under
    // the same heuristic scorer the hosted tenant will use.
    let mut oracle: FxHashMap<u64, Vec<Vec<RecordId>>> = FxHashMap::default();
    {
        let (mut engine, outcome) = MatchEngine::bootstrap(
            plan,
            securities[..initial].to_vec(),
            security_lineup(),
            scorer_provider(None),
            config.clone(),
        )
        .expect("oracle bootstrap");
        oracle.insert(outcome.epoch, normalize(&engine.groups()));
        for batch in &batches {
            let outcome = engine.apply_batch(batch).expect("oracle batch applies");
            oracle.insert(outcome.epoch, normalize(&engine.groups()));
        }
    }
    let final_epoch = batches.len() as u64 + 1;

    // The host: a frozen companies tenant beside the churning one.
    let mut host = EngineHost::new();
    let (comp_engine, _) = MatchEngine::bootstrap(
        plan,
        companies.to_vec(),
        vec![Box::new(TokenOverlap::new(TokenOverlapConfig::default()))
            as Box<dyn Blocker<CompanyRecord>>],
        scorer_provider(None),
        config.clone(),
    )
    .expect("frozen bootstrap");
    host.add_tenant(
        "frozen",
        Box::new(EngineTenant::new(
            "companies",
            comp_engine,
            model_fingerprint("companies", None),
        )),
    )
    .unwrap();
    let (sec_engine, _) = MatchEngine::bootstrap(
        plan,
        securities[..initial].to_vec(),
        security_lineup(),
        scorer_provider(None),
        config,
    )
    .expect("churn bootstrap");
    host.add_tenant(
        "churn",
        Box::new(EngineTenant::new(
            "securities",
            sec_engine,
            model_fingerprint("securities", None),
        )),
    )
    .unwrap();

    let frozen_source = host.tenant("frozen").unwrap().snapshot_source();
    let churn_source = host.tenant("churn").unwrap().snapshot_source();
    let frozen_before = host.tenant("frozen").unwrap().snapshot();
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let churn_handles: Vec<_> = (0..READERS)
            .map(|_| {
                let source = churn_source.clone();
                let (stop, oracle) = (&stop, &oracle);
                scope.spawn(move || {
                    let mut reader = PublishedReader::new(source);
                    let mut last_epoch = 0;
                    let mut checks: u64 = 0;
                    loop {
                        let done = stop.load(Ordering::Acquire);
                        let snapshot = reader.current();
                        assert!(snapshot.epoch() >= last_epoch, "epoch regressed");
                        last_epoch = snapshot.epoch();
                        check_snapshot(snapshot, oracle);
                        checks += 1;
                        if done && last_epoch == final_epoch {
                            return checks;
                        }
                    }
                })
            })
            .collect();
        let frozen_handle = {
            let source = frozen_source.clone();
            let (stop, frozen_before) = (&stop, &frozen_before);
            scope.spawn(move || {
                let mut reader = PublishedReader::new(source);
                let mut checks: u64 = 0;
                loop {
                    let done = stop.load(Ordering::Acquire);
                    let snapshot = reader.current();
                    assert_eq!(
                        snapshot.epoch(),
                        1,
                        "frozen tenant's epoch moved under another tenant's churn"
                    );
                    assert!(
                        Arc::ptr_eq(snapshot, frozen_before),
                        "frozen tenant's snapshot was republished"
                    );
                    checks += 1;
                    if done {
                        return checks;
                    }
                }
            })
        };

        let tenant = host
            .typed_tenant_mut::<SecurityRecord>("churn")
            .expect("churn tenant downcasts to its record type");
        for batch in &batches {
            tenant.apply(batch).expect("live batch applies");
        }
        stop.store(true, Ordering::Release);

        for handle in churn_handles {
            let checks = handle.join().expect("churn reader panicked");
            assert!(checks > 0);
        }
        let checks = frozen_handle.join().expect("frozen reader panicked");
        assert!(checks > 0);
    });
    assert_eq!(
        host.tenant("churn").unwrap().snapshot().epoch(),
        final_epoch
    );
    assert_eq!(host.tenant("frozen").unwrap().snapshot().epoch(), 1);
    assert!(Arc::ptr_eq(
        &host.tenant("frozen").unwrap().snapshot(),
        &frozen_before
    ));
}
