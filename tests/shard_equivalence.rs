//! Property test: sharded execution is transparent.
//!
//! For seeded random datasets, running the pipeline through a
//! [`ShardPlan`](gralmatch::core::ShardPlan) with the entity-keyed
//! partition (shards ∈ {2, 4, 8}) must produce the **same final groups**
//! as the unsharded pipeline — sharding is an execution strategy, not a
//! semantics change. The offline build has no `proptest`, so cases are
//! deterministic seeded instances (the seed is printed in every assertion
//! message).

use gralmatch::core::{
    run_domain, run_sharded, CompanyDomain, MatchingDomain, OracleScorer, PipelineConfig,
    SecurityDomain, ShardPlan,
};
use gralmatch::datagen::{generate, FinancialDataset, GenerationConfig};
use gralmatch::records::{Record, RecordId};
use gralmatch::util::FxHashMap;

const SHARD_COUNTS: [usize; 3] = [2, 4, 8];

fn dataset(seed: u64) -> FinancialDataset {
    let mut config = GenerationConfig::synthetic_full();
    config.num_entities = 100;
    config.seed = seed;
    generate(&config).unwrap()
}

/// Order-insensitive normal form: sorted members, groups sorted.
fn normalize(groups: &[Vec<RecordId>]) -> Vec<Vec<RecordId>> {
    let mut out: Vec<Vec<RecordId>> = groups
        .iter()
        .map(|group| {
            let mut g = group.clone();
            g.sort_unstable();
            g
        })
        .collect();
    out.sort();
    out
}

#[test]
fn sharded_security_pipeline_matches_unsharded_groups() {
    for seed in [3u64, 11, 29] {
        let data = dataset(seed);
        let securities = data.securities.records();
        // Perfect company grouping as issuer-match input.
        let mut group_of: FxHashMap<RecordId, u32> = FxHashMap::default();
        for company in data.companies.records() {
            group_of.insert(company.id(), company.entity().unwrap().0);
        }
        let domain = SecurityDomain::new(securities, &group_of);
        let gt = domain.ground_truth().clone();
        let scorer = OracleScorer::new(&gt);
        let config = PipelineConfig::new(25, 5);
        let unsharded = run_domain(&domain, &scorer, &config).unwrap();

        for shards in SHARD_COUNTS {
            let sharded = run_sharded(&domain, &scorer, &config, &ShardPlan::new(shards)).unwrap();
            assert_eq!(
                normalize(&sharded.outcome.groups),
                normalize(&unsharded.groups),
                "seed {seed}, {shards} shards: final groups diverged"
            );
            assert_eq!(
                sharded.outcome.pairwise, unsharded.pairwise,
                "seed {seed}, {shards} shards"
            );
            assert_eq!(
                sharded.outcome.post_cleanup.pairs.f1, unsharded.post_cleanup.pairs.f1,
                "seed {seed}, {shards} shards"
            );
            assert_eq!(
                sharded.outcome.post_cleanup.cluster_purity, unsharded.post_cleanup.cluster_purity,
                "seed {seed}, {shards} shards"
            );
        }
    }
}

#[test]
fn sharded_company_pipeline_matches_unsharded_groups() {
    for seed in [5u64, 17] {
        let data = dataset(seed);
        let companies = data.companies.records();
        let domain = CompanyDomain::new(companies, data.securities.records());
        let gt = domain.ground_truth().clone();
        let scorer = OracleScorer::new(&gt);
        let config = PipelineConfig::new(25, 5).with_pre_cleanup(50);
        let unsharded = run_domain(&domain, &scorer, &config).unwrap();

        for shards in SHARD_COUNTS {
            let sharded = run_sharded(&domain, &scorer, &config, &ShardPlan::new(shards)).unwrap();
            assert_eq!(
                normalize(&sharded.outcome.groups),
                normalize(&unsharded.groups),
                "seed {seed}, {shards} shards: final groups diverged"
            );
            assert_eq!(
                sharded.outcome.post_cleanup.pairs.f1, unsharded.post_cleanup.pairs.f1,
                "seed {seed}, {shards} shards"
            );
        }
    }
}

#[test]
fn sharded_trained_security_pipeline_matches_unsharded_groups() {
    // Identifier-join recipes shard exactly (the hash joins run globally,
    // so guards and candidates coincide), so equality must hold for an
    // imperfect trained matcher too — not just the oracle.
    use gralmatch::lm::{train, MatcherScorer, ModelSpec};
    use gralmatch::records::{DatasetSplit, SplitRatios};
    use gralmatch::util::SplitRng;

    let data = dataset(41);
    let securities = data.securities.records();
    let gt = data.securities.ground_truth();
    let spec = ModelSpec::DistilBert128All;
    let encoded = spec.encode_records(securities);
    let split = DatasetSplit::new(&gt, SplitRatios::default(), &mut SplitRng::new(9));
    let (matcher, _) =
        train(securities, &encoded, &gt, &split, &spec.train_config()).expect("training");
    let scorer = MatcherScorer::new(&matcher, &encoded);

    let mut group_of: FxHashMap<RecordId, u32> = FxHashMap::default();
    for company in data.companies.records() {
        group_of.insert(company.id(), company.entity().unwrap().0);
    }
    let domain = SecurityDomain::new(securities, &group_of);
    let config = PipelineConfig::new(25, 5);
    let unsharded = run_domain(&domain, &scorer, &config).unwrap();
    for shards in SHARD_COUNTS {
        let sharded = run_sharded(&domain, &scorer, &config, &ShardPlan::new(shards)).unwrap();
        assert_eq!(sharded.outcome.num_candidates, unsharded.num_candidates);
        assert_eq!(
            normalize(&sharded.outcome.groups),
            normalize(&unsharded.groups),
            "{shards} shards: trained-matcher groups diverged"
        );
        assert_eq!(sharded.outcome.pairwise, unsharded.pairwise);
    }
}

#[test]
fn sharded_candidate_total_is_consistent() {
    // Shard + boundary candidates partition the candidate space: every
    // pair lives in exactly one shard or crosses shards, so the sharded
    // candidate count for the identifier-join recipes (securities) equals
    // the unsharded count exactly.
    let data = dataset(23);
    let securities = data.securities.records();
    let mut group_of: FxHashMap<RecordId, u32> = FxHashMap::default();
    for company in data.companies.records() {
        group_of.insert(company.id(), company.entity().unwrap().0);
    }
    let domain = SecurityDomain::new(securities, &group_of);
    let gt = domain.ground_truth().clone();
    let scorer = OracleScorer::new(&gt);
    let config = PipelineConfig::new(25, 5);
    let unsharded = run_domain(&domain, &scorer, &config).unwrap();
    let sharded = run_sharded(&domain, &scorer, &config, &ShardPlan::new(4)).unwrap();
    assert_eq!(sharded.outcome.num_candidates, unsharded.num_candidates);
}
