//! Property tests for the scaled graph cleanup.
//!
//! The cleanup rewrite (bridge-first splitting, per-component scratch
//! graphs, worker-pool fan-out) must be an *execution strategy*, not a
//! semantics change:
//!
//! * parallel cleanup is bit-for-bit identical to sequential on hub
//!   worst-case graphs and on seeded random clique-plus-noise graphs;
//! * new and reference ([`reference_graph_cleanup`]) cleanups both land
//!   every component at or under μ;
//! * replaying the hub-entity dataset through the incremental engine —
//!   bootstrap load plus churn batches that keep dirtying the
//!   mega-component — lands on exactly the groups of a one-shot
//!   [`run_sharded`] over the final population.
//!
//! The offline build has no `proptest`; cases are deterministic seeded
//! instances with the seed in every assertion message.

use gralmatch::core::{
    graph_cleanup, graph_cleanup_with_pool, reference_graph_cleanup, run_sharded, CleanupConfig,
    CompanyDomain, MatchingDomain, PipelineConfig, PipelineState, ShardPlan, UpsertBatch,
};
use gralmatch::datagen::{hub_churn_updates, hub_companies, hub_graph, HubConfig};
use gralmatch::graph::{connected_components, Edge, Graph};
use gralmatch::lm::{
    CompiledDataset, CompiledScorer, HeuristicMatcher, PairwiseMatcher, PlainEncoder,
};
use gralmatch::records::{CompanyRecord, RecordId};
use gralmatch::util::{Parallelism, SplitRng, WorkerPool};

fn sorted_edges(graph: &Graph) -> Vec<Edge> {
    let mut edges: Vec<Edge> = graph.edges().collect();
    edges.sort_unstable();
    edges
}

/// Assert sequential and pool-backed cleanup agree bit for bit on `graph`.
fn assert_parallel_matches_sequential(graph: &Graph, config: &CleanupConfig, context: &str) {
    let mut sequential = graph.clone();
    let sequential_report = graph_cleanup(&mut sequential, config);
    let mut parallel = graph.clone();
    let pool = WorkerPool::new(4);
    let parallel_report = graph_cleanup_with_pool(&mut parallel, config, &pool);

    assert_eq!(
        sorted_edges(&sequential),
        sorted_edges(&parallel),
        "{context}: parallel cleanup removed a different edge set"
    );
    assert_eq!(
        (
            sequential_report.mincut_removed,
            sequential_report.betweenness_removed,
            sequential_report.mincut_rounds,
            sequential_report.betweenness_rounds,
        ),
        (
            parallel_report.mincut_removed,
            parallel_report.betweenness_removed,
            parallel_report.mincut_rounds,
            parallel_report.betweenness_rounds,
        ),
        "{context}: parallel cleanup counters diverged"
    );
    for component in connected_components(&parallel) {
        assert!(
            component.len() <= config.mu,
            "{context}: component of {} survived cleanup (μ = {})",
            component.len(),
            config.mu
        );
    }
}

#[test]
fn parallel_cleanup_matches_sequential_on_hub_graphs() {
    for (hubs, groups, size) in [(1, 20, 4), (3, 11, 5), (2, 40, 3)] {
        let config = HubConfig {
            hubs,
            groups_per_hub: groups,
            group_size: size,
            churn_batches: 2,
            churn_rewires: 3,
        };
        let hub = hub_graph(&config);
        let mut graph = Graph::with_nodes(hub.num_nodes);
        for &(a, b) in &hub.bootstrap_edges {
            graph.add_edge(a, b);
        }
        let cleanup = CleanupConfig::new(size + 1, size);
        assert_parallel_matches_sequential(
            &graph,
            &cleanup,
            &format!("hub graph {hubs}×{groups}×{size}"),
        );
    }
}

#[test]
fn parallel_cleanup_matches_sequential_on_random_graphs() {
    // Clique backbones plus random noise edges: guarantees mega-components
    // with non-trivial cuts (not just bridges), so the Stoer–Wagner
    // fallback path is exercised alongside the bridge fast path.
    for seed in [3u64, 17, 71] {
        let mut rng = SplitRng::new(seed).split("cleanup-scaling");
        let num_cliques = 18;
        let clique = 5;
        let n = num_cliques * clique;
        let mut graph = Graph::with_nodes(n);
        for c in 0..num_cliques {
            for i in 0..clique {
                for j in (i + 1)..clique {
                    graph.add_edge((c * clique + i) as u32, (c * clique + j) as u32);
                }
            }
        }
        for _ in 0..40 {
            let a = rng.next_below(n) as u32;
            let b = rng.next_below(n) as u32;
            if a != b {
                graph.add_edge(a, b);
            }
        }
        let cleanup = CleanupConfig::new(12, 6);
        assert_parallel_matches_sequential(&graph, &cleanup, &format!("random graph seed {seed}"));
    }
}

#[test]
fn new_and_reference_cleanup_reach_the_same_size_bound() {
    // The two implementations may choose different cut edges (bridge-first
    // vs Stoer–Wagner order), so removed-edge sets are not comparable —
    // the contract is the Algorithm 1 postcondition: no component above μ.
    let config = HubConfig {
        hubs: 2,
        groups_per_hub: 25,
        group_size: 4,
        churn_batches: 2,
        churn_rewires: 3,
    };
    let hub = hub_graph(&config);
    let cleanup = CleanupConfig::new(config.group_size + 1, config.group_size);
    for (name, reference) in [("new", false), ("reference", true)] {
        let mut graph = Graph::with_nodes(hub.num_nodes);
        for &(a, b) in &hub.bootstrap_edges {
            graph.add_edge(a, b);
        }
        let report = if reference {
            reference_graph_cleanup(&mut graph, &cleanup)
        } else {
            graph_cleanup(&mut graph, &cleanup)
        };
        assert!(report.mincut_removed > 0, "{name}: no cuts on a hub graph");
        for component in connected_components(&graph) {
            assert!(
                component.len() <= cleanup.mu,
                "{name}: component of {} survived (μ = {})",
                component.len(),
                cleanup.mu
            );
        }
    }
}

/// Order-insensitive normal form: sorted members, groups sorted.
fn normalize(groups: &[Vec<RecordId>]) -> Vec<Vec<RecordId>> {
    let mut out: Vec<Vec<RecordId>> = groups
        .iter()
        .map(|group| {
            let mut g = group.clone();
            g.sort_unstable();
            g
        })
        .collect();
    out.sort();
    out
}

#[test]
fn hub_churn_replay_matches_one_shot_groups() {
    // The engine-level mirror of the hubbench protocol: load the full hub
    // dataset, then replay churn batches that re-submit rotating group
    // representatives (city-stamped, names unchanged). Every batch dirties
    // the hub mega-component and forces a re-clean through the parallel
    // cleanup; the final groups must equal a one-shot sharded run.
    let config = HubConfig {
        hubs: 2,
        groups_per_hub: 12,
        group_size: 4,
        churn_batches: 3,
        churn_rewires: 4,
    };
    let companies = hub_companies(&config);

    // The rep–hub candidate pairs tie with many rep–rep pairs on overlap
    // count, so widen top-n beyond the default 10 to keep them all; the
    // hub tokens appear in every rep, so raise the DF cut too.
    let token_config = gralmatch::blocking::TokenOverlapConfig {
        top_n: 50,
        max_token_df: 600,
        min_overlap: 2,
    };
    let no_securities = [];
    let domain =
        CompanyDomain::new(&companies, &no_securities).with_token_config(token_config.clone());
    let strategies = domain.blocking_strategies();

    // Names never change across churn, so one compiled encoding of the
    // bootstrap population scores every replay state.
    let encoder = PlainEncoder::new(128);
    let encoded = gralmatch::lm::encode_dataset(&companies, &encoder);
    let matcher = HeuristicMatcher {
        jaccard_threshold: 0.45,
    };
    let compiled = CompiledDataset::compile(&encoded, &matcher.feature_config());
    let scorer = CompiledScorer::new(&matcher, &compiled);

    let mut pipeline_config = PipelineConfig::new(config.group_size + 1, config.group_size);
    pipeline_config.parallelism = Parallelism::Fixed(4);
    let plan = ShardPlan::new(2);

    let (mut state, load) = PipelineState::initial_load(
        plan,
        companies.clone(),
        &strategies,
        &scorer,
        &pipeline_config,
    )
    .unwrap();
    let mut last_groups = load.groups;
    let mut final_records = companies.clone();
    for batch in 0..config.churn_batches {
        let updates = hub_churn_updates(&config, batch);
        for update in &updates {
            final_records[update.id.0 as usize] = update.clone();
        }
        let outcome = state
            .apply(
                &UpsertBatch {
                    inserts: Vec::new(),
                    updates,
                    deletes: Vec::new(),
                },
                &strategies,
                &scorer,
                &pipeline_config,
            )
            .unwrap_or_else(|e| panic!("churn batch {batch}: {e:?}"));
        last_groups = outcome.groups;
    }

    let final_domain =
        CompanyDomain::new(&final_records, &no_securities).with_token_config(token_config);
    let one_shot = run_sharded(&final_domain, &scorer, &pipeline_config, &plan).unwrap();
    assert_eq!(
        normalize(&last_groups),
        normalize(&one_shot.outcome.groups),
        "hub churn replay diverged from one-shot groups"
    );

    // Semantics: the cleanup must cut every hub bridge and spare every
    // clique — each multi-record group is exactly one entity's records.
    let groups = normalize(&last_groups);
    let cliques: Vec<&Vec<RecordId>> = groups.iter().filter(|g| g.len() > 1).collect();
    assert_eq!(cliques.len(), config.hubs * config.groups_per_hub);
    for group in cliques {
        assert_eq!(group.len(), config.group_size, "a clique was cut");
        let entity = entity_of(&companies, group[0]);
        assert!(
            group.iter().all(|id| entity_of(&companies, *id) == entity),
            "group mixes entities: {group:?}"
        );
    }
}

fn entity_of(companies: &[CompanyRecord], id: RecordId) -> u32 {
    companies[id.0 as usize].entity.unwrap().0
}
