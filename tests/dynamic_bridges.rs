//! Property tests for the persistent cut-structure index
//! ([`CutIndex`]) under edge churn.
//!
//! The index is a cache of Tarjan-derived structure (bridges +
//! 2-edge-connected blocks) maintained across insert/remove deltas; its
//! contract is that a [`structure_for`](CutIndex::structure_for) query
//! after *any* fed delta sequence equals a from-scratch
//! [`cut_structure`] computation, and that a cleanup driven by it
//! ([`graph_cleanup_with_index`]) is bit-for-bit the plain
//! [`graph_cleanup`]. Three layers:
//!
//! * raw index vs scratch Tarjan on seeded random insert/remove
//!   sequences (bridges, block partition, block annotations);
//! * indexed cleanup vs plain cleanup across churn rounds on random
//!   clique-plus-noise graphs (edge sets and phase counters);
//! * the incremental engine replaying *interior* record churn — updates
//!   whose degraded names retract clique edges so bridges are created by
//!   deletion — with a warm index, against a one-shot sharded oracle.
//!
//! The offline build has no `proptest`; cases are deterministic seeded
//! instances with the seed in every assertion message.

use gralmatch::core::{
    graph_cleanup, graph_cleanup_with_index, run_sharded, CleanupConfig, CompanyDomain,
    MatchingDomain, PipelineConfig, PipelineState, ShardPlan, UpsertBatch,
};
use gralmatch::datagen::{hub_companies, hub_interior_churn_updates, HubConfig};
use gralmatch::graph::{connected_components, cut_structure, CutIndex, Edge, Graph, Subgraph};
use gralmatch::lm::{
    encode_dataset, CompiledDataset, CompiledScorer, HeuristicMatcher, PairwiseMatcher,
    PlainEncoder,
};
use gralmatch::records::RecordId;
use gralmatch::util::{Parallelism, SplitRng};

fn sorted_edges(graph: &Graph) -> Vec<Edge> {
    let mut edges: Vec<Edge> = graph.edges().collect();
    edges.sort_unstable();
    edges
}

/// Relabel a block assignment to first-occurrence order so two labelings
/// of the same partition compare equal.
fn canonical_blocks(block_of: &[u32]) -> Vec<u32> {
    let mut relabel: Vec<u32> = Vec::new();
    let mut map = gralmatch::util::FxHashMap::default();
    for &block in block_of {
        let next = map.len() as u32;
        relabel.push(*map.entry(block).or_insert(next));
    }
    relabel
}

/// Assert the index's view of every component equals a scratch
/// [`cut_structure`] pass: same bridge set, same block partition, and
/// bridge block annotations consistent with the labeling.
fn assert_index_matches_scratch(index: &mut CutIndex, graph: &Graph, context: &str) {
    for component in connected_components(graph) {
        if component.len() < 2 {
            continue;
        }
        let sub = Subgraph::induce(graph, &component);
        let structure = index.structure_for(&sub, &component);
        let oracle = cut_structure(&sub);
        let mut bridges: Vec<(u32, u32)> = structure.bridges.iter().map(|&(e, _, _)| e).collect();
        bridges.sort_unstable();
        assert_eq!(bridges, oracle.bridges, "{context}: bridge set diverged");
        assert_eq!(
            structure.num_blocks, oracle.num_blocks,
            "{context}: block count diverged"
        );
        assert_eq!(
            canonical_blocks(&structure.block_of),
            canonical_blocks(&oracle.block_of),
            "{context}: block partition diverged"
        );
        for &((a, b), block_a, block_b) in &structure.bridges {
            assert_eq!(
                (
                    structure.block_of[a as usize],
                    structure.block_of[b as usize]
                ),
                (block_a, block_b),
                "{context}: bridge ({a},{b}) annotated with wrong blocks"
            );
        }
    }
}

/// Apply one random insert-or-remove to `graph`, feeding the index and
/// keeping `edges` in sync. Returns a description of the op.
fn random_op(
    rng: &mut SplitRng,
    n: usize,
    graph: &mut Graph,
    index: &mut CutIndex,
    edges: &mut Vec<Edge>,
) -> String {
    if rng.next_below(2) == 0 || edges.is_empty() {
        let a = rng.next_below(n) as u32;
        let b = rng.next_below(n) as u32;
        if a != b && graph.add_edge(a, b) {
            index.insert_edge(a, b);
            edges.push(Edge::new(a, b));
            return format!("insert ({a},{b})");
        }
        "noop".to_string()
    } else {
        let edge = edges.swap_remove(rng.next_below(edges.len()));
        graph.remove_edge(edge.a, edge.b);
        index.remove_edge(edge.a, edge.b);
        format!("remove ({},{})", edge.a, edge.b)
    }
}

#[test]
fn cut_index_matches_scratch_under_random_churn() {
    for seed in [5u64, 29, 101] {
        let mut rng = SplitRng::new(seed).split("dynamic-bridges");
        let n = 40usize;
        let mut graph = Graph::with_nodes(n);
        // Sparse bootstrap: plenty of bridges, some cycles.
        for _ in 0..45 {
            let a = rng.next_below(n) as u32;
            let b = rng.next_below(n) as u32;
            if a != b {
                graph.add_edge(a, b);
            }
        }
        let mut index = CutIndex::new();
        index.rebuild_from(&graph);
        assert_index_matches_scratch(&mut index, &graph, &format!("seed {seed} bootstrap"));

        let mut edges = sorted_edges(&graph);
        let mut history = Vec::new();
        for step in 0..150 {
            history.push(random_op(&mut rng, n, &mut graph, &mut index, &mut edges));
            // Query every few ops so cached structure is repeatedly
            // reused and re-validated mid-sequence, and after every op
            // near the end where state is most churned.
            if step % 5 == 4 || step > 120 {
                assert_index_matches_scratch(
                    &mut index,
                    &graph,
                    &format!("seed {seed} step {step} (last ops: {:?})", {
                        let from = history.len().saturating_sub(5);
                        &history[from..]
                    }),
                );
            }
        }
    }
}

#[test]
fn indexed_cleanup_matches_plain_under_random_churn() {
    // Clique backbones plus random noise, cleaned and churned repeatedly:
    // every round the indexed cleanup of the live graph must be
    // bit-for-bit the plain cleanup of a fresh clone, with equal phase
    // counters — across deltas that both close cycles and cut bridges.
    for seed in [7u64, 43, 97] {
        let mut rng = SplitRng::new(seed).split("dynamic-cleanup");
        let num_cliques = 12;
        let clique = 5;
        let n = num_cliques * clique;
        let mut graph = Graph::with_nodes(n);
        for c in 0..num_cliques {
            for i in 0..clique {
                for j in (i + 1)..clique {
                    graph.add_edge((c * clique + i) as u32, (c * clique + j) as u32);
                }
            }
        }
        for _ in 0..30 {
            let a = rng.next_below(n) as u32;
            let b = rng.next_below(n) as u32;
            if a != b {
                graph.add_edge(a, b);
            }
        }
        let config = CleanupConfig::new(8, 5);
        let mut index = CutIndex::new();
        index.rebuild_from(&graph);
        for round in 0..4 {
            let mut oracle = graph.clone();
            let oracle_report = graph_cleanup(&mut oracle, &config);
            let report = graph_cleanup_with_index(&mut graph, &config, &mut index);
            assert_eq!(
                sorted_edges(&graph),
                sorted_edges(&oracle),
                "seed {seed} round {round}: indexed cleanup removed a different edge set"
            );
            assert_eq!(
                (
                    report.mincut_removed,
                    report.betweenness_removed,
                    report.mincut_rounds,
                    report.betweenness_rounds,
                ),
                (
                    oracle_report.mincut_removed,
                    oracle_report.betweenness_removed,
                    oracle_report.mincut_rounds,
                    oracle_report.betweenness_rounds,
                ),
                "seed {seed} round {round}: indexed cleanup counters diverged"
            );
            let mut edges = sorted_edges(&graph);
            for _ in 0..25 {
                random_op(&mut rng, n, &mut graph, &mut index, &mut edges);
            }
        }
    }
}

/// Order-insensitive normal form: sorted members, groups sorted.
fn normalize(groups: &[Vec<RecordId>]) -> Vec<Vec<RecordId>> {
    let mut out: Vec<Vec<RecordId>> = groups
        .iter()
        .map(|group| {
            let mut g = group.clone();
            g.sort_unstable();
            g
        })
        .collect();
    out.sort();
    out
}

#[test]
fn interior_churn_replay_with_index_matches_one_shot_groups() {
    // The delete-driven side of the hub workload through the real
    // pipeline: interior churn updates degrade two members' names per
    // rotated group so the group's clique collapses to a star around its
    // representative — clique edges are *retracted* and the surviving
    // rep edges become bridges created by deletion — then restore them a
    // batch later. The replay drives `apply_with_index` with a warm
    // CutIndex (the engine's configuration), so every delta flows through
    // insert_edge/remove_edge maintenance; the final groups must equal a
    // one-shot sharded run over the final records.
    let config = HubConfig {
        hubs: 2,
        groups_per_hub: 12,
        group_size: 4,
        churn_batches: 4,
        churn_rewires: 4,
    };
    let companies = hub_companies(&config);

    let token_config = gralmatch::blocking::TokenOverlapConfig {
        top_n: 50,
        max_token_df: 600,
        min_overlap: 2,
    };
    let no_securities = [];
    let domain =
        CompanyDomain::new(&companies, &no_securities).with_token_config(token_config.clone());
    let strategies = domain.blocking_strategies();

    let encoder = PlainEncoder::new(128);
    let matcher = HeuristicMatcher {
        jaccard_threshold: 0.45,
    };
    // Names change across batches (that is the point), so each state is
    // scored through a freshly compiled encoding of the current records.
    let scorer_for = |records: &[gralmatch::records::CompanyRecord]| {
        let encoded = encode_dataset(records, &encoder);
        CompiledDataset::compile(&encoded, &matcher.feature_config())
    };

    let mut pipeline_config = PipelineConfig::new(config.group_size + 1, config.group_size);
    pipeline_config.parallelism = Parallelism::Fixed(4);
    let plan = ShardPlan::new(2);

    let bootstrap_compiled = scorer_for(&companies);
    let (mut state, _load) = PipelineState::initial_load(
        plan,
        companies.clone(),
        &strategies,
        &CompiledScorer::new(&matcher, &bootstrap_compiled),
        &pipeline_config,
    )
    .unwrap();
    let mut index = CutIndex::new();
    index.rebuild_from(state.cleaned());

    let mut final_records = companies.clone();
    for batch in 0..config.churn_batches {
        let updates = hub_interior_churn_updates(&config, batch);
        for update in &updates {
            final_records[update.id.0 as usize] = update.clone();
        }
        let compiled = scorer_for(&final_records);
        state
            .apply_with_index(
                &UpsertBatch {
                    inserts: Vec::new(),
                    updates,
                    deletes: Vec::new(),
                },
                &strategies,
                &CompiledScorer::new(&matcher, &compiled),
                &pipeline_config,
                Some(&mut index),
            )
            .unwrap_or_else(|e| panic!("interior churn batch {batch}: {e:?}"));
    }

    // Final batch: restore every still-degraded record, so the end state
    // is the bootstrap population again (and the restores themselves run
    // through the index's insert-edge maintenance one more time).
    let restore: Vec<gralmatch::records::CompanyRecord> = final_records
        .iter()
        .zip(&companies)
        .filter(|(current, original)| current.name != original.name)
        .map(|(_, original)| original.clone())
        .collect();
    assert!(!restore.is_empty(), "last rotation left nothing degraded");
    for update in &restore {
        final_records[update.id.0 as usize] = update.clone();
    }
    let compiled = scorer_for(&final_records);
    let outcome = state
        .apply_with_index(
            &UpsertBatch {
                inserts: Vec::new(),
                updates: restore,
                deletes: Vec::new(),
            },
            &strategies,
            &CompiledScorer::new(&matcher, &compiled),
            &pipeline_config,
            Some(&mut index),
        )
        .unwrap_or_else(|e| panic!("restore batch: {e:?}"));
    let last_groups = outcome.groups;

    let final_domain =
        CompanyDomain::new(&final_records, &no_securities).with_token_config(token_config);
    let final_compiled = scorer_for(&final_records);
    let one_shot = run_sharded(
        &final_domain,
        &CompiledScorer::new(&matcher, &final_compiled),
        &pipeline_config,
        &plan,
    )
    .unwrap();
    assert_eq!(
        normalize(&last_groups),
        normalize(&one_shot.outcome.groups),
        "interior churn replay diverged from one-shot groups"
    );

    // Semantics: with every degrade restored, the cleanup must have cut
    // every hub bridge and spared every clique — each multi-record group
    // is exactly one entity's records.
    let groups = normalize(&last_groups);
    let multi: Vec<&Vec<RecordId>> = groups.iter().filter(|g| g.len() > 1).collect();
    let sizes: Vec<usize> = multi.iter().map(|g| g.len()).collect();
    assert_eq!(
        multi.len(),
        config.hubs * config.groups_per_hub,
        "multi-group sizes: {sizes:?}"
    );
    for group in multi {
        assert_eq!(group.len(), config.group_size, "a group was cut");
        let entity = companies[group[0].0 as usize].entity.unwrap();
        assert!(
            group
                .iter()
                .all(|id| companies[id.0 as usize].entity.unwrap() == entity),
            "group mixes entities: {group:?}"
        );
    }
}
