//! Property-style tests on the core algorithmic invariants.
//!
//! The offline build cannot pull in `proptest`, so these run the same
//! invariants over deterministic seeded random instances: every case draws
//! its structure from a [`SplitRng`] stream, so failures reproduce exactly
//! by seed (printed in every assertion message).

use gralmatch::core::{entity_groups, graph_cleanup, prediction_graph, CleanupConfig};
use gralmatch::graph::{
    connected_components, edge_betweenness, find_bridges, global_min_cut, min_st_cut,
    mincut::stoer_wagner, Graph, Subgraph, UnionFind,
};
use gralmatch::records::{RecordId, RecordPair};
use gralmatch::util::SplitRng;

/// Random connected graph: a random tree plus extra random edges.
fn connected_graph(rng: &mut SplitRng, max_nodes: usize, extra_edges: usize) -> Graph {
    let n = rng.range_inclusive(2, max_nodes.max(2));
    let mut graph = Graph::with_nodes(n);
    for child in 1..n as u32 {
        let parent = rng.next_below(child as usize) as u32;
        graph.add_edge(parent, child);
    }
    for _ in 0..rng.next_below(extra_edges + 1) {
        let a = rng.next_below(n) as u32;
        let b = rng.next_below(n) as u32;
        if a != b {
            graph.add_edge(a, b);
        }
    }
    graph
}

fn full_subgraph(graph: &Graph) -> Subgraph {
    let nodes: Vec<u32> = (0..graph.num_nodes() as u32).collect();
    Subgraph::induce(graph, &nodes)
}

#[test]
fn mincut_disconnects() {
    for case in 0..64u64 {
        let mut rng = SplitRng::new(0xC1).split_index(case);
        let graph = connected_graph(&mut rng, 24, 20);
        let sub = full_subgraph(&graph);
        let cut = global_min_cut(&sub).expect("connected, >=2 nodes");
        let mut pruned = graph.clone();
        for &(a, b) in &cut.cut_edges {
            pruned.remove_edge(a, b);
        }
        let comps = connected_components(&pruned);
        assert!(
            comps.len() >= 2,
            "case {case}: cut of weight {} failed to disconnect",
            cut.weight
        );
    }
}

#[test]
fn stoer_wagner_matches_flow_cut_weight() {
    for case in 0..64u64 {
        let mut rng = SplitRng::new(0xC2).split_index(case);
        let graph = connected_graph(&mut rng, 16, 12);
        let sub = full_subgraph(&graph);
        let sw = stoer_wagner(&sub);
        // Global min cut == min over t of min s-t cut for fixed s.
        let n = sub.num_nodes() as u32;
        let mut best = u32::MAX;
        for t in 1..n {
            let (flow, _) = min_st_cut(&sub, 0, t);
            best = best.min(flow);
        }
        assert_eq!(sw.weight, best, "case {case}");
    }
}

#[test]
fn bridges_are_weight_one_cuts() {
    for case in 0..64u64 {
        let mut rng = SplitRng::new(0xC3).split_index(case);
        let graph = connected_graph(&mut rng, 20, 8);
        let sub = full_subgraph(&graph);
        let bridges = find_bridges(&sub);
        for &(a, b) in &bridges {
            let mut pruned = graph.clone();
            pruned.remove_edge(a, b);
            assert_eq!(
                connected_components(&pruned).len(),
                2,
                "case {case}: removing bridge ({a},{b}) must split into exactly 2 components"
            );
        }
        // Conversely: a min cut of weight 1 implies at least one bridge.
        if let Some(cut) = global_min_cut(&sub) {
            if cut.weight == 1 {
                assert!(!bridges.is_empty(), "case {case}");
            }
        }
    }
}

#[test]
fn betweenness_nonnegative_and_bridge_dominant() {
    for case in 0..64u64 {
        let mut rng = SplitRng::new(0xC4).split_index(case);
        let graph = connected_graph(&mut rng, 16, 10);
        let sub = full_subgraph(&graph);
        let centrality = edge_betweenness(&sub);
        // Every edge lies on at least its own endpoints' shortest path.
        assert!(
            centrality.iter().all(|&c| c >= 1.0 - 1e-9),
            "case {case}: {centrality:?}"
        );
    }
}

#[test]
fn unionfind_agrees_with_bfs() {
    for case in 0..64u64 {
        let mut rng = SplitRng::new(0xC5).split_index(case);
        let mut graph = Graph::with_nodes(30);
        let mut uf = UnionFind::new(30);
        for _ in 0..rng.next_below(60) {
            let a = rng.next_below(30) as u32;
            let b = rng.next_below(30) as u32;
            if a != b {
                graph.add_edge(a, b);
                uf.union(a, b);
            }
        }
        let comps = connected_components(&graph);
        assert_eq!(comps.len(), uf.num_sets(), "case {case}");
        for comp in comps {
            for pair in comp.windows(2) {
                assert!(uf.connected(pair[0], pair[1]), "case {case}");
            }
        }
    }
}

#[test]
fn cleanup_caps_component_sizes() {
    for case in 0..64u64 {
        let mut rng = SplitRng::new(0xC6).split_index(case);
        let graph = connected_graph(&mut rng, 40, 50);
        let mu = rng.range_inclusive(2, 7);
        let gamma = mu + 4;
        let mut working = graph.clone();
        graph_cleanup(&mut working, &CleanupConfig::new(gamma, mu));
        for comp in connected_components(&working) {
            assert!(
                comp.len() <= mu,
                "case {case}: component of {} > mu {mu}",
                comp.len()
            );
        }
    }
}

#[test]
fn cleanup_only_removes_edges() {
    for case in 0..64u64 {
        let mut rng = SplitRng::new(0xC7).split_index(case);
        let graph = connected_graph(&mut rng, 30, 30);
        let mut working = graph.clone();
        graph_cleanup(&mut working, &CleanupConfig::new(10, 5));
        assert!(working.num_edges() <= graph.num_edges(), "case {case}");
        // Every surviving edge existed before.
        for edge in working.edges() {
            assert!(graph.has_edge(edge.a, edge.b), "case {case}");
        }
    }
}

#[test]
fn groups_partition_records() {
    for case in 0..64u64 {
        let mut rng = SplitRng::new(0xC8).split_index(case);
        let mut record_pairs: Vec<RecordPair> = Vec::new();
        for _ in 0..rng.next_below(80) {
            let a = rng.next_below(50) as u32;
            let b = rng.next_below(50) as u32;
            if a != b {
                record_pairs.push(RecordPair::new(RecordId(a), RecordId(b)));
            }
        }
        let graph = prediction_graph(50, &record_pairs);
        let groups = entity_groups(&graph);
        let mut seen = std::collections::HashSet::new();
        let mut total = 0usize;
        for group in &groups {
            for &record in group {
                assert!(seen.insert(record), "case {case}: {record:?} in two groups");
                total += 1;
            }
        }
        assert_eq!(total, 50, "case {case}");
    }
}
