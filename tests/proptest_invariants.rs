//! Property-based tests on the core algorithmic invariants.

use gralmatch::core::{entity_groups, graph_cleanup, prediction_graph, CleanupConfig};
use gralmatch::graph::{
    connected_components, edge_betweenness, find_bridges, global_min_cut, mincut::stoer_wagner,
    min_st_cut, Graph, Subgraph, UnionFind,
};
use gralmatch::records::{RecordId, RecordPair};
use proptest::prelude::*;

/// Random connected graph: a random tree plus extra random edges.
fn connected_graph(max_nodes: usize, extra_edges: usize) -> impl Strategy<Value = Graph> {
    (2..max_nodes)
        .prop_flat_map(move |n| {
            (
                Just(n),
                proptest::collection::vec(0..1_000_000u32, n - 1),
                proptest::collection::vec((0..n as u32, 0..n as u32), 0..extra_edges),
            )
        })
        .prop_map(|(n, parents, extras)| {
            let mut graph = Graph::with_nodes(n);
            for (i, r) in parents.iter().enumerate() {
                let child = (i + 1) as u32;
                let parent = r % child; // parent in [0, child)
                graph.add_edge(parent, child);
            }
            for (a, b) in extras {
                if a != b {
                    graph.add_edge(a, b);
                }
            }
            graph
        })
}

fn full_subgraph(graph: &Graph) -> Subgraph {
    let nodes: Vec<u32> = (0..graph.num_nodes() as u32).collect();
    Subgraph::induce(graph, &nodes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mincut_disconnects(graph in connected_graph(24, 20)) {
        let sub = full_subgraph(&graph);
        prop_assume!(sub.is_connected());
        let cut = global_min_cut(&sub).expect("connected, >=2 nodes");
        let mut pruned = graph.clone();
        for &(a, b) in &cut.cut_edges {
            pruned.remove_edge(a, b);
        }
        let comps = connected_components(&pruned);
        prop_assert!(comps.len() >= 2, "cut of weight {} failed to disconnect", cut.weight);
    }

    #[test]
    fn stoer_wagner_matches_flow_cut_weight(graph in connected_graph(16, 12)) {
        let sub = full_subgraph(&graph);
        prop_assume!(sub.is_connected());
        let sw = stoer_wagner(&sub);
        // Global min cut == min over t of min s-t cut for fixed s.
        let n = sub.num_nodes() as u32;
        let mut best = u32::MAX;
        for t in 1..n {
            let (flow, _) = min_st_cut(&sub, 0, t);
            best = best.min(flow);
        }
        prop_assert_eq!(sw.weight, best);
    }

    #[test]
    fn bridges_are_weight_one_cuts(graph in connected_graph(20, 8)) {
        let sub = full_subgraph(&graph);
        prop_assume!(sub.is_connected());
        let bridges = find_bridges(&sub);
        for &(a, b) in &bridges {
            let mut pruned = graph.clone();
            pruned.remove_edge(a, b);
            prop_assert!(connected_components(&pruned).len() == 2,
                "removing bridge ({a},{b}) must split into exactly 2 components");
        }
        // Conversely: a min cut of weight 1 implies at least one bridge.
        if let Some(cut) = global_min_cut(&sub) {
            if cut.weight == 1 {
                prop_assert!(!bridges.is_empty());
            }
        }
    }

    #[test]
    fn betweenness_nonnegative_and_bridge_dominant(graph in connected_graph(16, 10)) {
        let sub = full_subgraph(&graph);
        prop_assume!(sub.is_connected());
        let centrality = edge_betweenness(&sub);
        prop_assert!(centrality.iter().all(|&c| c >= 0.0));
        // Every edge lies on at least its own endpoints' shortest path.
        prop_assert!(centrality.iter().all(|&c| c >= 1.0 - 1e-9));
    }

    #[test]
    fn unionfind_agrees_with_bfs(edges in proptest::collection::vec((0..30u32, 0..30u32), 0..60)) {
        let mut graph = Graph::with_nodes(30);
        let mut uf = UnionFind::new(30);
        for &(a, b) in &edges {
            if a != b {
                graph.add_edge(a, b);
                uf.union(a, b);
            }
        }
        let comps = connected_components(&graph);
        prop_assert_eq!(comps.len(), uf.num_sets());
        for comp in comps {
            for pair in comp.windows(2) {
                prop_assert!(uf.connected(pair[0], pair[1]));
            }
        }
    }

    #[test]
    fn cleanup_caps_component_sizes(graph in connected_graph(40, 50), mu in 2usize..8) {
        let mut working = graph.clone();
        let gamma = mu + 4;
        graph_cleanup(&mut working, &CleanupConfig::new(gamma, mu));
        for comp in connected_components(&working) {
            prop_assert!(comp.len() <= mu, "component of {} > mu {}", comp.len(), mu);
        }
    }

    #[test]
    fn cleanup_only_removes_edges(graph in connected_graph(30, 30)) {
        let mut working = graph.clone();
        graph_cleanup(&mut working, &CleanupConfig::new(10, 5));
        prop_assert!(working.num_edges() <= graph.num_edges());
        // Every surviving edge existed before.
        for edge in working.edges() {
            prop_assert!(graph.has_edge(edge.a, edge.b));
        }
    }

    #[test]
    fn groups_partition_records(pairs in proptest::collection::vec((0..50u32, 0..50u32), 0..80)) {
        let record_pairs: Vec<RecordPair> = pairs
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| RecordPair::new(RecordId(a), RecordId(b)))
            .collect();
        let graph = prediction_graph(50, &record_pairs);
        let groups = entity_groups(&graph);
        let mut seen = std::collections::HashSet::new();
        let mut total = 0usize;
        for group in &groups {
            for &record in group {
                prop_assert!(seen.insert(record), "record {record:?} in two groups");
                total += 1;
            }
        }
        prop_assert_eq!(total, 50);
    }
}
