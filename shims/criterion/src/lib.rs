//! Offline stand-in for the crates.io `criterion` benchmark harness.
//!
//! The build environment has no registry access, so this workspace ships a
//! minimal, API-compatible subset of Criterion covering exactly what the
//! benches under `crates/bench/benches/` use: `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`
//! / `iter_batched`, `BenchmarkId`, `Throughput`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple — warm-up plus `sample_size` timed
//! samples, reporting mean wall-clock per iteration — which is enough for
//! relative comparisons during development. Swap the `[workspace.dependencies]`
//! entry back to crates.io `criterion` for statistically rigorous runs.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How a batched iteration sizes its batches. All variants behave the same
/// here (one setup per timed routine call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per sample.
    PerIteration,
}

/// Declared throughput of a benchmark, used to report rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean seconds per iteration of the last `iter`/`iter_batched` call.
    last_mean: Option<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            last_mean: None,
        }
    }

    /// Time `routine` over `samples` iterations (after one warm-up call).
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.last_mean = Some(start.elapsed() / self.samples as u32);
    }

    /// Time `routine` with a fresh `setup()` input per call; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.last_mean = Some(total / self.samples as u32);
    }
}

fn report(group: &str, id: &str, mean: Option<Duration>, throughput: Option<Throughput>) {
    let name = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    match mean {
        Some(mean) => {
            let rate = throughput.map_or(String::new(), |t| {
                let secs = mean.as_secs_f64().max(1e-12);
                match t {
                    Throughput::Elements(n) => format!("  ({:.0} elem/s)", n as f64 / secs),
                    Throughput::Bytes(n) => format!("  ({:.0} B/s)", n as f64 / secs),
                }
            });
            println!("bench: {name:<56} {mean:>12.3?}/iter{rate}");
        }
        None => println!("bench: {name:<56} (no measurement)"),
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: std::marker::PhantomData,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        report("", id, bencher.last_mean, None);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput declaration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Declare the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        report(
            &self.name,
            &id.to_string(),
            bencher.last_mean,
            self.throughput,
        );
        self
    }

    /// Run a benchmark parameterized by a shared input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        report(
            &self.name,
            &id.to_string(),
            bencher.last_mean,
            self.throughput,
        );
        self
    }

    /// Finish the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Define a benchmark group function, mirroring Criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_mean() {
        let mut bencher = Bencher::new(3);
        bencher.iter(|| 1 + 1);
        assert!(bencher.last_mean.is_some());
        bencher.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput);
        assert!(bencher.last_mean.is_some());
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut criterion = Criterion::default().sample_size(2);
        let mut group = criterion.benchmark_group("g");
        let mut runs = 0;
        group.throughput(Throughput::Elements(10));
        group.bench_function("a", |b| {
            b.iter(|| runs += 1);
        });
        group.finish();
        assert!(runs > 0);
    }
}
