//! Trainable pairwise matching models (the paper's "language models").
//!
//! This crate substitutes a from-scratch trainable classifier for the
//! DistilBERT/DITTO fine-tunes of the paper (see DESIGN.md): record pairs
//! are serialized by a [`PairEncoder`] (plain vs DITTO `[col]…[val]…`
//! styles, 128/256-token budgets), featurized into a hashed sparse space,
//! and scored by a logistic head trained with Adagrad under the paper's
//! protocol (5:1 negative sampling, 5 epochs, lowest-validation-loss epoch
//! selection).
//!
//! * [`encode`] — encoders + truncation (the DITTO(128) failure mechanism),
//! * [`features`] — symmetric pair featurization (the reference path),
//! * [`compiled`] — interned, precomputed featurization (the hot path;
//!   bit-for-bit identical to [`features`]),
//! * [`model`] — logistic head + Adagrad,
//! * [`trainer`] — the fine-tuning loop and the low-label -15K variant,
//! * [`matcher`] — the [`PairwiseMatcher`] abstraction + heuristic baseline,
//! * [`inference`] — parallel batch scoring of blocked candidate pairs,
//! * [`spec`] — the Table 3/4 model lineup.

pub mod active;
pub mod compiled;
pub mod encode;
pub mod features;
pub mod inference;
pub mod llm;
pub mod matcher;
pub mod model;
pub mod persist;
pub mod spec;
pub mod trainer;

pub use active::{active_learning_loop, ActiveConfig, QueryStrategy, RoundReport};
pub use compiled::{CompiledDataset, FeatureScratch, ScoreScratch};
pub use encode::{encode_dataset, DittoEncoder, EncodedRecord, PairEncoder, PlainEncoder};
pub use features::{featurize, FeatureConfig, PairFeatures};
pub use inference::{
    predict_positive_with, score_pairs_with, CompiledScorer, MatcherScorer, PairScorer, ScoredPair,
};
pub use llm::{LlmCostModel, SimulatedLlmMatcher};
pub use matcher::{CompiledMatcher, HeuristicMatcher, PairwiseMatcher, TrainedMatcher};
pub use model::{log_loss, sigmoid, Adagrad, LogisticModel};
pub use persist::SavedModel;
pub use spec::{ModelSpec, SpecEncoder};
pub use trainer::{train, train_with_negative_pool, TrainConfig, TrainingReport};
