//! Fine-tuning loop (paper Sections 4.1 and 5.1.3).
//!
//! Reproduces the paper's training protocol:
//!
//! * training pairs = **all positive pairs** of the train split plus
//!   randomly sampled negatives at a **5:1 negative:positive** ratio,
//! * **5 epochs**, selecting the epoch with the **lowest validation loss**,
//! * the *-15K* low-label variant: only the first 10K/5K train/val pairs,
//!   discarding pairs that cannot be matched via identifier overlaps
//!   (the cheap-to-label subset a real team would annotate first).

use crate::compiled::{CompiledDataset, FeatureScratch};
use crate::encode::EncodedRecord;
use crate::features::FeatureConfig;
use crate::matcher::TrainedMatcher;
use crate::model::{log_loss, Adagrad, LogisticModel};
use gralmatch_records::{DatasetSplit, GroundTruth, Record, RecordId, RecordPair};
use gralmatch_util::{Error, FxHashSet, Result, SplitRng, Stopwatch};

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Fine-tuning epochs (paper: 5).
    pub epochs: usize,
    /// Adagrad learning rate.
    pub learning_rate: f32,
    /// L2 regularization.
    pub l2: f32,
    /// Negatives sampled per positive (paper: 5).
    pub negative_ratio: usize,
    /// Cap on positive training pairs (the -15K variant uses 10K).
    pub max_train_positives: Option<usize>,
    /// Cap on positive validation pairs (the -15K variant uses 5K).
    pub max_val_positives: Option<usize>,
    /// -15K filter: keep only positives whose records share an identifier
    /// code (discard acquisition-drifted / text-only pairs).
    pub require_id_overlap: bool,
    /// Feature space.
    pub features: FeatureConfig,
    /// Sampling/shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 5,
            learning_rate: 0.5,
            l2: 1e-7,
            negative_ratio: 5,
            max_train_positives: None,
            max_val_positives: None,
            require_id_overlap: false,
            features: FeatureConfig::default(),
            seed: 0x7ea1,
        }
    }
}

impl TrainConfig {
    /// The paper's low-label "-15K" configuration.
    pub fn low_label_15k() -> Self {
        TrainConfig {
            max_train_positives: Some(10_000),
            max_val_positives: Some(5_000),
            require_id_overlap: true,
            ..TrainConfig::default()
        }
    }
}

/// What happened during fine-tuning (Table 3's training-time column and the
/// epoch-selection audit trail).
#[derive(Debug, Clone)]
pub struct TrainingReport {
    /// Mean training log-loss per epoch.
    pub train_losses: Vec<f32>,
    /// Mean validation log-loss per epoch.
    pub val_losses: Vec<f32>,
    /// The selected (lowest-validation-loss) epoch, 0-based.
    pub best_epoch: usize,
    /// Wall-clock training seconds.
    pub train_seconds: f64,
    /// Number of training examples per epoch (positives + negatives).
    pub num_train_examples: usize,
    /// Number of validation examples.
    pub num_val_examples: usize,
}

/// A labeled example: pair + 0/1 label.
#[derive(Debug, Clone, Copy)]
struct Example {
    pair: RecordPair,
    label: f32,
}

fn id_overlap<R: Record>(records: &[R], pair: RecordPair) -> bool {
    let codes_a: FxHashSet<&str> = records[pair.a.0 as usize]
        .id_codes()
        .iter()
        .map(|c| c.value.as_str())
        .collect();
    records[pair.b.0 as usize]
        .id_codes()
        .iter()
        .any(|c| codes_a.contains(c.value.as_str()))
}

/// Collect positive pairs of a split (optionally capped/filtered) plus
/// negatives. Negatives come from `negative_pool` when provided (the
/// fixed hard-negative pairs of benchmarks like WDC Products), topped up
/// with random sampling; otherwise purely random (the paper's protocol for
/// the financial datasets).
#[allow(clippy::too_many_arguments)] // internal; params mirror TrainConfig fields
fn build_examples<R: Record>(
    records: &[R],
    gt: &GroundTruth,
    split_records: &[RecordId],
    split_entities_cap: Option<usize>,
    require_id_overlap: bool,
    negative_ratio: usize,
    negative_pool: Option<&[RecordPair]>,
    rng: &mut SplitRng,
) -> Vec<Example> {
    // Positives: all intra-entity pairs among the split's records.
    let split_set: FxHashSet<RecordId> = split_records.iter().copied().collect();
    let mut positives: Vec<RecordPair> = Vec::new();
    let mut entities: Vec<_> = Vec::new();
    for &r in split_records {
        if let Some(e) = gt.entity_of(r) {
            entities.push(e);
        }
    }
    entities.sort_unstable();
    entities.dedup();
    'outer: for e in entities {
        let members: Vec<RecordId> = gt
            .group_members(e)
            .unwrap_or(&[])
            .iter()
            .copied()
            .filter(|r| split_set.contains(r))
            .collect();
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                let pair = RecordPair::new(members[i], members[j]);
                if require_id_overlap && !id_overlap(records, pair) {
                    continue;
                }
                positives.push(pair);
                if let Some(cap) = split_entities_cap {
                    if positives.len() >= cap {
                        break 'outer;
                    }
                }
            }
        }
    }

    let mut examples: Vec<Example> = positives
        .iter()
        .map(|&pair| Example { pair, label: 1.0 })
        .collect();
    let wanted_negatives = positives.len() * negative_ratio;
    let mut negatives = 0usize;

    // Hard negatives from the pool first (both endpoints in the split,
    // verified non-matches).
    if let Some(pool) = negative_pool {
        let mut hard: Vec<RecordPair> = pool
            .iter()
            .copied()
            .filter(|pair| {
                split_set.contains(&pair.a)
                    && split_set.contains(&pair.b)
                    && !gt.is_match_pair(*pair)
            })
            .collect();
        rng.shuffle(&mut hard);
        for pair in hard.into_iter().take(wanted_negatives) {
            examples.push(Example { pair, label: 0.0 });
            negatives += 1;
        }
    }

    // Top up with random record pairs within the split (rejection
    // sampling; collisions with positives impossible: labels differ by
    // entity).
    let mut attempts = 0usize;
    let max_attempts = wanted_negatives * 20 + 100;
    while negatives < wanted_negatives && attempts < max_attempts && split_records.len() >= 2 {
        attempts += 1;
        let a = split_records[rng.next_below(split_records.len())];
        let b = split_records[rng.next_below(split_records.len())];
        if a == b {
            continue;
        }
        if gt.is_match(a, b) {
            continue;
        }
        examples.push(Example {
            pair: RecordPair::new(a, b),
            label: 0.0,
        });
        negatives += 1;
    }
    examples
}

/// Fine-tune a matcher.
///
/// `records` is the full dataset (dense ids); `encoded` the pre-encoded
/// token streams under the chosen encoder; `split`/`gt` define the
/// labeled pairs.
pub fn train<R: Record>(
    records: &[R],
    encoded: &[EncodedRecord],
    gt: &GroundTruth,
    split: &DatasetSplit,
    config: &TrainConfig,
) -> Result<(TrainedMatcher, TrainingReport)> {
    train_with_negative_pool(records, encoded, gt, split, config, None)
}

/// Fine-tune with an explicit hard-negative pool (benchmarks with fixed
/// provided pairs, such as WDC Products, draw negatives from corner-case
/// candidates rather than random records).
pub fn train_with_negative_pool<R: Record>(
    records: &[R],
    encoded: &[EncodedRecord],
    gt: &GroundTruth,
    split: &DatasetSplit,
    config: &TrainConfig,
    negative_pool: Option<&[RecordPair]>,
) -> Result<(TrainedMatcher, TrainingReport)> {
    if encoded.len() != records.len() {
        return Err(Error::Model(format!(
            "encoded stream count {} != record count {}",
            encoded.len(),
            records.len()
        )));
    }
    if config.epochs == 0 {
        return Err(Error::Model("epochs must be >= 1".into()));
    }
    let stopwatch = Stopwatch::start();
    let root = SplitRng::new(config.seed);
    let mut sample_rng = root.split("negatives");
    let mut shuffle_rng = root.split("shuffle");

    let train_examples = build_examples(
        records,
        gt,
        &split.train_records,
        config.max_train_positives,
        config.require_id_overlap,
        config.negative_ratio,
        negative_pool,
        &mut sample_rng,
    );
    let val_examples = build_examples(
        records,
        gt,
        &split.val_records,
        config.max_val_positives,
        config.require_id_overlap,
        config.negative_ratio,
        negative_pool,
        &mut sample_rng,
    );
    if train_examples.is_empty() {
        return Err(Error::EmptyInput("training pairs"));
    }

    let dim = config.features.dim();
    let mut model = LogisticModel::new(dim);
    let mut optimizer = Adagrad::new(dim, config.learning_rate, config.l2);

    let mut report = TrainingReport {
        train_losses: Vec::with_capacity(config.epochs),
        val_losses: Vec::with_capacity(config.epochs),
        best_epoch: 0,
        train_seconds: 0.0,
        num_train_examples: train_examples.len(),
        num_val_examples: val_examples.len(),
    };
    let mut best: Option<(f32, LogisticModel)> = None;

    // Every epoch re-featurizes the same labeled pairs, so the encoded
    // streams are compiled once (symbols interned, per-symbol feature
    // tables precomputed) and every epoch's featurization is an integer
    // merge. Fully materialized feature vectors are additionally cached
    // below a budget that bounds memory at paper scale (9M+ examples);
    // above it, the compiled path re-featurizes into one reused scratch
    // buffer per epoch — no per-example allocation either way.
    const CACHE_BUDGET: usize = 1_500_000;
    let cache_features = train_examples.len() + val_examples.len() <= CACHE_BUDGET;
    let compiled = CompiledDataset::compile(encoded, &config.features);
    let featurize_pair = |pair: RecordPair| compiled.featurize_pair(pair.a.0, pair.b.0);
    let mut train_cache: Vec<crate::features::PairFeatures> = Vec::new();
    let mut val_cache: Vec<crate::features::PairFeatures> = Vec::new();
    if cache_features {
        train_cache = train_examples
            .iter()
            .map(|e| featurize_pair(e.pair))
            .collect();
        val_cache = val_examples
            .iter()
            .map(|e| featurize_pair(e.pair))
            .collect();
    }
    let mut scratch = FeatureScratch::default();
    let mut workspace = crate::features::PairFeatures::default();
    // Shuffle indices rather than examples so cached features stay aligned.
    let mut train_order: Vec<usize> = (0..train_examples.len()).collect();

    for epoch in 0..config.epochs {
        shuffle_rng.shuffle(&mut train_order);
        let mut train_loss = 0.0f64;
        for &i in &train_order {
            let example = &train_examples[i];
            let loss = if cache_features {
                optimizer.step(&mut model, &train_cache[i], example.label)
            } else {
                compiled.featurize_into(
                    example.pair.a.0,
                    example.pair.b.0,
                    &mut scratch,
                    &mut workspace,
                );
                optimizer.step(&mut model, &workspace, example.label)
            };
            train_loss += loss as f64;
        }
        report
            .train_losses
            .push((train_loss / train_examples.len() as f64) as f32);

        let mut val_loss = 0.0f64;
        for (i, example) in val_examples.iter().enumerate() {
            let loss = if cache_features {
                log_loss(model.predict(&val_cache[i]), example.label)
            } else {
                compiled.featurize_into(
                    example.pair.a.0,
                    example.pair.b.0,
                    &mut scratch,
                    &mut workspace,
                );
                log_loss(model.predict(&workspace), example.label)
            };
            val_loss += loss as f64;
        }
        let val_loss = if val_examples.is_empty() {
            *report.train_losses.last().expect("pushed above")
        } else {
            (val_loss / val_examples.len() as f64) as f32
        };
        report.val_losses.push(val_loss);

        if best.as_ref().is_none_or(|(loss, _)| val_loss < *loss) {
            best = Some((val_loss, model.clone()));
            report.best_epoch = epoch;
        }
    }

    let (_, best_model) = best.expect("at least one epoch ran");
    report.train_seconds = stopwatch.elapsed_secs();
    Ok((TrainedMatcher::new(best_model, config.features), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{encode_dataset, PlainEncoder};
    use crate::matcher::PairwiseMatcher;
    use gralmatch_datagen::{generate, GenerationConfig};
    use gralmatch_records::SplitRatios;

    fn small_training_setup() -> (
        Vec<gralmatch_records::CompanyRecord>,
        Vec<EncodedRecord>,
        GroundTruth,
        DatasetSplit,
    ) {
        let mut config = GenerationConfig::synthetic_full();
        config.num_entities = 120;
        let data = generate(&config).unwrap();
        let records = data.companies.records().to_vec();
        let encoded = encode_dataset(&records, &PlainEncoder::new(128));
        let gt = GroundTruth::from_records(&records);
        let split = DatasetSplit::new(&gt, SplitRatios::default(), &mut SplitRng::new(1));
        (records, encoded, gt, split)
    }

    #[test]
    fn training_learns_to_match() {
        let (records, encoded, gt, split) = small_training_setup();
        let config = TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        };
        let (matcher, report) = train(&records, &encoded, &gt, &split, &config).unwrap();
        assert_eq!(report.train_losses.len(), 3);
        // Loss must drop substantially from the untrained ~0.69.
        assert!(report.train_losses[2] < 0.3, "{:?}", report.train_losses);

        // Sanity: a true test pair scores higher than a random non-pair.
        let test_set = split.test_set();
        let restricted = gt.restrict_to(&test_set);
        let true_pair = restricted.all_true_pairs()[0];
        let score_pos = matcher.score(
            &encoded[true_pair.a.0 as usize],
            &encoded[true_pair.b.0 as usize],
        );
        let a = split.test_records[0];
        let b = split
            .test_records
            .iter()
            .find(|&&r| !gt.is_match(a, r) && r != a)
            .copied()
            .unwrap();
        let score_neg = matcher.score(&encoded[a.0 as usize], &encoded[b.0 as usize]);
        assert!(
            score_pos > score_neg,
            "positive {score_pos} must beat negative {score_neg}"
        );
    }

    #[test]
    fn best_epoch_selected_by_val_loss() {
        let (records, encoded, gt, split) = small_training_setup();
        let (_, report) = train(&records, &encoded, &gt, &split, &TrainConfig::default()).unwrap();
        let min_val = report
            .val_losses
            .iter()
            .cloned()
            .fold(f32::INFINITY, f32::min);
        assert_eq!(report.val_losses[report.best_epoch], min_val);
    }

    #[test]
    fn low_label_variant_uses_fewer_pairs() {
        let (records, encoded, gt, split) = small_training_setup();
        let full = train(&records, &encoded, &gt, &split, &TrainConfig::default())
            .unwrap()
            .1;
        let mut low_config = TrainConfig::low_label_15k();
        low_config.max_train_positives = Some(50);
        low_config.max_val_positives = Some(20);
        let low = train(&records, &encoded, &gt, &split, &low_config)
            .unwrap()
            .1;
        assert!(low.num_train_examples < full.num_train_examples);
    }

    #[test]
    fn id_filter_drops_non_id_pairs() {
        let (records, encoded, gt, split) = small_training_setup();
        let unfiltered = TrainConfig::default();
        let filtered = TrainConfig {
            require_id_overlap: true,
            ..TrainConfig::default()
        };
        let n_unfiltered = train(&records, &encoded, &gt, &split, &unfiltered)
            .unwrap()
            .1
            .num_train_examples;
        let n_filtered = train(&records, &encoded, &gt, &split, &filtered)
            .unwrap()
            .1
            .num_train_examples;
        // Companies only share LEIs (60% coverage), so the filter must drop
        // a noticeable share of positives.
        assert!(n_filtered < n_unfiltered);
    }

    #[test]
    fn zero_epochs_rejected() {
        let (records, encoded, gt, split) = small_training_setup();
        let config = TrainConfig {
            epochs: 0,
            ..TrainConfig::default()
        };
        assert!(train(&records, &encoded, &gt, &split, &config).is_err());
    }

    #[test]
    fn mismatched_encoding_rejected() {
        let (records, encoded, gt, split) = small_training_setup();
        let result = train(
            &records,
            &encoded[..encoded.len() - 1],
            &gt,
            &split,
            &TrainConfig::default(),
        );
        assert!(result.is_err());
    }

    #[test]
    fn deterministic_training() {
        let (records, encoded, gt, split) = small_training_setup();
        let r1 = train(&records, &encoded, &gt, &split, &TrainConfig::default()).unwrap();
        let r2 = train(&records, &encoded, &gt, &split, &TrainConfig::default()).unwrap();
        assert_eq!(r1.1.train_losses, r2.1.train_losses);
        assert_eq!(r1.1.best_epoch, r2.1.best_epoch);
    }
}
