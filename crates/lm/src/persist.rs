//! Trained-matcher persistence.
//!
//! A [`SavedModel`] bundles everything a *later process* needs to score
//! pairs exactly like the training run did: the logistic head's weights
//! ([`LogisticModel`] round-trips through `util::json`), the feature-space
//! configuration, the decision threshold, and the [`ModelSpec`] naming the
//! encoder (plain vs DITTO, token budget) that produced the training
//! streams. Serialization is canonical JSON, and because `f32 → f64 → f32`
//! is exact for finite values, a reloaded model produces **bit-identical**
//! scores (unit-tested below).
//!
//! The repro/table4 binaries expose this as `--save-model DIR` /
//! `--load-model DIR`; the serve binary loads one saved model next to a
//! persisted `PipelineState` to reconstruct a full scoring engine from
//! disk.
//!
//! [`LogisticModel`]: crate::model::LogisticModel

use crate::matcher::TrainedMatcher;
use crate::spec::ModelSpec;
use gralmatch_util::{Error, FromJson, Json, JsonError, ToJson};
use std::path::Path;

/// A trained matcher plus the encoder spec it was trained under — the
/// on-disk unit of model persistence.
#[derive(Debug, Clone)]
pub struct SavedModel {
    /// Encoder + training lineup the matcher was produced with. Encoding
    /// *new* records (incremental inserts, serve batches) must go through
    /// this spec's encoder or scores silently drift.
    pub spec: ModelSpec,
    /// The matcher: weights, feature space, threshold.
    pub matcher: TrainedMatcher,
}

impl SavedModel {
    /// Bundle a matcher with its spec.
    pub fn new(spec: ModelSpec, matcher: TrainedMatcher) -> Self {
        SavedModel { spec, matcher }
    }

    /// Write the model as pretty JSON.
    pub fn save(&self, path: &Path) -> Result<(), Error> {
        std::fs::write(path, self.to_json().to_pretty_string()).map_err(Error::Io)
    }

    /// Load a model saved by [`SavedModel::save`].
    pub fn load(path: &Path) -> Result<Self, Error> {
        let text = std::fs::read_to_string(path).map_err(Error::Io)?;
        let json = Json::parse(&text).map_err(|e| Error::Model(e.message))?;
        SavedModel::from_json(&json).map_err(|e| Error::Model(e.message))
    }
}

impl ToJson for SavedModel {
    fn to_json(&self) -> Json {
        Json::obj([
            ("spec", self.spec.to_json()),
            ("matcher", self.matcher.to_json()),
        ])
    }
}

impl FromJson for SavedModel {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(SavedModel {
            spec: ModelSpec::from_json(json.field("spec")?)?,
            matcher: TrainedMatcher::from_json(json.field("matcher")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::PairwiseMatcher;
    use crate::trainer::train;
    use gralmatch_datagen::{generate, GenerationConfig};
    use gralmatch_records::{DatasetSplit, Record, RecordPair, SplitRatios};
    use gralmatch_util::SplitRng;

    #[test]
    fn saved_model_round_trips_with_bit_identical_scores() {
        let mut config = GenerationConfig::synthetic_full();
        config.num_entities = 60;
        let data = generate(&config).unwrap();
        let companies = data.companies.records();
        let gt = data.companies.ground_truth();
        let spec = ModelSpec::DistilBert128All;
        let encoded = spec.encode_records(companies);
        let split = DatasetSplit::new(&gt, SplitRatios::default(), &mut SplitRng::new(11));
        let (matcher, _) = train(companies, &encoded, &gt, &split, &spec.train_config()).unwrap();
        let matcher = matcher.with_threshold(0.4375);

        let saved = SavedModel::new(spec, matcher.clone());
        let text = saved.to_json().to_compact_string();
        let back = SavedModel::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.spec, spec);
        assert_eq!(back.matcher.threshold, matcher.threshold);
        assert_eq!(back.matcher.features, matcher.features);
        // Canonical serialization: re-serializing the reload is identical.
        assert_eq!(back.to_json().to_compact_string(), text);

        // Bit-identical scores over a spread of pairs (same + cross
        // entity), through the reference featurization path.
        let n = companies.len() as u32;
        for i in 0..n.min(40) {
            let j = (i * 13 + 7) % n;
            if i == j {
                continue;
            }
            let pair = RecordPair::new(
                gralmatch_records::RecordId(i),
                gralmatch_records::RecordId(j),
            );
            let a = &encoded[pair.a.0 as usize];
            let b = &encoded[pair.b.0 as usize];
            assert_eq!(
                matcher.score(a, b).to_bits(),
                back.matcher.score(a, b).to_bits(),
                "pair {pair:?} scored differently after reload"
            );
        }
        let _ = companies[0].id();
    }

    #[test]
    fn saved_model_file_round_trip_and_corruption_errors() {
        let matcher = TrainedMatcher::new(
            crate::model::LogisticModel::new(crate::features::FeatureConfig::default().dim()),
            crate::features::FeatureConfig::default(),
        );
        let saved = SavedModel::new(ModelSpec::Ditto128, matcher);
        let dir = std::env::temp_dir().join("gralmatch-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        saved.save(&path).unwrap();
        let back = SavedModel::load(&path).unwrap();
        assert_eq!(back.spec, ModelSpec::Ditto128);

        // A model whose weight vector disagrees with its feature space
        // must be rejected at load time, not panic at first score.
        let mut json = saved.to_json();
        if let Json::Obj(fields) = &mut json {
            for (key, value) in fields.iter_mut() {
                if key == "matcher" {
                    if let Json::Obj(matcher_fields) = value {
                        for (mkey, mvalue) in matcher_fields.iter_mut() {
                            if mkey == "features" {
                                *mvalue = Json::obj([("hash_dim", 1024u32.to_json())]);
                            }
                        }
                    }
                }
            }
        }
        assert!(SavedModel::from_json(&json).is_err());
        std::fs::remove_file(&path).ok();
    }
}
