//! Linear classification head with Adagrad training.
//!
//! The "fine-tuned language model" of the reproduction: a logistic
//! regression over the hashed pair features. Adagrad's per-coordinate
//! learning rates are the standard choice for sparse high-dimensional text
//! features (frequent boilerplate features anneal quickly, rare
//! discriminative features keep learning).

use crate::features::PairFeatures;
use gralmatch_util::{FromJson, Json, JsonError, ToJson};

/// Numerically stable logistic function.
#[inline]
pub fn sigmoid(z: f32) -> f32 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Binary cross-entropy of a predicted probability against a 0/1 label.
#[inline]
pub fn log_loss(probability: f32, label: f32) -> f32 {
    let p = probability.clamp(1e-7, 1.0 - 1e-7);
    -(label * p.ln() + (1.0 - label) * (1.0 - p).ln())
}

/// Logistic-regression model over the hashed feature space.
#[derive(Debug, Clone)]
pub struct LogisticModel {
    weights: Vec<f32>,
    bias: f32,
}

impl LogisticModel {
    /// Zero-initialized model of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        LogisticModel {
            weights: vec![0.0; dim],
            bias: 0.0,
        }
    }

    /// Feature-space dimension.
    pub fn dim(&self) -> usize {
        self.weights.len()
    }

    /// Raw margin (pre-sigmoid).
    #[inline]
    pub fn margin(&self, features: &PairFeatures) -> f32 {
        let mut z = self.bias;
        for (&index, &value) in features.indices.iter().zip(&features.values) {
            z += self.weights[index as usize] * value;
        }
        z
    }

    /// Match probability.
    #[inline]
    pub fn predict(&self, features: &PairFeatures) -> f32 {
        sigmoid(self.margin(features))
    }
}

impl ToJson for LogisticModel {
    fn to_json(&self) -> Json {
        Json::obj([
            ("weights", self.weights.to_json()),
            ("bias", self.bias.to_json()),
        ])
    }
}

impl FromJson for LogisticModel {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(LogisticModel {
            weights: Vec::from_json(json.field("weights")?)?,
            bias: f32::from_json(json.field("bias")?)?,
        })
    }
}

/// Adagrad optimizer state for a [`LogisticModel`].
#[derive(Debug, Clone)]
pub struct Adagrad {
    accumulated: Vec<f32>,
    accumulated_bias: f32,
    learning_rate: f32,
    l2: f32,
}

impl Adagrad {
    /// Create optimizer state for a model of dimension `dim`.
    pub fn new(dim: usize, learning_rate: f32, l2: f32) -> Self {
        Adagrad {
            accumulated: vec![0.0; dim],
            accumulated_bias: 0.0,
            learning_rate,
            l2,
        }
    }

    /// One SGD example: compute loss gradient, update touched weights.
    /// Returns the example's log loss (pre-update), for epoch reporting.
    pub fn step(&mut self, model: &mut LogisticModel, features: &PairFeatures, label: f32) -> f32 {
        let probability = model.predict(features);
        let error = probability - label; // d(loss)/d(margin)
        for (&index, &value) in features.indices.iter().zip(&features.values) {
            let i = index as usize;
            let gradient = error * value + self.l2 * model.weights[i];
            self.accumulated[i] += gradient * gradient;
            model.weights[i] -= self.learning_rate * gradient / (self.accumulated[i].sqrt() + 1e-8);
        }
        let bias_gradient = error;
        self.accumulated_bias += bias_gradient * bias_gradient;
        model.bias -= self.learning_rate * bias_gradient / (self.accumulated_bias.sqrt() + 1e-8);
        log_loss(probability, label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features(indices: &[u32], values: &[f32]) -> PairFeatures {
        PairFeatures {
            indices: indices.to_vec(),
            values: values.to_vec(),
        }
    }

    #[test]
    fn sigmoid_basics() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(10.0) > 0.999);
        assert!(sigmoid(-10.0) < 0.001);
        // Stability at extremes.
        assert!(sigmoid(-100.0) >= 0.0);
        assert!(sigmoid(100.0) <= 1.0);
    }

    #[test]
    fn log_loss_bounds() {
        assert!(log_loss(0.5, 1.0) > 0.69 && log_loss(0.5, 1.0) < 0.70);
        assert!(log_loss(0.99, 1.0) < 0.02);
        assert!(log_loss(0.01, 1.0) > 4.0);
        assert!(log_loss(1.0, 1.0).is_finite(), "clamped at the boundary");
    }

    #[test]
    fn untrained_model_predicts_half() {
        let model = LogisticModel::new(16);
        let f = features(&[3, 7], &[1.0, -1.0]);
        assert!((model.predict(&f) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn training_separates_a_simple_pattern() {
        // Feature 0 on => positive; feature 1 on => negative.
        let mut model = LogisticModel::new(8);
        let mut optimizer = Adagrad::new(8, 0.5, 0.0);
        let positive = features(&[0], &[1.0]);
        let negative = features(&[1], &[1.0]);
        for _ in 0..200 {
            optimizer.step(&mut model, &positive, 1.0);
            optimizer.step(&mut model, &negative, 0.0);
        }
        assert!(model.predict(&positive) > 0.9);
        assert!(model.predict(&negative) < 0.1);
    }

    #[test]
    fn loss_decreases_over_training() {
        let mut model = LogisticModel::new(4);
        let mut optimizer = Adagrad::new(4, 0.3, 0.0);
        let example = features(&[2], &[1.0]);
        let first = optimizer.step(&mut model, &example, 1.0);
        let mut last = first;
        for _ in 0..50 {
            last = optimizer.step(&mut model, &example, 1.0);
        }
        assert!(last < first);
    }

    #[test]
    fn l2_shrinks_weights() {
        let train = |l2: f32| {
            let mut model = LogisticModel::new(4);
            let mut optimizer = Adagrad::new(4, 0.5, l2);
            let example = features(&[0], &[1.0]);
            for _ in 0..100 {
                optimizer.step(&mut model, &example, 1.0);
            }
            model.margin(&example).abs()
        };
        assert!(train(0.1) < train(0.0));
    }

    #[test]
    fn json_round_trip() {
        let mut model = LogisticModel::new(4);
        let mut optimizer = Adagrad::new(4, 0.5, 0.0);
        optimizer.step(&mut model, &features(&[0], &[1.0]), 1.0);
        let json = model.to_json().to_compact_string();
        let back = LogisticModel::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back.dim(), 4);
        let f = features(&[0], &[1.0]);
        assert!((back.predict(&f) - model.predict(&f)).abs() < 1e-7);
    }
}
