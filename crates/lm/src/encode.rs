//! Pair encoders and sequence-length truncation.
//!
//! The paper compares two record serializations (Section 5.2):
//!
//! * **DistilBERT-style** ([`PlainEncoder`]): field values concatenated —
//!   `crowdstrike holdings austin texas usa …`
//! * **DITTO-style** ([`DittoEncoder`]): every column wrapped in markers —
//!   `[col] name [val] crowdstrike holdings [col] city [val] austin …`
//!
//! The DITTO scheme "increases the amount of tokens required to encode the
//! same value information" — under a fixed token budget (128 vs 256) the
//! markers crowd out *late* fields, which for securities are the identifier
//! codes. That truncation is exactly why DITTO(128) collapses on the
//! securities datasets in Tables 3/4, and this module reproduces it
//! mechanically: encoders emit a token stream per record, and the pair
//! budget is split evenly between the two records.

use gralmatch_records::Record;
use gralmatch_text::tokenize_into;

/// Word tokens longer than this are split into subword chunks, modelling
/// wordpiece tokenization: a transformer's vocabulary has no entry for an
/// ISIN like `us31807756e`, so it falls apart into several sub-tokens —
/// which is what makes identifier-heavy records long under a token budget.
const SUBWORD_MAX: usize = 6;
const SUBWORD_CHUNK: usize = 3;

/// Append `token` (or its subword chunks) to `out`. Streams the char
/// iterator directly into chunk strings — no intermediate `Vec<char>`
/// per token, and short tokens move through untouched.
fn subword_split_into(token: String, out: &mut Vec<String>) {
    if token.chars().count() <= SUBWORD_MAX || token.starts_with('[') {
        out.push(token);
        return;
    }
    let mut chunk = String::with_capacity(SUBWORD_CHUNK * 2);
    let mut chunk_chars = 0usize;
    for c in token.chars() {
        chunk.push(c);
        chunk_chars += 1;
        if chunk_chars == SUBWORD_CHUNK {
            out.push(std::mem::take(&mut chunk));
            chunk_chars = 0;
        }
    }
    if !chunk.is_empty() {
        out.push(chunk);
    }
}

/// A record serialized to a (possibly truncated) token stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EncodedRecord {
    /// Lowercased tokens, truncated to the encoder's per-record budget.
    pub tokens: Vec<String>,
}

impl EncodedRecord {
    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

/// A record-to-token-stream serializer with a pair sequence budget.
pub trait PairEncoder: Sync {
    /// Maximum tokens for the *pair*, like the transformer max sequence
    /// length it models. No separator tokens are emitted between the two
    /// records — the budget is split evenly, each record keeping
    /// `max_seq_len / 2` tokens (see [`PairEncoder::encode`]).
    fn max_seq_len(&self) -> usize;

    /// Serialize one record's fields into tokens (no truncation).
    fn serialize<R: Record>(&self, record: &R) -> Vec<String>;

    /// Encode a record, truncated to its half of the pair budget
    /// (`max_seq_len / 2` tokens — the entire budget is record content;
    /// markers like `[col]`/`[val]` count because they are real emitted
    /// tokens, but no pair-separator token exists to account for).
    fn encode<R: Record>(&self, record: &R) -> EncodedRecord {
        let mut tokens = self.serialize(record);
        tokens.truncate(self.max_seq_len() / 2);
        EncodedRecord { tokens }
    }
}

/// DistilBERT-style serialization: values only, in field order.
#[derive(Debug, Clone)]
pub struct PlainEncoder {
    max_seq_len: usize,
}

impl PlainEncoder {
    /// Create with a pair token budget (the paper uses 128).
    pub fn new(max_seq_len: usize) -> Self {
        assert!(max_seq_len >= 8, "budget too small to encode anything");
        PlainEncoder { max_seq_len }
    }
}

impl PairEncoder for PlainEncoder {
    fn max_seq_len(&self) -> usize {
        self.max_seq_len
    }

    fn serialize<R: Record>(&self, record: &R) -> Vec<String> {
        let mut raw = Vec::with_capacity(32);
        for (_, value) in record.fields() {
            tokenize_into(&value, &mut raw);
        }
        let mut tokens = Vec::with_capacity(raw.len() + 8);
        for token in raw {
            subword_split_into(token, &mut tokens);
        }
        tokens
    }
}

/// DITTO-style serialization: `[col] <name> [val] <value tokens>` per field.
/// The markers are real tokens and consume budget.
#[derive(Debug, Clone)]
pub struct DittoEncoder {
    max_seq_len: usize,
}

impl DittoEncoder {
    /// Create with a pair token budget (the paper uses 128 and 256).
    pub fn new(max_seq_len: usize) -> Self {
        assert!(max_seq_len >= 8, "budget too small to encode anything");
        DittoEncoder { max_seq_len }
    }
}

impl PairEncoder for DittoEncoder {
    fn max_seq_len(&self) -> usize {
        self.max_seq_len
    }

    fn serialize<R: Record>(&self, record: &R) -> Vec<String> {
        let mut tokens = Vec::with_capacity(48);
        // One value-token buffer reused across all fields: `drain` hands
        // each token on to the subword splitter while keeping the buffer's
        // capacity for the next field.
        let mut value_tokens: Vec<String> = Vec::with_capacity(8);
        for (column, value) in record.fields() {
            tokens.push("[col]".to_string());
            tokens.push(column.to_string());
            tokens.push("[val]".to_string());
            tokenize_into(&value, &mut value_tokens);
            for token in value_tokens.drain(..) {
                subword_split_into(token, &mut tokens);
            }
        }
        tokens
    }
}

/// Encode every record of a dataset once (inference reuses the streams for
/// all candidate pairs involving the record).
pub fn encode_dataset<R: Record, E: PairEncoder>(records: &[R], encoder: &E) -> Vec<EncodedRecord> {
    records.iter().map(|r| encoder.encode(r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gralmatch_records::{CompanyRecord, IdCode, IdKind, RecordId, SecurityRecord, SourceId};

    fn company() -> CompanyRecord {
        let mut c = CompanyRecord::new(RecordId(0), SourceId(0), "Crowdstrike Holdings");
        c.city = "Austin".into();
        c.country_code = "USA".into();
        c
    }

    fn security_with_codes(n: usize) -> SecurityRecord {
        let mut s = SecurityRecord::new(
            RecordId(0),
            SourceId(0),
            "Crowdstrike Registered Shs",
            RecordId(1),
        );
        for i in 0..n {
            s.id_codes
                .push(IdCode::new(IdKind::Isin, format!("US{i:010}")));
        }
        s
    }

    #[test]
    fn plain_serialization_values_only() {
        // "crowdstrike" and "holdings" exceed the subword limit and split
        // into 4-char chunks (wordpiece modelling); no `[col]` markers.
        let tokens = PlainEncoder::new(128).serialize(&company());
        assert_eq!(
            tokens,
            vec!["cro", "wds", "tri", "ke", "hol", "din", "gs", "austin", "usa"]
        );
        assert!(!tokens.iter().any(|t| t.starts_with('[')));
    }

    #[test]
    fn subword_split_rules() {
        let mut split = Vec::new();
        for token in ["austin", "us31807756e", "[col]"] {
            subword_split_into(token.to_string(), &mut split);
        }
        assert_eq!(split, vec!["austin", "us3", "180", "775", "6e", "[col]"]);
    }

    #[test]
    fn ditto_serialization_adds_markers() {
        let tokens = DittoEncoder::new(128).serialize(&company());
        assert_eq!(tokens[0], "[col]");
        assert_eq!(tokens[1], "name");
        assert_eq!(tokens[2], "[val]");
        assert!(tokens.len() > PlainEncoder::new(128).serialize(&company()).len());
    }

    #[test]
    fn truncation_respects_half_budget() {
        let sec = security_with_codes(40);
        let encoded = DittoEncoder::new(128).encode(&sec);
        assert!(encoded.len() <= 64);
    }

    #[test]
    fn ditto_small_budget_loses_identifiers() {
        // The mechanism behind DITTO(128)'s securities failure: with many
        // identifier tokens and marker overhead, a 128 budget truncates the
        // identifier field away while 256 keeps (some of) it.
        let sec = security_with_codes(30);
        let small = DittoEncoder::new(128).encode(&sec);
        let large = DittoEncoder::new(256).encode(&sec);
        let count_ids =
            |enc: &EncodedRecord| enc.tokens.iter().filter(|t| t.starts_with("us")).count();
        assert!(count_ids(&large) > count_ids(&small));
    }

    #[test]
    fn plain_keeps_more_payload_than_ditto_at_equal_budget() {
        let sec = security_with_codes(30);
        let plain = PlainEncoder::new(128).encode(&sec);
        let ditto = DittoEncoder::new(128).encode(&sec);
        let payload =
            |enc: &EncodedRecord| enc.tokens.iter().filter(|t| !t.starts_with('[')).count();
        assert!(payload(&plain) >= payload(&ditto));
    }

    #[test]
    fn encode_dataset_covers_all() {
        let records = vec![company()];
        let encoded = encode_dataset(&records, &PlainEncoder::new(128));
        assert_eq!(encoded.len(), 1);
        assert!(!encoded[0].is_empty());
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn tiny_budget_rejected() {
        let _ = PlainEncoder::new(2);
    }
}
