//! Model specifications matching the paper's Section 5.2 lineup.
//!
//! | Spec | Encoder | Budget | Training set |
//! |---|---|---|---|
//! | `Ditto128` | DITTO `[col]…[val]…` | 128 | all pairs |
//! | `Ditto256` | DITTO `[col]…[val]…` | 256 | all pairs |
//! | `DistilBert128All` | plain values | 128 | all pairs |
//! | `DistilBert128Low` | plain values | 128 | first 10K/5K ID-matchable |
//!
//! The spec bundles the encoder choice with the training configuration so
//! the experiment harness can iterate `ModelSpec::ALL` exactly like the
//! rows of Tables 3 and 4.

use crate::encode::{DittoEncoder, EncodedRecord, PairEncoder, PlainEncoder};
use crate::trainer::TrainConfig;
use gralmatch_records::Record;
use gralmatch_util::{FromJson, Json, JsonError, ToJson};

/// One row of the paper's model lineup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelSpec {
    /// DITTO encoding, 128-token budget.
    Ditto128,
    /// DITTO encoding, 256-token budget.
    Ditto256,
    /// Plain (DistilBERT-style) encoding, 128 tokens, trained on all pairs.
    DistilBert128All,
    /// Plain encoding, 128 tokens, low-label (-15K) training.
    DistilBert128Low,
}

impl ModelSpec {
    /// All specs, in the row order of Table 3.
    pub const ALL: [ModelSpec; 4] = [
        ModelSpec::Ditto128,
        ModelSpec::Ditto256,
        ModelSpec::DistilBert128Low,
        ModelSpec::DistilBert128All,
    ];

    /// Display name as printed in the paper's tables.
    pub fn display_name(&self) -> &'static str {
        match self {
            ModelSpec::Ditto128 => "DITTO (128)",
            ModelSpec::Ditto256 => "DITTO (256)",
            ModelSpec::DistilBert128All => "DistilBERT (128)-ALL",
            ModelSpec::DistilBert128Low => "DistilBERT (128)-15K",
        }
    }

    /// Pair token budget.
    pub fn max_seq_len(&self) -> usize {
        match self {
            ModelSpec::Ditto256 => 256,
            _ => 128,
        }
    }

    /// Whether this spec uses the DITTO `[col]…[val]…` serialization.
    pub fn is_ditto(&self) -> bool {
        matches!(self, ModelSpec::Ditto128 | ModelSpec::Ditto256)
    }

    /// Encode a record slice under this spec's encoder.
    pub fn encode_records<R: Record>(&self, records: &[R]) -> Vec<EncodedRecord> {
        let encoder = self.encoder();
        records.iter().map(|r| encoder.encode(r)).collect()
    }

    /// This spec's encoder as a value — for callers that encode records
    /// one at a time over a long lifetime (the engine's compiled-view
    /// providers, the serve binary) rather than a slice up front.
    pub fn encoder(&self) -> SpecEncoder {
        if self.is_ditto() {
            SpecEncoder::Ditto(DittoEncoder::new(self.max_seq_len()))
        } else {
            SpecEncoder::Plain(PlainEncoder::new(self.max_seq_len()))
        }
    }

    /// Stable identifier used by model persistence ([`crate::persist`]).
    pub fn key(&self) -> &'static str {
        match self {
            ModelSpec::Ditto128 => "ditto-128",
            ModelSpec::Ditto256 => "ditto-256",
            ModelSpec::DistilBert128All => "distilbert-128-all",
            ModelSpec::DistilBert128Low => "distilbert-128-15k",
        }
    }

    /// Inverse of [`ModelSpec::key`].
    pub fn from_key(key: &str) -> Option<ModelSpec> {
        ModelSpec::ALL.into_iter().find(|spec| spec.key() == key)
    }

    /// The training configuration for this spec.
    pub fn train_config(&self) -> TrainConfig {
        match self {
            ModelSpec::DistilBert128Low => TrainConfig::low_label_15k(),
            _ => TrainConfig::default(),
        }
    }
}

impl std::fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.display_name())
    }
}

impl ToJson for ModelSpec {
    fn to_json(&self) -> Json {
        Json::Str(self.key().to_string())
    }
}

impl FromJson for ModelSpec {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let key = json.as_str().ok_or_else(|| JsonError {
            message: "expected model-spec string".into(),
        })?;
        ModelSpec::from_key(key).ok_or_else(|| JsonError {
            message: format!("unknown model spec {key:?}"),
        })
    }
}

/// A [`ModelSpec`]'s encoder as one owned value (the [`PairEncoder`] trait
/// has generic methods, so it cannot be boxed as a trait object).
#[derive(Debug, Clone)]
pub enum SpecEncoder {
    /// DITTO `[col]…[val]…` serialization.
    Ditto(DittoEncoder),
    /// Plain value serialization.
    Plain(PlainEncoder),
}

impl PairEncoder for SpecEncoder {
    fn max_seq_len(&self) -> usize {
        match self {
            SpecEncoder::Ditto(encoder) => encoder.max_seq_len(),
            SpecEncoder::Plain(encoder) => encoder.max_seq_len(),
        }
    }

    fn serialize<R: Record>(&self, record: &R) -> Vec<String> {
        match self {
            SpecEncoder::Ditto(encoder) => encoder.serialize(record),
            SpecEncoder::Plain(encoder) => encoder.serialize(record),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gralmatch_records::{CompanyRecord, RecordId, SourceId};

    #[test]
    fn spec_budgets() {
        assert_eq!(ModelSpec::Ditto128.max_seq_len(), 128);
        assert_eq!(ModelSpec::Ditto256.max_seq_len(), 256);
        assert_eq!(ModelSpec::DistilBert128All.max_seq_len(), 128);
    }

    #[test]
    fn low_label_spec_has_caps() {
        let config = ModelSpec::DistilBert128Low.train_config();
        assert_eq!(config.max_train_positives, Some(10_000));
        assert!(config.require_id_overlap);
        let full = ModelSpec::DistilBert128All.train_config();
        assert_eq!(full.max_train_positives, None);
    }

    #[test]
    fn encoders_dispatch() {
        let records = vec![CompanyRecord::new(RecordId(0), SourceId(0), "Acme Corp")];
        let ditto = ModelSpec::Ditto128.encode_records(&records);
        let plain = ModelSpec::DistilBert128All.encode_records(&records);
        assert!(ditto[0].tokens.contains(&"[col]".to_string()));
        assert!(!plain[0].tokens.contains(&"[col]".to_string()));
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(ModelSpec::Ditto128.to_string(), "DITTO (128)");
        assert_eq!(
            ModelSpec::DistilBert128Low.to_string(),
            "DistilBERT (128)-15K"
        );
    }
}
