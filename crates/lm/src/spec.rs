//! Model specifications matching the paper's Section 5.2 lineup.
//!
//! | Spec | Encoder | Budget | Training set |
//! |---|---|---|---|
//! | `Ditto128` | DITTO `[col]…[val]…` | 128 | all pairs |
//! | `Ditto256` | DITTO `[col]…[val]…` | 256 | all pairs |
//! | `DistilBert128All` | plain values | 128 | all pairs |
//! | `DistilBert128Low` | plain values | 128 | first 10K/5K ID-matchable |
//!
//! The spec bundles the encoder choice with the training configuration so
//! the experiment harness can iterate `ModelSpec::ALL` exactly like the
//! rows of Tables 3 and 4.

use crate::encode::{DittoEncoder, EncodedRecord, PairEncoder, PlainEncoder};
use crate::trainer::TrainConfig;
use gralmatch_records::Record;

/// One row of the paper's model lineup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelSpec {
    /// DITTO encoding, 128-token budget.
    Ditto128,
    /// DITTO encoding, 256-token budget.
    Ditto256,
    /// Plain (DistilBERT-style) encoding, 128 tokens, trained on all pairs.
    DistilBert128All,
    /// Plain encoding, 128 tokens, low-label (-15K) training.
    DistilBert128Low,
}

impl ModelSpec {
    /// All specs, in the row order of Table 3.
    pub const ALL: [ModelSpec; 4] = [
        ModelSpec::Ditto128,
        ModelSpec::Ditto256,
        ModelSpec::DistilBert128Low,
        ModelSpec::DistilBert128All,
    ];

    /// Display name as printed in the paper's tables.
    pub fn display_name(&self) -> &'static str {
        match self {
            ModelSpec::Ditto128 => "DITTO (128)",
            ModelSpec::Ditto256 => "DITTO (256)",
            ModelSpec::DistilBert128All => "DistilBERT (128)-ALL",
            ModelSpec::DistilBert128Low => "DistilBERT (128)-15K",
        }
    }

    /// Pair token budget.
    pub fn max_seq_len(&self) -> usize {
        match self {
            ModelSpec::Ditto256 => 256,
            _ => 128,
        }
    }

    /// Whether this spec uses the DITTO `[col]…[val]…` serialization.
    pub fn is_ditto(&self) -> bool {
        matches!(self, ModelSpec::Ditto128 | ModelSpec::Ditto256)
    }

    /// Encode a record slice under this spec's encoder.
    pub fn encode_records<R: Record>(&self, records: &[R]) -> Vec<EncodedRecord> {
        if self.is_ditto() {
            let encoder = DittoEncoder::new(self.max_seq_len());
            records.iter().map(|r| encoder.encode(r)).collect()
        } else {
            let encoder = PlainEncoder::new(self.max_seq_len());
            records.iter().map(|r| encoder.encode(r)).collect()
        }
    }

    /// The training configuration for this spec.
    pub fn train_config(&self) -> TrainConfig {
        match self {
            ModelSpec::DistilBert128Low => TrainConfig::low_label_15k(),
            _ => TrainConfig::default(),
        }
    }
}

impl std::fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.display_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gralmatch_records::{CompanyRecord, RecordId, SourceId};

    #[test]
    fn spec_budgets() {
        assert_eq!(ModelSpec::Ditto128.max_seq_len(), 128);
        assert_eq!(ModelSpec::Ditto256.max_seq_len(), 256);
        assert_eq!(ModelSpec::DistilBert128All.max_seq_len(), 128);
    }

    #[test]
    fn low_label_spec_has_caps() {
        let config = ModelSpec::DistilBert128Low.train_config();
        assert_eq!(config.max_train_positives, Some(10_000));
        assert!(config.require_id_overlap);
        let full = ModelSpec::DistilBert128All.train_config();
        assert_eq!(full.max_train_positives, None);
    }

    #[test]
    fn encoders_dispatch() {
        let records = vec![CompanyRecord::new(RecordId(0), SourceId(0), "Acme Corp")];
        let ditto = ModelSpec::Ditto128.encode_records(&records);
        let plain = ModelSpec::DistilBert128All.encode_records(&records);
        assert!(ditto[0].tokens.contains(&"[col]".to_string()));
        assert!(!plain[0].tokens.contains(&"[col]".to_string()));
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(ModelSpec::Ditto128.to_string(), "DITTO (128)");
        assert_eq!(
            ModelSpec::DistilBert128Low.to_string(),
            "DistilBERT (128)-15K"
        );
    }
}
