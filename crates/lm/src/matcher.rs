//! The pairwise-matcher abstraction and baselines.
//!
//! GraLMatch "is not limited to language model-based pairwise matching
//! models, but also supports any matching method that produces pairwise
//! matches" (paper Section 1). Everything downstream (blocking evaluation,
//! graph cleanup, the tables) consumes this trait.

use crate::compiled::{CompiledDataset, ScoreScratch};
use crate::encode::EncodedRecord;
use crate::features::{featurize, FeatureConfig};
use crate::model::LogisticModel;
use gralmatch_util::{FromJson, Json, JsonError, ToJson};

/// A symmetric pairwise match scorer over encoded records.
pub trait PairwiseMatcher: Sync {
    /// Match probability in [0, 1].
    fn score(&self, a: &EncodedRecord, b: &EncodedRecord) -> f32;

    /// Decision threshold (default 0.5, the argmax of the softmax head the
    /// paper fine-tunes).
    fn threshold(&self) -> f32 {
        0.5
    }

    /// Binary prediction.
    fn predict(&self, a: &EncodedRecord, b: &EncodedRecord) -> bool {
        self.score(a, b) >= self.threshold()
    }

    /// Feature-space configuration a [`CompiledDataset`] view for this
    /// matcher must be built with. Matchers that never featurize (the
    /// heuristic baseline) keep the default.
    fn feature_config(&self) -> FeatureConfig {
        FeatureConfig::default()
    }
}

/// Matchers that can score through a [`CompiledDataset`] view — the
/// zero-allocation hot path of the inference stage. Implementations must
/// return **exactly** the score [`PairwiseMatcher::score`] would return
/// over the encoded records the view was compiled from (the compiled
/// featurization is bit-for-bit identical to the reference path, so this
/// is an equality contract, not an approximation).
pub trait CompiledMatcher: PairwiseMatcher {
    /// Match probability for records `a` and `b` (compiled record ids),
    /// reusing the caller's scratch buffers.
    fn score_compiled(
        &self,
        compiled: &CompiledDataset,
        a: u32,
        b: u32,
        scratch: &mut ScoreScratch,
    ) -> f32;
}

/// A fine-tuned model: logistic head over hashed pair features.
#[derive(Debug, Clone)]
pub struct TrainedMatcher {
    /// The trained head.
    pub model: LogisticModel,
    /// Feature-space configuration used at training time.
    pub features: FeatureConfig,
    /// Decision threshold (0.5 unless recalibrated).
    pub threshold: f32,
}

impl TrainedMatcher {
    /// Matcher with the paper's default 0.5 decision threshold.
    pub fn new(model: LogisticModel, features: FeatureConfig) -> Self {
        TrainedMatcher {
            model,
            features,
            threshold: 0.5,
        }
    }

    /// Override the decision threshold (calibration output).
    pub fn with_threshold(mut self, threshold: f32) -> Self {
        self.threshold = threshold;
        self
    }
}

impl PairwiseMatcher for TrainedMatcher {
    fn score(&self, a: &EncodedRecord, b: &EncodedRecord) -> f32 {
        self.model.predict(&featurize(a, b, &self.features))
    }

    fn threshold(&self) -> f32 {
        self.threshold
    }

    fn feature_config(&self) -> FeatureConfig {
        self.features
    }
}

impl ToJson for TrainedMatcher {
    fn to_json(&self) -> Json {
        Json::obj([
            ("model", self.model.to_json()),
            ("features", self.features.to_json()),
            ("threshold", self.threshold.to_json()),
        ])
    }
}

impl FromJson for TrainedMatcher {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let model = LogisticModel::from_json(json.field("model")?)?;
        let features = FeatureConfig::from_json(json.field("features")?)?;
        if model.dim() != features.dim() {
            return Err(JsonError {
                message: format!(
                    "model dimension {} does not match feature space {}",
                    model.dim(),
                    features.dim()
                ),
            });
        }
        Ok(TrainedMatcher {
            model,
            features,
            threshold: f32::from_json(json.field("threshold")?)?,
        })
    }
}

impl CompiledMatcher for TrainedMatcher {
    fn score_compiled(
        &self,
        compiled: &CompiledDataset,
        a: u32,
        b: u32,
        scratch: &mut ScoreScratch,
    ) -> f32 {
        debug_assert_eq!(
            *compiled.config(),
            self.features,
            "compiled view built under a different feature space"
        );
        compiled.featurize_into(a, b, &mut scratch.merge, &mut scratch.features);
        self.model.predict(&scratch.features)
    }
}

/// Rule-based baseline: token Jaccard similarity thresholding, the kind of
/// heuristic the paper's related work attributes to pre-neural EM systems.
#[derive(Debug, Clone)]
pub struct HeuristicMatcher {
    /// Jaccard threshold above which a pair is predicted a match.
    pub jaccard_threshold: f32,
}

impl Default for HeuristicMatcher {
    fn default() -> Self {
        HeuristicMatcher {
            jaccard_threshold: 0.5,
        }
    }
}

impl PairwiseMatcher for HeuristicMatcher {
    fn score(&self, a: &EncodedRecord, b: &EncodedRecord) -> f32 {
        let set_a: gralmatch_util::FxHashSet<&str> = a
            .tokens
            .iter()
            .filter(|t| !t.starts_with('['))
            .map(|t| t.as_str())
            .collect();
        let set_b: gralmatch_util::FxHashSet<&str> = b
            .tokens
            .iter()
            .filter(|t| !t.starts_with('['))
            .map(|t| t.as_str())
            .collect();
        if set_a.is_empty() && set_b.is_empty() {
            return 1.0;
        }
        let intersection = set_a.intersection(&set_b).count();
        let union = set_a.len() + set_b.len() - intersection;
        if union == 0 {
            1.0
        } else {
            intersection as f32 / union as f32
        }
    }

    fn threshold(&self) -> f32 {
        self.jaccard_threshold
    }
}

impl CompiledMatcher for HeuristicMatcher {
    fn score_compiled(
        &self,
        compiled: &CompiledDataset,
        a: u32,
        b: u32,
        _scratch: &mut ScoreScratch,
    ) -> f32 {
        // The compiled token slices are exactly the marker-free token sets
        // the set-based path builds, so the Jaccard is identical — with a
        // sorted-merge intersection instead of two hash sets per pair.
        let tokens_a = compiled.tokens_of(a);
        let tokens_b = compiled.tokens_of(b);
        if tokens_a.is_empty() && tokens_b.is_empty() {
            return 1.0;
        }
        let intersection = compiled.shared_token_count(a, b);
        let union = tokens_a.len() + tokens_b.len() - intersection;
        if union == 0 {
            1.0
        } else {
            intersection as f32 / union as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encoded(tokens: &[&str]) -> EncodedRecord {
        EncodedRecord {
            tokens: tokens.iter().map(|t| t.to_string()).collect(),
        }
    }

    #[test]
    fn heuristic_scores_overlap() {
        let matcher = HeuristicMatcher::default();
        let a = encoded(&["crowdstrike", "austin"]);
        let b = encoded(&["crowdstrike", "austin"]);
        assert_eq!(matcher.score(&a, &b), 1.0);
        assert!(matcher.predict(&a, &b));
        let c = encoded(&["globex", "springfield"]);
        assert_eq!(matcher.score(&a, &c), 0.0);
        assert!(!matcher.predict(&a, &c));
    }

    #[test]
    fn heuristic_ignores_markers() {
        let matcher = HeuristicMatcher::default();
        let a = encoded(&["[col]", "name", "[val]", "acme"]);
        let b = encoded(&["[col]", "name", "[val]", "acme"]);
        assert_eq!(matcher.score(&a, &b), 1.0);
    }

    #[test]
    fn trained_matcher_is_symmetric() {
        let matcher = TrainedMatcher::new(
            LogisticModel::new(FeatureConfig::default().dim()),
            FeatureConfig::default(),
        );
        let a = encoded(&["crowdstrike", "austin"]);
        let b = encoded(&["crowdstreet", "austin"]);
        assert!((matcher.score(&a, &b) - matcher.score(&b, &a)).abs() < 1e-6);
    }

    #[test]
    fn untrained_model_scores_half() {
        let matcher = TrainedMatcher::new(
            LogisticModel::new(FeatureConfig::default().dim()),
            FeatureConfig::default(),
        );
        let score = matcher.score(&encoded(&["a"]), &encoded(&["b"]));
        assert!((score - 0.5).abs() < 1e-6);
    }
}
