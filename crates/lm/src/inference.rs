//! Batched parallel inference over candidate pairs.
//!
//! The pairwise-matching stage evaluates every blocked candidate pair — up
//! to 1.14M pairs for the synthetic companies (Table 2) — so scoring runs
//! on the workspace-wide [`WorkerPool`]: the pair list is cut into fixed
//! chunks and scored by work-stealing workers, which keeps skewed matcher
//! costs (long identifier-heavy records vs short names) from serializing
//! the run on the slowest contiguous slice.
//!
//! Two entry layers:
//!
//! * [`PairScorer`] — the stage-level abstraction: anything that can score
//!   a [`RecordPair`] directly. [`MatcherScorer`] adapts a
//!   [`PairwiseMatcher`] + encoded records (the id-is-index invariant);
//!   oracles and cached scorers implement it without encodings.
//! * [`score_pairs_with`] / [`predict_positive_with`] — pool-driven batch
//!   scoring used by the pipeline's inference stage.
//!
//! (The legacy `threads: usize` entry points served their one deprecation
//! release and are gone; size a [`WorkerPool`] through
//! [`Parallelism`](gralmatch_util::Parallelism) instead — an explicit
//! worker count maps to `Parallelism::Fixed`, which always parallelizes;
//! only `Parallelism::Auto` applies the small-input heuristic.)

use crate::encode::EncodedRecord;
use crate::matcher::PairwiseMatcher;
use gralmatch_records::RecordPair;
use gralmatch_util::WorkerPool;

/// A scored candidate pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredPair {
    /// The candidate pair.
    pub pair: RecordPair,
    /// Matcher probability.
    pub score: f32,
}

/// Scores candidate pairs by record id.
///
/// The pipeline's inference stage is generic over this trait so the same
/// stage runs trained matchers, heuristics, oracles, and cached/remote
/// scorers uniformly.
pub trait PairScorer: Sync {
    /// Match probability in `[0, 1]` for a candidate pair.
    fn score_pair(&self, pair: RecordPair) -> f32;

    /// Decision threshold for positive predictions (default 0.5).
    fn threshold(&self) -> f32 {
        0.5
    }
}

/// Adapter scoring pairs through a [`PairwiseMatcher`] over encoded
/// records, relying on the dataset invariant `encoded[id] == record id`.
#[derive(Debug, Clone, Copy)]
pub struct MatcherScorer<'a, M: PairwiseMatcher> {
    matcher: &'a M,
    encoded: &'a [EncodedRecord],
}

impl<'a, M: PairwiseMatcher> MatcherScorer<'a, M> {
    /// Bind a matcher to its encoded records.
    pub fn new(matcher: &'a M, encoded: &'a [EncodedRecord]) -> Self {
        MatcherScorer { matcher, encoded }
    }
}

impl<M: PairwiseMatcher> PairScorer for MatcherScorer<'_, M> {
    fn score_pair(&self, pair: RecordPair) -> f32 {
        self.matcher.score(
            &self.encoded[pair.a.0 as usize],
            &self.encoded[pair.b.0 as usize],
        )
    }

    fn threshold(&self) -> f32 {
        self.matcher.threshold()
    }
}

/// Score all pairs on the given worker pool. Output order matches input
/// order regardless of the work-stealing schedule.
pub fn score_pairs_with(
    scorer: &dyn PairScorer,
    pairs: &[RecordPair],
    pool: &WorkerPool,
) -> Vec<ScoredPair> {
    pool.map(pairs, |&pair| ScoredPair {
        pair,
        score: scorer.score_pair(pair),
    })
}

/// Score all pairs and keep those at or above the scorer's threshold.
pub fn predict_positive_with(
    scorer: &dyn PairScorer,
    pairs: &[RecordPair],
    pool: &WorkerPool,
) -> Vec<RecordPair> {
    let threshold = scorer.threshold();
    score_pairs_with(scorer, pairs, pool)
        .into_iter()
        .filter(|scored| scored.score >= threshold)
        .map(|scored| scored.pair)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::HeuristicMatcher;
    use gralmatch_records::RecordId;

    fn encoded(tokens: &[&str]) -> EncodedRecord {
        EncodedRecord {
            tokens: tokens.iter().map(|t| t.to_string()).collect(),
        }
    }

    fn setup() -> (Vec<EncodedRecord>, Vec<RecordPair>) {
        let streams = vec![
            encoded(&["acme", "zurich"]),
            encoded(&["acme", "zurich"]),
            encoded(&["globex", "paris"]),
            encoded(&["initech", "austin"]),
        ];
        let pairs = vec![
            RecordPair::new(RecordId(0), RecordId(1)),
            RecordPair::new(RecordId(0), RecordId(2)),
            RecordPair::new(RecordId(2), RecordId(3)),
        ];
        (streams, pairs)
    }

    #[test]
    fn sequential_scoring() {
        let (streams, pairs) = setup();
        let matcher = HeuristicMatcher::default();
        let scorer = MatcherScorer::new(&matcher, &streams);
        let scored = score_pairs_with(&scorer, &pairs, &WorkerPool::new(1));
        assert_eq!(scored.len(), 3);
        assert_eq!(scored[0].score, 1.0);
        assert_eq!(scored[1].score, 0.0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let streams: Vec<EncodedRecord> = (0..100)
            .map(|i| encoded(&[&format!("token{}", i % 10), "shared"]))
            .collect();
        let pairs: Vec<RecordPair> = (0..2000u32)
            .map(|i| RecordPair::new(RecordId(i % 100), RecordId((i * 7 + 1) % 100)))
            .filter(|p| p.a != p.b)
            .collect();
        let matcher = HeuristicMatcher::default();
        let scorer = MatcherScorer::new(&matcher, &streams);
        let sequential = score_pairs_with(&scorer, &pairs, &WorkerPool::new(1));
        let parallel = score_pairs_with(&scorer, &pairs, &WorkerPool::new(4).with_chunk_size(128));
        assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(s.pair, p.pair);
            assert_eq!(s.score, p.score);
        }
    }

    #[test]
    fn predict_positive_filters() {
        let (streams, pairs) = setup();
        let matcher = HeuristicMatcher::default();
        let scorer = MatcherScorer::new(&matcher, &streams);
        let positives = predict_positive_with(&scorer, &pairs, &WorkerPool::new(1));
        assert_eq!(positives, vec![RecordPair::new(RecordId(0), RecordId(1))]);
    }

    #[test]
    fn empty_pairs_ok() {
        let (streams, _) = setup();
        let matcher = HeuristicMatcher::default();
        let scorer = MatcherScorer::new(&matcher, &streams);
        let scored = score_pairs_with(&scorer, &[], &WorkerPool::new(4));
        assert!(scored.is_empty());
    }

    #[test]
    fn explicit_workers_parallelize_below_cutoff() {
        // A `Parallelism::Fixed` pool parallelizes even tiny inputs and
        // agrees with the sequential result exactly.
        let (streams, pairs) = setup();
        let matcher = HeuristicMatcher::default();
        let scorer = MatcherScorer::new(&matcher, &streams);
        let fixed = gralmatch_util::Parallelism::Fixed(2).pool_for(pairs.len());
        assert_eq!(fixed.workers(), 2);
        let via_pool = score_pairs_with(&scorer, &pairs, &fixed);
        let via_sequential = score_pairs_with(&scorer, &pairs, &WorkerPool::new(1));
        assert_eq!(via_pool, via_sequential);
    }

    #[test]
    fn custom_scorer_without_encodings() {
        // An id-driven scorer (oracle-style) needs no encoded records.
        struct EvenPairs;
        impl PairScorer for EvenPairs {
            fn score_pair(&self, pair: RecordPair) -> f32 {
                if (pair.a.0 + pair.b.0).is_multiple_of(2) {
                    1.0
                } else {
                    0.0
                }
            }
        }
        let pairs = vec![
            RecordPair::new(RecordId(0), RecordId(2)),
            RecordPair::new(RecordId(0), RecordId(1)),
        ];
        let positives = predict_positive_with(&EvenPairs, &pairs, &WorkerPool::new(1));
        assert_eq!(positives, vec![RecordPair::new(RecordId(0), RecordId(2))]);
    }
}
