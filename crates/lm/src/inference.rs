//! Batched parallel inference over candidate pairs.
//!
//! The pairwise-matching stage evaluates every blocked candidate pair — up
//! to 1.14M pairs for the synthetic companies (Table 2) — so scoring runs
//! on the workspace-wide [`WorkerPool`]: the pair list is cut into fixed
//! chunks and scored by work-stealing workers, which keeps skewed matcher
//! costs (long identifier-heavy records vs short names) from serializing
//! the run on the slowest contiguous slice.
//!
//! Two entry layers:
//!
//! * [`PairScorer`] — the stage-level abstraction: anything that can score
//!   a [`RecordPair`] directly. [`MatcherScorer`] adapts a
//!   [`PairwiseMatcher`] + encoded records (the id-is-index invariant);
//!   [`CompiledScorer`] adapts a [`CompiledMatcher`] + compiled dataset
//!   view (the zero-allocation fast path); oracles and cached scorers
//!   implement it without encodings.
//! * [`score_pairs_with`] / [`predict_positive_with`] — pool-driven batch
//!   scoring used by the pipeline's inference stage.
//!
//! (The legacy `threads: usize` entry points served their one deprecation
//! release and are gone; size a [`WorkerPool`] through
//! [`Parallelism`](gralmatch_util::Parallelism) instead — an explicit
//! worker count maps to `Parallelism::Fixed`, which always parallelizes;
//! only `Parallelism::Auto` applies the small-input heuristic.)

use crate::compiled::{CompiledDataset, ScoreScratch};
use crate::encode::EncodedRecord;
use crate::matcher::{CompiledMatcher, PairwiseMatcher};
use gralmatch_records::RecordPair;
use gralmatch_util::WorkerPool;

/// A scored candidate pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredPair {
    /// The candidate pair.
    pub pair: RecordPair,
    /// Matcher probability.
    pub score: f32,
}

/// Scores candidate pairs by record id.
///
/// The pipeline's inference stage is generic over this trait so the same
/// stage runs trained matchers, heuristics, oracles, and cached/remote
/// scorers uniformly.
pub trait PairScorer: Sync {
    /// Match probability in `[0, 1]` for a candidate pair.
    fn score_pair(&self, pair: RecordPair) -> f32;

    /// Scratch-reusing variant of [`PairScorer::score_pair`]: the batch
    /// entry points hand every worker thread one [`ScoreScratch`] and
    /// route all scoring through here, so scorers with a compiled view
    /// ([`CompiledScorer`]) allocate nothing per pair. The default ignores
    /// the scratch and delegates.
    fn score_pair_scratch(&self, pair: RecordPair, _scratch: &mut ScoreScratch) -> f32 {
        self.score_pair(pair)
    }

    /// Decision threshold for positive predictions (default 0.5).
    fn threshold(&self) -> f32 {
        0.5
    }

    /// Approximate heap bytes of scorer-owned acceleration structures
    /// (the compiled featurization arena), reported by the inference
    /// stage's trace entry. `None` for scorers without such state.
    fn memory_bytes(&self) -> Option<usize> {
        None
    }
}

/// Adapter scoring pairs through a [`PairwiseMatcher`] over encoded
/// records, relying on the dataset invariant `encoded[id] == record id`.
#[derive(Debug, Clone, Copy)]
pub struct MatcherScorer<'a, M: PairwiseMatcher> {
    matcher: &'a M,
    encoded: &'a [EncodedRecord],
}

impl<'a, M: PairwiseMatcher> MatcherScorer<'a, M> {
    /// Bind a matcher to its encoded records.
    pub fn new(matcher: &'a M, encoded: &'a [EncodedRecord]) -> Self {
        MatcherScorer { matcher, encoded }
    }
}

impl<M: PairwiseMatcher> PairScorer for MatcherScorer<'_, M> {
    fn score_pair(&self, pair: RecordPair) -> f32 {
        self.matcher.score(
            &self.encoded[pair.a.0 as usize],
            &self.encoded[pair.b.0 as usize],
        )
    }

    fn threshold(&self) -> f32 {
        self.matcher.threshold()
    }
}

/// Adapter scoring pairs through a [`CompiledMatcher`] over a
/// [`CompiledDataset`] — the fast-path sibling of [`MatcherScorer`].
/// Scores are exactly equal to the encoded-record path (the compiled
/// featurization contract), so the two scorers are interchangeable; this
/// one does no per-pair hashing or allocation and reports the compiled
/// arena's footprint to the stage trace.
#[derive(Debug, Clone, Copy)]
pub struct CompiledScorer<'a, M: CompiledMatcher> {
    matcher: &'a M,
    compiled: &'a CompiledDataset,
}

impl<'a, M: CompiledMatcher> CompiledScorer<'a, M> {
    /// Bind a matcher to a compiled dataset view (built with the matcher's
    /// [`feature_config`](PairwiseMatcher::feature_config)).
    pub fn new(matcher: &'a M, compiled: &'a CompiledDataset) -> Self {
        CompiledScorer { matcher, compiled }
    }
}

impl<M: CompiledMatcher> PairScorer for CompiledScorer<'_, M> {
    fn score_pair(&self, pair: RecordPair) -> f32 {
        self.score_pair_scratch(pair, &mut ScoreScratch::default())
    }

    fn score_pair_scratch(&self, pair: RecordPair, scratch: &mut ScoreScratch) -> f32 {
        self.matcher
            .score_compiled(self.compiled, pair.a.0, pair.b.0, scratch)
    }

    fn threshold(&self) -> f32 {
        self.matcher.threshold()
    }

    fn memory_bytes(&self) -> Option<usize> {
        Some(self.compiled.arena_bytes())
    }
}

/// Score all pairs on the given worker pool. Output order matches input
/// order regardless of the work-stealing schedule; each worker reuses one
/// [`ScoreScratch`] across every pair it scores.
pub fn score_pairs_with(
    scorer: &dyn PairScorer,
    pairs: &[RecordPair],
    pool: &WorkerPool,
) -> Vec<ScoredPair> {
    pool.map_init(pairs, ScoreScratch::default, |scratch, &pair| ScoredPair {
        pair,
        score: scorer.score_pair_scratch(pair, scratch),
    })
}

/// Score all pairs and keep those at or above the scorer's threshold.
///
/// The filter runs pool-side ([`WorkerPool::filter_map_init`]): negative
/// pairs — the overwhelming majority under realistic blocking — never
/// allocate an output slot, instead of materializing every
/// [`ScoredPair`] and filtering afterwards.
pub fn predict_positive_with(
    scorer: &dyn PairScorer,
    pairs: &[RecordPair],
    pool: &WorkerPool,
) -> Vec<RecordPair> {
    let threshold = scorer.threshold();
    pool.filter_map_init(pairs, ScoreScratch::default, |scratch, &pair| {
        (scorer.score_pair_scratch(pair, scratch) >= threshold).then_some(pair)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::HeuristicMatcher;
    use gralmatch_records::RecordId;

    fn encoded(tokens: &[&str]) -> EncodedRecord {
        EncodedRecord {
            tokens: tokens.iter().map(|t| t.to_string()).collect(),
        }
    }

    fn setup() -> (Vec<EncodedRecord>, Vec<RecordPair>) {
        let streams = vec![
            encoded(&["acme", "zurich"]),
            encoded(&["acme", "zurich"]),
            encoded(&["globex", "paris"]),
            encoded(&["initech", "austin"]),
        ];
        let pairs = vec![
            RecordPair::new(RecordId(0), RecordId(1)),
            RecordPair::new(RecordId(0), RecordId(2)),
            RecordPair::new(RecordId(2), RecordId(3)),
        ];
        (streams, pairs)
    }

    #[test]
    fn sequential_scoring() {
        let (streams, pairs) = setup();
        let matcher = HeuristicMatcher::default();
        let scorer = MatcherScorer::new(&matcher, &streams);
        let scored = score_pairs_with(&scorer, &pairs, &WorkerPool::new(1));
        assert_eq!(scored.len(), 3);
        assert_eq!(scored[0].score, 1.0);
        assert_eq!(scored[1].score, 0.0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let streams: Vec<EncodedRecord> = (0..100)
            .map(|i| encoded(&[&format!("token{}", i % 10), "shared"]))
            .collect();
        let pairs: Vec<RecordPair> = (0..2000u32)
            .map(|i| RecordPair::new(RecordId(i % 100), RecordId((i * 7 + 1) % 100)))
            .filter(|p| p.a != p.b)
            .collect();
        let matcher = HeuristicMatcher::default();
        let scorer = MatcherScorer::new(&matcher, &streams);
        let sequential = score_pairs_with(&scorer, &pairs, &WorkerPool::new(1));
        let parallel = score_pairs_with(&scorer, &pairs, &WorkerPool::new(4).with_chunk_size(128));
        assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(s.pair, p.pair);
            assert_eq!(s.score, p.score);
        }
    }

    #[test]
    fn predict_positive_filters() {
        let (streams, pairs) = setup();
        let matcher = HeuristicMatcher::default();
        let scorer = MatcherScorer::new(&matcher, &streams);
        let positives = predict_positive_with(&scorer, &pairs, &WorkerPool::new(1));
        assert_eq!(positives, vec![RecordPair::new(RecordId(0), RecordId(1))]);
    }

    #[test]
    fn empty_pairs_ok() {
        let (streams, _) = setup();
        let matcher = HeuristicMatcher::default();
        let scorer = MatcherScorer::new(&matcher, &streams);
        let scored = score_pairs_with(&scorer, &[], &WorkerPool::new(4));
        assert!(scored.is_empty());
    }

    #[test]
    fn explicit_workers_parallelize_below_cutoff() {
        // A `Parallelism::Fixed` pool parallelizes even tiny inputs and
        // agrees with the sequential result exactly.
        let (streams, pairs) = setup();
        let matcher = HeuristicMatcher::default();
        let scorer = MatcherScorer::new(&matcher, &streams);
        let fixed = gralmatch_util::Parallelism::Fixed(2).pool_for(pairs.len());
        assert_eq!(fixed.workers(), 2);
        let via_pool = score_pairs_with(&scorer, &pairs, &fixed);
        let via_sequential = score_pairs_with(&scorer, &pairs, &WorkerPool::new(1));
        assert_eq!(via_pool, via_sequential);
    }

    #[test]
    fn custom_scorer_without_encodings() {
        // An id-driven scorer (oracle-style) needs no encoded records.
        struct EvenPairs;
        impl PairScorer for EvenPairs {
            fn score_pair(&self, pair: RecordPair) -> f32 {
                if (pair.a.0 + pair.b.0).is_multiple_of(2) {
                    1.0
                } else {
                    0.0
                }
            }
        }
        let pairs = vec![
            RecordPair::new(RecordId(0), RecordId(2)),
            RecordPair::new(RecordId(0), RecordId(1)),
        ];
        let positives = predict_positive_with(&EvenPairs, &pairs, &WorkerPool::new(1));
        assert_eq!(positives, vec![RecordPair::new(RecordId(0), RecordId(2))]);
    }
}
