//! Parallel batch inference over candidate pairs.
//!
//! The pairwise-matching stage evaluates every blocked candidate pair — up
//! to 1.14M pairs for the synthetic companies (Table 2) — so scoring is
//! parallelized with crossbeam scoped threads over pair chunks. Matchers
//! are `Sync` and shared by reference; encoded records are immutable.

use crate::encode::EncodedRecord;
use crate::matcher::PairwiseMatcher;
use gralmatch_records::RecordPair;

/// A scored candidate pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredPair {
    /// The candidate pair.
    pub pair: RecordPair,
    /// Matcher probability.
    pub score: f32,
}

/// Score all pairs with `threads` worker threads (1 = sequential).
/// Output order matches input order.
pub fn score_pairs<M: PairwiseMatcher>(
    matcher: &M,
    encoded: &[EncodedRecord],
    pairs: &[RecordPair],
    threads: usize,
) -> Vec<ScoredPair> {
    let threads = threads.max(1);
    if threads == 1 || pairs.len() < 1024 {
        return pairs
            .iter()
            .map(|&pair| ScoredPair {
                pair,
                score: matcher.score(&encoded[pair.a.0 as usize], &encoded[pair.b.0 as usize]),
            })
            .collect();
    }

    let chunk_size = pairs.len().div_ceil(threads);
    let mut results: Vec<Vec<ScoredPair>> = Vec::with_capacity(threads);
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for chunk in pairs.chunks(chunk_size) {
            handles.push(scope.spawn(move |_| {
                chunk
                    .iter()
                    .map(|&pair| ScoredPair {
                        pair,
                        score: matcher
                            .score(&encoded[pair.a.0 as usize], &encoded[pair.b.0 as usize]),
                    })
                    .collect::<Vec<_>>()
            }));
        }
        for handle in handles {
            results.push(handle.join().expect("inference worker panicked"));
        }
    })
    .expect("inference scope");
    results.into_iter().flatten().collect()
}

/// Score all pairs and keep the positively predicted ones.
pub fn predict_positive<M: PairwiseMatcher>(
    matcher: &M,
    encoded: &[EncodedRecord],
    pairs: &[RecordPair],
    threads: usize,
) -> Vec<RecordPair> {
    let threshold = matcher.threshold();
    score_pairs(matcher, encoded, pairs, threads)
        .into_iter()
        .filter(|scored| scored.score >= threshold)
        .map(|scored| scored.pair)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::HeuristicMatcher;
    use gralmatch_records::RecordId;

    fn encoded(tokens: &[&str]) -> EncodedRecord {
        EncodedRecord {
            tokens: tokens.iter().map(|t| t.to_string()).collect(),
        }
    }

    fn setup() -> (Vec<EncodedRecord>, Vec<RecordPair>) {
        let streams = vec![
            encoded(&["acme", "zurich"]),
            encoded(&["acme", "zurich"]),
            encoded(&["globex", "paris"]),
            encoded(&["initech", "austin"]),
        ];
        let pairs = vec![
            RecordPair::new(RecordId(0), RecordId(1)),
            RecordPair::new(RecordId(0), RecordId(2)),
            RecordPair::new(RecordId(2), RecordId(3)),
        ];
        (streams, pairs)
    }

    #[test]
    fn sequential_scoring() {
        let (streams, pairs) = setup();
        let scored = score_pairs(&HeuristicMatcher::default(), &streams, &pairs, 1);
        assert_eq!(scored.len(), 3);
        assert_eq!(scored[0].score, 1.0);
        assert_eq!(scored[1].score, 0.0);
    }

    #[test]
    fn parallel_matches_sequential() {
        // Force the parallel path with a large synthetic pair list.
        let streams: Vec<EncodedRecord> = (0..100)
            .map(|i| encoded(&[&format!("token{}", i % 10), "shared"]))
            .collect();
        let pairs: Vec<RecordPair> = (0..2000u32)
            .map(|i| RecordPair::new(RecordId(i % 100), RecordId((i * 7 + 1) % 100)))
            .filter(|p| p.a != p.b)
            .collect();
        let matcher = HeuristicMatcher::default();
        let sequential = score_pairs(&matcher, &streams, &pairs, 1);
        let parallel = score_pairs(&matcher, &streams, &pairs, 4);
        assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(s.pair, p.pair);
            assert_eq!(s.score, p.score);
        }
    }

    #[test]
    fn predict_positive_filters() {
        let (streams, pairs) = setup();
        let positives = predict_positive(&HeuristicMatcher::default(), &streams, &pairs, 1);
        assert_eq!(positives, vec![RecordPair::new(RecordId(0), RecordId(1))]);
    }

    #[test]
    fn empty_pairs_ok() {
        let (streams, _) = setup();
        let scored = score_pairs(&HeuristicMatcher::default(), &streams, &[], 4);
        assert!(scored.is_empty());
    }
}
