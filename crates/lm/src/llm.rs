//! LLM-as-matcher feasibility model (paper Section 5.2).
//!
//! The paper measured LlaMa2-7B at ~7 seconds per candidate pair via
//! prompt-engineering and concluded that matching the synthetic benchmarks
//! (millions of pairwise evaluations) would take "90+ days", ruling LLMs
//! out for this scale. This module captures that arithmetic as a reusable
//! cost model so the trade-off can be re-derived for any candidate count
//! and hardware profile, plus a [`SimulatedLlmMatcher`] that wraps an inner
//! matcher with an accounted (not slept!) per-pair latency for what-if
//! pipeline runs.

use crate::encode::EncodedRecord;
use crate::matcher::PairwiseMatcher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Cost profile of a generative LLM used for pairwise matching.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LlmCostModel {
    /// Seconds per candidate-pair evaluation (paper: ~7 s for LlaMa2-7B on
    /// a Tesla T4).
    pub seconds_per_pair: f64,
    /// Degree of batching/parallelism available (1 = the paper's setup).
    pub parallel_streams: usize,
}

impl LlmCostModel {
    /// The paper's measured LlaMa2-7B profile.
    pub fn llama2_7b() -> Self {
        LlmCostModel {
            seconds_per_pair: 7.0,
            parallel_streams: 1,
        }
    }

    /// Wall-clock estimate for evaluating `num_pairs` candidates.
    pub fn estimate(&self, num_pairs: u64) -> Duration {
        let secs = self.seconds_per_pair * num_pairs as f64 / self.parallel_streams.max(1) as f64;
        Duration::from_secs_f64(secs)
    }

    /// Estimate in days (the unit the paper argues in).
    pub fn estimate_days(&self, num_pairs: u64) -> f64 {
        self.estimate(num_pairs).as_secs_f64() / 86_400.0
    }
}

/// Wraps a matcher and *accounts* the latency an LLM would have spent,
/// without sleeping — the pipeline stays testable while the report carries
/// the hypothetical cost.
#[derive(Debug)]
pub struct SimulatedLlmMatcher<M> {
    inner: M,
    cost: LlmCostModel,
    pairs_scored: AtomicU64,
}

impl<M: PairwiseMatcher> SimulatedLlmMatcher<M> {
    /// Wrap `inner` with a cost model.
    pub fn new(inner: M, cost: LlmCostModel) -> Self {
        SimulatedLlmMatcher {
            inner,
            cost,
            pairs_scored: AtomicU64::new(0),
        }
    }

    /// Pairs scored so far.
    pub fn pairs_scored(&self) -> u64 {
        self.pairs_scored.load(Ordering::Relaxed)
    }

    /// The wall-clock an actual LLM would have needed so far.
    pub fn simulated_elapsed(&self) -> Duration {
        self.cost.estimate(self.pairs_scored())
    }
}

impl<M: PairwiseMatcher> PairwiseMatcher for SimulatedLlmMatcher<M> {
    fn score(&self, a: &EncodedRecord, b: &EncodedRecord) -> f32 {
        self.pairs_scored.fetch_add(1, Ordering::Relaxed);
        self.inner.score(a, b)
    }

    fn threshold(&self) -> f32 {
        self.inner.threshold()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::HeuristicMatcher;

    #[test]
    fn paper_arithmetic_reproduces() {
        // 1.14M candidate pairs (synthetic companies, Table 2) at 7 s/pair:
        // the paper says "exceedingly long running times ... (90+ days)".
        let model = LlmCostModel::llama2_7b();
        let days = model.estimate_days(1_140_000);
        assert!(days > 90.0, "{days} days");
        assert!(days < 100.0, "{days} days");
    }

    #[test]
    fn parallel_streams_divide_cost() {
        let mut model = LlmCostModel::llama2_7b();
        model.parallel_streams = 8;
        assert!((model.estimate_days(1_140_000) - 92.36 / 8.0).abs() < 0.5);
    }

    #[test]
    fn simulated_matcher_accounts_latency() {
        let matcher =
            SimulatedLlmMatcher::new(HeuristicMatcher::default(), LlmCostModel::llama2_7b());
        let a = EncodedRecord {
            tokens: vec!["acme".into()],
        };
        let b = EncodedRecord {
            tokens: vec!["acme".into()],
        };
        for _ in 0..10 {
            let _ = matcher.score(&a, &b);
        }
        assert_eq!(matcher.pairs_scored(), 10);
        assert_eq!(matcher.simulated_elapsed(), Duration::from_secs(70));
    }

    #[test]
    fn scoring_is_delegated() {
        let matcher =
            SimulatedLlmMatcher::new(HeuristicMatcher::default(), LlmCostModel::llama2_7b());
        let a = EncodedRecord {
            tokens: vec!["acme".into()],
        };
        assert_eq!(matcher.score(&a, &a), 1.0);
    }
}
