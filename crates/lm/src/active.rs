//! Active learning for pairwise matching.
//!
//! The paper's conclusion is that labeling effort is the real budget —
//! DistilBERT-15K beats -ALL end-to-end — and its related work points to
//! graph-boosted active learning (Primpeli & Bizer) as the established way
//! to spend a labeling budget well. This module implements the classic
//! uncertainty-sampling loop over a candidate-pair pool:
//!
//! 1. train on the labeled pairs so far,
//! 2. score the unlabeled pool,
//! 3. query the oracle on the `batch` pairs closest to the decision
//!    boundary (|p − ½| minimal),
//! 4. repeat until the budget is spent.
//!
//! The harness compares it against random sampling at equal budgets.

use crate::compiled::{CompiledDataset, FeatureScratch};
use crate::encode::EncodedRecord;
use crate::features::{FeatureConfig, PairFeatures};
use crate::matcher::TrainedMatcher;
use crate::model::{Adagrad, LogisticModel};
use gralmatch_records::{GroundTruth, RecordPair};
use gralmatch_util::{Error, Result, SplitRng};

/// Active-learning configuration.
#[derive(Debug, Clone)]
pub struct ActiveConfig {
    /// Labeled pairs queried per round.
    pub batch_size: usize,
    /// Total labeling budget (pairs).
    pub budget: usize,
    /// Epochs per retraining round.
    pub epochs_per_round: usize,
    /// Adagrad learning rate.
    pub learning_rate: f32,
    /// Feature space.
    pub features: FeatureConfig,
    /// Seed for the initial random batch and shuffling.
    pub seed: u64,
}

impl Default for ActiveConfig {
    fn default() -> Self {
        ActiveConfig {
            batch_size: 50,
            budget: 500,
            epochs_per_round: 2,
            learning_rate: 0.5,
            features: FeatureConfig::default(),
            seed: 0xac71,
        }
    }
}

/// Which pair-selection strategy a loop uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryStrategy {
    /// |p − ½| minimal first (uncertainty sampling).
    Uncertainty,
    /// Uniform random from the pool (the baseline).
    Random,
}

/// One round's outcome.
#[derive(Debug, Clone, Copy)]
pub struct RoundReport {
    /// Total labels spent after this round.
    pub labels_used: usize,
    /// Positive labels collected so far.
    pub positives_found: usize,
}

/// Run the loop. `pool` is the unlabeled candidate pairs (e.g. from
/// blocking); `oracle` answers membership queries (in experiments, the
/// ground truth — in production, a human).
pub fn active_learning_loop(
    encoded: &[EncodedRecord],
    pool: &[RecordPair],
    oracle: &GroundTruth,
    strategy: QueryStrategy,
    config: &ActiveConfig,
) -> Result<(TrainedMatcher, Vec<RoundReport>)> {
    if pool.is_empty() {
        return Err(Error::EmptyInput("active-learning pool"));
    }
    let mut rng = SplitRng::new(config.seed);
    let dim = config.features.dim();
    let mut model = LogisticModel::new(dim);
    let mut optimizer = Adagrad::new(dim, config.learning_rate, 1e-7);
    // The loop featurizes pool pairs every scoring round and labeled pairs
    // every retraining epoch — compile the streams once up front.
    let compiled = CompiledDataset::compile(encoded, &config.features);
    let mut scratch = FeatureScratch::default();
    let mut workspace = PairFeatures::default();

    let mut unlabeled: Vec<RecordPair> = pool.to_vec();
    rng.shuffle(&mut unlabeled);
    let mut labeled: Vec<(RecordPair, f32)> = Vec::new();
    let mut reports = Vec::new();

    while labeled.len() < config.budget && !unlabeled.is_empty() {
        let batch = config.batch_size.min(config.budget - labeled.len());
        // Select the next batch.
        let selected: Vec<RecordPair> = match strategy {
            QueryStrategy::Random => {
                let take = batch.min(unlabeled.len());
                unlabeled.split_off(unlabeled.len() - take)
            }
            QueryStrategy::Uncertainty => {
                if labeled.is_empty() {
                    // Cold start: random seed batch.
                    let take = batch.min(unlabeled.len());
                    unlabeled.split_off(unlabeled.len() - take)
                } else {
                    let mut scored: Vec<(f32, usize)> = unlabeled
                        .iter()
                        .enumerate()
                        .map(|(i, &pair)| {
                            compiled.featurize_into(
                                pair.a.0,
                                pair.b.0,
                                &mut scratch,
                                &mut workspace,
                            );
                            ((model.predict(&workspace) - 0.5).abs(), i)
                        })
                        .collect();
                    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
                    let mut indices: Vec<usize> =
                        scored.iter().take(batch).map(|&(_, i)| i).collect();
                    indices.sort_unstable_by(|a, b| b.cmp(a)); // remove back-to-front
                    indices
                        .into_iter()
                        .map(|i| unlabeled.swap_remove(i))
                        .collect()
                }
            }
        };
        // Oracle labels.
        for pair in selected {
            let label = if oracle.is_match_pair(pair) { 1.0 } else { 0.0 };
            labeled.push((pair, label));
        }
        // Retrain from the full labeled set.
        for _ in 0..config.epochs_per_round {
            for &(pair, label) in &labeled {
                compiled.featurize_into(pair.a.0, pair.b.0, &mut scratch, &mut workspace);
                optimizer.step(&mut model, &workspace, label);
            }
        }
        reports.push(RoundReport {
            labels_used: labeled.len(),
            positives_found: labeled.iter().filter(|(_, l)| *l == 1.0).count(),
        });
    }

    Ok((TrainedMatcher::new(model, config.features), reports))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{encode_dataset, PlainEncoder};
    use crate::matcher::PairwiseMatcher;
    use gralmatch_datagen::{generate, GenerationConfig};

    fn setup() -> (Vec<EncodedRecord>, Vec<RecordPair>, GroundTruth) {
        let mut config = GenerationConfig::synthetic_full();
        config.num_entities = 80;
        let data = generate(&config).unwrap();
        let records = data.companies.records();
        let encoded = encode_dataset(records, &PlainEncoder::new(128));
        let gt = GroundTruth::from_records(records);
        // Pool: all true pairs + equal random non-pairs.
        let mut pool = gt.all_true_pairs();
        let mut rng = SplitRng::new(4);
        let n = records.len();
        let wanted = pool.len() * 3;
        while pool.len() < wanted {
            let a = rng.next_below(n) as u32;
            let b = rng.next_below(n) as u32;
            if a == b {
                continue;
            }
            let pair = RecordPair::new(
                gralmatch_records::RecordId(a),
                gralmatch_records::RecordId(b),
            );
            if !gt.is_match_pair(pair) {
                pool.push(pair);
            }
        }
        (encoded, pool, gt)
    }

    #[test]
    fn loop_trains_a_usable_matcher() {
        let (encoded, pool, gt) = setup();
        let config = ActiveConfig {
            budget: 300,
            ..ActiveConfig::default()
        };
        let (matcher, reports) =
            active_learning_loop(&encoded, &pool, &gt, QueryStrategy::Uncertainty, &config)
                .unwrap();
        assert_eq!(reports.last().unwrap().labels_used, 300);
        // The matcher must score a true pair above a random non-pair.
        let true_pair = pool.iter().find(|p| gt.is_match_pair(**p)).unwrap();
        let false_pair = pool.iter().find(|p| !gt.is_match_pair(**p)).unwrap();
        let score_true = matcher.score(
            &encoded[true_pair.a.0 as usize],
            &encoded[true_pair.b.0 as usize],
        );
        let score_false = matcher.score(
            &encoded[false_pair.a.0 as usize],
            &encoded[false_pair.b.0 as usize],
        );
        assert!(score_true > score_false);
    }

    #[test]
    fn uncertainty_finds_more_boundary_pairs_than_random() {
        // Uncertainty sampling concentrates labels near the boundary, which
        // in a pool dominated by easy negatives means it surfaces at least
        // as many positives as random selection.
        let (encoded, pool, gt) = setup();
        let config = ActiveConfig {
            budget: 240,
            batch_size: 40,
            ..ActiveConfig::default()
        };
        let (_, active) =
            active_learning_loop(&encoded, &pool, &gt, QueryStrategy::Uncertainty, &config)
                .unwrap();
        let (_, random) =
            active_learning_loop(&encoded, &pool, &gt, QueryStrategy::Random, &config).unwrap();
        let active_pos = active.last().unwrap().positives_found;
        let random_pos = random.last().unwrap().positives_found;
        assert!(
            active_pos * 2 >= random_pos,
            "active {active_pos} vs random {random_pos}"
        );
    }

    #[test]
    fn budget_respected() {
        let (encoded, pool, gt) = setup();
        let config = ActiveConfig {
            budget: 75,
            batch_size: 50,
            ..ActiveConfig::default()
        };
        let (_, reports) =
            active_learning_loop(&encoded, &pool, &gt, QueryStrategy::Random, &config).unwrap();
        assert_eq!(reports.last().unwrap().labels_used, 75);
    }

    #[test]
    fn empty_pool_rejected() {
        let (encoded, _, gt) = setup();
        let result = active_learning_loop(
            &encoded,
            &[],
            &gt,
            QueryStrategy::Random,
            &ActiveConfig::default(),
        );
        assert!(result.is_err());
    }
}
