//! Compiled featurization: dataset-level symbol interning + per-symbol
//! feature tables, turning per-pair featurization into integer merges.
//!
//! [`featurize`](crate::features::featurize) is a pure function of a
//! pair's token and trigram *sets*, but each record participates in many
//! candidate pairs — up to 1.14M pairs for the synthetic companies
//! (paper Table 2) — and the reference path re-derives both sets and
//! re-hashes every gram for every pair. The compile pass here does all
//! string work **once per record**:
//!
//! * a [`SymbolInterner`] maps every distinct token and character trigram
//!   to a dense `u32` symbol id,
//! * each [`EncodedRecord`] becomes a `RecordSpan`: two sorted, deduped
//!   symbol slices (tokens, trigrams) in one shared columnar arena
//!   (a single `Vec<u32>` — no per-record allocations),
//! * for every distinct symbol, [`hash_feature`] is precomputed for all
//!   four namespaces (shared/diff × token/trigram) into flat `(index,
//!   signed value)` tables, so hashing happens once per unique symbol
//!   instead of once per pair-side occurrence.
//!
//! Per-pair featurization is then a branch-light sorted-merge over two
//! `u32` slices with table lookups, writing into caller-provided scratch —
//! zero allocation in the steady state — and finishes through the same
//! `finalize` canonicalization as the
//! reference path, so the output is **bit-for-bit identical** (including
//! the L2 norm, whose summation order is part of the canonical contract).
//!
//! The dataset view is indexed by record id (the dense-id invariant the
//! scorers already rely on) and supports **incremental maintenance**:
//! [`CompiledDataset::recompile_record`] rebuilds exactly one record's
//! spans when an upsert touches it, appending to the arena and interning
//! only genuinely new symbols; untouched records keep their compiled form.

use crate::encode::EncodedRecord;
use crate::features::{
    dense_slots, finalize, FeatureConfig, PairFeatures, NS_DIFF_TOKEN, NS_DIFF_TRIGRAM,
    NS_SHARED_TOKEN, NS_SHARED_TRIGRAM, WEIGHT_DIFF_TOKEN, WEIGHT_DIFF_TRIGRAM,
    WEIGHT_SHARED_TOKEN, WEIGHT_SHARED_TRIGRAM,
};
use gralmatch_text::ngrams::hash_feature;
use gralmatch_text::SymbolInterner;

/// One record's compiled form: offsets into the shared symbol arena.
#[derive(Debug, Clone, Copy, Default)]
struct RecordSpan {
    token_start: u32,
    token_len: u32,
    trigram_start: u32,
    trigram_len: u32,
}

/// Reusable per-worker scratch for compiled featurization (merge output
/// and the canonicalization sort buffer).
#[derive(Debug, Clone, Default)]
pub struct FeatureScratch {
    sort_keys: Vec<(u32, u32)>,
}

/// Per-worker scratch for pair *scoring*: the featurization buffers plus
/// the assembled feature vector. One lives per worker thread of a scoring
/// pool (`WorkerPool::map_init`), so steady-state scoring allocates
/// nothing per pair.
#[derive(Debug, Clone, Default)]
pub struct ScoreScratch {
    /// Feature vector assembled for the current pair.
    pub features: PairFeatures,
    /// Merge/sort buffers behind the feature vector.
    pub merge: FeatureScratch,
}

/// A precomputed hashed feature: weight-vector index and signed value
/// (`sign * namespace_weight`), ready to push without hashing.
type TableEntry = (u32, f32);

/// A dataset compiled for fast pair featurization. Indexed by record id —
/// the same `encoded[id]` invariant [`MatcherScorer`](crate::MatcherScorer)
/// uses.
#[derive(Debug, Clone)]
pub struct CompiledDataset {
    config: FeatureConfig,
    interner: SymbolInterner,
    /// Shared columnar symbol storage: every record's sorted token ids and
    /// sorted trigram ids live here back to back.
    arena: Vec<u32>,
    spans: Vec<RecordSpan>,
    /// Per-symbol precomputed features, indexed by symbol id.
    shared_token: Vec<TableEntry>,
    diff_token: Vec<TableEntry>,
    shared_trigram: Vec<TableEntry>,
    diff_trigram: Vec<TableEntry>,
    /// Scratch reused across `recompile_record` calls (symbol collection).
    scratch_ids: Vec<u32>,
    scratch_gram: String,
}

impl CompiledDataset {
    /// Empty dataset under a feature configuration; records arrive through
    /// [`CompiledDataset::recompile_record`] (the incremental entry point).
    pub fn new(config: &FeatureConfig) -> Self {
        CompiledDataset {
            config: *config,
            interner: SymbolInterner::new(),
            arena: Vec::new(),
            spans: Vec::new(),
            shared_token: Vec::new(),
            diff_token: Vec::new(),
            shared_trigram: Vec::new(),
            diff_trigram: Vec::new(),
            scratch_ids: Vec::new(),
            scratch_gram: String::new(),
        }
    }

    /// One-time compile pass over a dataset's encoded records
    /// (`encoded[i]` is record id `i`).
    pub fn compile(encoded: &[EncodedRecord], config: &FeatureConfig) -> Self {
        let mut compiled = CompiledDataset::new(config);
        compiled.spans.reserve(encoded.len());
        for (id, record) in encoded.iter().enumerate() {
            compiled.recompile_record(id as u32, record);
        }
        compiled
    }

    /// The feature configuration the tables were built for.
    pub fn config(&self) -> &FeatureConfig {
        &self.config
    }

    /// Number of record slots (max compiled id + 1).
    pub fn num_records(&self) -> usize {
        self.spans.len()
    }

    /// Number of distinct symbols (tokens + trigrams) interned.
    pub fn num_symbols(&self) -> usize {
        self.interner.len()
    }

    /// Approximate heap footprint of the compiled view: symbol arena,
    /// record spans, per-symbol feature tables, and the interner. This is
    /// the number the inference stage reports as its compiled-arena size.
    pub fn arena_bytes(&self) -> usize {
        self.arena.len() * std::mem::size_of::<u32>()
            + self.spans.len() * std::mem::size_of::<RecordSpan>()
            + (self.shared_token.len()
                + self.diff_token.len()
                + self.shared_trigram.len()
                + self.diff_trigram.len())
                * std::mem::size_of::<TableEntry>()
            + self.interner.heap_bytes()
    }

    /// A record's sorted, deduped content-token symbols (markers excluded
    /// at compile time).
    pub fn tokens_of(&self, id: u32) -> &[u32] {
        let span = &self.spans[id as usize];
        &self.arena[span.token_start as usize..(span.token_start + span.token_len) as usize]
    }

    /// A record's sorted, deduped trigram symbols.
    pub fn trigrams_of(&self, id: u32) -> &[u32] {
        let span = &self.spans[id as usize];
        &self.arena[span.trigram_start as usize..(span.trigram_start + span.trigram_len) as usize]
    }

    /// Intern one symbol, extending the per-namespace tables on first
    /// appearance (four `hash_feature` calls per *distinct* symbol — ever).
    fn intern_symbol(&mut self, symbol: &str) -> u32 {
        let id = self.interner.intern(symbol);
        if id as usize == self.shared_token.len() {
            let dim = self.config.hash_dim;
            let entry = |namespace: u8, weight: f32| {
                let hashed = hash_feature(namespace, symbol, dim);
                (hashed.index, hashed.sign * weight)
            };
            self.shared_token
                .push(entry(NS_SHARED_TOKEN, WEIGHT_SHARED_TOKEN));
            self.diff_token
                .push(entry(NS_DIFF_TOKEN, WEIGHT_DIFF_TOKEN));
            self.shared_trigram
                .push(entry(NS_SHARED_TRIGRAM, WEIGHT_SHARED_TRIGRAM));
            self.diff_trigram
                .push(entry(NS_DIFF_TRIGRAM, WEIGHT_DIFF_TRIGRAM));
        }
        id
    }

    /// Sort + dedup the staged symbol ids and append them to the arena,
    /// returning `(start, len)`.
    fn commit_scratch(&mut self) -> (u32, u32) {
        self.scratch_ids.sort_unstable();
        self.scratch_ids.dedup();
        let start = self.arena.len();
        self.arena.extend_from_slice(&self.scratch_ids);
        // Spans store u32 offsets and the arena is append-only under
        // `recompile_record` (abandoned segments are not reclaimed), so a
        // long-lived state must fail loudly at the offset ceiling instead
        // of wrapping into other records' symbols.
        assert!(
            self.arena.len() <= u32::MAX as usize,
            "compiled arena exceeded u32 offsets; rebuild via CompiledDataset::compile to compact"
        );
        (start as u32, self.scratch_ids.len() as u32)
    }

    /// (Re)build one record's compiled spans from its encoded token
    /// stream — the incremental-upsert hook: only records an upsert batch
    /// touched pay a recompile; everything else keeps its standing spans.
    /// New symbols extend the shared tables;
    /// replaced arena segments are abandoned in place (the arena is
    /// append-only — a long-lived state can rebuild via
    /// [`CompiledDataset::compile`] to compact).
    pub fn recompile_record(&mut self, id: u32, encoded: &EncodedRecord) {
        if id as usize >= self.spans.len() {
            self.spans.resize(id as usize + 1, RecordSpan::default());
        }
        // Tokens: deduped content tokens (encoder markers carry no
        // feature content and are excluded here once instead of per pair).
        self.scratch_ids.clear();
        for token in &encoded.tokens {
            if token.starts_with('[') {
                continue;
            }
            let symbol = self.intern_symbol(token);
            self.scratch_ids.push(symbol);
        }
        let (token_start, token_len) = self.commit_scratch();

        // Trigrams: length-3 char windows per content token; sub-3-char
        // tokens contribute themselves (the reference-path rule).
        self.scratch_ids.clear();
        for token in &encoded.tokens {
            if token.starts_with('[') {
                continue;
            }
            if token.chars().count() < 3 {
                let symbol = self.intern_symbol(token);
                self.scratch_ids.push(symbol);
                continue;
            }
            let mut window: [char; 3] = [' '; 3];
            for (position, c) in token.chars().enumerate() {
                window.rotate_left(1);
                window[2] = c;
                if position >= 2 {
                    let mut gram = std::mem::take(&mut self.scratch_gram);
                    gram.clear();
                    gram.extend(window);
                    let symbol = self.intern_symbol(&gram);
                    self.scratch_gram = gram;
                    self.scratch_ids.push(symbol);
                }
            }
        }
        let (trigram_start, trigram_len) = self.commit_scratch();

        self.spans[id as usize] = RecordSpan {
            token_start,
            token_len,
            trigram_start,
            trigram_len,
        };
    }

    /// Drop a record's compiled form (deleted record): both spans become
    /// empty. Scoring a cleared record is valid and behaves like an empty
    /// token stream.
    pub fn clear_record(&mut self, id: u32) {
        if (id as usize) < self.spans.len() {
            self.spans[id as usize] = RecordSpan::default();
        }
    }

    /// Featurize a compiled pair into `out`, reusing `scratch` — the
    /// zero-allocation hot path. Output is bit-for-bit identical to
    /// [`featurize`](crate::features::featurize) over the same encoded
    /// records (see the module docs for why).
    pub fn featurize_into(
        &self,
        a: u32,
        b: u32,
        scratch: &mut FeatureScratch,
        out: &mut PairFeatures,
    ) {
        out.indices.clear();
        out.values.clear();

        let tokens_a = self.tokens_of(a);
        let tokens_b = self.tokens_of(b);
        let shared_tokens = merge_emit(
            tokens_a,
            tokens_b,
            &self.shared_token,
            &self.diff_token,
            out,
        );

        let trigrams_a = self.trigrams_of(a);
        let trigrams_b = self.trigrams_of(b);
        let shared_trigrams = merge_emit(
            trigrams_a,
            trigrams_b,
            &self.shared_trigram,
            &self.diff_trigram,
            out,
        );

        let dense = dense_slots(
            shared_tokens,
            tokens_a.len(),
            tokens_b.len(),
            shared_trigrams,
            trigrams_a.len(),
            trigrams_b.len(),
        );
        finalize(out, &mut scratch.sort_keys, &dense, self.config.hash_dim);
    }

    /// Featurize into a fresh [`PairFeatures`] (convenience / tests; hot
    /// loops use [`CompiledDataset::featurize_into`]).
    pub fn featurize_pair(&self, a: u32, b: u32) -> PairFeatures {
        let mut scratch = FeatureScratch::default();
        let mut out = PairFeatures::default();
        self.featurize_into(a, b, &mut scratch, &mut out);
        out
    }

    /// Sorted-merge intersection size of two records' token symbols (the
    /// compiled form of the heuristic matcher's Jaccard numerator).
    pub fn shared_token_count(&self, a: u32, b: u32) -> usize {
        sorted_intersection_len(self.tokens_of(a), self.tokens_of(b))
    }
}

/// Walk two sorted, deduped symbol slices; emit the shared-table entry for
/// symbols present in both and the diff-table entry for one-sided symbols.
/// Returns the intersection size.
fn merge_emit(
    a: &[u32],
    b: &[u32],
    shared: &[TableEntry],
    diff: &[TableEntry],
    out: &mut PairFeatures,
) -> usize {
    let mut push = |(index, value): TableEntry| {
        out.indices.push(index);
        out.values.push(value);
    };
    let mut shared_count = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        match x.cmp(&y) {
            std::cmp::Ordering::Equal => {
                shared_count += 1;
                push(shared[x as usize]);
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => {
                push(diff[x as usize]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                push(diff[y as usize]);
                j += 1;
            }
        }
    }
    for &x in &a[i..] {
        push(diff[x as usize]);
    }
    for &y in &b[j..] {
        push(diff[y as usize]);
    }
    shared_count
}

/// Intersection size of two sorted, deduped slices.
fn sorted_intersection_len(a: &[u32], b: &[u32]) -> usize {
    let mut count = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::featurize;

    fn encoded(tokens: &[&str]) -> EncodedRecord {
        EncodedRecord {
            tokens: tokens.iter().map(|t| t.to_string()).collect(),
        }
    }

    fn assert_bit_identical(reference: &PairFeatures, compiled: &PairFeatures) {
        assert_eq!(reference.indices, compiled.indices);
        let ref_bits: Vec<u32> = reference.values.iter().map(|v| v.to_bits()).collect();
        let compiled_bits: Vec<u32> = compiled.values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(ref_bits, compiled_bits);
    }

    #[test]
    fn compiled_matches_reference_on_handcrafted_records() {
        let config = FeatureConfig::default();
        let records = vec![
            encoded(&["crowdstrike", "holdings", "austin", "usa"]),
            encoded(&["crowdstreet", "austin", "tx"]),
            encoded(&["[col]", "name", "[val]", "acme", "ag"]),
            encoded(&[]),
            encoded(&["ab", "x", "acme", "acme"]), // sub-3-char + duplicate
            encoded(&["zürich", "österreich"]),    // multi-byte chars
        ];
        let compiled = CompiledDataset::compile(&records, &config);
        for a in 0..records.len() {
            for b in 0..records.len() {
                let reference = featurize(&records[a], &records[b], &config);
                let fast = compiled.featurize_pair(a as u32, b as u32);
                assert_bit_identical(&reference, &fast);
            }
        }
    }

    #[test]
    fn spans_are_sorted_and_deduped() {
        let config = FeatureConfig::default();
        let compiled = CompiledDataset::compile(
            &[encoded(&["beta", "alpha", "beta", "[col]", "alpha"])],
            &config,
        );
        let tokens = compiled.tokens_of(0);
        assert_eq!(tokens.len(), 2, "deduped, markers dropped");
        assert!(tokens.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn recompile_updates_one_record_only() {
        let config = FeatureConfig::default();
        let records = vec![
            encoded(&["acme", "zurich"]),
            encoded(&["globex", "paris"]),
            encoded(&["initech", "austin"]),
        ];
        let mut compiled = CompiledDataset::compile(&records, &config);
        let before_other = featurize(&records[2], &records[1], &config);

        let replacement = encoded(&["acme", "geneva", "brand-new-token"]);
        compiled.recompile_record(0, &replacement);
        // The touched record now featurizes like its replacement...
        let reference = featurize(&replacement, &records[1], &config);
        assert_bit_identical(&reference, &compiled.featurize_pair(0, 1));
        // ...and untouched records are unaffected.
        assert_bit_identical(&before_other, &compiled.featurize_pair(2, 1));
    }

    #[test]
    fn recompile_extends_the_id_space() {
        let config = FeatureConfig::default();
        let mut compiled = CompiledDataset::new(&config);
        compiled.recompile_record(3, &encoded(&["late", "arrival"]));
        assert_eq!(compiled.num_records(), 4);
        // Interleaving ids compile as empty records until filled.
        let reference = featurize(&encoded(&[]), &encoded(&["late", "arrival"]), &config);
        assert_bit_identical(&reference, &compiled.featurize_pair(1, 3));
    }

    #[test]
    fn clear_record_behaves_like_empty_stream() {
        let config = FeatureConfig::default();
        let records = vec![encoded(&["acme", "zurich"]), encoded(&["acme", "geneva"])];
        let mut compiled = CompiledDataset::compile(&records, &config);
        compiled.clear_record(0);
        let reference = featurize(&encoded(&[]), &records[1], &config);
        assert_bit_identical(&reference, &compiled.featurize_pair(0, 1));
    }

    #[test]
    fn arena_bytes_reports_growth() {
        let config = FeatureConfig::default();
        let empty = CompiledDataset::new(&config);
        let populated = CompiledDataset::compile(
            &[encoded(&["crowdstrike", "holdings", "austin", "texas"])],
            &config,
        );
        assert!(populated.arena_bytes() > empty.arena_bytes());
        assert!(populated.num_symbols() > 0);
    }

    #[test]
    fn shared_token_count_matches_set_intersection() {
        let config = FeatureConfig::default();
        let records = vec![
            encoded(&["acme", "zurich", "ag"]),
            encoded(&["acme", "geneva", "ag", "[col]"]),
        ];
        let compiled = CompiledDataset::compile(&records, &config);
        assert_eq!(compiled.shared_token_count(0, 1), 2);
    }
}
