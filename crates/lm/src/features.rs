//! Pair featurization.
//!
//! A record pair becomes a sparse, L2-normalized feature vector combining:
//!
//! * hashed **shared tokens** (both streams) — the strongest match signal;
//!   a shared rare token (an ISIN, a distinctive name word) is near-proof,
//! * hashed **disagreeing tokens** (symmetric difference) — evidence against,
//! * hashed **shared / disagreeing character trigrams** — sub-word alignment
//!   that both powers typo robustness *and* produces the realistic
//!   "Crowdstrike vs Crowdstreet" confusions the paper highlights,
//! * a handful of **dense similarity features** (token Jaccard, trigram
//!   Dice, length ratio) in reserved slots at the top of the space.
//!
//! The featurization is symmetric by construction (set operations), so
//! `score(a, b) == score(b, a)` holds exactly.
//!
//! **Canonical output order.** The hashed section of a [`PairFeatures`] is
//! emitted sorted by `(index, value bit pattern)`, followed by the dense
//! slots in slot order, and the L2 norm is accumulated in exactly that
//! order. This makes the output independent of *how* the feature multiset
//! was produced — the set-based reference implementation here and the
//! sorted-merge compiled path in [`crate::compiled`] produce bit-for-bit
//! identical vectors (property-tested in `tests/compiled_featurization.rs`).
//!
//! [`featurize`] is the **reference oracle**: allocation-heavy but
//! obviously faithful to the definition above. Hot loops go through
//! [`CompiledDataset`](crate::compiled::CompiledDataset), which interns
//! every token/trigram once per dataset and replaces the per-pair hashing
//! with integer merges over precomputed per-symbol tables.

use crate::encode::EncodedRecord;
use gralmatch_text::ngrams::hash_feature;
use gralmatch_util::{FromJson, FxHashSet, Json, JsonError, ToJson};

/// Feature-space configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureConfig {
    /// Hashed-feature buckets (power of two; weights vector length is
    /// `hash_dim + NUM_DENSE`).
    pub hash_dim: u32,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig { hash_dim: 1 << 18 }
    }
}

impl ToJson for FeatureConfig {
    fn to_json(&self) -> Json {
        Json::obj([("hash_dim", self.hash_dim.to_json())])
    }
}

impl FromJson for FeatureConfig {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let hash_dim = u32::from_json(json.field("hash_dim")?)?;
        if hash_dim == 0 || !hash_dim.is_power_of_two() {
            return Err(JsonError {
                message: format!("hash_dim {hash_dim} is not a power of two"),
            });
        }
        Ok(FeatureConfig { hash_dim })
    }
}

/// Number of dense feature slots appended after the hashed space.
pub const NUM_DENSE: usize = 6;

pub(crate) const NS_SHARED_TOKEN: u8 = 1;
pub(crate) const NS_DIFF_TOKEN: u8 = 2;
pub(crate) const NS_SHARED_TRIGRAM: u8 = 3;
pub(crate) const NS_DIFF_TRIGRAM: u8 = 4;

/// Per-namespace feature weights (multiplied by the hash sign).
pub(crate) const WEIGHT_SHARED_TOKEN: f32 = 1.0;
pub(crate) const WEIGHT_DIFF_TOKEN: f32 = 0.5;
pub(crate) const WEIGHT_SHARED_TRIGRAM: f32 = 0.5;
pub(crate) const WEIGHT_DIFF_TRIGRAM: f32 = 0.25;

/// A featurized pair: parallel arrays of weight indexes and values,
/// L2-normalized. Indexes may repeat (hash collisions within one pair are
/// summed by the dot product anyway).
#[derive(Debug, Clone, Default)]
pub struct PairFeatures {
    /// Weight-vector indexes.
    pub indices: Vec<u32>,
    /// Feature values (normalized).
    pub values: Vec<f32>,
}

impl FeatureConfig {
    /// Total weight-vector length.
    pub fn dim(&self) -> usize {
        self.hash_dim as usize + NUM_DENSE
    }
}

fn char_trigrams_of_tokens(tokens: &[String], out: &mut FxHashSet<String>) {
    for token in tokens {
        if token.starts_with('[') {
            continue; // encoder markers carry no content
        }
        let chars: Vec<char> = token.chars().collect();
        if chars.len() < 3 {
            out.insert(token.clone());
            continue;
        }
        for window in chars.windows(3) {
            out.insert(window.iter().collect());
        }
    }
}

/// The dense similarity slots, a pure function of the pair's set counts.
/// Shared by the reference and compiled paths so both compute identical
/// bit patterns from identical counts.
pub(crate) fn dense_slots(
    shared_tokens: usize,
    content_a: usize,
    content_b: usize,
    shared_trigrams: usize,
    num_trigrams_a: usize,
    num_trigrams_b: usize,
) -> [f32; NUM_DENSE] {
    let union = (content_a + content_b).saturating_sub(shared_tokens);
    let jaccard = if union == 0 {
        1.0
    } else {
        shared_tokens as f32 / union as f32
    };
    let trigram_union = (num_trigrams_a + num_trigrams_b).saturating_sub(shared_trigrams);
    let trigram_jaccard = if trigram_union == 0 {
        1.0
    } else {
        shared_trigrams as f32 / trigram_union as f32
    };
    let len_ratio = if content_a.max(content_b) == 0 {
        1.0
    } else {
        content_a.min(content_b) as f32 / content_a.max(content_b) as f32
    };
    [
        jaccard,
        trigram_jaccard,
        len_ratio,
        (shared_tokens as f32 / 8.0).min(1.0),
        if shared_tokens == 0 { 1.0 } else { 0.0 },
        1.0, // bias-adjacent always-on slot
    ]
}

/// Canonicalize a pair vector in place: sort the hashed section by
/// `(index, value bit pattern)` through `scratch`, append the dense slots
/// after `hash_dim`, and L2-normalize in that exact order. Both featurize
/// paths finish through here, which is what makes their outputs bit-for-bit
/// comparable (float summation order is part of the contract).
pub(crate) fn finalize(
    features: &mut PairFeatures,
    scratch: &mut Vec<(u32, u32)>,
    dense: &[f32; NUM_DENSE],
    hash_dim: u32,
) {
    scratch.clear();
    scratch.extend(
        features
            .indices
            .iter()
            .zip(&features.values)
            .map(|(&index, &value)| (index, value.to_bits())),
    );
    scratch.sort_unstable();
    features.indices.clear();
    features.values.clear();
    for &(index, bits) in scratch.iter() {
        features.indices.push(index);
        features.values.push(f32::from_bits(bits));
    }
    for (slot, value) in dense.iter().enumerate() {
        features.indices.push(hash_dim + slot as u32);
        features.values.push(*value);
    }

    // L2 normalization keeps gradient magnitudes comparable across pairs of
    // very different record lengths.
    let norm = features.values.iter().map(|v| v * v).sum::<f32>().sqrt();
    if norm > 0.0 {
        for value in &mut features.values {
            *value /= norm;
        }
    }
}

/// Featurize an encoded pair — the set-based **reference** implementation.
///
/// Hot loops (inference over candidate pairs, training epochs) should go
/// through [`CompiledDataset`](crate::compiled::CompiledDataset) instead,
/// which produces bit-for-bit identical output without per-pair hashing or
/// string allocation.
pub fn featurize(a: &EncodedRecord, b: &EncodedRecord, config: &FeatureConfig) -> PairFeatures {
    let set_a: FxHashSet<&str> = a.tokens.iter().map(|t| t.as_str()).collect();
    let set_b: FxHashSet<&str> = b.tokens.iter().map(|t| t.as_str()).collect();

    let mut features = PairFeatures::default();
    let mut push = |namespace: u8, gram: &str, weight: f32| {
        let hashed = hash_feature(namespace, gram, config.hash_dim);
        features.indices.push(hashed.index);
        features.values.push(hashed.sign * weight);
    };

    let mut shared_tokens = 0usize;
    for &token in &set_a {
        if token.starts_with('[') {
            continue;
        }
        if set_b.contains(token) {
            shared_tokens += 1;
            push(NS_SHARED_TOKEN, token, WEIGHT_SHARED_TOKEN);
        } else {
            push(NS_DIFF_TOKEN, token, WEIGHT_DIFF_TOKEN);
        }
    }
    for &token in &set_b {
        if token.starts_with('[') || set_a.contains(token) {
            continue;
        }
        push(NS_DIFF_TOKEN, token, WEIGHT_DIFF_TOKEN);
    }

    let mut trigrams_a = FxHashSet::default();
    let mut trigrams_b = FxHashSet::default();
    char_trigrams_of_tokens(&a.tokens, &mut trigrams_a);
    char_trigrams_of_tokens(&b.tokens, &mut trigrams_b);
    let mut shared_trigrams = 0usize;
    for gram in &trigrams_a {
        if trigrams_b.contains(gram) {
            shared_trigrams += 1;
            push(NS_SHARED_TRIGRAM, gram, WEIGHT_SHARED_TRIGRAM);
        } else {
            push(NS_DIFF_TRIGRAM, gram, WEIGHT_DIFF_TRIGRAM);
        }
    }
    for gram in &trigrams_b {
        if !trigrams_a.contains(gram) {
            push(NS_DIFF_TRIGRAM, gram, WEIGHT_DIFF_TRIGRAM);
        }
    }

    let content_a = set_a.iter().filter(|t| !t.starts_with('[')).count();
    let content_b = set_b.iter().filter(|t| !t.starts_with('[')).count();
    let dense = dense_slots(
        shared_tokens,
        content_a,
        content_b,
        shared_trigrams,
        trigrams_a.len(),
        trigrams_b.len(),
    );
    let mut scratch = Vec::with_capacity(features.indices.len());
    finalize(&mut features, &mut scratch, &dense, config.hash_dim);
    features
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encoded(tokens: &[&str]) -> EncodedRecord {
        EncodedRecord {
            tokens: tokens.iter().map(|t| t.to_string()).collect(),
        }
    }

    #[test]
    fn featurization_is_symmetric() {
        let config = FeatureConfig::default();
        let a = encoded(&["crowdstrike", "austin", "usa"]);
        let b = encoded(&["crowdstrike", "holdings", "texas"]);
        let mut fa = featurize(&a, &b, &config);
        let mut fb = featurize(&b, &a, &config);
        let sort = |f: &mut PairFeatures| {
            let mut paired: Vec<(u32, i32)> = f
                .indices
                .iter()
                .zip(&f.values)
                .map(|(&i, &v)| (i, (v * 1e6) as i32))
                .collect();
            paired.sort_unstable();
            paired
        };
        assert_eq!(sort(&mut fa), sort(&mut fb));
    }

    #[test]
    fn identical_records_high_jaccard_slot() {
        let config = FeatureConfig::default();
        let a = encoded(&["acme", "zurich"]);
        let f = featurize(&a, &a, &config);
        let jaccard_slot = f
            .indices
            .iter()
            .position(|&i| i == config.hash_dim)
            .unwrap();
        // Normalized, but must be the maximum possible for this vector.
        assert!(f.values[jaccard_slot] > 0.0);
    }

    #[test]
    fn markers_do_not_contribute() {
        let config = FeatureConfig::default();
        let plain = featurize(&encoded(&["acme"]), &encoded(&["acme"]), &config);
        let marked = featurize(
            &encoded(&["[col]", "name", "[val]", "acme"]),
            &encoded(&["[col]", "name", "[val]", "acme"]),
            &config,
        );
        // Markers are skipped, but the ditto "name" column token *is*
        // content ("name" is a real token there) — so only "[...]" markers
        // must not appear. Verify by feature count relation.
        assert!(marked.indices.len() >= plain.indices.len());
        assert!(!marked.indices.is_empty());
    }

    #[test]
    fn vector_is_normalized() {
        let config = FeatureConfig::default();
        let f = featurize(
            &encoded(&["crowdstrike", "austin"]),
            &encoded(&["crowdstreet", "austin"]),
            &config,
        );
        let norm: f32 = f.values.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4, "norm {norm}");
    }

    #[test]
    fn dense_slots_in_reserved_range() {
        let config = FeatureConfig::default();
        let f = featurize(&encoded(&["a1"]), &encoded(&["b2"]), &config);
        let dense_count = f.indices.iter().filter(|&&i| i >= config.hash_dim).count();
        assert_eq!(dense_count, NUM_DENSE);
        assert!(f.indices.iter().all(|&i| (i as usize) < config.dim()));
    }

    #[test]
    fn near_collision_names_share_trigram_features() {
        // Crowdstrike vs Crowdstreet share the "crowdstr" prefix: shared
        // trigram features must exist even though tokens differ.
        let config = FeatureConfig::default();
        let f = featurize(
            &encoded(&["crowdstrike"]),
            &encoded(&["crowdstreet"]),
            &config,
        );
        // At least the trigrams "cro","row","owd","wds","dst","str" shared:
        // count features hashed into the shared-trigram namespace by
        // recomputing the expected indexes.
        let expected = hash_feature(3, "cro", config.hash_dim);
        assert!(f.indices.contains(&expected.index));
    }

    #[test]
    fn empty_records_produce_dense_only() {
        let config = FeatureConfig::default();
        let f = featurize(&encoded(&[]), &encoded(&[]), &config);
        assert_eq!(f.indices.len(), NUM_DENSE);
    }
}
