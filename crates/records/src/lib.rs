//! Record model for the GraLMatch entity group matching problem.
//!
//! The paper matches two kinds of financial records across multiple data
//! sources (Section 3): **companies** (name, city, region, country code,
//! short description) and **securities** (name, type, identifier codes such
//! as ISIN / CUSIP / VALOR / SEDOL, issued by exactly one company). A third
//! record kind, **product offers**, models the WDC Products benchmark used
//! in Section 5.1.4.
//!
//! Everything downstream (blocking, the pairwise matcher, the graph cleanup)
//! is generic over the [`Record`] trait, which exposes a record as a list of
//! `(column, value)` fields plus its identifier codes — mirroring how the
//! paper's language models serialize records as text while blockings index
//! their identifiers.

pub mod binfmt;
pub mod company;
pub mod csv_io;
pub mod dataset;
pub mod ground_truth;
pub mod ids;
pub mod json_codec;
pub mod pair;
pub mod product;
pub mod record;
pub mod security;
pub mod split;

pub use company::CompanyRecord;
pub use dataset::Dataset;
pub use ground_truth::GroundTruth;
pub use ids::{EntityId, IdCode, IdKind, RecordId, SourceId};
pub use pair::RecordPair;
pub use product::ProductRecord;
pub use record::Record;
pub use security::{SecurityRecord, SecurityType};
pub use split::{DatasetSplit, SplitRatios};
