//! The [`Record`] abstraction.
//!
//! Blocking, pair encoding, and evaluation are all generic over this trait:
//! a record is (a) addressable by id and data source, (b) serializable as a
//! list of `(column, value)` string fields in a stable order, and (c) may
//! carry identifier codes used by the ID-overlap blocking.

use crate::ids::{EntityId, IdCode, RecordId, SourceId};
use std::borrow::Cow;

/// A matchable record.
pub trait Record {
    /// Dense id within its dataset.
    fn id(&self) -> RecordId;

    /// Which data source (vendor) the record came from.
    fn source(&self) -> SourceId;

    /// Ground-truth entity, when known (synthetic data and labeled subsets).
    fn entity(&self) -> Option<EntityId>;

    /// The record's fields in a stable column order. Empty/missing fields
    /// are omitted; downstream encoders rely on the ordering to reproduce
    /// truncation effects deterministically.
    fn fields(&self) -> Vec<(&'static str, Cow<'_, str>)>;

    /// Identifier codes carried by the record (empty for records matched
    /// purely by text, e.g. WDC product offers).
    fn id_codes(&self) -> &[IdCode];

    /// The primary human-readable name (used by token-overlap blocking and
    /// the heuristic matcher).
    fn name(&self) -> &str;

    /// Concatenate all textual field values into one string (diagnostics,
    /// corpus statistics).
    fn full_text(&self) -> String {
        let mut out = String::new();
        for (_, v) in self.fields() {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(&v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::IdKind;

    struct Dummy {
        id: RecordId,
        codes: Vec<IdCode>,
    }

    impl Record for Dummy {
        fn id(&self) -> RecordId {
            self.id
        }
        fn source(&self) -> SourceId {
            SourceId(0)
        }
        fn entity(&self) -> Option<EntityId> {
            None
        }
        fn fields(&self) -> Vec<(&'static str, Cow<'_, str>)> {
            vec![
                ("name", Cow::Borrowed("Acme")),
                ("city", Cow::Borrowed("Zurich")),
            ]
        }
        fn id_codes(&self) -> &[IdCode] {
            &self.codes
        }
        fn name(&self) -> &str {
            "Acme"
        }
    }

    #[test]
    fn full_text_joins_fields() {
        let d = Dummy {
            id: RecordId(0),
            codes: vec![IdCode::new(IdKind::Lei, "X")],
        };
        assert_eq!(d.full_text(), "Acme Zurich");
        assert_eq!(d.id_codes().len(), 1);
    }
}
