//! Canonical unordered record pairs.

use crate::ids::RecordId;

/// An unordered pair of records, stored with `a < b`.
///
/// Matching is symmetric, so every map/set keyed by pairs uses this
/// canonical form to avoid double-counting `(x, y)` and `(y, x)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordPair {
    /// Smaller record id.
    pub a: RecordId,
    /// Larger record id.
    pub b: RecordId,
}

impl RecordPair {
    /// Canonicalize. Panics on a self-pair in debug builds.
    #[inline]
    pub fn new(x: RecordId, y: RecordId) -> Self {
        debug_assert_ne!(x, y, "a record cannot pair with itself");
        if x < y {
            RecordPair { a: x, b: y }
        } else {
            RecordPair { a: y, b: x }
        }
    }

    /// Both endpoints as a tuple.
    #[inline]
    pub fn endpoints(&self) -> (RecordId, RecordId) {
        (self.a, self.b)
    }

    /// The endpoint that is not `r` (debug-asserts membership).
    #[inline]
    pub fn other(&self, r: RecordId) -> RecordId {
        debug_assert!(r == self.a || r == self.b);
        if r == self.a {
            self.b
        } else {
            self.a
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order() {
        let p = RecordPair::new(RecordId(9), RecordId(3));
        assert_eq!(p.endpoints(), (RecordId(3), RecordId(9)));
    }

    #[test]
    fn symmetric_equality() {
        assert_eq!(
            RecordPair::new(RecordId(1), RecordId(2)),
            RecordPair::new(RecordId(2), RecordId(1))
        );
    }

    #[test]
    fn other_endpoint() {
        let p = RecordPair::new(RecordId(1), RecordId(2));
        assert_eq!(p.other(RecordId(1)), RecordId(2));
        assert_eq!(p.other(RecordId(2)), RecordId(1));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic]
    fn self_pair_panics() {
        let _ = RecordPair::new(RecordId(5), RecordId(5));
    }
}
