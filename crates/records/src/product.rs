//! Product offer records (WDC Products stand-in, paper Section 5.1.4).
//!
//! WDC Products contains web-scraped product offers with heterogeneous group
//! sizes and no identifier codes — matching is purely textual. The paper uses
//! it to show where Algorithm 1's fixed μ assumption breaks down.

use crate::ids::{EntityId, IdCode, RecordId, SourceId};
use crate::record::Record;
use std::borrow::Cow;

/// A product offer scraped from one web source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProductRecord {
    /// Dense id within the product dataset.
    pub id: RecordId,
    /// Originating web source.
    pub source: SourceId,
    /// Ground-truth product cluster.
    pub entity: Option<EntityId>,
    /// Offer title (brand + model + noise).
    pub title: String,
    /// Brand, possibly missing.
    pub brand: String,
    /// Free-text description, possibly missing.
    pub description: String,
    /// Price string as scraped (e.g. "129.99 USD"), possibly missing.
    pub price: String,
    /// Category label, possibly missing.
    pub category: String,
}

impl ProductRecord {
    /// Minimal constructor.
    pub fn new(id: RecordId, source: SourceId, title: impl Into<String>) -> Self {
        ProductRecord {
            id,
            source,
            entity: None,
            title: title.into(),
            brand: String::new(),
            description: String::new(),
            price: String::new(),
            category: String::new(),
        }
    }

    /// Builder-style setter for the ground-truth entity.
    pub fn with_entity(mut self, entity: EntityId) -> Self {
        self.entity = Some(entity);
        self
    }
}

impl Record for ProductRecord {
    fn id(&self) -> RecordId {
        self.id
    }

    fn source(&self) -> SourceId {
        self.source
    }

    fn entity(&self) -> Option<EntityId> {
        self.entity
    }

    fn fields(&self) -> Vec<(&'static str, Cow<'_, str>)> {
        let mut fields: Vec<(&'static str, Cow<'_, str>)> = Vec::with_capacity(5);
        if !self.title.is_empty() {
            fields.push(("title", Cow::Borrowed(self.title.as_str())));
        }
        if !self.brand.is_empty() {
            fields.push(("brand", Cow::Borrowed(self.brand.as_str())));
        }
        if !self.description.is_empty() {
            fields.push(("description", Cow::Borrowed(self.description.as_str())));
        }
        if !self.price.is_empty() {
            fields.push(("price", Cow::Borrowed(self.price.as_str())));
        }
        if !self.category.is_empty() {
            fields.push(("category", Cow::Borrowed(self.category.as_str())));
        }
        fields
    }

    fn id_codes(&self) -> &[IdCode] {
        &[]
    }

    fn name(&self) -> &str {
        &self.title
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn products_have_no_id_codes() {
        let p = ProductRecord::new(RecordId(0), SourceId(0), "Acme Blender 3000");
        assert!(p.id_codes().is_empty());
        assert_eq!(p.name(), "Acme Blender 3000");
    }

    #[test]
    fn fields_skip_missing() {
        let mut p = ProductRecord::new(RecordId(1), SourceId(2), "Cam X9");
        p.brand = "Cam".into();
        let cols: Vec<&str> = p.fields().iter().map(|(c, _)| *c).collect();
        assert_eq!(cols, vec!["title", "brand"]);
    }

    #[test]
    fn json_round_trip() {
        use gralmatch_util::{FromJson, Json, ToJson};
        let p = ProductRecord::new(RecordId(3), SourceId(1), "Tablet Pro").with_entity(EntityId(7));
        let json = p.to_json().to_compact_string();
        let back = ProductRecord::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, p);
    }
}
