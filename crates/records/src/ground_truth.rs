//! Ground-truth entity assignment.
//!
//! Wraps the record → entity labeling and answers the questions every
//! evaluation stage asks: *is this pair a true match?*, *how many true
//! matches exist in this record subset?*, *what are the true groups?*
//!
//! Following the paper's convention, records of the same entity form a
//! complete graph of matches, so an entity group of size k contributes
//! k·(k−1)/2 true pairs (Table 1's "# of Matches" counts these).

use crate::ids::{EntityId, RecordId};
use crate::pair::RecordPair;
use crate::record::Record;
use gralmatch_util::{FxHashMap, FxHashSet};

/// Immutable ground-truth lookup for one dataset.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    entity_of: FxHashMap<RecordId, EntityId>,
    groups: FxHashMap<EntityId, Vec<RecordId>>,
}

impl GroundTruth {
    /// Build from any labeled record collection. Unlabeled records are
    /// excluded (they can never be counted as true matches).
    pub fn from_records<R: Record>(records: &[R]) -> Self {
        let mut entity_of = FxHashMap::default();
        let mut groups: FxHashMap<EntityId, Vec<RecordId>> = FxHashMap::default();
        for r in records {
            if let Some(e) = r.entity() {
                entity_of.insert(r.id(), e);
                groups.entry(e).or_default().push(r.id());
            }
        }
        for members in groups.values_mut() {
            members.sort_unstable();
        }
        GroundTruth { entity_of, groups }
    }

    /// Build directly from `(record, entity)` assignments.
    pub fn from_assignments(assignments: impl IntoIterator<Item = (RecordId, EntityId)>) -> Self {
        let mut entity_of = FxHashMap::default();
        let mut groups: FxHashMap<EntityId, Vec<RecordId>> = FxHashMap::default();
        for (r, e) in assignments {
            entity_of.insert(r, e);
            groups.entry(e).or_default().push(r);
        }
        for members in groups.values_mut() {
            members.sort_unstable();
        }
        GroundTruth { entity_of, groups }
    }

    /// The entity of a record, if labeled.
    pub fn entity_of(&self, r: RecordId) -> Option<EntityId> {
        self.entity_of.get(&r).copied()
    }

    /// Whether two records are a true match (both labeled, same entity).
    pub fn is_match(&self, a: RecordId, b: RecordId) -> bool {
        match (self.entity_of.get(&a), self.entity_of.get(&b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Whether a pair is a true match.
    pub fn is_match_pair(&self, p: RecordPair) -> bool {
        self.is_match(p.a, p.b)
    }

    /// Number of labeled records.
    pub fn num_records(&self) -> usize {
        self.entity_of.len()
    }

    /// Number of distinct entities.
    pub fn num_entities(&self) -> usize {
        self.groups.len()
    }

    /// Total true-match pairs over all groups: Σ k·(k−1)/2.
    pub fn num_true_pairs(&self) -> u64 {
        self.groups
            .values()
            .map(|g| (g.len() as u64) * (g.len() as u64 - 1) / 2)
            .sum()
    }

    /// Average number of matches per entity (Table 1 row).
    pub fn avg_matches_per_entity(&self) -> f64 {
        if self.groups.is_empty() {
            return 0.0;
        }
        self.num_true_pairs() as f64 / self.groups.len() as f64
    }

    /// Iterate groups as `(entity, members)`, members sorted.
    pub fn groups(&self) -> impl Iterator<Item = (EntityId, &[RecordId])> {
        self.groups.iter().map(|(&e, m)| (e, m.as_slice()))
    }

    /// The members of one entity's group.
    pub fn group_members(&self, e: EntityId) -> Option<&[RecordId]> {
        self.groups.get(&e).map(|v| v.as_slice())
    }

    /// All entity ids, sorted (deterministic iteration for splits).
    pub fn entity_ids_sorted(&self) -> Vec<EntityId> {
        let mut ids: Vec<EntityId> = self.groups.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Restrict the ground truth to a subset of records (evaluation on a
    /// split only counts true pairs inside that split).
    pub fn restrict_to(&self, keep: &FxHashSet<RecordId>) -> GroundTruth {
        GroundTruth::from_assignments(
            self.entity_of
                .iter()
                .filter(|(r, _)| keep.contains(r))
                .map(|(&r, &e)| (r, e)),
        )
    }

    /// Materialize all true pairs (use only on small splits/tests; Table 1
    /// scale uses `num_true_pairs`).
    pub fn all_true_pairs(&self) -> Vec<RecordPair> {
        let mut pairs = Vec::with_capacity(self.num_true_pairs() as usize);
        let mut entities: Vec<_> = self.groups.iter().collect();
        entities.sort_by_key(|(e, _)| **e);
        for (_, members) in entities {
            for i in 0..members.len() {
                for j in (i + 1)..members.len() {
                    pairs.push(RecordPair::new(members[i], members[j]));
                }
            }
        }
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::company::CompanyRecord;
    use crate::ids::SourceId;

    fn labeled(id: u32, entity: u32) -> CompanyRecord {
        CompanyRecord::new(RecordId(id), SourceId(0), format!("c{id}"))
            .with_entity(EntityId(entity))
    }

    #[test]
    fn groups_and_matches() {
        let records = vec![labeled(0, 1), labeled(1, 1), labeled(2, 1), labeled(3, 2)];
        let gt = GroundTruth::from_records(&records);
        assert_eq!(gt.num_entities(), 2);
        assert_eq!(gt.num_true_pairs(), 3);
        assert!(gt.is_match(RecordId(0), RecordId(2)));
        assert!(!gt.is_match(RecordId(0), RecordId(3)));
        assert_eq!(gt.group_members(EntityId(1)).unwrap().len(), 3);
    }

    #[test]
    fn unlabeled_records_excluded() {
        let records = vec![
            labeled(0, 1),
            CompanyRecord::new(RecordId(1), SourceId(0), "unlabeled"),
        ];
        let gt = GroundTruth::from_records(&records);
        assert_eq!(gt.num_records(), 1);
        assert!(!gt.is_match(RecordId(0), RecordId(1)));
    }

    #[test]
    fn avg_matches_per_entity() {
        // One group of 3 (3 pairs) + one group of 2 (1 pair): avg 2.
        let records = vec![
            labeled(0, 1),
            labeled(1, 1),
            labeled(2, 1),
            labeled(3, 2),
            labeled(4, 2),
        ];
        let gt = GroundTruth::from_records(&records);
        assert!((gt.avg_matches_per_entity() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn all_true_pairs_enumerated() {
        let records = vec![labeled(0, 1), labeled(1, 1), labeled(2, 2), labeled(3, 2)];
        let gt = GroundTruth::from_records(&records);
        let pairs = gt.all_true_pairs();
        assert_eq!(pairs.len(), 2);
        assert!(pairs.contains(&RecordPair::new(RecordId(0), RecordId(1))));
        assert!(pairs.contains(&RecordPair::new(RecordId(2), RecordId(3))));
    }

    #[test]
    fn restriction_drops_cross_pairs() {
        let records = vec![labeled(0, 1), labeled(1, 1), labeled(2, 1)];
        let gt = GroundTruth::from_records(&records);
        let keep: FxHashSet<RecordId> = [RecordId(0), RecordId(1)].into_iter().collect();
        let restricted = gt.restrict_to(&keep);
        assert_eq!(restricted.num_true_pairs(), 1);
        assert_eq!(restricted.num_records(), 2);
    }

    #[test]
    fn empty_ground_truth() {
        let gt = GroundTruth::default();
        assert_eq!(gt.num_true_pairs(), 0);
        assert_eq!(gt.avg_matches_per_entity(), 0.0);
    }
}
