//! Company records.
//!
//! Mirrors the attributes the paper extracts from Crunchbase (Section 3.2):
//! `name, city, region, country_code, short_description`, plus the LEI
//! identifier real company records carry (Section 3.1) and the list of
//! securities the company issues (used by the companies' ID-overlap
//! blocking, which matches companies through their securities' codes).

use crate::ids::{EntityId, IdCode, RecordId, SourceId};
use crate::record::Record;
use std::borrow::Cow;

/// A company record from one data source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompanyRecord {
    /// Dense id within the company dataset.
    pub id: RecordId,
    /// Originating data source.
    pub source: SourceId,
    /// Ground-truth entity (None on unlabeled real data).
    pub entity: Option<EntityId>,
    /// Company name, possibly abbreviated / paraphrased / drifted.
    pub name: String,
    /// Headquarters city (may be empty).
    pub city: String,
    /// Headquarters region (may be empty).
    pub region: String,
    /// ISO-ish country code (may be empty).
    pub country_code: String,
    /// Short textual description (empty for most records; Table 1 reports
    /// 25–32 % coverage).
    pub short_description: String,
    /// Identifier codes (LEIs). Company ids can be overwritten by data-drift
    /// events, so presence of a shared code is *not* proof of a true match.
    pub id_codes: Vec<IdCode>,
    /// Ids of security records issued by this company **in the same
    /// source** (securities reference their issuer; this is the reverse
    /// mapping kept denormalized for the blocking).
    pub securities: Vec<RecordId>,
}

impl CompanyRecord {
    /// Minimal constructor used by tests and examples.
    pub fn new(id: RecordId, source: SourceId, name: impl Into<String>) -> Self {
        CompanyRecord {
            id,
            source,
            entity: None,
            name: name.into(),
            city: String::new(),
            region: String::new(),
            country_code: String::new(),
            short_description: String::new(),
            id_codes: Vec::new(),
            securities: Vec::new(),
        }
    }

    /// Builder-style setter for the ground-truth entity.
    pub fn with_entity(mut self, entity: EntityId) -> Self {
        self.entity = Some(entity);
        self
    }
}

impl Record for CompanyRecord {
    fn id(&self) -> RecordId {
        self.id
    }

    fn source(&self) -> SourceId {
        self.source
    }

    fn entity(&self) -> Option<EntityId> {
        self.entity
    }

    fn fields(&self) -> Vec<(&'static str, Cow<'_, str>)> {
        let mut fields: Vec<(&'static str, Cow<'_, str>)> = Vec::with_capacity(6);
        if !self.name.is_empty() {
            fields.push(("name", Cow::Borrowed(self.name.as_str())));
        }
        if !self.city.is_empty() {
            fields.push(("city", Cow::Borrowed(self.city.as_str())));
        }
        if !self.region.is_empty() {
            fields.push(("region", Cow::Borrowed(self.region.as_str())));
        }
        if !self.country_code.is_empty() {
            fields.push(("country_code", Cow::Borrowed(self.country_code.as_str())));
        }
        if !self.short_description.is_empty() {
            fields.push((
                "short_description",
                Cow::Borrowed(self.short_description.as_str()),
            ));
        }
        if !self.id_codes.is_empty() {
            let joined = self
                .id_codes
                .iter()
                .map(|c| c.value.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            fields.push(("identifiers", Cow::Owned(joined)));
        }
        fields
    }

    fn id_codes(&self) -> &[IdCode] {
        &self.id_codes
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::IdKind;

    fn sample() -> CompanyRecord {
        CompanyRecord {
            id: RecordId(12),
            source: SourceId(1),
            entity: Some(EntityId(4)),
            name: "Crowdstrike Plt.".into(),
            city: "Austin".into(),
            region: "Texas".into(),
            country_code: "USA".into(),
            short_description: "Cloud security platform".into(),
            id_codes: vec![IdCode::new(IdKind::Lei, "549300L2KBFC1E2XYW11")],
            securities: vec![RecordId(31)],
        }
    }

    #[test]
    fn fields_in_stable_order() {
        let r = sample();
        let cols: Vec<&str> = r.fields().iter().map(|(c, _)| *c).collect();
        assert_eq!(
            cols,
            vec![
                "name",
                "city",
                "region",
                "country_code",
                "short_description",
                "identifiers"
            ]
        );
    }

    #[test]
    fn empty_fields_omitted() {
        let r = CompanyRecord::new(RecordId(0), SourceId(0), "Acme");
        let cols: Vec<&str> = r.fields().iter().map(|(c, _)| *c).collect();
        assert_eq!(cols, vec!["name"]);
    }

    #[test]
    fn record_trait_accessors() {
        let r = sample();
        assert_eq!(r.id(), RecordId(12));
        assert_eq!(r.source(), SourceId(1));
        assert_eq!(r.entity(), Some(EntityId(4)));
        assert_eq!(r.name(), "Crowdstrike Plt.");
        assert_eq!(r.id_codes().len(), 1);
        assert!(r.full_text().contains("Austin"));
    }

    #[test]
    fn json_round_trip() {
        use gralmatch_util::{FromJson, Json, ToJson};
        let r = sample();
        let json = r.to_json().to_compact_string();
        let back = CompanyRecord::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn with_entity_builder() {
        let r = CompanyRecord::new(RecordId(0), SourceId(0), "X").with_entity(EntityId(9));
        assert_eq!(r.entity(), Some(EntityId(9)));
    }
}
