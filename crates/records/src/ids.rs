//! Identifier newtypes.
//!
//! Dense numeric ids keep the hot indexes (blocking inverted lists, the
//! prediction graph) compact; the newtype wrappers prevent mixing record ids
//! with entity ids at compile time.

use std::fmt;

/// A record's position in its dataset (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId(pub u32);

/// Ground-truth real-world entity id (one per record group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityId(pub u32);

/// Data source (vendor) id. The paper's use case has ~10 real vendors; the
/// synthetic benchmark uses 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceId(pub u16);

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// The international identifier standards carried by security records
/// (paper Section 3.1, footnote 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IdKind {
    /// International Securities Identification Number (12 alphanumerics).
    Isin,
    /// Committee on Uniform Securities Identification Procedures (9 chars).
    Cusip,
    /// Swiss VALOR number.
    Valor,
    /// Stock Exchange Daily Official List (7 chars).
    Sedol,
    /// Legal Entity Identifier (companies; 20 chars).
    Lei,
}

impl IdKind {
    /// All kinds, for iteration.
    pub const ALL: [IdKind; 5] = [
        IdKind::Isin,
        IdKind::Cusip,
        IdKind::Valor,
        IdKind::Sedol,
        IdKind::Lei,
    ];

    /// Column-name spelling used in record serialization.
    pub fn as_str(&self) -> &'static str {
        match self {
            IdKind::Isin => "isin",
            IdKind::Cusip => "cusip",
            IdKind::Valor => "valor",
            IdKind::Sedol => "sedol",
            IdKind::Lei => "lei",
        }
    }
}

impl fmt::Display for IdKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One identifier code attached to a record: its standard plus its value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IdCode {
    /// Which standard the code belongs to.
    pub kind: IdKind,
    /// The code value (uppercase alphanumeric by convention).
    pub value: String,
}

impl IdCode {
    /// Construct an identifier code.
    pub fn new(kind: IdKind, value: impl Into<String>) -> Self {
        IdCode {
            kind,
            value: value.into(),
        }
    }
}

impl fmt::Display for IdCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.kind, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(RecordId(12).to_string(), "#12");
        assert_eq!(EntityId(3).to_string(), "E3");
        assert_eq!(SourceId(1).to_string(), "S1");
        assert_eq!(
            IdCode::new(IdKind::Isin, "US31807756E").to_string(),
            "isin:US31807756E"
        );
    }

    #[test]
    fn id_kind_round_trip_all() {
        for kind in IdKind::ALL {
            assert!(!kind.as_str().is_empty());
        }
        assert_eq!(IdKind::ALL.len(), 5);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(RecordId(1) < RecordId(2));
        assert!(EntityId(0) < EntityId(10));
    }

    #[test]
    fn json_round_trip() {
        use gralmatch_util::{FromJson, Json, ToJson};
        let code = IdCode::new(IdKind::Sedol, "B1YW440");
        let json = code.to_json().to_compact_string();
        let back = IdCode::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, code);
    }
}
