//! Dataset container.
//!
//! A dataset is a vector of records with the invariant that `records[i].id()
//! == RecordId(i)` — record ids double as dense indexes, which is what lets
//! blocking and the prediction graph use flat arrays.

use crate::ground_truth::GroundTruth;
use crate::ids::{RecordId, SourceId};
use crate::record::Record;
use gralmatch_util::FxHashMap;

/// A collection of records with dense ids.
#[derive(Debug, Clone, Default)]
pub struct Dataset<R> {
    records: Vec<R>,
}

impl<R: Record> Dataset<R> {
    /// Empty dataset.
    pub fn new() -> Self {
        Dataset {
            records: Vec::new(),
        }
    }

    /// Build from records, validating the dense-id invariant.
    ///
    /// # Panics
    /// If any record's id does not equal its index.
    pub fn from_records(records: Vec<R>) -> Self {
        for (i, r) in records.iter().enumerate() {
            assert_eq!(
                r.id(),
                RecordId(i as u32),
                "record ids must be dense and ordered"
            );
        }
        Dataset { records }
    }

    /// Append a record; its id must be the next dense id.
    pub fn push(&mut self, record: R) {
        assert_eq!(record.id(), RecordId(self.records.len() as u32));
        self.records.push(record);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Get a record by id.
    #[inline]
    pub fn get(&self, id: RecordId) -> &R {
        &self.records[id.0 as usize]
    }

    /// Mutable access (used by dataset generators applying artifacts).
    #[inline]
    pub fn get_mut(&mut self, id: RecordId) -> &mut R {
        &mut self.records[id.0 as usize]
    }

    /// All records.
    pub fn records(&self) -> &[R] {
        &self.records
    }

    /// Mutable view of all records.
    pub fn records_mut(&mut self) -> &mut [R] {
        &mut self.records
    }

    /// Iterate record ids.
    pub fn ids(&self) -> impl Iterator<Item = RecordId> + '_ {
        (0..self.records.len() as u32).map(RecordId)
    }

    /// Ground truth derived from the records' entity labels.
    pub fn ground_truth(&self) -> GroundTruth {
        GroundTruth::from_records(&self.records)
    }

    /// Records grouped by data source.
    pub fn by_source(&self) -> FxHashMap<SourceId, Vec<RecordId>> {
        let mut map: FxHashMap<SourceId, Vec<RecordId>> = FxHashMap::default();
        for r in &self.records {
            map.entry(r.source()).or_default().push(r.id());
        }
        map
    }

    /// Number of distinct sources present.
    pub fn num_sources(&self) -> usize {
        self.by_source().len()
    }
}

impl<R> IntoIterator for Dataset<R> {
    type Item = R;
    type IntoIter = std::vec::IntoIter<R>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::company::CompanyRecord;
    use crate::ids::EntityId;

    fn company(id: u32, source: u16) -> CompanyRecord {
        CompanyRecord::new(RecordId(id), SourceId(source), format!("c{id}"))
    }

    #[test]
    fn dense_ids_enforced() {
        let ds = Dataset::from_records(vec![company(0, 0), company(1, 1)]);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.get(RecordId(1)).name, "c1");
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn non_dense_ids_rejected() {
        let _ = Dataset::from_records(vec![company(5, 0)]);
    }

    #[test]
    fn push_checks_next_id() {
        let mut ds = Dataset::new();
        ds.push(company(0, 0));
        ds.push(company(1, 0));
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn by_source_partition() {
        let ds = Dataset::from_records(vec![company(0, 0), company(1, 1), company(2, 0)]);
        let by = ds.by_source();
        assert_eq!(by[&SourceId(0)], vec![RecordId(0), RecordId(2)]);
        assert_eq!(by[&SourceId(1)], vec![RecordId(1)]);
        assert_eq!(ds.num_sources(), 2);
    }

    #[test]
    fn ground_truth_from_labels() {
        let ds = Dataset::from_records(vec![
            company(0, 0).with_entity(EntityId(1)),
            company(1, 1).with_entity(EntityId(1)),
        ]);
        assert_eq!(ds.ground_truth().num_true_pairs(), 1);
    }
}
