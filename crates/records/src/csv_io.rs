//! CSV import/export of datasets.
//!
//! The paper distributes its synthetic benchmark as flat files; this module
//! provides the same interchange for ours. Formats are one row per record
//! with a header; identifier codes are packed as `kind:value` joined by
//! `|`, security references as `;`-joined dense ids.

use crate::company::CompanyRecord;
use crate::dataset::Dataset;
use crate::ids::{EntityId, IdCode, IdKind, RecordId, SourceId};
use crate::security::{SecurityRecord, SecurityType};
use gralmatch_util::csv::{parse_csv, to_csv_string};
use gralmatch_util::{Error, Result};

fn pack_codes(codes: &[IdCode]) -> String {
    codes
        .iter()
        .map(|c| format!("{}:{}", c.kind, c.value))
        .collect::<Vec<_>>()
        .join("|")
}

fn unpack_codes(packed: &str, line: usize) -> Result<Vec<IdCode>> {
    if packed.is_empty() {
        return Ok(Vec::new());
    }
    packed
        .split('|')
        .map(|part| {
            let (kind, value) = part.split_once(':').ok_or_else(|| Error::Csv {
                line,
                message: format!("malformed id code `{part}`"),
            })?;
            let kind = match kind {
                "isin" => IdKind::Isin,
                "cusip" => IdKind::Cusip,
                "valor" => IdKind::Valor,
                "sedol" => IdKind::Sedol,
                "lei" => IdKind::Lei,
                other => {
                    return Err(Error::Csv {
                        line,
                        message: format!("unknown id kind `{other}`"),
                    })
                }
            };
            Ok(IdCode::new(kind, value))
        })
        .collect()
}

fn parse_u32(field: &str, what: &str, line: usize) -> Result<u32> {
    field.parse().map_err(|_| Error::Csv {
        line,
        message: format!("invalid {what} `{field}`"),
    })
}

/// Serialize a company dataset to CSV (with header).
pub fn companies_to_csv(dataset: &Dataset<CompanyRecord>) -> String {
    let mut rows = vec![vec![
        "id".into(),
        "source".into(),
        "entity".into(),
        "name".into(),
        "city".into(),
        "region".into(),
        "country_code".into(),
        "short_description".into(),
        "id_codes".into(),
        "securities".into(),
    ]];
    for record in dataset.records() {
        rows.push(vec![
            record.id.0.to_string(),
            record.source.0.to_string(),
            record.entity.map_or(String::new(), |e| e.0.to_string()),
            record.name.clone(),
            record.city.clone(),
            record.region.clone(),
            record.country_code.clone(),
            record.short_description.clone(),
            pack_codes(&record.id_codes),
            record
                .securities
                .iter()
                .map(|s| s.0.to_string())
                .collect::<Vec<_>>()
                .join(";"),
        ]);
    }
    to_csv_string(&rows)
}

/// Parse a company dataset from CSV (expects the header of
/// [`companies_to_csv`]).
pub fn companies_from_csv(text: &str) -> Result<Dataset<CompanyRecord>> {
    let rows = parse_csv(text)?;
    let mut records = Vec::new();
    for (i, row) in rows.iter().enumerate().skip(1) {
        let line = i + 1;
        if row.len() != 10 {
            return Err(Error::Csv {
                line,
                message: format!("expected 10 fields, got {}", row.len()),
            });
        }
        let securities = if row[9].is_empty() {
            Vec::new()
        } else {
            row[9]
                .split(';')
                .map(|s| parse_u32(s, "security id", line).map(RecordId))
                .collect::<Result<Vec<_>>>()?
        };
        records.push(CompanyRecord {
            id: RecordId(parse_u32(&row[0], "record id", line)?),
            source: SourceId(parse_u32(&row[1], "source id", line)? as u16),
            entity: if row[2].is_empty() {
                None
            } else {
                Some(EntityId(parse_u32(&row[2], "entity id", line)?))
            },
            name: row[3].clone(),
            city: row[4].clone(),
            region: row[5].clone(),
            country_code: row[6].clone(),
            short_description: row[7].clone(),
            id_codes: unpack_codes(&row[8], line)?,
            securities,
        });
    }
    Ok(Dataset::from_records(records))
}

/// Serialize a security dataset to CSV (with header).
pub fn securities_to_csv(dataset: &Dataset<SecurityRecord>) -> String {
    let mut rows = vec![vec![
        "id".into(),
        "source".into(),
        "entity".into(),
        "name".into(),
        "type".into(),
        "listings".into(),
        "id_codes".into(),
        "issuer".into(),
    ]];
    for record in dataset.records() {
        rows.push(vec![
            record.id.0.to_string(),
            record.source.0.to_string(),
            record.entity.map_or(String::new(), |e| e.0.to_string()),
            record.name.clone(),
            record.security_type.as_str().to_string(),
            record.listings.clone(),
            pack_codes(&record.id_codes),
            record.issuer.0.to_string(),
        ]);
    }
    to_csv_string(&rows)
}

/// Parse a security dataset from CSV (expects the header of
/// [`securities_to_csv`]).
pub fn securities_from_csv(text: &str) -> Result<Dataset<SecurityRecord>> {
    let rows = parse_csv(text)?;
    let mut records = Vec::new();
    for (i, row) in rows.iter().enumerate().skip(1) {
        let line = i + 1;
        if row.len() != 8 {
            return Err(Error::Csv {
                line,
                message: format!("expected 8 fields, got {}", row.len()),
            });
        }
        let security_type = match row[4].as_str() {
            "equity" => SecurityType::Equity,
            "right" => SecurityType::Right,
            "bond" => SecurityType::Bond,
            "unit" => SecurityType::Unit,
            "adr" => SecurityType::Adr,
            other => {
                return Err(Error::Csv {
                    line,
                    message: format!("unknown security type `{other}`"),
                })
            }
        };
        records.push(SecurityRecord {
            id: RecordId(parse_u32(&row[0], "record id", line)?),
            source: SourceId(parse_u32(&row[1], "source id", line)? as u16),
            entity: if row[2].is_empty() {
                None
            } else {
                Some(EntityId(parse_u32(&row[2], "entity id", line)?))
            },
            name: row[3].clone(),
            security_type,
            listings: row[5].clone(),
            id_codes: unpack_codes(&row[6], line)?,
            issuer: RecordId(parse_u32(&row[7], "issuer id", line)?),
        });
    }
    Ok(Dataset::from_records(records))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn company_dataset() -> Dataset<CompanyRecord> {
        let mut c0 = CompanyRecord::new(RecordId(0), SourceId(1), "Crowdstrike, Inc.")
            .with_entity(EntityId(7));
        c0.city = "Austin".into();
        c0.id_codes.push(IdCode::new(IdKind::Lei, "549300ABC"));
        c0.securities = vec![RecordId(0), RecordId(1)];
        let c1 = CompanyRecord::new(RecordId(1), SourceId(2), "Unlabeled \"quoted\"");
        Dataset::from_records(vec![c0, c1])
    }

    #[test]
    fn companies_round_trip() {
        let dataset = company_dataset();
        let csv = companies_to_csv(&dataset);
        let back = companies_from_csv(&csv).unwrap();
        assert_eq!(back.records(), dataset.records());
    }

    #[test]
    fn securities_round_trip() {
        let sec = SecurityRecord::new(RecordId(0), SourceId(1), "CRWD ORD", RecordId(0))
            .with_entity(EntityId(3))
            .with_code(IdCode::new(IdKind::Isin, "US123"))
            .with_code(IdCode::new(IdKind::Sedol, "B1YW440"));
        let dataset = Dataset::from_records(vec![sec]);
        let csv = securities_to_csv(&dataset);
        let back = securities_from_csv(&csv).unwrap();
        assert_eq!(back.records(), dataset.records());
    }

    #[test]
    fn commas_and_quotes_survive() {
        let csv = companies_to_csv(&company_dataset());
        assert!(csv.contains("\"Crowdstrike, Inc.\""));
        let back = companies_from_csv(&csv).unwrap();
        assert_eq!(back.get(RecordId(0)).name, "Crowdstrike, Inc.");
        assert_eq!(back.get(RecordId(1)).name, "Unlabeled \"quoted\"");
    }

    #[test]
    fn malformed_rows_rejected() {
        assert!(companies_from_csv("id,source\n0,1\n").is_err());
        let bad_code = "id,source,entity,name,city,region,country_code,short_description,id_codes,securities\n0,0,,X,,,,,badcode,\n";
        assert!(companies_from_csv(bad_code).is_err());
        let bad_type = "id,source,entity,name,type,listings,id_codes,issuer\n0,0,,X,warrant,,,0\n";
        assert!(securities_from_csv(bad_type).is_err());
    }

    #[test]
    fn empty_dataset_round_trip() {
        let dataset: Dataset<CompanyRecord> = Dataset::new();
        let back = companies_from_csv(&companies_to_csv(&dataset)).unwrap();
        assert!(back.is_empty());
    }
}
