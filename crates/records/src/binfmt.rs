//! Binary codecs ([`BinRecord`]) for the three record domains.
//!
//! Layouts are fixed-width where possible: enum variants serialize as
//! their index into the type's `ALL` table, `Option<EntityId>` as a
//! presence byte + `u32`, and every string field as a `u32` index into
//! the file's shared [`StringTable`] — so decoding a record is a handful
//! of little-endian reads with no text parsing.

use crate::company::CompanyRecord;
use crate::ids::{EntityId, IdCode, IdKind, RecordId, SourceId};
use crate::product::ProductRecord;
use crate::security::{SecurityRecord, SecurityType};
use gralmatch_util::binfmt::{BinReader, BinRecord, BinWriter, StringTable};
use gralmatch_util::{Error, Result};

fn encode_entity(entity: Option<EntityId>, w: &mut BinWriter) {
    match entity {
        Some(EntityId(id)) => {
            w.put_u8(1);
            w.put_u32(id);
        }
        None => w.put_u8(0),
    }
}

fn decode_entity(r: &mut BinReader<'_>) -> Result<Option<EntityId>> {
    match r.get_u8()? {
        0 => Ok(None),
        1 => Ok(Some(EntityId(r.get_u32()?))),
        tag => Err(Error::Corrupt(format!("entity presence byte {tag}"))),
    }
}

fn encode_str(value: &str, w: &mut BinWriter, strings: &mut StringTable) {
    w.put_u32(strings.intern(value));
}

fn decode_str(r: &mut BinReader<'_>, strings: &StringTable) -> Result<String> {
    Ok(strings.get(r.get_u32()?)?.to_string())
}

impl BinRecord for IdCode {
    fn encode_bin(&self, w: &mut BinWriter, strings: &mut StringTable) {
        let tag = IdKind::ALL
            .iter()
            .position(|kind| *kind == self.kind)
            .expect("IdKind::ALL covers every variant");
        w.put_u8(tag as u8);
        encode_str(&self.value, w, strings);
    }

    fn decode_bin(r: &mut BinReader<'_>, strings: &StringTable) -> Result<Self> {
        let tag = r.get_u8()? as usize;
        let kind = *IdKind::ALL
            .get(tag)
            .ok_or_else(|| Error::Corrupt(format!("id-code kind tag {tag}")))?;
        Ok(IdCode::new(kind, decode_str(r, strings)?))
    }
}

fn encode_id_codes(codes: &[IdCode], w: &mut BinWriter, strings: &mut StringTable) {
    w.put_u32(codes.len() as u32);
    for code in codes {
        code.encode_bin(w, strings);
    }
}

fn decode_id_codes(r: &mut BinReader<'_>, strings: &StringTable) -> Result<Vec<IdCode>> {
    let count = r.get_u32()? as usize;
    let mut codes = Vec::with_capacity(count.min(r.remaining()));
    for _ in 0..count {
        codes.push(IdCode::decode_bin(r, strings)?);
    }
    Ok(codes)
}

impl BinRecord for SecurityRecord {
    fn encode_bin(&self, w: &mut BinWriter, strings: &mut StringTable) {
        w.put_u32(self.id.0);
        w.put_u16(self.source.0);
        encode_entity(self.entity, w);
        encode_str(&self.name, w, strings);
        let sec_type = SecurityType::ALL
            .iter()
            .position(|t| *t == self.security_type)
            .expect("SecurityType::ALL covers every variant");
        w.put_u8(sec_type as u8);
        encode_str(&self.listings, w, strings);
        encode_id_codes(&self.id_codes, w, strings);
        w.put_u32(self.issuer.0);
    }

    fn decode_bin(r: &mut BinReader<'_>, strings: &StringTable) -> Result<Self> {
        let id = RecordId(r.get_u32()?);
        let source = SourceId(r.get_u16()?);
        let entity = decode_entity(r)?;
        let name = decode_str(r, strings)?;
        let tag = r.get_u8()? as usize;
        let security_type = *SecurityType::ALL
            .get(tag)
            .ok_or_else(|| Error::Corrupt(format!("security type tag {tag}")))?;
        Ok(SecurityRecord {
            id,
            source,
            entity,
            name,
            security_type,
            listings: decode_str(r, strings)?,
            id_codes: decode_id_codes(r, strings)?,
            issuer: RecordId(r.get_u32()?),
        })
    }
}

impl BinRecord for CompanyRecord {
    fn encode_bin(&self, w: &mut BinWriter, strings: &mut StringTable) {
        w.put_u32(self.id.0);
        w.put_u16(self.source.0);
        encode_entity(self.entity, w);
        encode_str(&self.name, w, strings);
        encode_str(&self.city, w, strings);
        encode_str(&self.region, w, strings);
        encode_str(&self.country_code, w, strings);
        encode_str(&self.short_description, w, strings);
        encode_id_codes(&self.id_codes, w, strings);
        w.put_u32(self.securities.len() as u32);
        for security in &self.securities {
            w.put_u32(security.0);
        }
    }

    fn decode_bin(r: &mut BinReader<'_>, strings: &StringTable) -> Result<Self> {
        let id = RecordId(r.get_u32()?);
        let source = SourceId(r.get_u16()?);
        let entity = decode_entity(r)?;
        let name = decode_str(r, strings)?;
        let city = decode_str(r, strings)?;
        let region = decode_str(r, strings)?;
        let country_code = decode_str(r, strings)?;
        let short_description = decode_str(r, strings)?;
        let id_codes = decode_id_codes(r, strings)?;
        let count = r.get_u32()? as usize;
        let mut securities = Vec::with_capacity(count.min(r.remaining()));
        for _ in 0..count {
            securities.push(RecordId(r.get_u32()?));
        }
        Ok(CompanyRecord {
            id,
            source,
            entity,
            name,
            city,
            region,
            country_code,
            short_description,
            id_codes,
            securities,
        })
    }
}

impl BinRecord for ProductRecord {
    fn encode_bin(&self, w: &mut BinWriter, strings: &mut StringTable) {
        w.put_u32(self.id.0);
        w.put_u16(self.source.0);
        encode_entity(self.entity, w);
        encode_str(&self.title, w, strings);
        encode_str(&self.brand, w, strings);
        encode_str(&self.description, w, strings);
        encode_str(&self.price, w, strings);
        encode_str(&self.category, w, strings);
    }

    fn decode_bin(r: &mut BinReader<'_>, strings: &StringTable) -> Result<Self> {
        Ok(ProductRecord {
            id: RecordId(r.get_u32()?),
            source: SourceId(r.get_u16()?),
            entity: decode_entity(r)?,
            title: decode_str(r, strings)?,
            brand: decode_str(r, strings)?,
            description: decode_str(r, strings)?,
            price: decode_str(r, strings)?,
            category: decode_str(r, strings)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<R: BinRecord + PartialEq + std::fmt::Debug>(record: &R) {
        let mut strings = StringTable::new();
        let mut w = BinWriter::new();
        record.encode_bin(&mut w, &mut strings);
        let bytes = w.into_bytes();
        let mut r = BinReader::new(&bytes);
        let decoded = R::decode_bin(&mut r, &strings).unwrap();
        assert_eq!(&decoded, record);
        assert!(
            r.is_empty(),
            "decode must consume exactly what encode wrote"
        );
    }

    #[test]
    fn security_round_trips() {
        let mut record = SecurityRecord::new(RecordId(7), SourceId(2), "Crowd ORD", RecordId(3));
        record.entity = Some(EntityId(41));
        record.security_type = SecurityType::Adr;
        record.listings = "XNYS USD lot 100 | XLON GBP".into();
        record.id_codes = vec![
            IdCode::new(IdKind::Isin, "US1234567890"),
            IdCode::new(IdKind::Sedol, "B0YBKJ7"),
        ];
        round_trip(&record);
    }

    #[test]
    fn company_round_trips() {
        let mut record = CompanyRecord::new(RecordId(12), SourceId(0), "Acme Holdings");
        record.entity = Some(EntityId(5));
        record.city = "Zürich".into();
        record.country_code = "CH".into();
        record.id_codes = vec![IdCode::new(IdKind::Lei, "529900T8BM49AURSDO55")];
        record.securities = vec![RecordId(100), RecordId(101)];
        round_trip(&record);
        round_trip(&CompanyRecord::new(RecordId(0), SourceId(3), ""));
    }

    #[test]
    fn product_round_trips() {
        let mut record = ProductRecord::new(RecordId(9), SourceId(1), "USB-C cable 2m");
        record.brand = "Anker".into();
        record.price = "12.99 USD".into();
        round_trip(&record);
    }

    #[test]
    fn shared_table_deduplicates_across_records() {
        let mut strings = StringTable::new();
        let mut w = BinWriter::new();
        for id in 0..4 {
            let mut record = CompanyRecord::new(RecordId(id), SourceId(0), "Same Name AG");
            record.country_code = "DE".into();
            record.encode_bin(&mut w, &mut strings);
        }
        // name + country + the shared empty string: three distinct values.
        assert_eq!(strings.len(), 3);
    }

    #[test]
    fn bad_enum_tags_are_corrupt_not_panics() {
        let mut strings = StringTable::new();
        let empty = strings.intern("");
        let mut w = BinWriter::new();
        w.put_u8(9); // no such IdKind
        w.put_u32(empty);
        let bytes = w.into_bytes();
        let mut r = BinReader::new(&bytes);
        assert!(matches!(
            IdCode::decode_bin(&mut r, &strings),
            Err(Error::Corrupt(_))
        ));
    }
}
