//! JSON conversions for the record model.
//!
//! Hand-written [`ToJson`]/[`FromJson`] impls (the offline build cannot use
//! serde derives). The layout matches what `serde_json` would have produced
//! for the former derives: newtypes as bare numbers, enums as their variant
//! labels, structs as objects keyed by field name.

use crate::company::CompanyRecord;
use crate::ids::{EntityId, IdCode, IdKind, RecordId, SourceId};
use crate::pair::RecordPair;
use crate::product::ProductRecord;
use crate::security::{SecurityRecord, SecurityType};
use gralmatch_util::{FromJson, Json, JsonError, ToJson};

macro_rules! impl_id_newtype {
    ($($ty:ident($inner:ty)),*) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                self.0.to_json()
            }
        }
        impl FromJson for $ty {
            fn from_json(json: &Json) -> Result<Self, JsonError> {
                Ok($ty(<$inner>::from_json(json)?))
            }
        }
    )*};
}
impl_id_newtype!(RecordId(u32), EntityId(u32), SourceId(u16));

impl ToJson for IdKind {
    fn to_json(&self) -> Json {
        Json::Str(self.as_str().to_string())
    }
}

impl FromJson for IdKind {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let label = json.as_str().ok_or_else(|| JsonError {
            message: "expected id-kind string".into(),
        })?;
        IdKind::ALL
            .into_iter()
            .find(|kind| kind.as_str() == label)
            .ok_or_else(|| JsonError {
                message: format!("unknown id kind `{label}`"),
            })
    }
}

impl ToJson for IdCode {
    fn to_json(&self) -> Json {
        Json::obj([
            ("kind", self.kind.to_json()),
            ("value", self.value.to_json()),
        ])
    }
}

impl FromJson for IdCode {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(IdCode {
            kind: IdKind::from_json(json.field("kind")?)?,
            value: String::from_json(json.field("value")?)?,
        })
    }
}

impl ToJson for RecordPair {
    fn to_json(&self) -> Json {
        Json::obj([("a", self.a.to_json()), ("b", self.b.to_json())])
    }
}

impl FromJson for RecordPair {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(RecordPair::new(
            RecordId::from_json(json.field("a")?)?,
            RecordId::from_json(json.field("b")?)?,
        ))
    }
}

impl ToJson for CompanyRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("id", self.id.to_json()),
            ("source", self.source.to_json()),
            ("entity", self.entity.to_json()),
            ("name", self.name.to_json()),
            ("city", self.city.to_json()),
            ("region", self.region.to_json()),
            ("country_code", self.country_code.to_json()),
            ("short_description", self.short_description.to_json()),
            ("id_codes", self.id_codes.to_json()),
            ("securities", self.securities.to_json()),
        ])
    }
}

impl FromJson for CompanyRecord {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(CompanyRecord {
            id: RecordId::from_json(json.field("id")?)?,
            source: SourceId::from_json(json.field("source")?)?,
            entity: Option::from_json(json.field("entity")?)?,
            name: String::from_json(json.field("name")?)?,
            city: String::from_json(json.field("city")?)?,
            region: String::from_json(json.field("region")?)?,
            country_code: String::from_json(json.field("country_code")?)?,
            short_description: String::from_json(json.field("short_description")?)?,
            id_codes: Vec::from_json(json.field("id_codes")?)?,
            securities: Vec::from_json(json.field("securities")?)?,
        })
    }
}

impl ToJson for SecurityType {
    fn to_json(&self) -> Json {
        Json::Str(self.as_str().to_string())
    }
}

impl FromJson for SecurityType {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let label = json.as_str().ok_or_else(|| JsonError {
            message: "expected security-type string".into(),
        })?;
        SecurityType::ALL
            .into_iter()
            .find(|ty| ty.as_str() == label)
            .ok_or_else(|| JsonError {
                message: format!("unknown security type `{label}`"),
            })
    }
}

impl ToJson for SecurityRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("id", self.id.to_json()),
            ("source", self.source.to_json()),
            ("entity", self.entity.to_json()),
            ("name", self.name.to_json()),
            ("security_type", self.security_type.to_json()),
            ("listings", self.listings.to_json()),
            ("id_codes", self.id_codes.to_json()),
            ("issuer", self.issuer.to_json()),
        ])
    }
}

impl FromJson for SecurityRecord {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(SecurityRecord {
            id: RecordId::from_json(json.field("id")?)?,
            source: SourceId::from_json(json.field("source")?)?,
            entity: Option::from_json(json.field("entity")?)?,
            name: String::from_json(json.field("name")?)?,
            security_type: SecurityType::from_json(json.field("security_type")?)?,
            listings: String::from_json(json.field("listings")?)?,
            id_codes: Vec::from_json(json.field("id_codes")?)?,
            issuer: RecordId::from_json(json.field("issuer")?)?,
        })
    }
}

impl ToJson for ProductRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("id", self.id.to_json()),
            ("source", self.source.to_json()),
            ("entity", self.entity.to_json()),
            ("title", self.title.to_json()),
            ("brand", self.brand.to_json()),
            ("description", self.description.to_json()),
            ("price", self.price.to_json()),
            ("category", self.category.to_json()),
        ])
    }
}

impl FromJson for ProductRecord {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(ProductRecord {
            id: RecordId::from_json(json.field("id")?)?,
            source: SourceId::from_json(json.field("source")?)?,
            entity: Option::from_json(json.field("entity")?)?,
            title: String::from_json(json.field("title")?)?,
            brand: String::from_json(json.field("brand")?)?,
            description: String::from_json(json.field("description")?)?,
            price: String::from_json(json.field("price")?)?,
            category: String::from_json(json.field("category")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: ToJson + FromJson + PartialEq + std::fmt::Debug>(value: &T) {
        let text = value.to_json().to_compact_string();
        let back = T::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(&back, value, "{text}");
    }

    #[test]
    fn newtypes_round_trip() {
        round_trip(&RecordId(7));
        round_trip(&EntityId(0));
        round_trip(&SourceId(u16::MAX));
        round_trip(&RecordPair::new(RecordId(9), RecordId(2)));
    }

    #[test]
    fn enums_round_trip() {
        for kind in IdKind::ALL {
            round_trip(&kind);
        }
        for ty in SecurityType::ALL {
            round_trip(&ty);
        }
        assert!(IdKind::from_json(&Json::Str("nope".into())).is_err());
    }

    #[test]
    fn optional_entity_round_trips_as_null() {
        let record = ProductRecord::new(RecordId(1), SourceId(0), "Widget");
        assert!(record.to_json().field("entity").unwrap().is_null());
        round_trip(&record);
    }
}
