//! Security records.
//!
//! A security is issued by exactly one company, carries one or more
//! identifier codes (ISIN, CUSIP, VALOR, SEDOL — paper footnote 4), and may
//! drift: identifiers can be overwritten by mergers/acquisitions or
//! multiplied by the `MultipleIDs` artifact, which is why identifier
//! equality alone cannot decide matches (Section 3.3).

use crate::ids::{EntityId, IdCode, RecordId, SourceId};
use crate::record::Record;
use std::borrow::Cow;

/// Type of a traded security. `MultipleSecurities` adds non-equity types to
/// an issuer (rights, bonds, units).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SecurityType {
    /// Common equity (the default for the primary listing).
    Equity,
    /// Subscription right.
    Right,
    /// Corporate bond.
    Bond,
    /// Unit (bundle of securities).
    Unit,
    /// American depositary receipt.
    Adr,
}

impl SecurityType {
    /// All variants, for generators.
    pub const ALL: [SecurityType; 5] = [
        SecurityType::Equity,
        SecurityType::Right,
        SecurityType::Bond,
        SecurityType::Unit,
        SecurityType::Adr,
    ];

    /// Lowercase label used in record serialization.
    pub fn as_str(&self) -> &'static str {
        match self {
            SecurityType::Equity => "equity",
            SecurityType::Right => "right",
            SecurityType::Bond => "bond",
            SecurityType::Unit => "unit",
            SecurityType::Adr => "adr",
        }
    }
}

/// A security record from one data source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecurityRecord {
    /// Dense id within the security dataset.
    pub id: RecordId,
    /// Originating data source.
    pub source: SourceId,
    /// Ground-truth entity of the *security* (one entity per real security;
    /// a company entity can own several security entities).
    pub entity: Option<EntityId>,
    /// Security name, often a generic derivation of the issuer name
    /// ("Crowdstrike Registered Shs", "CROWD ORD").
    pub name: String,
    /// Security type.
    pub security_type: SecurityType,
    /// Exchange listings blob as vendor feeds export it ("XNYS USD lot 100
    /// | XLON GBP …"); contributes the bulk of a security record's token
    /// mass, which is what makes token budgets bind (paper Section 6.1's
    /// "long sequences of uninformative tokens").
    pub listings: String,
    /// Identifier codes. May be empty (missing data) or inconsistent across
    /// sources (data drift).
    pub id_codes: Vec<IdCode>,
    /// The issuing company record **in the same source**.
    pub issuer: RecordId,
}

impl SecurityRecord {
    /// Minimal constructor used by tests and examples.
    pub fn new(id: RecordId, source: SourceId, name: impl Into<String>, issuer: RecordId) -> Self {
        SecurityRecord {
            id,
            source,
            entity: None,
            name: name.into(),
            security_type: SecurityType::Equity,
            listings: String::new(),
            id_codes: Vec::new(),
            issuer,
        }
    }

    /// Builder-style setter for the ground-truth entity.
    pub fn with_entity(mut self, entity: EntityId) -> Self {
        self.entity = Some(entity);
        self
    }

    /// Builder-style setter appending an identifier code.
    pub fn with_code(mut self, code: IdCode) -> Self {
        self.id_codes.push(code);
        self
    }
}

impl Record for SecurityRecord {
    fn id(&self) -> RecordId {
        self.id
    }

    fn source(&self) -> SourceId {
        self.source
    }

    fn entity(&self) -> Option<EntityId> {
        self.entity
    }

    fn fields(&self) -> Vec<(&'static str, Cow<'_, str>)> {
        let mut fields: Vec<(&'static str, Cow<'_, str>)> = Vec::with_capacity(5);
        if !self.name.is_empty() {
            fields.push(("name", Cow::Borrowed(self.name.as_str())));
        }
        fields.push(("type", Cow::Borrowed(self.security_type.as_str())));
        if !self.listings.is_empty() {
            fields.push(("listings", Cow::Borrowed(self.listings.as_str())));
        }
        if !self.id_codes.is_empty() {
            // Identifier values listed kind-tagged, the way vendor feeds
            // export them; this is what makes DITTO-style encodings long.
            let joined = self
                .id_codes
                .iter()
                .map(|c| format!("{} {}", c.kind, c.value))
                .collect::<Vec<_>>()
                .join(" ");
            fields.push(("identifiers", Cow::Owned(joined)));
        }
        fields
    }

    fn id_codes(&self) -> &[IdCode] {
        &self.id_codes
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::IdKind;

    fn sample() -> SecurityRecord {
        SecurityRecord::new(
            RecordId(31),
            SourceId(2),
            "Crowdstrike Registered Shs",
            RecordId(12),
        )
        .with_entity(EntityId(40))
        .with_code(IdCode::new(IdKind::Isin, "US31807756E"))
        .with_code(IdCode::new(IdKind::Cusip, "31807756E"))
    }

    #[test]
    fn fields_include_type_and_ids() {
        let r = sample();
        let fields = r.fields();
        assert_eq!(fields[0].0, "name");
        assert_eq!(fields[1], ("type", Cow::Borrowed("equity")));
        // No listings on this sample, so identifiers follow type directly.
        assert!(fields[2].1.contains("isin US31807756E"));
    }

    #[test]
    fn listings_serialized_before_identifiers() {
        let mut r = sample();
        r.listings = "XNYS USD lot 100".into();
        let cols: Vec<&str> = r.fields().iter().map(|(c, _)| *c).collect();
        assert_eq!(cols, vec!["name", "type", "listings", "identifiers"]);
    }

    #[test]
    fn type_always_serialized_even_without_ids() {
        let r = SecurityRecord::new(RecordId(0), SourceId(0), "X ORD", RecordId(1));
        let cols: Vec<&str> = r.fields().iter().map(|(c, _)| *c).collect();
        assert_eq!(cols, vec!["name", "type"]);
    }

    #[test]
    fn all_security_types_have_labels() {
        for t in SecurityType::ALL {
            assert!(!t.as_str().is_empty());
        }
    }

    #[test]
    fn json_round_trip() {
        use gralmatch_util::{FromJson, Json, ToJson};
        let r = sample();
        let json = r.to_json().to_compact_string();
        let back = SecurityRecord::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn issuer_reference_kept() {
        assert_eq!(sample().issuer, RecordId(12));
    }
}
