//! Train / validation / test splitting along record groups.
//!
//! The paper (Section 5.1.3) splits **by ground-truth record group**, not by
//! record: all records of an entity land in exactly one split, so models
//! cannot memorize pairs across splits. Percentages refer to groups
//! (60/20/20), which approximately carries over to records because group
//! sizes vary only mildly.

use crate::ground_truth::GroundTruth;
use crate::ids::{EntityId, RecordId};
use gralmatch_util::{FxHashSet, SplitRng};

/// Fractions of ground-truth groups per split. Must sum to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitRatios {
    /// Fraction of groups in the training split.
    pub train: f64,
    /// Fraction of groups in the validation split.
    pub val: f64,
    /// Fraction of groups in the test split.
    pub test: f64,
}

impl Default for SplitRatios {
    fn default() -> Self {
        SplitRatios {
            train: 0.6,
            val: 0.2,
            test: 0.2,
        }
    }
}

impl SplitRatios {
    /// Validate that the ratios are non-negative and sum to ~1.
    pub fn validate(&self) -> Result<(), gralmatch_util::Error> {
        let sum = self.train + self.val + self.test;
        if self.train < 0.0 || self.val < 0.0 || self.test < 0.0 || (sum - 1.0).abs() > 1e-9 {
            return Err(gralmatch_util::Error::InvalidConfig(format!(
                "split ratios must be non-negative and sum to 1 (got {sum})"
            )));
        }
        Ok(())
    }
}

/// A group-level split of one dataset.
#[derive(Debug, Clone, Default)]
pub struct DatasetSplit {
    /// Entities assigned to training.
    pub train_entities: Vec<EntityId>,
    /// Entities assigned to validation.
    pub val_entities: Vec<EntityId>,
    /// Entities assigned to test.
    pub test_entities: Vec<EntityId>,
    /// Records of the training entities.
    pub train_records: Vec<RecordId>,
    /// Records of the validation entities.
    pub val_records: Vec<RecordId>,
    /// Records of the test entities.
    pub test_records: Vec<RecordId>,
}

impl DatasetSplit {
    /// Split the labeled groups of `gt` with the given ratios, shuffled by
    /// `rng` (deterministic for a given seed).
    pub fn new(gt: &GroundTruth, ratios: SplitRatios, rng: &mut SplitRng) -> Self {
        ratios.validate().expect("valid ratios");
        let mut entities = gt.entity_ids_sorted();
        rng.shuffle(&mut entities);
        let n = entities.len();
        let n_train = (n as f64 * ratios.train).round() as usize;
        let n_val = (n as f64 * ratios.val).round() as usize;
        let n_val_end = (n_train + n_val).min(n);

        let train_entities = entities[..n_train.min(n)].to_vec();
        let val_entities = entities[n_train.min(n)..n_val_end].to_vec();
        let test_entities = entities[n_val_end..].to_vec();

        let collect = |ents: &[EntityId]| -> Vec<RecordId> {
            let mut rs: Vec<RecordId> = ents
                .iter()
                .flat_map(|&e| gt.group_members(e).unwrap_or(&[]).iter().copied())
                .collect();
            rs.sort_unstable();
            rs
        };

        DatasetSplit {
            train_records: collect(&train_entities),
            val_records: collect(&val_entities),
            test_records: collect(&test_entities),
            train_entities,
            val_entities,
            test_entities,
        }
    }

    /// Record-id set of the training split.
    pub fn train_set(&self) -> FxHashSet<RecordId> {
        self.train_records.iter().copied().collect()
    }

    /// Record-id set of the validation split.
    pub fn val_set(&self) -> FxHashSet<RecordId> {
        self.val_records.iter().copied().collect()
    }

    /// Record-id set of the test split.
    pub fn test_set(&self) -> FxHashSet<RecordId> {
        self.test_records.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::company::CompanyRecord;
    use crate::ids::SourceId;
    use crate::record::Record;

    fn make_gt(num_entities: u32, group_size: u32) -> GroundTruth {
        let mut records = Vec::new();
        let mut id = 0;
        for e in 0..num_entities {
            for _ in 0..group_size {
                records.push(
                    CompanyRecord::new(RecordId(id), SourceId(0), format!("c{id}"))
                        .with_entity(EntityId(e)),
                );
                id += 1;
            }
        }
        GroundTruth::from_records(&records)
    }

    #[test]
    fn split_proportions() {
        let gt = make_gt(100, 3);
        let mut rng = SplitRng::new(42);
        let split = DatasetSplit::new(&gt, SplitRatios::default(), &mut rng);
        assert_eq!(split.train_entities.len(), 60);
        assert_eq!(split.val_entities.len(), 20);
        assert_eq!(split.test_entities.len(), 20);
        assert_eq!(split.train_records.len(), 180);
    }

    #[test]
    fn splits_are_disjoint_and_complete() {
        let gt = make_gt(50, 4);
        let mut rng = SplitRng::new(1);
        let split = DatasetSplit::new(&gt, SplitRatios::default(), &mut rng);
        let train = split.train_set();
        let val = split.val_set();
        let test = split.test_set();
        assert!(train.is_disjoint(&val));
        assert!(train.is_disjoint(&test));
        assert!(val.is_disjoint(&test));
        assert_eq!(train.len() + val.len() + test.len(), 200);
    }

    #[test]
    fn groups_never_straddle_splits() {
        let gt = make_gt(30, 5);
        let mut rng = SplitRng::new(9);
        let split = DatasetSplit::new(&gt, SplitRatios::default(), &mut rng);
        let train = split.train_set();
        for (_, members) in gt.groups() {
            let in_train = members.iter().filter(|r| train.contains(r)).count();
            assert!(in_train == 0 || in_train == members.len());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let gt = make_gt(40, 2);
        let s1 = DatasetSplit::new(&gt, SplitRatios::default(), &mut SplitRng::new(5));
        let s2 = DatasetSplit::new(&gt, SplitRatios::default(), &mut SplitRng::new(5));
        assert_eq!(s1.train_records, s2.train_records);
        assert_eq!(s1.test_records, s2.test_records);
    }

    #[test]
    fn invalid_ratios_rejected() {
        let bad = SplitRatios {
            train: 0.9,
            val: 0.2,
            test: 0.2,
        };
        assert!(bad.validate().is_err());
        assert!(SplitRatios::default().validate().is_ok());
    }

    #[test]
    fn unlabeled_records_ignored() {
        let records = vec![CompanyRecord::new(RecordId(0), SourceId(0), "x")];
        let gt = GroundTruth::from_records(&records);
        assert_eq!(records[0].entity(), None);
        let split = DatasetSplit::new(&gt, SplitRatios::default(), &mut SplitRng::new(0));
        assert!(split.train_records.is_empty());
    }
}
