//! Golden-record consolidation — the downstream payoff of group matching.
//!
//! The paper's closing argument is business-driven: matched groups give
//! companies "one-stop-shop access to financial data" across vendors. That
//! final step is consolidation: collapsing each matched group into a single
//! *golden record* per entity. This module implements the standard
//! majority-vote consolidation: for each field, the most frequent non-empty
//! value across the group's records wins (ties to the lexicographically
//! smallest for determinism); identifier codes are unioned.

use gralmatch_records::{CompanyRecord, IdCode, Record, RecordId};
use gralmatch_util::FxHashMap;

/// A consolidated (golden) company record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenCompany {
    /// The matched group's member record ids.
    pub members: Vec<RecordId>,
    /// Majority name.
    pub name: String,
    /// Majority city.
    pub city: String,
    /// Majority region.
    pub region: String,
    /// Majority country code.
    pub country_code: String,
    /// Longest available description (descriptions vary by paraphrase, so
    /// majority voting is meaningless; keep the most informative).
    pub short_description: String,
    /// Union of all identifier codes seen across the group, sorted.
    pub id_codes: Vec<IdCode>,
    /// Number of distinct sources contributing.
    pub num_sources: usize,
}

fn majority<'a>(values: impl Iterator<Item = &'a str>) -> String {
    let mut counts: FxHashMap<&str, usize> = FxHashMap::default();
    for value in values {
        if !value.is_empty() {
            *counts.entry(value).or_insert(0) += 1;
        }
    }
    let mut entries: Vec<(&str, usize)> = counts.into_iter().collect();
    entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    entries
        .first()
        .map_or(String::new(), |(v, _)| (*v).to_string())
}

/// Consolidate one matched group of company records.
pub fn consolidate_company_group(group: &[RecordId], records: &[CompanyRecord]) -> GoldenCompany {
    let members: Vec<&CompanyRecord> = group.iter().map(|&r| &records[r.0 as usize]).collect();
    let mut id_codes: Vec<IdCode> = members
        .iter()
        .flat_map(|r| r.id_codes.iter().cloned())
        .collect();
    id_codes.sort();
    id_codes.dedup();
    let mut sources: Vec<_> = members.iter().map(|r| r.source()).collect();
    sources.sort_unstable();
    sources.dedup();
    GoldenCompany {
        members: group.to_vec(),
        name: majority(members.iter().map(|r| r.name.as_str())),
        city: majority(members.iter().map(|r| r.city.as_str())),
        region: majority(members.iter().map(|r| r.region.as_str())),
        country_code: majority(members.iter().map(|r| r.country_code.as_str())),
        short_description: members
            .iter()
            .map(|r| r.short_description.as_str())
            .max_by_key(|d| d.len())
            .unwrap_or("")
            .to_string(),
        id_codes,
        num_sources: sources.len(),
    }
}

/// Consolidate every group of a matching output.
pub fn consolidate_companies(
    groups: &[Vec<RecordId>],
    records: &[CompanyRecord],
) -> Vec<GoldenCompany> {
    groups
        .iter()
        .map(|group| consolidate_company_group(group, records))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gralmatch_records::{EntityId, IdKind, SourceId};

    fn company(id: u32, source: u16, name: &str, city: &str) -> CompanyRecord {
        let mut c =
            CompanyRecord::new(RecordId(id), SourceId(source), name).with_entity(EntityId(1));
        c.city = city.into();
        c
    }

    #[test]
    fn majority_vote_wins() {
        let records = vec![
            company(0, 0, "Crowdstrike Inc.", "Austin"),
            company(1, 1, "Crowdstrike Inc.", "Austin"),
            company(2, 2, "CROWDSTRIKE", ""),
        ];
        let golden = consolidate_company_group(&[RecordId(0), RecordId(1), RecordId(2)], &records);
        assert_eq!(golden.name, "Crowdstrike Inc.");
        assert_eq!(golden.city, "Austin", "empty values never win");
        assert_eq!(golden.num_sources, 3);
    }

    #[test]
    fn ties_break_deterministically() {
        let records = vec![company(0, 0, "Acme", "A"), company(1, 1, "Beta", "B")];
        let golden = consolidate_company_group(&[RecordId(0), RecordId(1)], &records);
        assert_eq!(golden.name, "Acme", "lexicographic tie-break");
    }

    #[test]
    fn id_codes_unioned_and_deduped() {
        let mut a = company(0, 0, "Acme", "A");
        a.id_codes.push(IdCode::new(IdKind::Lei, "L1"));
        let mut b = company(1, 1, "Acme", "A");
        b.id_codes.push(IdCode::new(IdKind::Lei, "L1"));
        b.id_codes.push(IdCode::new(IdKind::Lei, "L2"));
        let golden = consolidate_company_group(&[RecordId(0), RecordId(1)], &[a, b]);
        assert_eq!(golden.id_codes.len(), 2);
    }

    #[test]
    fn longest_description_kept() {
        let mut a = company(0, 0, "Acme", "A");
        a.short_description = "Short.".into();
        let mut b = company(1, 1, "Acme", "A");
        b.short_description = "A much longer and more informative description.".into();
        let golden = consolidate_company_group(&[RecordId(0), RecordId(1)], &[a, b]);
        assert!(golden.short_description.starts_with("A much longer"));
    }

    #[test]
    fn consolidates_all_groups() {
        let records = vec![
            company(0, 0, "Acme", "A"),
            company(1, 1, "Acme", "A"),
            company(2, 0, "Globex", "B"),
        ];
        let groups = vec![vec![RecordId(0), RecordId(1)], vec![RecordId(2)]];
        let golden = consolidate_companies(&groups, &records);
        assert_eq!(golden.len(), 2);
        assert_eq!(golden[1].name, "Globex");
        assert_eq!(golden[1].members, vec![RecordId(2)]);
    }
}
