//! Crash-safe binary persistence: [`PipelineState`] snapshots + a
//! write-ahead log of applied [`UpsertBatch`]es.
//!
//! The JSON codec on [`PipelineState`] stays the debug/export format;
//! production durability goes through this module instead:
//!
//! * **Snapshot** — a single file (`SNAPSHOT_MAGIC` + format version)
//!   of checksummed sections (header, string table, records, per-shard
//!   candidate sets, global set, predicted edges, cleaned edges), each
//!   a contiguous little-endian table mirroring the in-memory layout, so
//!   loading is a near-sequential read with no per-value text parsing.
//!   The header carries the engine's published epoch and batch counter,
//!   so a resumed engine serves from exactly the persisted epoch.
//! * **WAL** — an append-only log (`WAL_MAGIC` + version, then
//!   `[len u64][seq u64][payload][checksum64(seq ‖ payload) u64]` frames,
//!   one encoded batch each, where `seq` is the engine's batch counter
//!   after the batch applies — strictly increasing across checkpoints).
//!   [`MatchEngine::apply_batch`] appends the batch *before* applying it;
//!   recovery loads the last snapshot, skips frames the snapshot already
//!   incorporates (`seq` at or below the header's batch counter — the
//!   crash-between-snapshot-and-truncate case), and replays the rest,
//!   truncating a torn final frame instead of failing. Frames are flushed
//!   per batch and optionally fsynced ([`CheckpointPolicy::fsync`]).
//! * **Checkpoint** — atomically (temp file + rename, fsynced when the
//!   policy asks) rewrite the snapshot at the current epoch and truncate
//!   the WAL, driven by the batch/byte thresholds in [`CheckpointPolicy`]
//!   or an explicit [`MatchEngine::checkpoint`] call.
//!
//! Both file kinds are canonical: equal states encode to identical
//! bytes regardless of mutation history (records sorted by id, candidate
//! and edge tables sorted), mirroring the JSON codec's guarantee.
//!
//! [`MatchEngine::apply_batch`]: crate::engine::MatchEngine::apply_batch
//! [`MatchEngine::checkpoint`]: crate::engine::MatchEngine::checkpoint

use crate::engine::{MatchEngine, ScorerProvider};
use crate::incremental::{PipelineState, StateParts, UpsertBatch};
use crate::pipeline::PipelineConfig;
use crate::shard::{ShardKey, ShardPlan};
use gralmatch_blocking::{Blocker, CandidateSet};
use gralmatch_records::{Record, RecordId, RecordPair};
use gralmatch_util::binfmt::{
    check_magic, checksum64, read_section, write_magic, write_section, BinReader, BinRecord,
    BinWriter, StringTable, MAGIC_LEN,
};
use gralmatch_util::{Error, Result};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Leading magic of a binary state snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"GMSN";
/// Leading magic of a write-ahead log file.
pub const WAL_MAGIC: [u8; 4] = *b"GMWL";

// Snapshot section tags, in file order.
const SEC_HEADER: u8 = 1;
const SEC_STRINGS: u8 = 2;
const SEC_RECORDS: u8 = 3;
const SEC_LOCAL: u8 = 4;
const SEC_GLOBAL: u8 = 5;
const SEC_PREDICTED: u8 = 6;
const SEC_CLEANED: u8 = 7;

/// When the engine folds the WAL back into a fresh snapshot.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointPolicy {
    /// Checkpoint once this many batches sit in the WAL.
    pub max_wal_batches: usize,
    /// Checkpoint once the WAL grows past this many bytes.
    pub max_wal_bytes: u64,
    /// `fsync` the WAL after every append (and the log after header
    /// writes/truncation), and `sync_all` checkpoint snapshot/sidecar
    /// temp files before their renames (plus the parent directory after)
    /// so checkpoints survive power loss, not just process crashes. Off
    /// by default: the serving benchmarks measure encode+write cost, and
    /// tests exercise clean-process crashes.
    pub fsync: bool,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            max_wal_batches: 256,
            max_wal_bytes: 64 << 20,
            fsync: false,
        }
    }
}

/// What a checkpoint wrote.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointInfo {
    /// The published epoch captured in the snapshot header.
    pub epoch: u64,
    /// Size of the snapshot file.
    pub snapshot_bytes: u64,
}

/// What [`recover_engine`] found on disk.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryReport {
    /// Epoch the snapshot was checkpointed at.
    pub snapshot_epoch: u64,
    /// Complete WAL frames replayed on top of the snapshot.
    pub batches_replayed: usize,
    /// Complete WAL frames the snapshot already incorporated (their seq
    /// was at or below the snapshot's batch counter): the residue of a
    /// crash between a checkpoint's snapshot write and its WAL truncate.
    pub batches_skipped: usize,
    /// Whether a torn final frame was detected (and truncated away).
    pub truncated_tail: bool,
}

/// The WAL path paired with a snapshot path: `<snapshot>.wal`.
pub fn wal_path(snapshot_path: &Path) -> PathBuf {
    PathBuf::from(format!("{}.wal", snapshot_path.display()))
}

/// The scorer-fingerprint sidecar next to a snapshot: `<snapshot>.scorer`
/// (same convention as the serve layer's JSON states).
pub fn fingerprint_path(snapshot_path: &Path) -> PathBuf {
    PathBuf::from(format!("{}.scorer", snapshot_path.display()))
}

/// Write `bytes` to `path` atomically: a sibling temp file + rename, so a
/// crash mid-write can never leave a torn file under the real name.
///
/// With `fsync`, the temp file is `sync_all`ed before the rename and the
/// parent directory is fsynced after it, so the contents *and* the rename
/// survive power loss — without it the write is atomic against process
/// crashes only (the OS may reorder the rename ahead of the data).
pub fn write_atomic(path: &Path, bytes: &[u8], fsync: bool) -> Result<()> {
    let tmp = PathBuf::from(format!("{}.tmp", path.display()));
    let mut file = File::create(&tmp)?;
    file.write_all(bytes)?;
    if fsync {
        file.sync_all()?;
    }
    drop(file);
    std::fs::rename(&tmp, path)?;
    if fsync {
        let parent = match path.parent() {
            Some(parent) if !parent.as_os_str().is_empty() => parent,
            _ => Path::new("."),
        };
        File::open(parent)?.sync_all()?;
    }
    Ok(())
}

/// Whether `bytes` begin like a binary snapshot (vs the JSON state
/// format, whose first byte is `{`).
pub fn is_binary_state(bytes: &[u8]) -> bool {
    bytes.starts_with(&SNAPSHOT_MAGIC)
}

fn shard_key_tag(key: ShardKey) -> u8 {
    match key {
        ShardKey::Entity => 0,
        ShardKey::Source => 1,
    }
}

fn shard_key_from_tag(tag: u8) -> Result<ShardKey> {
    match tag {
        0 => Ok(ShardKey::Entity),
        1 => Ok(ShardKey::Source),
        _ => Err(Error::Corrupt(format!("shard key tag {tag}"))),
    }
}

fn encode_candidate_set(set: &CandidateSet, w: &mut BinWriter) {
    let mut entries: Vec<(RecordPair, u8)> = set.iter().collect();
    entries.sort_unstable_by_key(|(pair, _)| *pair);
    w.put_u32(entries.len() as u32);
    for (pair, flags) in entries {
        w.put_u32(pair.a.0);
        w.put_u32(pair.b.0);
        w.put_u8(flags);
    }
}

fn decode_candidate_set(r: &mut BinReader<'_>) -> Result<CandidateSet> {
    let count = r.get_u32()? as usize;
    // 9 bytes per entry bounds `count` from the section length, so a
    // corrupt huge count cannot trigger a giant reservation.
    let mut set = CandidateSet::new();
    set.reserve(count.min(r.remaining() / 9 + 1));
    for _ in 0..count {
        let a = r.get_u32()?;
        let b = r.get_u32()?;
        let flags = r.get_u8()?;
        if a >= b {
            return Err(Error::Corrupt(format!(
                "candidate pair ({a}, {b}) is not canonical (a < b)"
            )));
        }
        if flags == 0 {
            return Err(Error::Corrupt(format!(
                "candidate pair ({a}, {b}) with empty provenance"
            )));
        }
        set.add_flags(RecordPair::new(RecordId(a), RecordId(b)), flags);
    }
    Ok(set)
}

fn encode_pairs(pairs: &[RecordPair], w: &mut BinWriter) {
    w.put_u32(pairs.len() as u32);
    for pair in pairs {
        w.put_u32(pair.a.0);
        w.put_u32(pair.b.0);
    }
}

fn decode_pairs(r: &mut BinReader<'_>) -> Result<Vec<RecordPair>> {
    let count = r.get_u32()? as usize;
    let mut pairs = Vec::with_capacity(count.min(r.remaining()));
    for _ in 0..count {
        let a = r.get_u32()?;
        let b = r.get_u32()?;
        if a >= b {
            return Err(Error::Corrupt(format!(
                "edge ({a}, {b}) is not canonical (a < b)"
            )));
        }
        pairs.push(RecordPair::new(RecordId(a), RecordId(b)));
    }
    Ok(pairs)
}

/// A decoded snapshot: the state plus the engine counters persisted with
/// it, so a resumed engine publishes from exactly the saved epoch.
#[derive(Debug)]
pub struct StateSnapshot<R> {
    /// The reconstructed pipeline state.
    pub state: PipelineState<R>,
    /// Published epoch at checkpoint time.
    pub epoch: u64,
    /// Engine batch counter at checkpoint time.
    pub batches_applied: usize,
}

/// Encode a state (plus the engine counters that belong in the header)
/// into the binary snapshot format. Canonical: equal states produce
/// identical bytes.
pub fn encode_state<R>(state: &PipelineState<R>, epoch: u64, batches_applied: usize) -> Vec<u8>
where
    R: Record + Clone + Sync + BinRecord,
{
    // Records are encoded first (sorted by id, like the JSON codec) so
    // the string table they intern into can be written ahead of them.
    let mut strings = StringTable::new();
    let mut records = BinWriter::new();
    let mut by_id: Vec<&R> = state.live_records().iter().collect();
    by_id.sort_unstable_by_key(|record| record.id());
    records.put_u32(by_id.len() as u32);
    for record in by_id {
        record.encode_bin(&mut records, &mut strings);
    }

    let plan = state.plan();
    let mut header = BinWriter::new();
    header.put_u64(epoch);
    header.put_u64(batches_applied as u64);
    header.put_u64(plan.num_shards as u64);
    header.put_u8(shard_key_tag(plan.key));
    header.put_u64(state.num_ids() as u64);

    let mut string_section = BinWriter::new();
    strings.write(&mut string_section);

    let mut local = BinWriter::new();
    local.put_u32(state.local_sets().len() as u32);
    for set in state.local_sets() {
        encode_candidate_set(set, &mut local);
    }
    let mut global = BinWriter::new();
    encode_candidate_set(state.global_set(), &mut global);

    let mut predicted = BinWriter::new();
    encode_pairs(state.predicted(), &mut predicted);

    let mut cleaned_edges: Vec<RecordPair> = state
        .cleaned()
        .edges()
        .map(|edge| RecordPair::new(RecordId(edge.a), RecordId(edge.b)))
        .collect();
    cleaned_edges.sort_unstable();
    let mut cleaned = BinWriter::new();
    encode_pairs(&cleaned_edges, &mut cleaned);

    let mut out = BinWriter::new();
    write_magic(&mut out, &SNAPSHOT_MAGIC);
    write_section(&mut out, SEC_HEADER, header.as_bytes());
    write_section(&mut out, SEC_STRINGS, string_section.as_bytes());
    write_section(&mut out, SEC_RECORDS, records.as_bytes());
    write_section(&mut out, SEC_LOCAL, local.as_bytes());
    write_section(&mut out, SEC_GLOBAL, global.as_bytes());
    write_section(&mut out, SEC_PREDICTED, predicted.as_bytes());
    write_section(&mut out, SEC_CLEANED, cleaned.as_bytes());
    out.into_bytes()
}

/// Decode a snapshot written by [`encode_state`], validating magic,
/// format version, and every section checksum, then rebuilding the
/// derived indexes exactly like the JSON decoder does.
pub fn decode_state<R>(bytes: &[u8]) -> Result<StateSnapshot<R>>
where
    R: Record + Clone + Sync + BinRecord,
{
    let mut r = BinReader::new(bytes);
    check_magic(&mut r, &SNAPSHOT_MAGIC)?;

    let header = read_section(&mut r, SEC_HEADER)?;
    let mut h = BinReader::new(header);
    let epoch = h.get_u64()?;
    let batches_applied = h.get_u64()? as usize;
    let num_shards = h.get_u64()? as usize;
    let key = shard_key_from_tag(h.get_u8()?)?;
    let num_ids = h.get_u64()? as usize;
    let plan = ShardPlan::new(num_shards.max(1)).with_key(key);
    if num_shards == 0 {
        return Err(Error::Corrupt("snapshot header with zero shards".into()));
    }

    let string_section = read_section(&mut r, SEC_STRINGS)?;
    let strings = StringTable::read(&mut BinReader::new(string_section))?;

    let record_section = read_section(&mut r, SEC_RECORDS)?;
    let mut rr = BinReader::new(record_section);
    let count = rr.get_u32()? as usize;
    let mut records = Vec::with_capacity(count.min(record_section.len()));
    for _ in 0..count {
        records.push(R::decode_bin(&mut rr, &strings)?);
    }

    let local_section = read_section(&mut r, SEC_LOCAL)?;
    let mut lr = BinReader::new(local_section);
    let num_sets = lr.get_u32()? as usize;
    let mut local = Vec::with_capacity(num_sets.min(local_section.len()));
    for _ in 0..num_sets {
        local.push(decode_candidate_set(&mut lr)?);
    }

    let global_section = read_section(&mut r, SEC_GLOBAL)?;
    let global = decode_candidate_set(&mut BinReader::new(global_section))?;

    let predicted_section = read_section(&mut r, SEC_PREDICTED)?;
    let predicted = decode_pairs(&mut BinReader::new(predicted_section))?;

    let cleaned_section = read_section(&mut r, SEC_CLEANED)?;
    let cleaned_edges = decode_pairs(&mut BinReader::new(cleaned_section))?;

    let state = PipelineState::from_parts(StateParts {
        plan,
        num_ids,
        records,
        local,
        global,
        predicted,
        cleaned_edges,
    })
    .map_err(Error::Corrupt)?;
    Ok(StateSnapshot {
        state,
        epoch,
        batches_applied,
    })
}

/// Encode one [`UpsertBatch`] as a WAL frame payload: a per-frame string
/// table followed by the insert/update/delete tables.
pub fn encode_batch<R: BinRecord>(batch: &UpsertBatch<R>) -> Vec<u8> {
    let mut strings = StringTable::new();
    let mut body = BinWriter::new();
    body.put_u32(batch.inserts.len() as u32);
    for record in &batch.inserts {
        record.encode_bin(&mut body, &mut strings);
    }
    body.put_u32(batch.updates.len() as u32);
    for record in &batch.updates {
        record.encode_bin(&mut body, &mut strings);
    }
    body.put_u32(batch.deletes.len() as u32);
    for RecordId(id) in &batch.deletes {
        body.put_u32(*id);
    }
    let mut out = BinWriter::new();
    strings.write(&mut out);
    out.put_bytes(body.as_bytes());
    out.into_bytes()
}

/// Decode a payload written by [`encode_batch`].
pub fn decode_batch<R: BinRecord>(bytes: &[u8]) -> Result<UpsertBatch<R>> {
    let mut r = BinReader::new(bytes);
    let strings = StringTable::read(&mut r)?;
    let mut batch = UpsertBatch::new();
    let inserts = r.get_u32()? as usize;
    for _ in 0..inserts {
        batch.inserts.push(R::decode_bin(&mut r, &strings)?);
    }
    let updates = r.get_u32()? as usize;
    for _ in 0..updates {
        batch.updates.push(R::decode_bin(&mut r, &strings)?);
    }
    let deletes = r.get_u32()? as usize;
    for _ in 0..deletes {
        batch.deletes.push(RecordId(r.get_u32()?));
    }
    if !r.is_empty() {
        return Err(Error::Corrupt(format!(
            "{} trailing bytes after batch payload",
            r.remaining()
        )));
    }
    Ok(batch)
}

/// One pass over raw WAL bytes: complete checksummed frames plus where
/// the valid prefix ends.
struct WalScan {
    /// `(seq, payload start, payload len)` per complete frame.
    frames: Vec<(u64, usize, usize)>,
    valid_len: u64,
    torn: bool,
    header_missing: bool,
    /// Seq of the last complete frame (0 when there is none).
    last_seq: u64,
}

fn scan_wal(bytes: &[u8]) -> Result<WalScan> {
    if bytes.is_empty() {
        return Ok(WalScan {
            frames: Vec::new(),
            valid_len: 0,
            torn: false,
            header_missing: true,
            last_seq: 0,
        });
    }
    if bytes.len() < MAGIC_LEN {
        // A crash while writing the 5-byte header: treat as torn, not
        // corrupt — there is nothing to lose yet.
        return Ok(WalScan {
            frames: Vec::new(),
            valid_len: 0,
            torn: true,
            header_missing: true,
            last_seq: 0,
        });
    }
    check_magic(&mut BinReader::new(bytes), &WAL_MAGIC)?;
    let mut frames = Vec::new();
    let mut pos = MAGIC_LEN;
    let mut torn = false;
    let mut last_seq = 0;
    while pos < bytes.len() {
        let remaining = (bytes.len() - pos) as u64;
        if remaining < 8 {
            torn = true;
            break;
        }
        let len = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
        // Checked: `len` is untrusted on-disk data, and a torn/corrupt
        // length near u64::MAX must read as a torn tail, not overflow
        // the bounds check and panic on the slice below.
        let frame_total = match len.checked_add(24) {
            Some(total) if remaining >= total => total as usize,
            _ => {
                torn = true;
                break;
            }
        };
        let len = len as usize;
        let seq = u64::from_le_bytes(bytes[pos + 8..pos + 16].try_into().unwrap());
        let checksum =
            u64::from_le_bytes(bytes[pos + 16 + len..pos + 24 + len].try_into().unwrap());
        // The checksum covers seq + payload, so a damaged seq field is
        // caught exactly like a damaged payload.
        if checksum != checksum64(&bytes[pos + 8..pos + 16 + len]) {
            torn = true;
            break;
        }
        frames.push((seq, pos + 16, len));
        last_seq = seq;
        pos += frame_total;
    }
    // `pos` stops right after the last complete frame (or at the header
    // when there is none), so it is exactly the valid prefix length.
    Ok(WalScan {
        frames,
        valid_len: pos as u64,
        torn,
        header_missing: false,
        last_seq,
    })
}

/// One complete WAL frame: the engine batch sequence number it was
/// appended under, and its payload (a still-encoded batch; see
/// [`decode_batch`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalFrame {
    /// The engine's batch counter after this batch applies. Strictly
    /// increasing across the log, *including* across checkpoints, so
    /// recovery can tell a frame the snapshot already incorporates from
    /// one it must replay.
    pub seq: u64,
    /// The frame payload.
    pub payload: Vec<u8>,
}

/// The complete frames of a WAL file, in append order.
pub struct WalReplay {
    /// Complete frames, in append order.
    pub frames: Vec<WalFrame>,
    /// Whether an incomplete/checksum-failing tail followed the last
    /// complete frame.
    pub torn: bool,
}

/// Read every complete frame of the WAL at `path`. A missing file is an
/// empty log; a torn tail stops the scan (reported, not an error); a bad
/// magic or format version **is** an error — that file is not a WAL.
pub fn read_wal(path: &Path) -> Result<WalReplay> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.into()),
    };
    let scan = scan_wal(&bytes)?;
    Ok(WalReplay {
        frames: scan
            .frames
            .iter()
            .map(|&(seq, start, len)| WalFrame {
                seq,
                payload: bytes[start..start + len].to_vec(),
            })
            .collect(),
        torn: scan.torn,
    })
}

/// Append-only WAL writer. Opening validates the header (creating it for
/// a fresh file) and truncates any torn tail, so the on-disk log is
/// always a valid prefix once a writer holds it.
pub struct WalWriter {
    file: File,
    frames: usize,
    bytes: u64,
    last_seq: u64,
    fsync: bool,
}

impl WalWriter {
    /// Open (or create) the WAL at `path` for appending.
    pub fn open(path: &Path, fsync: bool) -> Result<Self> {
        let existing = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        let scan = scan_wal(&existing)?;
        // Deliberately not truncating on open: the valid frame prefix is
        // the durable history; only the torn tail (if any) is cut below.
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(path)?;
        let valid_len = if scan.header_missing {
            let mut header = BinWriter::new();
            write_magic(&mut header, &WAL_MAGIC);
            file.set_len(0)?;
            file.write_all(header.as_bytes())?;
            MAGIC_LEN as u64
        } else {
            scan.valid_len
        };
        if valid_len < existing.len() as u64 {
            file.set_len(valid_len)?;
        }
        file.seek(SeekFrom::Start(valid_len))?;
        if fsync {
            file.sync_data()?;
        }
        Ok(WalWriter {
            file,
            frames: scan.frames.len(),
            bytes: valid_len,
            last_seq: scan.last_seq,
            fsync,
        })
    }

    /// Frames currently in the log (complete ones; a torn tail was
    /// dropped at open).
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Log size in bytes, including the header.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Seq of the last frame in the log (0 when the log is empty).
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Append one frame:
    /// `[len u64][seq u64][payload][checksum64(seq ‖ payload) u64]`,
    /// flushed (and fsynced when the policy asks) before returning.
    /// `seq` must exceed every seq already in the log — recovery relies
    /// on it to order frames against the snapshot's batch counter.
    pub fn append(&mut self, seq: u64, payload: &[u8]) -> Result<()> {
        if seq <= self.last_seq {
            return Err(Error::InvalidConfig(format!(
                "WAL frame seq {seq} must exceed the log's last seq {}",
                self.last_seq
            )));
        }
        let mut frame = Vec::with_capacity(payload.len() + 24);
        frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.extend_from_slice(payload);
        let checksum = checksum64(&frame[8..]);
        frame.extend_from_slice(&checksum.to_le_bytes());
        self.file.write_all(&frame)?;
        self.file.flush()?;
        if self.fsync {
            self.file.sync_data()?;
        }
        self.frames += 1;
        self.bytes += frame.len() as u64;
        self.last_seq = seq;
        Ok(())
    }

    /// Drop every frame (checkpoint took them into the snapshot),
    /// leaving just the header.
    pub fn truncate(&mut self) -> Result<()> {
        self.file.set_len(MAGIC_LEN as u64)?;
        self.file.seek(SeekFrom::Start(MAGIC_LEN as u64))?;
        if self.fsync {
            self.file.sync_data()?;
        }
        self.frames = 0;
        self.bytes = MAGIC_LEN as u64;
        self.last_seq = 0;
        Ok(())
    }
}

/// The engine-side durability bundle: the open WAL plus monomorphized
/// encode hooks, held as plain `fn` pointers so `MatchEngine` itself
/// never grows a [`BinRecord`] bound — only
/// [`MatchEngine::enable_durability`] requires it.
///
/// [`MatchEngine::enable_durability`]: crate::engine::MatchEngine::enable_durability
pub(crate) struct Durability<R> {
    pub(crate) wal: WalWriter,
    pub(crate) snapshot_path: PathBuf,
    pub(crate) policy: CheckpointPolicy,
    pub(crate) fingerprint: Option<String>,
    pub(crate) encode_batch: fn(&UpsertBatch<R>) -> Vec<u8>,
    pub(crate) encode_state: fn(&PipelineState<R>, u64, usize) -> Vec<u8>,
}

/// Recover an engine from its snapshot + WAL: decode the snapshot,
/// resume at the persisted epoch, replay every complete WAL frame the
/// snapshot does not already incorporate (a torn tail is truncated, not
/// an error), and re-arm durability on the same files so subsequent
/// batches keep appending where the log left off. The recovered engine
/// is bit-for-bit the engine that wrote the files — same groups, same
/// epoch — including after a crash between a WAL append and the
/// in-memory apply (the appended batch replays), and after a crash
/// between a checkpoint's snapshot write and its WAL truncate (the
/// already-incorporated frames carry a seq at or below the snapshot's
/// batch counter and are skipped, never double-applied).
pub fn recover_engine<'a, R>(
    snapshot_path: &Path,
    strategies: Vec<Box<dyn Blocker<R> + 'a>>,
    provider: Box<dyn ScorerProvider<R> + 'a>,
    config: PipelineConfig,
    policy: CheckpointPolicy,
) -> Result<(MatchEngine<'a, R>, RecoveryReport)>
where
    R: Record + Clone + Sync + BinRecord,
{
    let bytes = std::fs::read(snapshot_path)?;
    let snapshot = decode_state::<R>(&bytes)?;
    let mut engine = MatchEngine::from_state_at(
        snapshot.state,
        snapshot.epoch,
        snapshot.batches_applied,
        strategies,
        provider,
        config,
    );
    let replay = read_wal(&wal_path(snapshot_path))?;
    // A crash between a checkpoint's snapshot write and its WAL truncate
    // leaves a log whose leading frames the snapshot already folded in.
    // Replaying one would double-apply its inserts/deletes and fail
    // validation, so every frame with seq <= the snapshot's batch
    // counter is skipped; the survivors must then continue the counter
    // without a gap — a gap means the snapshot and log are not the same
    // lineage, which is corruption, not a crash artifact.
    let mut next_seq = snapshot.batches_applied as u64 + 1;
    let mut batches_replayed = 0;
    let mut batches_skipped = 0;
    for frame in &replay.frames {
        if frame.seq < next_seq {
            batches_skipped += 1;
            continue;
        }
        if frame.seq > next_seq {
            return Err(Error::Corrupt(format!(
                "WAL frame seq {} where {next_seq} was expected — the log does not continue \
                 the snapshot's batch counter",
                frame.seq
            )));
        }
        let batch = decode_batch::<R>(&frame.payload)?;
        engine.apply_batch(&batch)?;
        batches_replayed += 1;
        next_seq += 1;
    }
    // Re-arm on the same files: `WalWriter::open` drops the torn tail,
    // and the snapshot already matches the log prefix, so no checkpoint
    // is forced here — restart cost stays O(snapshot + tail). Skipped
    // frames stay in the log (harmless — every recovery skips them) and
    // are dropped by the next checkpoint.
    engine.attach_durability(snapshot_path.to_path_buf(), policy)?;
    Ok((
        engine,
        RecoveryReport {
            snapshot_epoch: snapshot.epoch,
            batches_replayed,
            batches_skipped,
            truncated_tail: replay.torn,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{MatchingDomain, SecurityDomain};
    use crate::engine::FixedScorerProvider;
    use crate::incremental::churn_window;
    use crate::pipeline::OracleScorer;
    use crate::shard::ShardPlan;
    use gralmatch_blocking::{SecurityIdOverlap, TokenOverlap, TokenOverlapConfig};
    use gralmatch_datagen::{generate, FinancialDataset, GenerationConfig};
    use gralmatch_records::SecurityRecord;
    use gralmatch_util::FxHashMap;

    fn dataset() -> FinancialDataset {
        let mut config = GenerationConfig::synthetic_full();
        config.num_entities = 60;
        generate(&config).unwrap()
    }

    fn company_groups(data: &FinancialDataset) -> FxHashMap<RecordId, u32> {
        data.companies
            .records()
            .iter()
            .map(|company| (company.id, company.entity.unwrap().0))
            .collect()
    }

    fn security_lineup() -> Vec<Box<dyn Blocker<SecurityRecord>>> {
        vec![
            Box::new(SecurityIdOverlap),
            Box::new(TokenOverlap::new(TokenOverlapConfig::default())),
        ]
    }

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gralmatch-persist-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Bootstrap 2/3 of the securities; the rest arrive as churn batches.
    fn bootstrap_engine<'a>(
        securities: &[SecurityRecord],
        scorer: &'a OracleScorer<'a>,
    ) -> MatchEngine<'a, SecurityRecord> {
        let split = securities.len() * 2 / 3;
        let (engine, _) = MatchEngine::bootstrap(
            ShardPlan::new(3),
            securities[..split].to_vec(),
            security_lineup(),
            Box::new(FixedScorerProvider(scorer)),
            PipelineConfig::new(25, 5),
        )
        .unwrap();
        engine
    }

    fn churn_batches(securities: &[SecurityRecord]) -> Vec<UpsertBatch<SecurityRecord>> {
        let split = securities.len() * 2 / 3;
        (0..3)
            .map(|j| {
                let window = churn_window(split, j, 7);
                UpsertBatch {
                    inserts: securities[split + j..split + j + 1].to_vec(),
                    updates: Vec::new(),
                    deletes: window.map(|i| securities[i].id).collect(),
                }
            })
            .collect()
    }

    fn normalized_groups<R: Record + Clone + Sync>(
        engine: &MatchEngine<'_, R>,
    ) -> Vec<Vec<RecordId>> {
        let mut groups = engine.groups();
        for group in &mut groups {
            group.sort_unstable();
        }
        groups.sort();
        groups
    }

    #[test]
    fn snapshot_round_trips_bit_for_bit() {
        let data = dataset();
        let securities = data.securities.records().to_vec();
        let group_of = company_groups(&data);
        let domain = SecurityDomain::new(&securities, &group_of);
        let gt = domain.ground_truth().clone();
        let scorer = OracleScorer::new(&gt);
        let engine = bootstrap_engine(&securities, &scorer);

        let bytes = encode_state(engine.state(), 7, 3);
        let snapshot = decode_state::<SecurityRecord>(&bytes).unwrap();
        assert_eq!(snapshot.epoch, 7);
        assert_eq!(snapshot.batches_applied, 3);
        // Canonical: re-encoding the decoded state reproduces the bytes.
        assert_eq!(encode_state(&snapshot.state, 7, 3), bytes);
        // Equivalent to the JSON codec's view of the same state.
        use gralmatch_util::ToJson;
        assert_eq!(
            snapshot.state.to_json().to_pretty_string(),
            engine.state().to_json().to_pretty_string()
        );
    }

    #[test]
    fn snapshot_rejects_corruption_and_wrong_version() {
        let data = dataset();
        let securities = data.securities.records().to_vec();
        let group_of = company_groups(&data);
        let domain = SecurityDomain::new(&securities, &group_of);
        let gt = domain.ground_truth().clone();
        let scorer = OracleScorer::new(&gt);
        let engine = bootstrap_engine(&securities, &scorer);
        let bytes = encode_state(engine.state(), 1, 1);

        // A flipped byte in any section payload fails its checksum.
        for offset in [bytes.len() / 3, bytes.len() / 2, bytes.len() - 9] {
            let mut bad = bytes.clone();
            bad[offset] ^= 0x20;
            assert!(
                matches!(decode_state::<SecurityRecord>(&bad), Err(Error::Corrupt(_))),
                "flipped byte at {offset} must be detected"
            );
        }

        // Wrong format version byte is a coded error naming the version.
        let mut versioned = bytes.clone();
        versioned[4] = versioned[4].wrapping_add(1);
        let err = decode_state::<SecurityRecord>(&versioned).unwrap_err();
        assert!(err.to_string().contains("unsupported format version"));

        // Truncation is corrupt, not a panic.
        assert!(matches!(
            decode_state::<SecurityRecord>(&bytes[..bytes.len() / 2]),
            Err(Error::Corrupt(_))
        ));
        assert!(!is_binary_state(b"{\"plan\":{}}"));
        assert!(is_binary_state(&bytes));
    }

    #[test]
    fn batch_round_trips() {
        let data = dataset();
        let securities = data.securities.records().to_vec();
        for batch in churn_batches(&securities) {
            let payload = encode_batch(&batch);
            let decoded = decode_batch::<SecurityRecord>(&payload).unwrap();
            assert_eq!(decoded.inserts, batch.inserts);
            assert_eq!(decoded.updates, batch.updates);
            assert_eq!(decoded.deletes, batch.deletes);
        }
    }

    #[test]
    fn wal_appends_replays_and_truncates_torn_tail() {
        let dir = test_dir("wal");
        let path = dir.join("state.bin.wal");
        let mut wal = WalWriter::open(&path, false).unwrap();
        wal.append(1, b"alpha").unwrap();
        wal.append(2, b"beta-beta").unwrap();
        assert_eq!(wal.frames(), 2);
        assert_eq!(wal.last_seq(), 2);
        // A non-increasing seq is a caller bug, refused before the write.
        assert!(matches!(
            wal.append(2, b"stale"),
            Err(Error::InvalidConfig(_))
        ));
        drop(wal);

        let replay = read_wal(&path).unwrap();
        assert_eq!(
            replay.frames,
            vec![
                WalFrame {
                    seq: 1,
                    payload: b"alpha".to_vec()
                },
                WalFrame {
                    seq: 2,
                    payload: b"beta-beta".to_vec()
                },
            ]
        );
        assert!(!replay.torn);

        // Simulate a torn append: a frame header + partial payload.
        let good_len = std::fs::metadata(&path).unwrap().len();
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(&(100u64).to_le_bytes()).unwrap();
        file.write_all(b"partial").unwrap();
        drop(file);

        let replay = read_wal(&path).unwrap();
        assert_eq!(
            replay.frames.len(),
            2,
            "torn tail must not hide good frames"
        );
        assert!(replay.torn);

        // Re-opening truncates the torn tail and appends cleanly after it.
        let mut wal = WalWriter::open(&path, false).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good_len);
        assert_eq!(wal.frames(), 2);
        wal.append(wal.last_seq() + 1, b"gamma").unwrap();
        drop(wal);
        let replay = read_wal(&path).unwrap();
        assert_eq!(replay.frames.len(), 3);
        assert!(!replay.torn);

        // A torn length field reading near u64::MAX is a truncatable
        // tail like any other — never an arithmetic overflow/panic.
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(&u64::MAX.to_le_bytes()).unwrap();
        file.write_all(b"garbage").unwrap();
        drop(file);
        let replay = read_wal(&path).unwrap();
        assert_eq!(replay.frames.len(), 3);
        assert!(replay.torn);
        let wal = WalWriter::open(&path, false).unwrap();
        assert_eq!(wal.frames(), 3);
        assert_eq!(wal.last_seq(), 3);
        drop(wal);

        // A file that is not a WAL at all is a hard error.
        std::fs::write(&path, b"definitely not a wal").unwrap();
        assert!(matches!(read_wal(&path), Err(Error::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_engine_recovers_to_oracle_with_auto_checkpoints() {
        let dir = test_dir("recover");
        let snapshot_path = dir.join("state.bin");
        let data = dataset();
        let securities = data.securities.records().to_vec();
        let group_of = company_groups(&data);
        let domain = SecurityDomain::new(&securities, &group_of);
        let gt = domain.ground_truth().clone();
        let scorer = OracleScorer::new(&gt);
        let batches = churn_batches(&securities);

        // Durable engine: checkpoint every 2 batches, so the run exercises
        // both an auto-checkpoint and a WAL tail.
        let policy = CheckpointPolicy {
            max_wal_batches: 2,
            ..CheckpointPolicy::default()
        };
        let mut durable = bootstrap_engine(&securities, &scorer);
        durable.enable_durability(&snapshot_path, policy).unwrap();
        for batch in &batches {
            durable.apply_batch(batch).unwrap();
        }
        let expected_epoch = durable.snapshot().epoch();
        let expected_groups = normalized_groups(&durable);
        let expected_batches = durable.stats().batches_applied;
        drop(durable);

        // 3 batches with a threshold of 2: one auto-checkpoint after the
        // second, one frame left in the WAL.
        let (recovered, report) = recover_engine::<SecurityRecord>(
            &snapshot_path,
            security_lineup(),
            Box::new(FixedScorerProvider(&scorer)),
            PipelineConfig::new(25, 5),
            policy,
        )
        .unwrap();
        assert_eq!(report.batches_replayed, 1);
        assert_eq!(report.batches_skipped, 0);
        assert!(!report.truncated_tail);
        assert_eq!(report.snapshot_epoch, expected_epoch - 1);
        assert_eq!(recovered.snapshot().epoch(), expected_epoch);
        assert_eq!(recovered.stats().batches_applied, expected_batches);
        assert_eq!(normalized_groups(&recovered), expected_groups);
        assert!(recovered.is_durable());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A crash *between* a checkpoint's snapshot write and its WAL
    /// truncate leaves a snapshot that already incorporates the log's
    /// leading frames. Recovery must skip those (their seq sits at or
    /// below the snapshot's batch counter) instead of double-applying
    /// them — which would fail validation and brick the store.
    #[test]
    fn interrupted_checkpoint_skips_already_incorporated_frames() {
        let dir = test_dir("interrupted");
        let snapshot_path = dir.join("state.bin");
        let data = dataset();
        let securities = data.securities.records().to_vec();
        let group_of = company_groups(&data);
        let domain = SecurityDomain::new(&securities, &group_of);
        let gt = domain.ground_truth().clone();
        let scorer = OracleScorer::new(&gt);
        let batches = churn_batches(&securities);

        // Thresholds high enough that no auto-checkpoint fires: the WAL
        // keeps all three frames.
        let mut durable = bootstrap_engine(&securities, &scorer);
        durable
            .enable_durability(&snapshot_path, CheckpointPolicy::default())
            .unwrap();
        for batch in &batches[..2] {
            durable.apply_batch(batch).unwrap();
        }
        // Interrupted checkpoint: the snapshot lands (incorporating the
        // two logged batches) but the WAL truncate never runs.
        let bytes = encode_state(
            durable.state(),
            durable.snapshot().epoch(),
            durable.stats().batches_applied,
        );
        write_atomic(&snapshot_path, &bytes, false).unwrap();
        // One more batch after the interrupted checkpoint: a mixed log
        // of incorporated frames and a live tail.
        durable.apply_batch(&batches[2]).unwrap();
        let expected_epoch = durable.snapshot().epoch();
        let expected_groups = normalized_groups(&durable);
        let expected_batches = durable.stats().batches_applied;
        drop(durable);

        let (recovered, report) = recover_engine::<SecurityRecord>(
            &snapshot_path,
            security_lineup(),
            Box::new(FixedScorerProvider(&scorer)),
            PipelineConfig::new(25, 5),
            CheckpointPolicy::default(),
        )
        .unwrap();
        assert_eq!(report.batches_skipped, 2, "incorporated frames skipped");
        assert_eq!(report.batches_replayed, 1, "the live tail replays");
        assert_eq!(recovered.snapshot().epoch(), expected_epoch);
        assert_eq!(recovered.stats().batches_applied, expected_batches);
        assert_eq!(normalized_groups(&recovered), expected_groups);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
