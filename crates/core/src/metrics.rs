//! Evaluation metrics (paper Sections 5.3.2 and 5.3.3).
//!
//! * **Pairwise metrics** — precision/recall/F1 of a set of predicted pairs
//!   against ground truth, with recall measured against *all* true matches
//!   of the dataset (blocking losses count against recall, exactly as in
//!   Table 4's first column).
//! * **Group metrics** — the same scores over the *implied transitive
//!   closure* of a group assignment, computed per component in O(|c|)
//!   without materializing the quadratic pair set, plus the **Cluster
//!   Purity Score**:
//!
//! ```text
//!   ClPur = (Σᵢ |Vᵢ| · c_TP,i / |Eᵢ|) / Σᵢ |Vᵢ|
//! ```
//!
//! the size-weighted average fraction of correct matches per group.

use crate::groups::count_group_pairs;
use gralmatch_records::{GroundTruth, RecordId, RecordPair};

/// Precision / recall / F1 with raw counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairMetrics {
    /// True positives.
    pub tp: u64,
    /// False positives.
    pub fp: u64,
    /// False negatives.
    pub fn_: u64,
    /// Precision in [0, 1].
    pub precision: f64,
    /// Recall in [0, 1].
    pub recall: f64,
    /// F1 in [0, 1].
    pub f1: f64,
}

impl PairMetrics {
    /// Build from counts.
    pub fn from_counts(tp: u64, fp: u64, fn_: u64) -> Self {
        let precision = if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            0.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        PairMetrics {
            tp,
            fp,
            fn_,
            precision,
            recall,
            f1,
        }
    }
}

/// Pairwise metrics of predicted pairs against the full ground truth.
pub fn pairwise_metrics(predicted: &[RecordPair], gt: &GroundTruth) -> PairMetrics {
    let tp = predicted
        .iter()
        .filter(|pair| gt.is_match_pair(**pair))
        .count() as u64;
    let fp = predicted.len() as u64 - tp;
    let total_true = gt.num_true_pairs();
    let fn_ = total_true.saturating_sub(tp);
    PairMetrics::from_counts(tp, fp, fn_)
}

/// Group-assignment metrics: P/R/F1 over implied closure pairs + purity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupMetrics {
    /// Closure-pair precision/recall/F1.
    pub pairs: PairMetrics,
    /// Cluster Purity Score.
    pub cluster_purity: f64,
}

/// Evaluate a group assignment (component list) against ground truth.
///
/// Singleton groups carry no implied pairs; following the convention that an
/// unmatched record is trivially "pure", they contribute weight |V|=1 with
/// ratio 1 to the purity average.
pub fn group_metrics(groups: &[Vec<RecordId>], gt: &GroundTruth) -> GroupMetrics {
    let mut tp = 0u64;
    let mut total_predicted = 0u64;
    let mut purity_weighted = 0.0f64;
    let mut purity_weight = 0.0f64;
    for group in groups {
        let counts = count_group_pairs(group, gt);
        tp += counts.true_pairs;
        total_predicted += counts.total_pairs;
        let size = group.len() as f64;
        let ratio = if counts.total_pairs == 0 {
            1.0
        } else {
            counts.true_pairs as f64 / counts.total_pairs as f64
        };
        purity_weighted += size * ratio;
        purity_weight += size;
    }
    let fp = total_predicted - tp;
    let fn_ = gt.num_true_pairs().saturating_sub(tp);
    GroupMetrics {
        pairs: PairMetrics::from_counts(tp, fp, fn_),
        cluster_purity: if purity_weight == 0.0 {
            0.0
        } else {
            purity_weighted / purity_weight
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gralmatch_records::EntityId;

    fn gt_of(assignments: &[(u32, u32)]) -> GroundTruth {
        GroundTruth::from_assignments(assignments.iter().map(|&(r, e)| (RecordId(r), EntityId(e))))
    }

    fn pair(a: u32, b: u32) -> RecordPair {
        RecordPair::new(RecordId(a), RecordId(b))
    }

    #[test]
    fn perfect_pairwise() {
        let gt = gt_of(&[(0, 1), (1, 1), (2, 2)]);
        let metrics = pairwise_metrics(&[pair(0, 1)], &gt);
        assert_eq!(metrics.precision, 1.0);
        assert_eq!(metrics.recall, 1.0);
        assert_eq!(metrics.f1, 1.0);
    }

    #[test]
    fn blocking_loss_hits_recall() {
        // Two true pairs; only one predicted.
        let gt = gt_of(&[(0, 1), (1, 1), (2, 2), (3, 2)]);
        let metrics = pairwise_metrics(&[pair(0, 1)], &gt);
        assert_eq!(metrics.precision, 1.0);
        assert_eq!(metrics.recall, 0.5);
    }

    #[test]
    fn false_positive_hits_precision() {
        let gt = gt_of(&[(0, 1), (1, 1), (2, 2)]);
        let metrics = pairwise_metrics(&[pair(0, 1), pair(0, 2)], &gt);
        assert_eq!(metrics.tp, 1);
        assert_eq!(metrics.fp, 1);
        assert_eq!(metrics.precision, 0.5);
    }

    #[test]
    fn empty_predictions() {
        let gt = gt_of(&[(0, 1), (1, 1)]);
        let metrics = pairwise_metrics(&[], &gt);
        assert_eq!(metrics.precision, 0.0);
        assert_eq!(metrics.recall, 0.0);
        assert_eq!(metrics.f1, 0.0);
    }

    #[test]
    fn group_metrics_pure_groups() {
        let gt = gt_of(&[(0, 1), (1, 1), (2, 2), (3, 2)]);
        let groups = vec![
            vec![RecordId(0), RecordId(1)],
            vec![RecordId(2), RecordId(3)],
        ];
        let metrics = group_metrics(&groups, &gt);
        assert_eq!(metrics.pairs.f1, 1.0);
        assert_eq!(metrics.cluster_purity, 1.0);
    }

    #[test]
    fn one_false_edge_poisons_closure() {
        // Two groups of 3 wrongly merged into one component of 6:
        // closure = 15 pairs, 6 true (3 + 3), purity 6/15.
        let gt = gt_of(&[(0, 1), (1, 1), (2, 1), (3, 2), (4, 2), (5, 2)]);
        let merged = vec![(0..6).map(RecordId).collect::<Vec<_>>()];
        let metrics = group_metrics(&merged, &gt);
        assert_eq!(metrics.pairs.tp, 6);
        assert_eq!(metrics.pairs.fp, 9);
        assert!((metrics.cluster_purity - 0.4).abs() < 1e-9);
        assert!(metrics.pairs.precision < 0.5);
        assert_eq!(metrics.pairs.recall, 1.0);
    }

    #[test]
    fn singletons_count_as_pure() {
        let gt = gt_of(&[(0, 1), (1, 1)]);
        let groups = vec![vec![RecordId(0)], vec![RecordId(1)]];
        let metrics = group_metrics(&groups, &gt);
        assert_eq!(metrics.cluster_purity, 1.0);
        assert_eq!(metrics.pairs.recall, 0.0, "the true pair was missed");
    }

    #[test]
    fn purity_weighted_by_size() {
        // Group A: 4 records all same entity (pure, weight 4).
        // Group B: 2 records of different entities (purity 0, weight 2).
        let gt = gt_of(&[(0, 1), (1, 1), (2, 1), (3, 1), (4, 2), (5, 3)]);
        let groups = vec![
            (0..4).map(RecordId).collect::<Vec<_>>(),
            vec![RecordId(4), RecordId(5)],
        ];
        let metrics = group_metrics(&groups, &gt);
        assert!((metrics.cluster_purity - 4.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn from_counts_degenerate() {
        let metrics = PairMetrics::from_counts(0, 0, 0);
        assert_eq!(metrics.precision, 0.0);
        assert_eq!(metrics.f1, 0.0);
    }
}
