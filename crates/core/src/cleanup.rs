//! GraLMatch Graph Cleanup — Algorithm 1 of the paper, plus the
//! Pre Graph Cleanup of Section 4.2.1.
//!
//! ```text
//! Input: matches graph G = (V, E), size thresholds γ and μ
//! 1: C = connected components of G
//! 2: c* ← largest component
//! 3: while |c*| > γ:
//! 4:     E_mincut ← MinEdgeCut(c*)
//! 5:     G ← (V, E \ E_mincut)
//! 6:     c* ← largest component
//! 7: while |c*| > μ:
//! 8:     e_maxBC ← argmax BetweennessCentrality(e), e ∈ c*
//! 9:     G ← (V, E \ e_maxBC)
//! 10:    c* ← largest component
//! 11: Output: connected components of G
//! ```
//!
//! μ is set to the number of data sources ("each group is expected to have
//! at most one record per data source"); γ controls the crossover from the
//! cheaper min-cut phase to the more conservative betweenness phase. The
//! sensitivity variants of Table 4 — MEC-only (γ = μ), BC-only (γ = ∞), ½γ —
//! are expressed through [`CleanupConfig::variant`].
//!
//! ## Scaling
//!
//! Connected components are independent under edge *removal*, so the
//! cleanup decomposes perfectly: [`graph_cleanup_with_pool`] fans dirty
//! components out across a [`WorkerPool`] and applies each component's
//! removed edges back into the global graph in a deterministic order
//! (components sorted by minimum node id, removals in per-component
//! discovery order). Within a component, the per-component worker keeps one
//! mutable scratch graph for the whole lineage of splits — removals mutate
//! it in place and the split sides are tracked directly from the cut, so a
//! round costs O(region) instead of O(component) and nothing is re-induced
//! from the global graph after the first copy. Oversized regions are first
//! attacked with [`most_balanced_bridge`] (a bridge is a weight-1 min cut,
//! found in O(V+E)) and only fall back to Stoer–Wagner / max-flow
//! [`global_min_cut`] when the region is 2-edge-connected. The seed
//! implementation survives as [`reference_graph_cleanup`] for benchmarking
//! and fallback-injection tests.

use gralmatch_graph::{
    betweenness::max_betweenness_edge, component_of, connected_components, global_min_cut,
    most_balanced_bridge, CutIndex, Edge, Graph, Subgraph,
};
use gralmatch_util::{Stopwatch, WorkerPool};

/// Thresholds for Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CleanupConfig {
    /// Components above γ are split with minimum edge cuts.
    pub gamma: usize,
    /// Components above μ (but ≤ γ) are split by removing max-betweenness
    /// edges; μ is set to the number of data sources.
    pub mu: usize,
    /// Pre-cleanup: inside components larger than this, drop positively
    /// predicted token-overlap edges (None disables; companies use 50).
    pub pre_cleanup_threshold: Option<usize>,
}

impl CleanupConfig {
    /// Table 2 thresholds for the given dataset shape.
    pub fn new(gamma: usize, mu: usize) -> Self {
        CleanupConfig {
            gamma,
            mu,
            pre_cleanup_threshold: None,
        }
    }

    /// Enable pre-cleanup at the paper's 50-record threshold.
    pub fn with_pre_cleanup(mut self, threshold: usize) -> Self {
        self.pre_cleanup_threshold = Some(threshold);
        self
    }

    /// Apply a sensitivity variant (Section 5.2.1).
    pub fn variant(mut self, variant: CleanupVariant) -> Self {
        match variant {
            CleanupVariant::Full => {}
            CleanupVariant::MinCutOnly => self.gamma = self.mu,
            CleanupVariant::BetweennessOnly => self.gamma = usize::MAX,
            CleanupVariant::HalfGamma => self.gamma = (self.gamma / 2).max(self.mu),
        }
        self
    }
}

/// The Table 4 sensitivity variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CleanupVariant {
    /// Algorithm 1 as published.
    Full,
    /// γ = μ: only the Minimum Edge Cut phase runs (suffix “-MEC”).
    MinCutOnly,
    /// γ = ∞: only the Betweenness Centrality phase runs (suffix “-BC”).
    BetweennessOnly,
    /// γ halved (the “(½γ)” row).
    HalfGamma,
}

/// What the cleanup did (diagnostics + the runtime ablations).
#[derive(Debug, Clone, Default)]
pub struct CleanupReport {
    /// Edges removed by the pre-cleanup.
    pub pre_cleanup_removed: usize,
    /// Edges removed by min cuts (phase 1).
    pub mincut_removed: usize,
    /// Edges removed by betweenness (phase 2).
    pub betweenness_removed: usize,
    /// Min-cut invocations (bridge or Stoer–Wagner).
    pub mincut_rounds: usize,
    /// Betweenness invocations.
    pub betweenness_rounds: usize,
    /// Wall-clock seconds of the whole cleanup (pre-cleanup + both phases).
    pub seconds: f64,
    /// Wall-clock seconds spent in pre-cleanup.
    pub pre_cleanup_seconds: f64,
    /// Wall-clock seconds spent in the min-cut phase (summed across
    /// components, so under a parallel pool this can exceed `seconds`).
    pub mincut_seconds: f64,
    /// Wall-clock seconds spent in the betweenness phase (summed across
    /// components).
    pub betweenness_seconds: f64,
    /// Min-cut rounds answered from a persistent [`CutIndex`] without a
    /// Tarjan scan of the region (0 on the non-indexed path).
    pub bridge_cache_hits: usize,
    /// Nodes the [`CutIndex`] had to Tarjan-rescan (dirty blocks plus
    /// cold/invalidated regions; 0 on the non-indexed path).
    pub rescanned_nodes: usize,
}

impl CleanupReport {
    /// Fold another report into this one: counters and per-phase seconds
    /// all add. Used to combine per-component outcomes and to accumulate
    /// per-shard / per-batch reports into run totals.
    pub fn merge(&mut self, other: &CleanupReport) {
        self.pre_cleanup_removed += other.pre_cleanup_removed;
        self.mincut_removed += other.mincut_removed;
        self.betweenness_removed += other.betweenness_removed;
        self.mincut_rounds += other.mincut_rounds;
        self.betweenness_rounds += other.betweenness_rounds;
        self.seconds += other.seconds;
        self.pre_cleanup_seconds += other.pre_cleanup_seconds;
        self.mincut_seconds += other.mincut_seconds;
        self.betweenness_seconds += other.betweenness_seconds;
        self.bridge_cache_hits += other.bridge_cache_hits;
        self.rescanned_nodes += other.rescanned_nodes;
    }

    /// The per-phase timing split, in the shape trace consumers expect.
    pub fn phases(&self) -> crate::trace::CleanupPhases {
        crate::trace::CleanupPhases {
            pre_cleanup_seconds: self.pre_cleanup_seconds,
            mincut_seconds: self.mincut_seconds,
            betweenness_seconds: self.betweenness_seconds,
            bridge_cache_hits: self.bridge_cache_hits,
            rescanned_nodes: self.rescanned_nodes,
        }
    }
}

/// Remove token-overlap-sourced edges inside oversized components
/// (Section 4.2.1). `is_removable(a, b)` decides whether the edge `(a, b)`
/// (canonical `a < b`, global record ids) came from the Token Overlap
/// blocking (and not from an identifier blocking).
///
/// Walks the adjacency of each oversized component directly — no induced
/// subgraph, no per-edge pair construction — so the pass is O(component
/// edges) with a single batch removal at the end.
pub fn pre_cleanup(
    graph: &mut Graph,
    threshold: usize,
    is_removable: impl Fn(u32, u32) -> bool,
) -> usize {
    pre_cleanup_edges(graph, threshold, is_removable).len()
}

/// [`pre_cleanup`], returning the removed edges themselves — callers
/// maintaining a [`CutIndex`] over the graph feed them in as deltas.
pub fn pre_cleanup_edges(
    graph: &mut Graph,
    threshold: usize,
    is_removable: impl Fn(u32, u32) -> bool,
) -> Vec<Edge> {
    let components = connected_components(graph);
    let mut to_remove: Vec<Edge> = Vec::new();
    for component in components {
        if component.len() <= threshold {
            continue;
        }
        for &a in &component {
            for b in graph.neighbors(a) {
                if a < b && is_removable(a, b) {
                    to_remove.push(Edge::new(a, b));
                }
            }
        }
    }
    graph.remove_edges(&to_remove);
    to_remove
}

/// Everything one component's cleanup decided: the global edges it removed
/// (in removal order) and its share of the report.
struct ComponentOutcome {
    removed: Vec<Edge>,
    report: CleanupReport,
}

/// Region ids still to the left of `side` after splitting: `region` minus
/// `side`, both sorted — one merge walk.
fn complement_of(region: &[u32], side: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(region.len() - side.len());
    let mut side_iter = side.iter().peekable();
    for &node in region {
        if side_iter.peek() == Some(&&node) {
            side_iter.next();
        } else {
            out.push(node);
        }
    }
    out
}

/// Run both phases of Algorithm 1 on a single connected component of
/// `graph`, without mutating it. The component is copied once into a
/// mutable scratch graph; every subsequent round induces only the region
/// it is splitting and tracks the split sides directly from the cut, so no
/// global `connected_components` pass ever runs.
///
/// Invariant: the regions in the work queues are exactly the connected
/// components of the scratch graph that may still exceed a threshold, so
/// a BFS from inside a region never escapes it.
fn cleanup_component(graph: &Graph, component: &[u32], config: &CleanupConfig) -> ComponentOutcome {
    let mut report = CleanupReport::default();
    let mut removed: Vec<Edge> = Vec::new();

    let phase1_watch = Stopwatch::start();
    let sub = Subgraph::induce(graph, component);
    let n = sub.num_nodes();
    // One mutable scratch graph per component lineage (local ids 0..n).
    let mut scratch = Graph::with_nodes(n);
    for &(a, b) in &sub.edges {
        scratch.add_edge(a, b);
    }

    // Phase 1: minimum edge cuts while |region| > γ. Bridge-first: a
    // Tarjan bridge is a weight-1 min cut found in O(V+E); Stoer–Wagner
    // only runs on 2-edge-connected regions.
    let mut phase2: Vec<Vec<u32>> = Vec::new();
    let mut queue: Vec<Vec<u32>> = vec![(0..n as u32).collect()];
    while let Some(region) = queue.pop() {
        if region.len() <= config.gamma {
            if region.len() > config.mu {
                phase2.push(region);
            }
            continue;
        }
        let rsub = Subgraph::induce(&scratch, &region);
        let (cut_edges, side) = match most_balanced_bridge(&rsub) {
            Some(split) => (vec![split.edge], split.child_side),
            None => match global_min_cut(&rsub) {
                Some(cut) => (cut.cut_edges, cut.side),
                None => {
                    if region.len() > config.mu {
                        phase2.push(region);
                    }
                    continue;
                }
            },
        };
        report.mincut_rounds += 1;
        for &(a, b) in &cut_edges {
            let (sa, sb) = (rsub.locals[a as usize], rsub.locals[b as usize]);
            if scratch.remove_edge(sa, sb) {
                report.mincut_removed += 1;
                removed.push(Edge::new(sub.locals[sa as usize], sub.locals[sb as usize]));
            }
        }
        // The cut disconnects the region into exactly `side` and its
        // complement; `region` and `side` are sorted, so mapping the side
        // through `rsub.locals` (monotone) keeps both parts sorted.
        let side: Vec<u32> = side.iter().map(|&i| rsub.locals[i as usize]).collect();
        let other = complement_of(&region, &side);
        for part in [side, other] {
            if part.len() > config.gamma {
                queue.push(part);
            } else if part.len() > config.mu {
                phase2.push(part);
            }
        }
    }
    report.mincut_seconds = phase1_watch.elapsed_secs();

    // Phase 2: betweenness-centrality removal while |region| > μ. After a
    // removal, one BFS from an endpoint decides connectivity — the region
    // either survives intact or splits into the BFS side + complement.
    let phase2_watch = Stopwatch::start();
    while let Some(region) = phase2.pop() {
        if region.len() <= config.mu {
            continue;
        }
        let rsub = Subgraph::induce(&scratch, &region);
        let Some(((a, b), _)) = max_betweenness_edge(&rsub) else {
            continue;
        };
        report.betweenness_rounds += 1;
        let (sa, sb) = (rsub.locals[a as usize], rsub.locals[b as usize]);
        if scratch.remove_edge(sa, sb) {
            report.betweenness_removed += 1;
            removed.push(Edge::new(sub.locals[sa as usize], sub.locals[sb as usize]));
        }
        let side = component_of(&scratch, sa);
        if side.binary_search(&sb).is_ok() {
            // Still connected: same region, one edge lighter.
            phase2.push(region);
        } else {
            let other = complement_of(&region, &side);
            for part in [side, other] {
                if part.len() > config.mu {
                    phase2.push(part);
                }
            }
        }
    }
    report.betweenness_seconds = phase2_watch.elapsed_secs();

    ComponentOutcome { removed, report }
}

/// A bridge carried through the indexed phase-1 recursion:
/// `(component-local edge, dense block of .0, dense block of .1)`.
type BlockBridge = ((u32, u32), u32, u32);

/// [`cleanup_component`] with the per-round Tarjan scan replaced by a
/// lookup against the persistent [`CutIndex`].
///
/// The index is consulted **once** per component for its bridge/block
/// structure (a cache hit when the caller kept the delta feed complete; a
/// region rescan otherwise — the oracle computation). Each phase-1 round
/// then answers `most_balanced_bridge` by walking the carried block tree
/// — O(bridges in region) instead of O(region) — which is exact because
/// cutting a bridge removes a block-tree edge and changes nothing else:
/// the two sides inherit their blocks and bridges verbatim. The first
/// Stoer–Wagner fallback inside a region invalidates that region's carried
/// structure (a multi-edge cut rips through block interiors), so its
/// descendants fall back to the oracle scan — keeping the output
/// bit-for-bit identical to [`cleanup_component`] on every input.
fn cleanup_component_indexed(
    graph: &Graph,
    component: &[u32],
    config: &CleanupConfig,
    index: &mut CutIndex,
) -> ComponentOutcome {
    let mut report = CleanupReport::default();
    let mut removed: Vec<Edge> = Vec::new();

    let phase1_watch = Stopwatch::start();
    let sub = Subgraph::induce(graph, component);
    let n = sub.num_nodes();
    let mut scratch = Graph::with_nodes(n);
    for &(a, b) in &sub.edges {
        scratch.add_edge(a, b);
    }

    let rescans_before = index.stats.rescanned_nodes;
    let structure = index.structure_for(&sub, component);
    report.rescanned_nodes = index.stats.rescanned_nodes - rescans_before;
    let block_of = structure.block_of;
    let num_blocks = structure.num_blocks as usize;

    // Reusable per-round buffers over the (fixed) block id space.
    let mut counts: Vec<u32> = vec![0; num_blocks];
    let mut block_adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); num_blocks]; // (other block, bridge idx)
    let mut on_side: Vec<bool> = vec![false; num_blocks];

    let mut phase2: Vec<Vec<u32>> = Vec::new();
    let mut queue: Vec<(Vec<u32>, Option<Vec<BlockBridge>>)> =
        vec![((0..n as u32).collect(), Some(structure.bridges))];
    while let Some((region, blocks)) = queue.pop() {
        if region.len() <= config.gamma {
            if region.len() > config.mu {
                phase2.push(region);
            }
            continue;
        }
        let cached = blocks.as_ref().is_some_and(|bridges| !bridges.is_empty());
        if !cached {
            // No usable structure (post-Stoer–Wagner region) or a
            // 2-edge-connected region: exactly the oracle's round.
            let bridge_known_absent = blocks.is_some();
            let rsub = Subgraph::induce(&scratch, &region);
            let split = if bridge_known_absent {
                debug_assert!(most_balanced_bridge(&rsub).is_none());
                None
            } else {
                most_balanced_bridge(&rsub)
            };
            let (cut_edges, side) = match split {
                Some(split) => (vec![split.edge], split.child_side),
                None => match global_min_cut(&rsub) {
                    Some(cut) => (cut.cut_edges, cut.side),
                    None => {
                        if region.len() > config.mu {
                            phase2.push(region);
                        }
                        continue;
                    }
                },
            };
            report.mincut_rounds += 1;
            for &(a, b) in &cut_edges {
                let (sa, sb) = (rsub.locals[a as usize], rsub.locals[b as usize]);
                if scratch.remove_edge(sa, sb) {
                    report.mincut_removed += 1;
                    removed.push(Edge::new(sub.locals[sa as usize], sub.locals[sb as usize]));
                }
            }
            let side: Vec<u32> = side.iter().map(|&i| rsub.locals[i as usize]).collect();
            let other = complement_of(&region, &side);
            for part in [side, other] {
                if part.len() > config.gamma {
                    queue.push((part, None));
                } else if part.len() > config.mu {
                    phase2.push(part);
                }
            }
            continue;
        }

        // Cached round: answer most_balanced_bridge from the block tree.
        let bridges = blocks.unwrap();
        let mut touched: Vec<u32> = Vec::new();
        for &node in &region {
            let block = block_of[node as usize] as usize;
            if counts[block] == 0 {
                touched.push(block as u32);
            }
            counts[block] += 1;
        }
        for (i, &(_, x, y)) in bridges.iter().enumerate() {
            block_adj[x as usize].push((y, i as u32));
            block_adj[y as usize].push((x, i as u32));
        }
        // Subtree weights below each bridge, away from the region
        // minimum's block — the size the oracle's Tarjan assigns to the
        // bridge's child side.
        let root = block_of[region[0] as usize];
        let mut order: Vec<u32> = Vec::with_capacity(touched.len());
        let mut child_block: Vec<u32> = vec![u32::MAX; bridges.len()];
        let mut parent_bridge: Vec<u32> = vec![u32::MAX; num_blocks];
        let mut stack: Vec<u32> = vec![root];
        parent_bridge[root as usize] = u32::MAX - 1; // visited marker
        while let Some(block) = stack.pop() {
            order.push(block);
            for &(next, bridge) in &block_adj[block as usize] {
                if parent_bridge[next as usize] == u32::MAX {
                    parent_bridge[next as usize] = bridge;
                    child_block[bridge as usize] = next;
                    stack.push(next);
                }
            }
        }
        let mut subtree: Vec<u32> = vec![0; num_blocks];
        for &block in &touched {
            subtree[block as usize] = counts[block as usize];
        }
        for &block in order.iter().rev() {
            let bridge = parent_bridge[block as usize];
            if bridge < u32::MAX - 1 {
                let (_, x, y) = bridges[bridge as usize];
                let parent = if child_block[bridge as usize] == x {
                    y
                } else {
                    x
                };
                subtree[parent as usize] += subtree[block as usize];
            }
        }
        let (best, _) = bridges
            .iter()
            .enumerate()
            .max_by_key(|&(i, (edge, _, _))| {
                let size = subtree[child_block[i] as usize] as usize;
                (size.min(region.len() - size), std::cmp::Reverse(*edge))
            })
            .expect("bridges non-empty");
        // Child side: every block hanging below the chosen bridge. The
        // oracle roots its DFS at the region minimum, so its child side
        // is exactly the side not containing `root`.
        let mut side_blocks: Vec<u32> = vec![child_block[best]];
        on_side[child_block[best] as usize] = true;
        let mut walk = vec![child_block[best]];
        while let Some(block) = walk.pop() {
            for &(next, bridge) in &block_adj[block as usize] {
                if bridge != best as u32 && !on_side[next as usize] {
                    on_side[next as usize] = true;
                    side_blocks.push(next);
                    walk.push(next);
                }
            }
        }
        let side: Vec<u32> = region
            .iter()
            .copied()
            .filter(|&node| on_side[block_of[node as usize] as usize])
            .collect();

        let ((la, lb), _, _) = bridges[best];
        report.mincut_rounds += 1;
        report.bridge_cache_hits += 1;
        if scratch.remove_edge(la, lb) {
            report.mincut_removed += 1;
            removed.push(Edge::new(sub.locals[la as usize], sub.locals[lb as usize]));
        }
        let mut side_bridges: Vec<BlockBridge> = Vec::new();
        let mut other_bridges: Vec<BlockBridge> = Vec::new();
        for (i, &bridge) in bridges.iter().enumerate() {
            if i == best {
                continue;
            }
            if on_side[bridge.1 as usize] {
                side_bridges.push(bridge);
            } else {
                other_bridges.push(bridge);
            }
        }
        // Reset the reusable buffers before the region vectors move.
        for &block in &touched {
            counts[block as usize] = 0;
            block_adj[block as usize].clear();
            parent_bridge[block as usize] = u32::MAX;
        }
        for &block in &side_blocks {
            on_side[block as usize] = false;
        }
        let other = complement_of(&region, &side);
        for (part, part_bridges) in [(side, side_bridges), (other, other_bridges)] {
            if part.len() > config.gamma {
                queue.push((part, Some(part_bridges)));
            } else if part.len() > config.mu {
                phase2.push(part);
            }
        }
    }
    report.mincut_seconds = phase1_watch.elapsed_secs();

    // Phase 2 is identical to the oracle's: betweenness removal on the
    // scratch graph.
    let phase2_watch = Stopwatch::start();
    while let Some(region) = phase2.pop() {
        if region.len() <= config.mu {
            continue;
        }
        let rsub = Subgraph::induce(&scratch, &region);
        let Some(((a, b), _)) = max_betweenness_edge(&rsub) else {
            continue;
        };
        report.betweenness_rounds += 1;
        let (sa, sb) = (rsub.locals[a as usize], rsub.locals[b as usize]);
        if scratch.remove_edge(sa, sb) {
            report.betweenness_removed += 1;
            removed.push(Edge::new(sub.locals[sa as usize], sub.locals[sb as usize]));
        }
        let side = component_of(&scratch, sa);
        if side.binary_search(&sb).is_ok() {
            phase2.push(region);
        } else {
            let other = complement_of(&region, &side);
            for part in [side, other] {
                if part.len() > config.mu {
                    phase2.push(part);
                }
            }
        }
    }
    report.betweenness_seconds = phase2_watch.elapsed_secs();

    ComponentOutcome { removed, report }
}

/// Run Algorithm 1 in place like [`graph_cleanup_with_pool`], consulting
/// (and maintaining) a persistent [`CutIndex`] so steady-state churn pays
/// O(affected region) instead of re-scanning every dirty component.
///
/// The caller owns the index across calls and must have fed every edge
/// mutation of `graph` since the index was last rebuilt (the engine's
/// merge path does); the removals this cleanup applies are fed back here,
/// so afterwards the index mirrors the cleaned graph again. Components
/// run sequentially (the index is a single mutable structure), in the
/// same sorted order as the pooled path, producing a bit-identical
/// removed-edge sequence and report counters — plus the
/// `bridge_cache_hits` / `rescanned_nodes` diagnostics.
pub fn graph_cleanup_with_index(
    graph: &mut Graph,
    config: &CleanupConfig,
    index: &mut CutIndex,
) -> CleanupReport {
    let stopwatch = Stopwatch::start();
    let mut report = CleanupReport::default();

    let mut components: Vec<Vec<u32>> = connected_components(graph)
        .into_iter()
        .filter(|component| component.len() > config.mu.min(config.gamma))
        .collect();
    components.sort_unstable_by_key(|component| component[0]);

    for component in &components {
        let outcome = cleanup_component_indexed(graph, component, config, index);
        for edge in &outcome.removed {
            graph.remove_edge(edge.a, edge.b);
            index.remove_edge(edge.a, edge.b);
        }
        report.merge(&outcome.report);
    }
    report.seconds = stopwatch.elapsed_secs();
    report
}

/// Run Algorithm 1 in place, sequentially. Returns a report; the graph's
/// final components are the output groups. Equivalent to
/// [`graph_cleanup_with_pool`] with one worker.
pub fn graph_cleanup(graph: &mut Graph, config: &CleanupConfig) -> CleanupReport {
    graph_cleanup_with_pool(graph, config, &WorkerPool::new(1))
}

/// Run Algorithm 1 in place, cleaning independent oversized components in
/// parallel on `pool`.
///
/// Deterministic regardless of worker count: components are processed in
/// ascending minimum-node-id order, each component's decisions depend only
/// on its own induced subgraph, and the pool preserves input order, so the
/// removed-edge sequence and the report counters are bit-identical to the
/// sequential run.
pub fn graph_cleanup_with_pool(
    graph: &mut Graph,
    config: &CleanupConfig,
    pool: &WorkerPool,
) -> CleanupReport {
    let stopwatch = Stopwatch::start();
    let mut report = CleanupReport::default();

    let mut components: Vec<Vec<u32>> = connected_components(graph)
        .into_iter()
        .filter(|component| component.len() > config.mu.min(config.gamma))
        .collect();
    // Deterministic work order: by minimum node id (members are sorted).
    components.sort_unstable_by_key(|component| component[0]);

    let shared: &Graph = graph;
    let outcomes = pool.map(&components, |component| {
        cleanup_component(shared, component, config)
    });
    for outcome in &outcomes {
        for edge in &outcome.removed {
            graph.remove_edge(edge.a, edge.b);
        }
        report.merge(&outcome.report);
    }
    // Per-component seconds sum worker time; the headline number is wall.
    report.seconds = stopwatch.elapsed_secs();
    report
}

/// The seed implementation of Algorithm 1: re-induce the whole component
/// from the global graph and rebuild a fresh local graph after **every**
/// edge removal, with a full `connected_components` pass per round.
///
/// Kept as the wall-clock baseline for the hub bench (`hubbench`) and for
/// verifying that the perf gate catches a regression to sequential
/// full-recompute behaviour. Produces the same final components as
/// [`graph_cleanup`] (all ≤ μ) but may choose different cut edges, so do
/// not compare removed-edge sets across the two.
pub fn reference_graph_cleanup(graph: &mut Graph, config: &CleanupConfig) -> CleanupReport {
    let stopwatch = Stopwatch::start();
    let mut report = CleanupReport::default();

    let mut queue: Vec<Vec<u32>> = connected_components(graph)
        .into_iter()
        .filter(|component| component.len() > config.mu.min(config.gamma))
        .collect();

    // Phase 1: minimum edge cuts while |c| > γ.
    let phase1_watch = Stopwatch::start();
    let mut phase2: Vec<Vec<u32>> = Vec::new();
    while let Some(component) = queue.pop() {
        if component.len() <= config.gamma {
            phase2.push(component);
            continue;
        }
        let sub = Subgraph::induce(graph, &component);
        let Some(cut) = global_min_cut(&sub) else {
            phase2.push(component);
            continue;
        };
        report.mincut_rounds += 1;
        for &(a, b) in &cut.cut_edges {
            if graph.remove_edge(sub.locals[a as usize], sub.locals[b as usize]) {
                report.mincut_removed += 1;
            }
        }
        let local_graph = {
            let mut g = Graph::with_nodes(sub.num_nodes());
            for &(a, b) in &sub.edges {
                g.add_edge(a, b);
            }
            for &(a, b) in &cut.cut_edges {
                g.remove_edge(a, b);
            }
            g
        };
        for part in connected_components(&local_graph) {
            let originals: Vec<u32> = part.iter().map(|&i| sub.locals[i as usize]).collect();
            if originals.len() > config.mu {
                queue.push(originals);
            }
        }
    }
    report.mincut_seconds = phase1_watch.elapsed_secs();

    // Phase 2: betweenness-centrality removal while |c| > μ.
    let phase2_watch = Stopwatch::start();
    while let Some(component) = phase2.pop() {
        if component.len() <= config.mu {
            continue;
        }
        let sub = Subgraph::induce(graph, &component);
        let Some(((a, b), _)) = max_betweenness_edge(&sub) else {
            continue;
        };
        report.betweenness_rounds += 1;
        if graph.remove_edge(sub.locals[a as usize], sub.locals[b as usize]) {
            report.betweenness_removed += 1;
        }
        let local_graph = {
            let mut g = Graph::with_nodes(sub.num_nodes());
            for &edge in &sub.edges {
                g.add_edge(edge.0, edge.1);
            }
            g.remove_edge(a, b);
            g
        };
        for part in connected_components(&local_graph) {
            let originals: Vec<u32> = part.iter().map(|&i| sub.locals[i as usize]).collect();
            if originals.len() > config.mu {
                phase2.push(originals);
            }
        }
    }
    report.betweenness_seconds = phase2_watch.elapsed_secs();

    report.seconds = stopwatch.elapsed_secs();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gralmatch_graph::largest_component;

    /// Two K4 cliques joined by one false edge.
    fn two_cliques_bridged() -> Graph {
        let mut graph = Graph::new();
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    graph.add_edge(base + i, base + j);
                }
            }
        }
        graph.add_edge(3, 4); // the false positive
        graph
    }

    #[test]
    fn bridge_removed_by_mincut_phase() {
        let mut graph = two_cliques_bridged();
        let report = graph_cleanup(&mut graph, &CleanupConfig::new(5, 4));
        assert_eq!(report.mincut_removed, 1);
        assert!(!graph.has_edge(3, 4));
        let components = connected_components(&graph);
        assert_eq!(components.len(), 2);
        assert_eq!(components[0].len(), 4);
    }

    #[test]
    fn bridge_removed_by_betweenness_phase() {
        let mut graph = two_cliques_bridged();
        let config = CleanupConfig::new(5, 4).variant(CleanupVariant::BetweennessOnly);
        let report = graph_cleanup(&mut graph, &config);
        assert_eq!(report.betweenness_removed, 1);
        assert!(!graph.has_edge(3, 4));
    }

    #[test]
    fn all_components_below_mu_afterwards() {
        // Chain of 4 triangles — a long straggly component.
        let mut graph = Graph::new();
        for k in 0..4u32 {
            let base = k * 3;
            graph.add_edge(base, base + 1);
            graph.add_edge(base + 1, base + 2);
            graph.add_edge(base + 2, base);
            if k > 0 {
                graph.add_edge(base - 1, base);
            }
        }
        graph_cleanup(&mut graph, &CleanupConfig::new(6, 3));
        let largest = largest_component(&graph).unwrap();
        assert!(largest.len() <= 3, "largest {}", largest.len());
    }

    #[test]
    fn clean_graph_untouched() {
        // Components already within μ: nothing removed.
        let mut graph = Graph::from_edges([(0, 1), (1, 2), (3, 4)]);
        let report = graph_cleanup(&mut graph, &CleanupConfig::new(40, 8));
        assert_eq!(report.mincut_removed + report.betweenness_removed, 0);
        assert_eq!(graph.num_edges(), 3);
    }

    #[test]
    fn mec_only_variant_skips_betweenness() {
        let mut graph = two_cliques_bridged();
        let config = CleanupConfig::new(5, 4).variant(CleanupVariant::MinCutOnly);
        assert_eq!(config.gamma, config.mu);
        let report = graph_cleanup(&mut graph, &config);
        assert_eq!(report.betweenness_rounds, 0);
        assert!(report.mincut_rounds > 0);
    }

    #[test]
    fn half_gamma_variant() {
        let config = CleanupConfig::new(40, 8).variant(CleanupVariant::HalfGamma);
        assert_eq!(config.gamma, 20);
        // Never below μ.
        let config2 = CleanupConfig::new(9, 8).variant(CleanupVariant::HalfGamma);
        assert_eq!(config2.gamma, 8);
    }

    #[test]
    fn pre_cleanup_drops_marked_edges_in_big_components() {
        // A 6-node path; threshold 4 → the component qualifies; mark every
        // edge removable.
        let mut graph = Graph::from_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let removed = pre_cleanup(&mut graph, 4, |_, _| true);
        assert_eq!(removed, 5);
        assert_eq!(graph.num_edges(), 0);
    }

    #[test]
    fn pre_cleanup_spares_small_components() {
        let mut graph = Graph::from_edges([(0, 1), (1, 2)]);
        let removed = pre_cleanup(&mut graph, 4, |_, _| true);
        assert_eq!(removed, 0);
        assert_eq!(graph.num_edges(), 2);
    }

    #[test]
    fn pre_cleanup_respects_predicate() {
        let mut graph = Graph::from_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let removed = pre_cleanup(&mut graph, 4, |a, _| a == 0);
        assert_eq!(removed, 1);
        assert!(!graph.has_edge(0, 1));
        assert!(graph.has_edge(1, 2));
    }

    #[test]
    fn report_counts_rounds() {
        let mut graph = two_cliques_bridged();
        let report = graph_cleanup(&mut graph, &CleanupConfig::new(5, 4));
        assert!(report.mincut_rounds >= 1);
        assert!(report.seconds >= 0.0);
        // The phase split is populated and consistent with the rounds.
        assert!(report.mincut_seconds >= 0.0);
        assert!(report.betweenness_seconds >= 0.0);
    }

    #[test]
    fn report_merge_sums_all_fields() {
        let mut total = CleanupReport {
            pre_cleanup_removed: 1,
            mincut_removed: 2,
            betweenness_removed: 3,
            mincut_rounds: 4,
            betweenness_rounds: 5,
            seconds: 0.5,
            pre_cleanup_seconds: 0.1,
            mincut_seconds: 0.2,
            betweenness_seconds: 0.2,
            bridge_cache_hits: 6,
            rescanned_nodes: 7,
        };
        let part = CleanupReport {
            pre_cleanup_removed: 10,
            mincut_removed: 20,
            betweenness_removed: 30,
            mincut_rounds: 40,
            betweenness_rounds: 50,
            seconds: 1.0,
            pre_cleanup_seconds: 0.25,
            mincut_seconds: 0.5,
            betweenness_seconds: 0.25,
            bridge_cache_hits: 60,
            rescanned_nodes: 70,
        };
        total.merge(&part);
        assert_eq!(total.pre_cleanup_removed, 11);
        assert_eq!(total.mincut_removed, 22);
        assert_eq!(total.betweenness_removed, 33);
        assert_eq!(total.mincut_rounds, 44);
        assert_eq!(total.betweenness_rounds, 55);
        assert!((total.seconds - 1.5).abs() < 1e-12);
        assert!((total.pre_cleanup_seconds - 0.35).abs() < 1e-12);
        assert!((total.mincut_seconds - 0.7).abs() < 1e-12);
        assert!((total.betweenness_seconds - 0.45).abs() < 1e-12);
        assert_eq!(total.bridge_cache_hits, 66);
        assert_eq!(total.rescanned_nodes, 77);
    }

    /// A miniature hub: `groups` cliques of `size` nodes, the first node of
    /// each clique linked to one shared hub node (node 0).
    fn hub_graph(groups: u32, size: u32) -> Graph {
        let mut graph = Graph::new();
        graph.ensure_node(0);
        for g in 0..groups {
            let base = 1 + g * size;
            for i in 0..size {
                for j in (i + 1)..size {
                    graph.add_edge(base + i, base + j);
                }
            }
            graph.add_edge(0, base);
        }
        graph
    }

    #[test]
    fn bridge_first_shatters_hub_component() {
        // 12 cliques of 4 around one hub: a 49-node mega-component whose
        // false edges are all bridges. γ=5, μ=4 → every clique survives and
        // the hub is isolated. Phase 1 peels one clique per bridge round
        // until the region is hub + one clique (5 nodes, ≤ γ but > μ),
        // which routes to phase 2 for the final bridge.
        let mut graph = hub_graph(12, 4);
        let report = graph_cleanup(&mut graph, &CleanupConfig::new(5, 4));
        assert_eq!(report.mincut_removed, 11);
        assert_eq!(report.betweenness_removed, 1);
        let components = connected_components(&graph);
        // 12 cliques of 4 plus the isolated hub.
        assert_eq!(components[0].len(), 4);
        assert!(largest_component(&graph).unwrap().len() <= 4);
        for g in 0..12u32 {
            assert!(!graph.has_edge(0, 1 + g * 4));
        }
    }

    #[test]
    fn parallel_pool_matches_sequential_bit_for_bit() {
        let build = || {
            let mut graph = hub_graph(8, 5);
            // A second oversized component: chain of triangles offset high.
            for k in 0..4u32 {
                let base = 1000 + k * 3;
                graph.add_edge(base, base + 1);
                graph.add_edge(base + 1, base + 2);
                graph.add_edge(base + 2, base);
                if k > 0 {
                    graph.add_edge(base - 1, base);
                }
            }
            graph
        };
        let config = CleanupConfig::new(6, 4);
        let mut sequential = build();
        let seq_report = graph_cleanup(&mut sequential, &config);
        let mut parallel = build();
        let par_report = graph_cleanup_with_pool(&mut parallel, &config, &WorkerPool::new(4));
        let mut seq_edges: Vec<Edge> = sequential.edges().collect();
        let mut par_edges: Vec<Edge> = parallel.edges().collect();
        seq_edges.sort_unstable();
        par_edges.sort_unstable();
        assert_eq!(seq_edges, par_edges);
        assert_eq!(seq_report.mincut_removed, par_report.mincut_removed);
        assert_eq!(
            seq_report.betweenness_removed,
            par_report.betweenness_removed
        );
        assert_eq!(seq_report.mincut_rounds, par_report.mincut_rounds);
        assert_eq!(seq_report.betweenness_rounds, par_report.betweenness_rounds);
    }

    #[test]
    fn reference_cleanup_reaches_same_size_bound() {
        let config = CleanupConfig::new(5, 4);
        let mut fast = hub_graph(10, 4);
        let mut reference = hub_graph(10, 4);
        graph_cleanup(&mut fast, &config);
        reference_graph_cleanup(&mut reference, &config);
        assert!(largest_component(&fast).unwrap().len() <= 4);
        assert!(largest_component(&reference).unwrap().len() <= 4);
    }

    fn sorted_edges(graph: &Graph) -> Vec<Edge> {
        let mut edges: Vec<Edge> = graph.edges().collect();
        edges.sort_unstable();
        edges
    }

    /// Run the indexed and the plain cleanup on copies of `graph` and
    /// assert the results are bit-for-bit identical; returns the indexed
    /// report (carrying the cache diagnostics).
    fn assert_indexed_matches(graph: &Graph, config: &CleanupConfig) -> CleanupReport {
        let mut plain = graph.clone();
        let plain_report = graph_cleanup(&mut plain, config);
        let mut indexed = graph.clone();
        let mut index = CutIndex::new();
        index.rebuild_from(&indexed);
        let indexed_report = graph_cleanup_with_index(&mut indexed, config, &mut index);
        assert_eq!(sorted_edges(&plain), sorted_edges(&indexed));
        assert_eq!(plain_report.mincut_removed, indexed_report.mincut_removed);
        assert_eq!(plain_report.mincut_rounds, indexed_report.mincut_rounds);
        assert_eq!(
            plain_report.betweenness_removed,
            indexed_report.betweenness_removed
        );
        assert_eq!(
            plain_report.betweenness_rounds,
            indexed_report.betweenness_rounds
        );
        indexed_report
    }

    #[test]
    fn indexed_cleanup_matches_plain_on_hub() {
        // Every false edge is a bridge: the indexed path should answer all
        // phase-1 rounds from the cached block tree without rescanning.
        let graph = hub_graph(12, 4);
        let report = assert_indexed_matches(&graph, &CleanupConfig::new(5, 4));
        assert!(report.bridge_cache_hits > 0);
        assert_eq!(report.rescanned_nodes, 0, "freshly built index is warm");
    }

    #[test]
    fn indexed_cleanup_matches_plain_on_two_edge_connected() {
        // Two K4s joined by two parallel link edges: no bridge exists, so
        // the indexed path must take the Stoer–Wagner fallback and still
        // match the oracle exactly.
        let mut graph = two_cliques_bridged();
        graph.add_edge(1, 5); // second link alongside (0, 4)
        let report = assert_indexed_matches(&graph, &CleanupConfig::new(5, 4));
        assert_eq!(report.bridge_cache_hits, 0, "no bridges to cache");
    }

    #[test]
    fn indexed_cleanup_matches_plain_on_mixed_structure() {
        // Hub of cliques with one pair of cliques double-linked: the first
        // rounds run from the cache, the 2-edge-connected remnant falls
        // back to min cut, and its descendants re-enter the oracle path.
        let mut graph = hub_graph(8, 4);
        graph.add_edge(2, 6); // weld clique 0 to clique 1 (bridges stay elsewhere)
        graph.add_edge(3, 7);
        let report = assert_indexed_matches(&graph, &CleanupConfig::new(5, 4));
        assert!(report.bridge_cache_hits > 0);
    }

    #[test]
    fn indexed_cleanup_is_warm_across_churn_batches() {
        // Steady-state churn: re-adding the cut bridges and cleaning again
        // must reuse the maintained index with zero Tarjan rescans, while
        // staying identical to a from-scratch cleanup of the same graph.
        let config = CleanupConfig::new(5, 4);
        let mut graph = hub_graph(12, 4);
        let mut index = CutIndex::new();
        index.rebuild_from(&graph);
        let before = sorted_edges(&graph);
        graph_cleanup_with_index(&mut graph, &config, &mut index);
        for round in 0..3 {
            // Re-add every edge the cleanup removed (the hub bridges).
            let cleaned = sorted_edges(&graph);
            for edge in &before {
                if cleaned.binary_search(edge).is_err() {
                    graph.add_edge(edge.a, edge.b);
                    index.insert_edge(edge.a, edge.b);
                }
            }
            let mut oracle = graph.clone();
            let oracle_report = graph_cleanup(&mut oracle, &config);
            let report = graph_cleanup_with_index(&mut graph, &config, &mut index);
            assert_eq!(sorted_edges(&oracle), sorted_edges(&graph));
            assert_eq!(report.mincut_removed, oracle_report.mincut_removed);
            assert_eq!(report.rescanned_nodes, 0, "round {round} should be warm");
            assert!(report.bridge_cache_hits > 0);
        }
    }
}
