//! GraLMatch Graph Cleanup — Algorithm 1 of the paper, plus the
//! Pre Graph Cleanup of Section 4.2.1.
//!
//! ```text
//! Input: matches graph G = (V, E), size thresholds γ and μ
//! 1: C = connected components of G
//! 2: c* ← largest component
//! 3: while |c*| > γ:
//! 4:     E_mincut ← MinEdgeCut(c*)
//! 5:     G ← (V, E \ E_mincut)
//! 6:     c* ← largest component
//! 7: while |c*| > μ:
//! 8:     e_maxBC ← argmax BetweennessCentrality(e), e ∈ c*
//! 9:     G ← (V, E \ e_maxBC)
//! 10:    c* ← largest component
//! 11: Output: connected components of G
//! ```
//!
//! μ is set to the number of data sources ("each group is expected to have
//! at most one record per data source"); γ controls the crossover from the
//! cheaper min-cut phase to the more conservative betweenness phase. The
//! sensitivity variants of Table 4 — MEC-only (γ = μ), BC-only (γ = ∞), ½γ —
//! are expressed through [`CleanupConfig::variant`].

use gralmatch_graph::{
    betweenness::max_betweenness_edge, connected_components, global_min_cut, Graph, Subgraph,
};
use gralmatch_records::RecordPair;
use gralmatch_util::Stopwatch;

/// Thresholds for Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CleanupConfig {
    /// Components above γ are split with minimum edge cuts.
    pub gamma: usize,
    /// Components above μ (but ≤ γ) are split by removing max-betweenness
    /// edges; μ is set to the number of data sources.
    pub mu: usize,
    /// Pre-cleanup: inside components larger than this, drop positively
    /// predicted token-overlap edges (None disables; companies use 50).
    pub pre_cleanup_threshold: Option<usize>,
}

impl CleanupConfig {
    /// Table 2 thresholds for the given dataset shape.
    pub fn new(gamma: usize, mu: usize) -> Self {
        CleanupConfig {
            gamma,
            mu,
            pre_cleanup_threshold: None,
        }
    }

    /// Enable pre-cleanup at the paper's 50-record threshold.
    pub fn with_pre_cleanup(mut self, threshold: usize) -> Self {
        self.pre_cleanup_threshold = Some(threshold);
        self
    }

    /// Apply a sensitivity variant (Section 5.2.1).
    pub fn variant(mut self, variant: CleanupVariant) -> Self {
        match variant {
            CleanupVariant::Full => {}
            CleanupVariant::MinCutOnly => self.gamma = self.mu,
            CleanupVariant::BetweennessOnly => self.gamma = usize::MAX,
            CleanupVariant::HalfGamma => self.gamma = (self.gamma / 2).max(self.mu),
        }
        self
    }
}

/// The Table 4 sensitivity variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CleanupVariant {
    /// Algorithm 1 as published.
    Full,
    /// γ = μ: only the Minimum Edge Cut phase runs (suffix “-MEC”).
    MinCutOnly,
    /// γ = ∞: only the Betweenness Centrality phase runs (suffix “-BC”).
    BetweennessOnly,
    /// γ halved (the “(½γ)” row).
    HalfGamma,
}

/// What the cleanup did (diagnostics + the runtime ablations).
#[derive(Debug, Clone, Default)]
pub struct CleanupReport {
    /// Edges removed by the pre-cleanup.
    pub pre_cleanup_removed: usize,
    /// Edges removed by min cuts (phase 1).
    pub mincut_removed: usize,
    /// Edges removed by betweenness (phase 2).
    pub betweenness_removed: usize,
    /// Min-cut invocations.
    pub mincut_rounds: usize,
    /// Betweenness invocations.
    pub betweenness_rounds: usize,
    /// Wall-clock seconds of the whole cleanup.
    pub seconds: f64,
}

/// Remove token-overlap-sourced edges inside oversized components
/// (Section 4.2.1). `is_removable(pair)` decides whether an edge came from
/// the Token Overlap blocking (and not from an identifier blocking).
pub fn pre_cleanup(
    graph: &mut Graph,
    threshold: usize,
    is_removable: impl Fn(RecordPair) -> bool,
) -> usize {
    let components = connected_components(graph);
    let mut removed = 0;
    for component in components {
        if component.len() <= threshold {
            continue;
        }
        let sub = Subgraph::induce(graph, &component);
        for &(a, b) in &sub.edges {
            let pair = RecordPair::new(
                gralmatch_records::RecordId(sub.locals[a as usize]),
                gralmatch_records::RecordId(sub.locals[b as usize]),
            );
            if is_removable(pair)
                && graph.remove_edge(sub.locals[a as usize], sub.locals[b as usize])
            {
                removed += 1;
            }
        }
    }
    removed
}

/// Run Algorithm 1 in place. Returns a report; the graph's final components
/// are the output groups.
pub fn graph_cleanup(graph: &mut Graph, config: &CleanupConfig) -> CleanupReport {
    let stopwatch = Stopwatch::start();
    let mut report = CleanupReport::default();

    // Work queue of components that may still exceed thresholds. Removing
    // edges only ever splits the processed component, so the queue touches
    // each oversized component lineage locally instead of recomputing global
    // components every round.
    let mut queue: Vec<Vec<u32>> = connected_components(graph)
        .into_iter()
        .filter(|component| component.len() > config.mu.min(config.gamma))
        .collect();

    // Phase 1: minimum edge cuts while |c| > γ.
    let mut phase2: Vec<Vec<u32>> = Vec::new();
    while let Some(component) = queue.pop() {
        if component.len() <= config.gamma {
            phase2.push(component);
            continue;
        }
        let sub = Subgraph::induce(graph, &component);
        let Some(cut) = global_min_cut(&sub) else {
            phase2.push(component);
            continue;
        };
        report.mincut_rounds += 1;
        for &(a, b) in &cut.cut_edges {
            if graph.remove_edge(sub.locals[a as usize], sub.locals[b as usize]) {
                report.mincut_removed += 1;
            }
        }
        // The component split into exactly the two cut sides (a min cut
        // disconnects into two parts); recompute locally.
        let local_graph = {
            let mut g = Graph::with_nodes(sub.num_nodes());
            for &(a, b) in &sub.edges {
                g.add_edge(a, b);
            }
            for &(a, b) in &cut.cut_edges {
                g.remove_edge(a, b);
            }
            g
        };
        for part in connected_components(&local_graph) {
            let originals: Vec<u32> = part.iter().map(|&i| sub.locals[i as usize]).collect();
            if originals.len() > config.mu {
                queue.push(originals);
            }
        }
    }

    // Phase 2: betweenness-centrality removal while |c| > μ.
    while let Some(component) = phase2.pop() {
        if component.len() <= config.mu {
            continue;
        }
        let sub = Subgraph::induce(graph, &component);
        let Some(((a, b), _)) = max_betweenness_edge(&sub) else {
            continue;
        };
        report.betweenness_rounds += 1;
        if graph.remove_edge(sub.locals[a as usize], sub.locals[b as usize]) {
            report.betweenness_removed += 1;
        }
        let local_graph = {
            let mut g = Graph::with_nodes(sub.num_nodes());
            for &edge in &sub.edges {
                g.add_edge(edge.0, edge.1);
            }
            g.remove_edge(a, b);
            g
        };
        for part in connected_components(&local_graph) {
            let originals: Vec<u32> = part.iter().map(|&i| sub.locals[i as usize]).collect();
            if originals.len() > config.mu {
                phase2.push(originals);
            }
        }
    }

    report.seconds = stopwatch.elapsed_secs();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gralmatch_graph::largest_component;

    /// Two K4 cliques joined by one false edge.
    fn two_cliques_bridged() -> Graph {
        let mut graph = Graph::new();
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    graph.add_edge(base + i, base + j);
                }
            }
        }
        graph.add_edge(3, 4); // the false positive
        graph
    }

    #[test]
    fn bridge_removed_by_mincut_phase() {
        let mut graph = two_cliques_bridged();
        let report = graph_cleanup(&mut graph, &CleanupConfig::new(5, 4));
        assert_eq!(report.mincut_removed, 1);
        assert!(!graph.has_edge(3, 4));
        let components = connected_components(&graph);
        assert_eq!(components.len(), 2);
        assert_eq!(components[0].len(), 4);
    }

    #[test]
    fn bridge_removed_by_betweenness_phase() {
        let mut graph = two_cliques_bridged();
        let config = CleanupConfig::new(5, 4).variant(CleanupVariant::BetweennessOnly);
        let report = graph_cleanup(&mut graph, &config);
        assert_eq!(report.betweenness_removed, 1);
        assert!(!graph.has_edge(3, 4));
    }

    #[test]
    fn all_components_below_mu_afterwards() {
        // Chain of 4 triangles — a long straggly component.
        let mut graph = Graph::new();
        for k in 0..4u32 {
            let base = k * 3;
            graph.add_edge(base, base + 1);
            graph.add_edge(base + 1, base + 2);
            graph.add_edge(base + 2, base);
            if k > 0 {
                graph.add_edge(base - 1, base);
            }
        }
        graph_cleanup(&mut graph, &CleanupConfig::new(6, 3));
        let largest = largest_component(&graph).unwrap();
        assert!(largest.len() <= 3, "largest {}", largest.len());
    }

    #[test]
    fn clean_graph_untouched() {
        // Components already within μ: nothing removed.
        let mut graph = Graph::from_edges([(0, 1), (1, 2), (3, 4)]);
        let report = graph_cleanup(&mut graph, &CleanupConfig::new(40, 8));
        assert_eq!(report.mincut_removed + report.betweenness_removed, 0);
        assert_eq!(graph.num_edges(), 3);
    }

    #[test]
    fn mec_only_variant_skips_betweenness() {
        let mut graph = two_cliques_bridged();
        let config = CleanupConfig::new(5, 4).variant(CleanupVariant::MinCutOnly);
        assert_eq!(config.gamma, config.mu);
        let report = graph_cleanup(&mut graph, &config);
        assert_eq!(report.betweenness_rounds, 0);
        assert!(report.mincut_rounds > 0);
    }

    #[test]
    fn half_gamma_variant() {
        let config = CleanupConfig::new(40, 8).variant(CleanupVariant::HalfGamma);
        assert_eq!(config.gamma, 20);
        // Never below μ.
        let config2 = CleanupConfig::new(9, 8).variant(CleanupVariant::HalfGamma);
        assert_eq!(config2.gamma, 8);
    }

    #[test]
    fn pre_cleanup_drops_marked_edges_in_big_components() {
        // A 6-node path; threshold 4 → the component qualifies; mark every
        // edge removable.
        let mut graph = Graph::from_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let removed = pre_cleanup(&mut graph, 4, |_| true);
        assert_eq!(removed, 5);
        assert_eq!(graph.num_edges(), 0);
    }

    #[test]
    fn pre_cleanup_spares_small_components() {
        let mut graph = Graph::from_edges([(0, 1), (1, 2)]);
        let removed = pre_cleanup(&mut graph, 4, |_| true);
        assert_eq!(removed, 0);
        assert_eq!(graph.num_edges(), 2);
    }

    #[test]
    fn pre_cleanup_respects_predicate() {
        let mut graph = Graph::from_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let removed = pre_cleanup(&mut graph, 4, |pair| pair.a.0 == 0);
        assert_eq!(removed, 1);
        assert!(!graph.has_edge(0, 1));
        assert!(graph.has_edge(1, 2));
    }

    #[test]
    fn report_counts_rounds() {
        let mut graph = two_cliques_bridged();
        let report = graph_cleanup(&mut graph, &CleanupConfig::new(5, 4));
        assert!(report.mincut_rounds >= 1);
        assert!(report.seconds >= 0.0);
    }
}
