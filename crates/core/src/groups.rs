//! Entity groups and the prediction graph.
//!
//! The expected output of entity group matching is "a list of groups of
//! records represented as complete graphs" (paper Section 1): the connected
//! components of the prediction graph, with all transitive matches implied.
//! This module builds the graph from pairwise predictions and extracts
//! groups; the quadratic closure counts are computed per component without
//! materializing pairs (a single 50K-record hairball implies 1.25G pairs).

use gralmatch_graph::{connected_components, Graph};
use gralmatch_records::{GroundTruth, RecordId, RecordPair};
use gralmatch_util::FxHashMap;

/// Build the prediction graph over `num_records` dense record ids from
/// positively predicted pairs.
pub fn prediction_graph(num_records: usize, predicted: &[RecordPair]) -> Graph {
    let mut graph = Graph::with_nodes(num_records);
    for pair in predicted {
        graph.add_edge(pair.a.0, pair.b.0);
    }
    graph
}

/// Extract entity groups (components, largest first) as record-id lists.
/// Singleton groups (unmatched records) are included.
pub fn entity_groups(graph: &Graph) -> Vec<Vec<RecordId>> {
    connected_components(graph)
        .into_iter()
        .map(|component| component.into_iter().map(RecordId).collect())
        .collect()
}

/// Map each record to its group index.
pub fn group_assignment(groups: &[Vec<RecordId>]) -> FxHashMap<RecordId, u32> {
    let mut map = FxHashMap::default();
    for (index, group) in groups.iter().enumerate() {
        for &record in group {
            map.insert(record, index as u32);
        }
    }
    map
}

/// Closure-pair counters of one group against ground truth, computed in
/// O(|group|): true-positive implied pairs and total implied pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupPairCounts {
    /// Implied pairs that are true matches.
    pub true_pairs: u64,
    /// All implied pairs: |group|·(|group|−1)/2.
    pub total_pairs: u64,
}

/// Count closure pairs of a group against ground truth.
pub fn count_group_pairs(group: &[RecordId], gt: &GroundTruth) -> GroupPairCounts {
    let size = group.len() as u64;
    let total_pairs = size * size.saturating_sub(1) / 2;
    // Group by entity; unlabeled records can never form true pairs.
    let mut per_entity: FxHashMap<u32, u64> = FxHashMap::default();
    for &record in group {
        if let Some(entity) = gt.entity_of(record) {
            *per_entity.entry(entity.0).or_insert(0) += 1;
        }
    }
    let true_pairs = per_entity.values().map(|&k| k * (k - 1) / 2).sum();
    GroupPairCounts {
        true_pairs,
        total_pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gralmatch_records::EntityId;

    fn pair(a: u32, b: u32) -> RecordPair {
        RecordPair::new(RecordId(a), RecordId(b))
    }

    fn gt_of(assignments: &[(u32, u32)]) -> GroundTruth {
        GroundTruth::from_assignments(assignments.iter().map(|&(r, e)| (RecordId(r), EntityId(e))))
    }

    #[test]
    fn graph_and_groups() {
        let graph = prediction_graph(5, &[pair(0, 1), pair(1, 2)]);
        let groups = entity_groups(&graph);
        assert_eq!(groups[0], vec![RecordId(0), RecordId(1), RecordId(2)]);
        assert_eq!(groups.len(), 3, "two singletons remain");
    }

    #[test]
    fn assignment_covers_all() {
        let graph = prediction_graph(4, &[pair(0, 1)]);
        let groups = entity_groups(&graph);
        let map = group_assignment(&groups);
        assert_eq!(map.len(), 4);
        assert_eq!(map[&RecordId(0)], map[&RecordId(1)]);
        assert_ne!(map[&RecordId(0)], map[&RecordId(2)]);
    }

    #[test]
    fn closure_counts() {
        // Group {0,1,2,3}: 0,1,2 are entity 7; 3 is entity 8.
        let gt = gt_of(&[(0, 7), (1, 7), (2, 7), (3, 8)]);
        let group: Vec<RecordId> = (0..4).map(RecordId).collect();
        let counts = count_group_pairs(&group, &gt);
        assert_eq!(counts.total_pairs, 6);
        assert_eq!(counts.true_pairs, 3);
    }

    #[test]
    fn closure_counts_unlabeled() {
        let gt = gt_of(&[(0, 7)]);
        let group = vec![RecordId(0), RecordId(1)];
        let counts = count_group_pairs(&group, &gt);
        assert_eq!(counts.total_pairs, 1);
        assert_eq!(counts.true_pairs, 0);
    }

    #[test]
    fn singleton_group_counts() {
        let gt = gt_of(&[(0, 1)]);
        let counts = count_group_pairs(&[RecordId(0)], &gt);
        assert_eq!(counts.total_pairs, 0);
        assert_eq!(counts.true_pairs, 0);
    }
}
