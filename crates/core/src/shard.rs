//! Sharded pipeline execution: hash-partition a domain, run the staged
//! pipeline per shard, merge.
//!
//! The securities-scale datasets (~330k records) make *blocking* the
//! wall-clock bottleneck once pairwise scoring is parallel: token-overlap
//! counting cost grows with the postings volume, which is superlinear in
//! the record count. A [`ShardPlan`] hash-partitions the records by a
//! shard key, the existing `BlockingStage → InferenceStage → CleanupStage
//! → GroupingStage` lineup runs per shard (each shard's inverted index is
//! a fraction of the global one), and the [`MergeStage`] reconciles:
//!
//! 1. per-shard components are unioned through
//!    [`UnionFind`],
//! 2. the cheap hash-join blockers
//!    ([`gralmatch_blocking::Blocker::cross_shard`]) run **once,
//!    globally** — their degeneracy guards see true global statistics —
//!    and their pairs are partitioned into per-shard seeds (both
//!    endpoints in one shard) and cross-shard **boundary candidates**;
//!    only the shard-local text blockers run per shard,
//! 3. components touched by a positively scored boundary edge are rebuilt
//!    from their **raw** predictions and re-cleaned (Section 4.2.1
//!    pre-cleanup + Algorithm 1) exactly as an unsharded run would clean
//!    them; untouched components keep their shard-cleaned edges. Because
//!    the cleanup is per-component-deterministic, a sharded run whose
//!    candidate set matches the unsharded one reproduces the unsharded
//!    groups bit for bit, and the merge work stays proportional to the
//!    cross-shard surface, not the dataset.
//!
//! Per-shard [`PipelineTrace`]s are rolled up into one aggregate trace
//! (plus a `merge` stage entry), so sharded and unsharded runs report the
//! same per-stage columns.
//!
//! With [`ShardKey::Entity`] (labeled benchmarks) true groups stay
//! shard-local and a sharded run reproduces the unsharded groups exactly;
//! with [`ShardKey::Source`] every multi-source group crosses shards and
//! the merge stage does the heavy lifting — the stress setting for
//! incremental upserts, which will re-block single shards.

use crate::cleanup::{
    graph_cleanup_with_index, graph_cleanup_with_pool, pre_cleanup_edges, CleanupReport,
};
use crate::domain::MatchingDomain;
use crate::groups::{entity_groups, prediction_graph};
use crate::metrics::{group_metrics, pairwise_metrics};
use crate::pipeline::{MatchingOutcome, PipelineConfig};
use crate::stage::{StageContext, StagePipeline};
use crate::trace::{stage_names, PipelineTrace, StageTrace};
use gralmatch_blocking::{
    run_blocker_refs_traced, text_only_provenance, BlockerRun, BlockingContext, CandidateSet,
};
use gralmatch_graph::{CutIndex, Edge, Graph, UnionFind};
use gralmatch_lm::{predict_positive_with, PairScorer};
use gralmatch_records::{Record, RecordId, RecordPair};
use gralmatch_util::{current_rss_bytes, Error, FxHashSet, Stopwatch};
use std::borrow::Cow;

/// What to hash when assigning records to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardKey {
    /// Hash the ground-truth entity label, falling back to the record id
    /// for unlabeled records. True groups stay shard-local, so a sharded
    /// run reproduces the unsharded grouping — the benchmark / repro
    /// setting.
    #[default]
    Entity,
    /// Hash the record's data source. Every multi-source group crosses
    /// shards, so recall rests on the merge stage's boundary pass — the
    /// stress setting.
    Source,
}

/// A hash partition of a domain's records into `num_shards` shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    /// Number of shards (1 = unsharded).
    pub num_shards: usize,
    /// Partition key.
    pub key: ShardKey,
}

/// Salt decorrelating the shard hash from other uses of the same keys.
const SHARD_SALT: u64 = 0x5AAD_F00D;

impl ShardPlan {
    /// Plan with the default [`ShardKey::Entity`] key.
    pub fn new(num_shards: usize) -> Self {
        ShardPlan {
            num_shards: num_shards.max(1),
            key: ShardKey::Entity,
        }
    }

    /// Override the partition key.
    pub fn with_key(mut self, key: ShardKey) -> Self {
        self.key = key;
        self
    }

    /// Shard index of one record under this plan — a pure function of the
    /// record's own fields, so an upserted record lands on the same shard
    /// a one-shot run would put it on.
    pub fn assign_record<R: Record>(&self, record: &R) -> u32 {
        match self.key {
            ShardKey::Entity => {
                let key = record
                    .entity()
                    .map(|e| e.0 as u64)
                    // Disambiguate unlabeled records from entity ids.
                    .unwrap_or(record.id().0 as u64 | 1 << 63);
                (gralmatch_util::hash::hash_u64_pair(key, SHARD_SALT) % self.num_shards as u64)
                    as u32
            }
            // Source ids are small dense integers (a handful of
            // vendors); hashing them can collapse every source into one
            // shard, so partition by the id directly.
            ShardKey::Source => record.source().0 as u32 % self.num_shards as u32,
        }
    }

    /// Shard index for each record, in record order.
    pub fn assign<R: Record>(&self, records: &[R]) -> Vec<u32> {
        records
            .iter()
            .map(|record| self.assign_record(record))
            .collect()
    }
}

/// The cross-shard reconciliation step: union per-shard components via
/// [`UnionFind`], rebuild boundary-touched components from raw
/// predictions, and re-run the cleanup on them.
pub struct MergeStage<'a> {
    config: &'a PipelineConfig,
}

/// What the merge produced.
pub struct MergeResult {
    /// The merged, re-cleaned prediction graph.
    pub graph: Graph,
    /// Boundary edges that actually connected two distinct components.
    pub boundary_merges: usize,
    /// Components a boundary edge touched (rebuilt and re-cleaned).
    pub touched_components: usize,
    /// Members of the rebuilt components (raw-edge endpoints in touched
    /// components, plus the dirty nodes themselves), sorted. Exactness
    /// rests on the [`merge`](MergeStage::merge) caller contract: when
    /// raw edges were retracted since the standing graphs were built,
    /// `dirty_nodes` must name their endpoints (the upsert path does) —
    /// then everything *outside* this set kept its cleaned edges
    /// verbatim, making it the invalidation set for any index derived
    /// from the cleaned graph (the engine's record-id → group index
    /// updates only these).
    pub touched_nodes: Vec<u32>,
    /// Edges removed by the post-merge cleanup.
    pub cleanup: CleanupReport,
}

impl<'a> MergeStage<'a> {
    /// Merge under the given pipeline config (cleanup thresholds).
    pub fn new(config: &'a PipelineConfig) -> Self {
        MergeStage { config }
    }

    /// Reconcile per-shard results into one graph.
    ///
    /// Components containing a boundary edge — or any node in
    /// `dirty_nodes` — are rebuilt from their **raw** predictions
    /// (`shard_predicted` + `boundary_predicted`) and pass through
    /// pre-cleanup and Algorithm 1 again — exactly what an unsharded run
    /// would do to them, since the cleanup is deterministic per component.
    /// Untouched components keep their shard-cleaned edges (already ≤ μ),
    /// so the re-cleanup cost is proportional to the cross-shard surface.
    /// `is_removable(a, b)` is the pre-cleanup predicate over the combined
    /// candidate provenance (raw record ids, canonical `a < b`).
    ///
    /// `dirty_nodes` is the incremental-upsert hook: an upsert batch marks
    /// inserted/updated/deleted records *and the endpoints of retracted
    /// raw edges* dirty, forcing every component whose raw edge set
    /// changed through a re-clean even when no new positive edge touches
    /// it (a delete can split a component without proposing anything new).
    /// Sharded one-shot runs pass an empty set.
    pub fn merge(
        &self,
        num_records: usize,
        shard_graphs: &[Graph],
        shard_predicted: &[RecordPair],
        boundary_predicted: &[RecordPair],
        dirty_nodes: &FxHashSet<u32>,
        is_removable: &dyn Fn(u32, u32) -> bool,
    ) -> MergeResult {
        self.merge_with_index(
            num_records,
            shard_graphs,
            shard_predicted,
            boundary_predicted,
            dirty_nodes,
            is_removable,
            None,
        )
    }

    /// [`merge`](MergeStage::merge) with an optional persistent
    /// [`CutIndex`] mirroring the **previous cleaned graph** (the engine's
    /// steady-state path, where `shard_graphs` is exactly that one graph).
    ///
    /// When an index is passed, the merge feeds it the exact edge delta
    /// between the previous cleaned graph and the rebuilt merged graph —
    /// the cleaned edges dropped from touched components and not restored
    /// by the raw re-add, the raw/boundary edges newly introduced, and the
    /// pre-cleanup removals — then runs the cleanup through
    /// [`graph_cleanup_with_index`], whose own removals keep the index in
    /// sync. Cost of the delta feed is O(touched region + boundary), so a
    /// steady churn batch never re-scans the untouched graph.
    #[allow(clippy::too_many_arguments)]
    pub fn merge_with_index(
        &self,
        num_records: usize,
        shard_graphs: &[Graph],
        shard_predicted: &[RecordPair],
        boundary_predicted: &[RecordPair],
        dirty_nodes: &FxHashSet<u32>,
        is_removable: &dyn Fn(u32, u32) -> bool,
        mut index: Option<&mut CutIndex>,
    ) -> MergeResult {
        debug_assert!(
            index.is_none() || shard_graphs.len() == 1,
            "a CutIndex mirrors one standing cleaned graph"
        );
        // Components of the raw merged prediction graph.
        let mut components = UnionFind::new(num_records);
        for pair in shard_predicted {
            components.union(pair.a.0, pair.b.0);
        }
        let mut boundary_merges = 0usize;
        for pair in boundary_predicted {
            if components.union(pair.a.0, pair.b.0) {
                boundary_merges += 1;
            }
        }
        let mut touched: FxHashSet<u32> = FxHashSet::default();
        for pair in boundary_predicted {
            touched.insert(components.find(pair.a.0));
        }
        let mut touched_nodes: FxHashSet<u32> = FxHashSet::default();
        for &node in dirty_nodes {
            if (node as usize) < num_records {
                touched.insert(components.find(node));
                touched_nodes.insert(node);
            }
        }

        // Untouched components keep their shard-cleaned edges; touched ones
        // are rebuilt raw and re-cleaned below. Both endpoints are checked:
        // a retracted raw edge can leave its endpoints in *different*
        // current components, and a standing cleaned edge between them must
        // not survive either side's rebuild.
        let mut merged = Graph::with_nodes(num_records);
        let mut dropped: Vec<Edge> = Vec::new();
        let mut introduced: Vec<(u32, u32)> = Vec::new();
        for graph in shard_graphs {
            for edge in graph.edges() {
                if !touched.contains(&components.find(edge.a))
                    && !touched.contains(&components.find(edge.b))
                {
                    merged.add_edge(edge.a, edge.b);
                } else if index.is_some() {
                    dropped.push(edge);
                }
            }
        }
        for pair in shard_predicted {
            if touched.contains(&components.find(pair.a.0)) {
                if merged.add_edge(pair.a.0, pair.b.0) && index.is_some() {
                    introduced.push((pair.a.0, pair.b.0));
                }
                touched_nodes.insert(pair.a.0);
                touched_nodes.insert(pair.b.0);
            }
        }
        for pair in boundary_predicted {
            if merged.add_edge(pair.a.0, pair.b.0) && index.is_some() {
                introduced.push((pair.a.0, pair.b.0));
            }
            touched_nodes.insert(pair.a.0);
            touched_nodes.insert(pair.b.0);
        }
        if let Some(index) = index.as_deref_mut() {
            // Feed the exact delta vs the previous cleaned graph: a dropped
            // cleaned edge may have been restored by the raw re-add (then
            // nothing changed), and an introduced raw edge may have already
            // been standing.
            let previous = &shard_graphs[0];
            for edge in &dropped {
                if !merged.has_edge(edge.a, edge.b) {
                    index.remove_edge(edge.a, edge.b);
                }
            }
            for &(a, b) in &introduced {
                if !previous.has_edge(a, b) {
                    index.insert_edge(a, b);
                }
            }
        }

        // Re-clean: only the rebuilt (touched) components exceed the
        // thresholds — everything else was already cut down per shard.
        // Dirty components are independent, so they fan out across the
        // configured pool.
        let mut cleanup = CleanupReport::default();
        if let Some(threshold) = self.config.cleanup.pre_cleanup_threshold {
            let pre_watch = Stopwatch::start();
            let removed = pre_cleanup_edges(&mut merged, threshold, is_removable);
            if let Some(index) = index.as_deref_mut() {
                for edge in &removed {
                    index.remove_edge(edge.a, edge.b);
                }
            }
            cleanup.pre_cleanup_removed = removed.len();
            cleanup.pre_cleanup_seconds = pre_watch.elapsed_secs();
        }
        match index {
            Some(index) => {
                cleanup.merge(&graph_cleanup_with_index(
                    &mut merged,
                    &self.config.cleanup,
                    index,
                ));
            }
            None => {
                let pool = self.config.parallelism.pool_for(merged.num_edges());
                cleanup.merge(&graph_cleanup_with_pool(
                    &mut merged,
                    &self.config.cleanup,
                    &pool,
                ));
            }
        }
        let mut touched_nodes: Vec<u32> = touched_nodes.into_iter().collect();
        touched_nodes.sort_unstable();
        MergeResult {
            graph: merged,
            boundary_merges,
            touched_components: touched.len(),
            touched_nodes,
            cleanup,
        }
    }
}

/// Outcome of a sharded pipeline run.
pub struct ShardedOutcome {
    /// The merged outcome; its `trace` is the per-stage roll-up across
    /// shards plus a [`stage_names::MERGE`] entry.
    pub outcome: MatchingOutcome,
    /// The individual per-shard traces (blocking → grouping each).
    pub shard_traces: Vec<PipelineTrace>,
    /// Records per shard.
    pub shard_sizes: Vec<usize>,
    /// Cross-shard candidate pairs proposed by the boundary pass.
    pub boundary_candidates: usize,
    /// Boundary edges that connected two distinct shard components.
    pub boundary_merges: usize,
}

/// Run the **legacy staged** pipeline sharded: per-shard Figure 1 lineups
/// plus the cross-shard [`MergeStage`]. With one shard this is exactly
/// [`run_domain_staged`](crate::domain::run_domain_staged).
///
/// Like `run_domain_staged`, this is the pre-engine reference
/// implementation, kept as the *independent oracle* the equivalence
/// suites replay [`MatchEngine`](crate::engine::MatchEngine) batches
/// against (`tests/engine_equivalence.rs`,
/// `tests/upsert_equivalence.rs`). Production one-shot/sharded runs flow
/// through the engine (`run_domain`, the bench harness's
/// `run_domain_maybe_sharded`), which reproduces these groups exactly —
/// property-tested, deletes included.
pub fn run_sharded<D>(
    domain: &D,
    scorer: &dyn PairScorer,
    config: &PipelineConfig,
    plan: &ShardPlan,
) -> Result<ShardedOutcome, Error>
where
    D: MatchingDomain,
    D::Rec: Clone,
{
    let records = domain.records();
    let num_records = records.len();
    let gt = domain.ground_truth();

    if plan.num_shards <= 1 {
        let outcome = crate::domain::run_domain_staged(domain, scorer, config)?;
        let shard_traces = vec![outcome.trace.clone()];
        return Ok(ShardedOutcome {
            outcome,
            shard_traces,
            shard_sizes: vec![num_records],
            boundary_candidates: 0,
            boundary_merges: 0,
        });
    }

    let assignment = plan.assign(records);
    let strategies = domain.blocking_strategies();
    let pool = config.parallelism.pool_for(num_records);
    let blocking_ctx = BlockingContext::with_pool(pool);

    // The hash-join blockers run once, globally: their degeneracy guards
    // (code-holder / group-size caps) then see true global statistics, so
    // the sharded candidate set matches the unsharded one exactly for
    // identifier-driven recipes. Pairs are partitioned into per-shard
    // seeds and cross-shard boundary candidates.
    let global_watch = Stopwatch::start();
    let mut shard_seeds: Vec<CandidateSet> =
        (0..plan.num_shards).map(|_| CandidateSet::new()).collect();
    let mut boundary = CandidateSet::new();
    // Independent hash joins run concurrently on the pool, like the
    // unsharded blocking stage runs its recipe list. Per-recipe
    // diagnostics: every recipe keeps its line (cross-shard joins here,
    // shard-local recipes below), zero candidates included.
    let cross_blockers: Vec<&dyn gralmatch_blocking::Blocker<D::Rec>> = strategies
        .iter()
        .filter(|b| b.cross_shard())
        .map(|b| b.as_ref())
        .collect();
    let (global_set, mut blocker_runs) =
        run_blocker_refs_traced(records, &cross_blockers, &blocking_ctx);
    for (pair, flags) in global_set.iter() {
        let (shard_a, shard_b) = (assignment[pair.a.0 as usize], assignment[pair.b.0 as usize]);
        if shard_a == shard_b {
            shard_seeds[shard_a as usize].add_flags(pair, flags);
        } else {
            boundary.add_flags(pair, flags);
        }
    }
    let global_join_seconds = global_watch.elapsed_secs();

    let mut shard_traces: Vec<PipelineTrace> = Vec::with_capacity(plan.num_shards);
    let mut shard_sizes: Vec<usize> = Vec::with_capacity(plan.num_shards);
    let mut shard_graphs: Vec<Graph> = Vec::with_capacity(plan.num_shards);
    // Retained for the merge's pre-cleanup provenance predicate.
    let mut shard_candidates: Vec<CandidateSet> = Vec::with_capacity(plan.num_shards);
    let mut all_predicted: Vec<RecordPair> = Vec::new();
    let mut num_candidates = 0usize;
    let mut cleanup_report = CleanupReport::default();

    for shard in 0..plan.num_shards as u32 {
        let shard_records: Vec<D::Rec> = records
            .iter()
            .zip(&assignment)
            .filter(|(_, &assigned)| assigned == shard)
            .map(|(record, _)| record.clone())
            .collect();
        shard_sizes.push(shard_records.len());

        // Shard-local blocking (the text blockers) over the shard slice,
        // merged onto the shard's seed from the global hash joins.
        let rss_before = current_rss_bytes();
        let stopwatch = Stopwatch::start();
        let mut candidates = std::mem::take(&mut shard_seeds[shard as usize]);
        for blocker in strategies.iter().filter(|b| !b.cross_shard()) {
            let recipe_watch = Stopwatch::start();
            let mut recipe_set = CandidateSet::new();
            blocker.block(&shard_records, &blocking_ctx, &mut recipe_set);
            BlockerRun::accumulate(
                &mut blocker_runs,
                BlockerRun {
                    name: blocker.name(),
                    candidates: recipe_set.len(),
                    seconds: recipe_watch.elapsed_secs(),
                },
            );
            candidates.merge(&recipe_set);
        }
        let blocking_trace = StageTrace {
            stage: stage_names::BLOCKING,
            seconds: stopwatch.elapsed_secs(),
            items_in: shard_records.len(),
            items_out: candidates.len(),
            rss_delta_bytes: match (rss_before, current_rss_bytes()) {
                (Some(before), Some(after)) => Some(after as i64 - before as i64),
                _ => None,
            },
            arena_bytes: None,
            core_seconds: None,
            phases: None,
        };
        num_candidates += candidates.len();

        // Downstream stages run in the global id space (no remapping), so
        // per-shard graphs union trivially in the merge.
        let mut ctx = StageContext::new(num_records, gt, scorer, config);
        ctx.pool = Some(pool);
        ctx.num_candidates = candidates.len();
        ctx.candidates = Some(Cow::Borrowed(&candidates));
        let mut trace = StagePipeline::post_blocking().run(&mut ctx)?;
        trace.stages.insert(0, blocking_trace);
        shard_traces.push(trace);

        cleanup_report.merge(&ctx.cleanup_report);
        all_predicted.extend(ctx.predicted.take().unwrap_or_default());
        shard_graphs.push(ctx.graph.take().expect("cleanup stage ran"));
        drop(ctx);
        shard_candidates.push(candidates);
    }

    // Boundary inference + merge. The scoring pool is sized by the
    // boundary pair count (which can dwarf the record count under
    // source-keyed sharding), growing but never shrinking the shared pool
    // — mirroring the unsharded inference stage.
    let merge_watch = Stopwatch::start();
    let boundary_pairs = boundary.pairs_sorted();
    let scoring_pool = {
        let resolved = config.parallelism.pool_for(boundary_pairs.len());
        if resolved.workers() > pool.workers() {
            resolved
        } else {
            pool
        }
    };
    let boundary_predicted = predict_positive_with(scorer, &boundary_pairs, &scoring_pool);
    num_candidates += boundary_pairs.len();

    // Pre-cleanup removability over the combined provenance (every pair
    // lives in exactly one shard set or the boundary set) — the same
    // predicate the cleanup stage applies (token-overlap-sourced and not
    // protected by an identifier blocking).
    let is_removable = |a: u32, b: u32| {
        let pair = RecordPair::new(RecordId(a), RecordId(b));
        let flags = boundary.provenance(pair)
            | shard_candidates
                .iter()
                .fold(0u8, |acc, set| acc | set.provenance(pair));
        text_only_provenance(flags)
    };
    let merge = MergeStage::new(config).merge(
        num_records,
        &shard_graphs,
        &all_predicted,
        &boundary_predicted,
        &FxHashSet::default(),
        &is_removable,
    );
    cleanup_report.merge(&merge.cleanup);
    all_predicted.extend(boundary_predicted);

    // Global three-stage evaluation over the union of shard + boundary
    // predictions (the sets are disjoint: every pair lives in exactly one
    // shard or crosses shards).
    let pairwise = pairwise_metrics(&all_predicted, gt);
    let pre_cleanup = group_metrics(
        &entity_groups(&prediction_graph(num_records, &all_predicted)),
        gt,
    );
    let groups = entity_groups(&merge.graph);
    let post_cleanup = group_metrics(&groups, gt);

    let mut trace = PipelineTrace::rolled_up(&shard_traces);
    if let Some(blocking) = trace
        .stages
        .iter_mut()
        .find(|s| s.stage == stage_names::BLOCKING)
    {
        // Fold the up-front global hash-join pass into the blocking line:
        // its within-shard pairs are already in the shard counts, so only
        // the boundary pairs and its wall-clock are new.
        blocking.seconds += global_join_seconds;
        blocking.items_out += boundary_pairs.len();
    }
    trace.push(StageTrace {
        stage: stage_names::MERGE,
        seconds: merge_watch.elapsed_secs(),
        items_in: boundary_pairs.len(),
        items_out: groups.len(),
        rss_delta_bytes: None,
        arena_bytes: None,
        core_seconds: Some(merge.cleanup.seconds),
        phases: Some(merge.cleanup.phases()),
    });

    Ok(ShardedOutcome {
        outcome: MatchingOutcome {
            num_candidates,
            num_predicted: all_predicted.len(),
            pairwise,
            pre_cleanup,
            post_cleanup,
            groups,
            trace,
            blocker_runs,
            cleanup_report,
        },
        shard_traces,
        shard_sizes,
        boundary_candidates: boundary_pairs.len(),
        boundary_merges: merge.boundary_merges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{CompanyDomain, MatchingDomain, SecurityDomain};
    use crate::pipeline::OracleScorer;
    use gralmatch_datagen::{generate, GenerationConfig};
    use gralmatch_records::{Record, RecordId};
    use gralmatch_util::FxHashMap;

    fn dataset() -> gralmatch_datagen::FinancialDataset {
        let mut config = GenerationConfig::synthetic_full();
        config.num_entities = 120;
        generate(&config).unwrap()
    }

    #[test]
    fn assignment_is_deterministic_and_balancedish() {
        let data = dataset();
        let companies = data.companies.records();
        let plan = ShardPlan::new(4);
        let first = plan.assign(companies);
        assert_eq!(first, plan.assign(companies));
        assert!(first.iter().all(|&s| s < 4));
        // Every shard gets a non-trivial slice of a 120-entity dataset.
        let mut counts = [0usize; 4];
        for &s in &first {
            counts[s as usize] += 1;
        }
        assert!(
            counts.iter().all(|&c| c > companies.len() / 16),
            "{counts:?}"
        );
    }

    #[test]
    fn entity_key_keeps_groups_shard_local() {
        let data = dataset();
        let companies = data.companies.records();
        let plan = ShardPlan::new(8);
        let assignment = plan.assign(companies);
        let mut shard_of_entity: FxHashMap<u32, u32> = FxHashMap::default();
        for (record, &shard) in companies.iter().zip(&assignment) {
            let entity = record.entity().unwrap().0;
            assert_eq!(
                *shard_of_entity.entry(entity).or_insert(shard),
                shard,
                "entity {entity} split across shards"
            );
        }
    }

    #[test]
    fn source_key_splits_groups_and_merge_recovers() {
        let data = dataset();
        let securities = data.securities.records();
        let mut group_of: FxHashMap<RecordId, u32> = FxHashMap::default();
        for company in data.companies.records() {
            group_of.insert(company.id(), company.entity.unwrap().0);
        }
        let domain = SecurityDomain::new(securities, &group_of);
        let gt = domain.ground_truth().clone();
        let config = PipelineConfig::new(25, 5);
        let plan = ShardPlan::new(2).with_key(ShardKey::Source);
        let sharded = run_sharded(&domain, &OracleScorer::new(&gt), &config, &plan).unwrap();
        // Source sharding splits every multi-source group: recall must come
        // from boundary merges, so some must have happened.
        assert!(sharded.boundary_merges > 0);
        assert!(sharded.boundary_candidates > 0);
        assert!(sharded.outcome.post_cleanup.pairs.recall > 0.3);
        // μ still capped after the merge cleanup.
        assert!(sharded.outcome.groups.iter().all(|g| g.len() <= 5));
    }

    #[test]
    fn single_shard_is_the_unsharded_pipeline() {
        let data = dataset();
        let companies = data.companies.records();
        let domain = CompanyDomain::new(companies, data.securities.records());
        let gt = domain.ground_truth().clone();
        let config = PipelineConfig::new(25, 5).with_pre_cleanup(50);
        let scorer = OracleScorer::new(&gt);
        let unsharded = crate::domain::run_domain(&domain, &scorer, &config).unwrap();
        let sharded = run_sharded(&domain, &scorer, &config, &ShardPlan::new(1)).unwrap();
        assert_eq!(sharded.outcome.groups, unsharded.groups);
        assert_eq!(sharded.boundary_candidates, 0);
        assert_eq!(sharded.shard_sizes, vec![companies.len()]);
    }

    #[test]
    fn sharded_trace_rolls_up_all_stages_plus_merge() {
        let data = dataset();
        let companies = data.companies.records();
        let domain = CompanyDomain::new(companies, data.securities.records());
        let gt = domain.ground_truth().clone();
        let config = PipelineConfig::new(25, 5).with_pre_cleanup(50);
        let sharded = run_sharded(
            &domain,
            &OracleScorer::new(&gt),
            &config,
            &ShardPlan::new(4),
        )
        .unwrap();
        let stages: Vec<&str> = sharded
            .outcome
            .trace
            .stages
            .iter()
            .map(|s| s.stage)
            .collect();
        assert_eq!(
            stages,
            vec![
                stage_names::BLOCKING,
                stage_names::INFERENCE,
                stage_names::CLEANUP,
                stage_names::GROUPING,
                stage_names::MERGE
            ]
        );
        assert_eq!(sharded.shard_traces.len(), 4);
        assert_eq!(sharded.shard_sizes.iter().sum::<usize>(), companies.len());
        // Aggregate blocking processed every record exactly once.
        assert_eq!(
            sharded
                .outcome
                .trace
                .stage(stage_names::BLOCKING)
                .unwrap()
                .items_in,
            companies.len()
        );
    }
}
