//! Label-propagation group discovery — a community-detection alternative to
//! Algorithm 1.
//!
//! Asynchronous label propagation (Raghavan et al. 2007) assigns each node
//! the label most common among its neighbors until a fixpoint. On a
//! prediction graph, densely connected true groups converge to one label
//! each, while thin false-positive bridges rarely carry a majority — so the
//! label partition splits merged components *without deleting any edges*,
//! and, unlike Algorithm 1, never needs a μ. It complements
//! [`crate::adaptive`] as a second heterogeneous-group-size cleanup and is
//! compared against Algorithm 1 in the `sweeps` ablation binary.
//!
//! Determinism: node order is shuffled with a seeded RNG each round and ties
//! are broken toward the smallest label, so results are reproducible.

use gralmatch_graph::Graph;
use gralmatch_records::RecordId;
use gralmatch_util::{FxHashMap, SplitRng};

/// Configuration for label propagation.
#[derive(Debug, Clone, Copy)]
pub struct LabelPropagationConfig {
    /// Maximum sweeps over all nodes (usually converges in < 10).
    pub max_rounds: usize,
    /// RNG seed for the per-round node ordering.
    pub seed: u64,
}

impl Default for LabelPropagationConfig {
    fn default() -> Self {
        LabelPropagationConfig {
            max_rounds: 32,
            seed: 0x1a8e1,
        }
    }
}

/// Run label propagation; returns the groups (largest first, members
/// sorted), covering every node of the graph including isolated ones.
pub fn label_propagation_groups(
    graph: &Graph,
    config: &LabelPropagationConfig,
) -> Vec<Vec<RecordId>> {
    let n = graph.num_nodes();
    let mut label: Vec<u32> = (0..n as u32).collect();
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut rng = SplitRng::new(config.seed);

    for _ in 0..config.max_rounds {
        rng.shuffle(&mut order);
        let mut changed = false;
        let mut counts: FxHashMap<u32, u32> = FxHashMap::default();
        for &v in &order {
            counts.clear();
            for u in graph.neighbors(v) {
                *counts.entry(label[u as usize]).or_insert(0) += 1;
            }
            if counts.is_empty() {
                continue;
            }
            // Majority label, ties toward the smallest label id.
            let mut best_label = label[v as usize];
            let mut best_count = 0u32;
            let mut entries: Vec<(u32, u32)> = counts.iter().map(|(&l, &c)| (l, c)).collect();
            entries.sort_unstable();
            for (l, c) in entries {
                if c > best_count {
                    best_label = l;
                    best_count = c;
                }
            }
            if label[v as usize] != best_label {
                label[v as usize] = best_label;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut groups: FxHashMap<u32, Vec<RecordId>> = FxHashMap::default();
    for v in 0..n as u32 {
        groups
            .entry(label[v as usize])
            .or_default()
            .push(RecordId(v));
    }
    let mut out: Vec<Vec<RecordId>> = groups.into_values().collect();
    for group in &mut out {
        group.sort_unstable();
    }
    out.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].cmp(&b[0])));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add_clique(graph: &mut Graph, base: u32, k: u32) {
        for i in 0..k {
            for j in (i + 1)..k {
                graph.add_edge(base + i, base + j);
            }
        }
    }

    #[test]
    fn separates_bridged_cliques() {
        let mut graph = Graph::new();
        add_clique(&mut graph, 0, 6);
        add_clique(&mut graph, 6, 6);
        graph.add_edge(5, 6);
        let groups = label_propagation_groups(&graph, &LabelPropagationConfig::default());
        let sizes: Vec<usize> = groups.iter().map(|g| g.len()).collect();
        assert_eq!(sizes, vec![6, 6], "bridge must not merge the cliques");
    }

    #[test]
    fn keeps_single_clique_together() {
        let mut graph = Graph::new();
        add_clique(&mut graph, 0, 8);
        let groups = label_propagation_groups(&graph, &LabelPropagationConfig::default());
        assert_eq!(groups[0].len(), 8);
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let graph = Graph::with_nodes(4);
        let groups = label_propagation_groups(&graph, &LabelPropagationConfig::default());
        assert_eq!(groups.len(), 4);
    }

    #[test]
    fn covers_every_node_exactly_once() {
        let mut graph = Graph::new();
        add_clique(&mut graph, 0, 5);
        add_clique(&mut graph, 5, 3);
        graph.add_edge(4, 5);
        graph.ensure_node(10);
        let groups = label_propagation_groups(&graph, &LabelPropagationConfig::default());
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, 11);
        let mut seen = gralmatch_util::FxHashSet::default();
        for group in &groups {
            for &r in group {
                assert!(seen.insert(r));
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut graph = Graph::new();
        add_clique(&mut graph, 0, 6);
        add_clique(&mut graph, 6, 4);
        graph.add_edge(5, 6);
        let a = label_propagation_groups(&graph, &LabelPropagationConfig::default());
        let b = label_propagation_groups(&graph, &LabelPropagationConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn heterogeneous_group_sizes_without_mu() {
        use crate::metrics::group_metrics;
        use gralmatch_records::{EntityId, GroundTruth};
        // True groups of size 9 and 4, one false bridge — no μ needed.
        let gt = GroundTruth::from_assignments(
            (0..9)
                .map(|r| (RecordId(r), EntityId(1)))
                .chain((9..13).map(|r| (RecordId(r), EntityId(2)))),
        );
        let mut graph = Graph::new();
        add_clique(&mut graph, 0, 9);
        add_clique(&mut graph, 9, 4);
        graph.add_edge(8, 9);
        let groups = label_propagation_groups(&graph, &LabelPropagationConfig::default());
        let metrics = group_metrics(&groups, &gt);
        assert_eq!(metrics.pairs.precision, 1.0);
        assert_eq!(metrics.pairs.recall, 1.0);
    }
}
