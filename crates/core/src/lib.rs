//! GraLMatch core: entity group matching with graph cleanup.
//!
//! The paper's primary contribution, end to end (Figure 1), as a
//! **domain-generic staged execution engine**: a
//! [`MatchingDomain`] (companies, securities,
//! products, or any future workload) plugs its records, ground truth, and
//! declarative blocking-strategy list into the
//! [`StagePipeline`], which drives blocking →
//! pairwise matching → **GraLMatch Graph Cleanup** (pre-cleanup +
//! Algorithm 1: minimum edge cuts above γ, max-betweenness edge removal
//! above μ) → entity groups, with per-stage diagnostics in a
//! [`PipelineTrace`] and the three-stage evaluation
//! protocol (pairwise / pre-cleanup / post-cleanup) with Cluster Purity.
//!
//! * [`domain`] — the `MatchingDomain` trait + the three paper domains,
//! * [`engine`] — the long-lived `MatchEngine`: bootstrap / apply-batch /
//!   group-lookup lifecycle, the single production execution path,
//! * [`host`] — the multi-tenant `EngineHost`: named, domain-erased
//!   `TenantEngine`s with per-tenant model routing and hot model swap,
//! * [`stage`] — the `Stage` trait, context, and the legacy staged lineup
//!   (kept as the equivalence-test oracle),
//! * [`shard`] — the `ShardPlan` partition, the dirty-component
//!   `MergeStage`, and the legacy sharded oracle runner,
//! * [`incremental`] — upsert batches against a persisted `PipelineState`,
//! * [`persist`] — crash-safe binary persistence: checksummed
//!   `PipelineState` snapshots, the append-only `UpsertBatch` WAL, and
//!   snapshot+replay recovery,
//! * [`snapshot`] — immutable epoch-published `GroupSnapshot` for
//!   lock-free concurrent group lookups,
//! * [`trace`] — unified per-stage wall-clock/throughput/memory reporting,
//! * [`groups`] — prediction graph, components, closure counting,
//! * [`cleanup`] — Algorithm 1 + pre-cleanup + sensitivity variants,
//! * [`metrics`] — pairwise & group metrics, Cluster Purity,
//! * [`pipeline`] — config, outcome, oracle scorers.

pub mod adaptive;
pub mod calibration;
pub mod cleanup;
pub mod consolidate;
pub mod diagnostics;
pub mod domain;
pub mod engine;
pub mod groups;
pub mod host;
pub mod incremental;
pub mod label_propagation;
pub mod metrics;
pub mod persist;
pub mod pipeline;
pub mod shard;
pub mod snapshot;
pub mod stage;
pub mod trace;

pub use adaptive::{adaptive_cleanup, AdaptiveConfig};
pub use calibration::{
    average_precision, best_f1_threshold, precision_recall_curve, threshold_for_precision, PrPoint,
};
pub use cleanup::{
    graph_cleanup, graph_cleanup_with_index, graph_cleanup_with_pool, pre_cleanup,
    pre_cleanup_edges, reference_graph_cleanup, CleanupConfig, CleanupReport, CleanupVariant,
};
pub use consolidate::{consolidate_companies, consolidate_company_group, GoldenCompany};
pub use diagnostics::{diagnose, GraphDiagnostics};
pub use domain::{
    blocked_candidates, run_domain, run_domain_staged, run_domain_with_matcher, CompanyDomain,
    MatchingDomain, ProductDomain, SecurityDomain,
};
pub use engine::{
    CompiledScorerProvider, EngineStats, FixedScorerProvider, GroupIndex, MatchEngine,
    ScorerProvider,
};
pub use groups::{count_group_pairs, entity_groups, group_assignment, prediction_graph};
pub use host::{
    model_fingerprint, scorer_provider, EngineHost, EngineTenant, HostError, TenantEngine,
    HEURISTIC_JACCARD,
};
pub use incremental::{churn_window, PipelineState, UpsertBatch, UpsertOutcome};
pub use label_propagation::{label_propagation_groups, LabelPropagationConfig};
pub use metrics::{group_metrics, pairwise_metrics, GroupMetrics, PairMetrics};
pub use persist::{
    decode_batch, decode_state, encode_batch, encode_state, recover_engine, CheckpointInfo,
    CheckpointPolicy, RecoveryReport, StateSnapshot, WalFrame, WalReplay, WalWriter,
};
pub use pipeline::{
    run_with_candidates, MatchingOutcome, OracleMatcher, OracleScorer, PipelineConfig,
};
pub use shard::{run_sharded, MergeResult, MergeStage, ShardKey, ShardPlan, ShardedOutcome};
pub use snapshot::GroupSnapshot;
pub use stage::{
    BlockingStage, CleanupStage, GroupingStage, InferenceStage, Stage, StageContext, StagePipeline,
    StageStats,
};
pub use trace::{stage_names, CleanupPhases, PipelineTrace, StageTrace};
