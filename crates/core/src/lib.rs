//! GraLMatch core: entity group matching with graph cleanup.
//!
//! The paper's primary contribution, end to end (Figure 1):
//! blocking → pairwise matching → **GraLMatch Graph Cleanup** (pre-cleanup +
//! Algorithm 1: minimum edge cuts above γ, max-betweenness edge removal
//! above μ) → entity groups, with the three-stage evaluation protocol
//! (pairwise / pre-cleanup / post-cleanup) and the Cluster Purity metric.
//!
//! * [`groups`] — prediction graph, components, closure counting,
//! * [`cleanup`] — Algorithm 1 + pre-cleanup + sensitivity variants,
//! * [`metrics`] — pairwise & group metrics, Cluster Purity,
//! * [`pipeline`] — per-dataset blocking recipes and the full pipeline.

pub mod adaptive;
pub mod calibration;
pub mod cleanup;
pub mod consolidate;
pub mod diagnostics;
pub mod groups;
pub mod label_propagation;
pub mod metrics;
pub mod pipeline;

pub use adaptive::{adaptive_cleanup, AdaptiveConfig};
pub use calibration::{
    average_precision, best_f1_threshold, precision_recall_curve, threshold_for_precision,
    PrPoint,
};
pub use consolidate::{consolidate_companies, consolidate_company_group, GoldenCompany};
pub use diagnostics::{diagnose, GraphDiagnostics};
pub use label_propagation::{label_propagation_groups, LabelPropagationConfig};
pub use cleanup::{graph_cleanup, pre_cleanup, CleanupConfig, CleanupReport, CleanupVariant};
pub use groups::{count_group_pairs, entity_groups, group_assignment, prediction_graph};
pub use metrics::{group_metrics, pairwise_metrics, GroupMetrics, PairMetrics};
pub use pipeline::{
    company_candidates, product_candidates, run_pipeline, run_pipeline_with_oracle,
    security_candidates, MatchingOutcome, OracleMatcher, PipelineConfig,
};
