//! Density-adaptive graph cleanup — the extension the paper's Section 6.2.3
//! calls for.
//!
//! Algorithm 1 assumes at most one record per data source (μ = number of
//! sources). On benchmarks with heterogeneous group sizes (WDC Products)
//! that assumption "is not ideal … other Graph Cleanup methods able to
//! produce groups of heterogeneous sizes should be considered". This module
//! implements one: instead of splitting every component larger than a fixed
//! μ, it splits components that are *sparse*.
//!
//! Rationale: a correctly matched group is (close to) a complete graph —
//! edge density |E| / (|V|·(|V|−1)/2) near 1 — while two groups joined by a
//! few false positives have density ≈ ½ or lower. Removing the highest
//! betweenness edge of any component whose density falls below a threshold
//! severs false bridges but leaves large dense (true) groups intact,
//! whatever their size.

use crate::cleanup::CleanupReport;
use gralmatch_graph::{betweenness::max_betweenness_edge, connected_components, Graph, Subgraph};
use gralmatch_util::Stopwatch;

/// Configuration for the adaptive cleanup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Components with edge density below this are split (0.6 keeps
    /// near-complete groups and severs half-dense merged pairs).
    pub min_density: f64,
    /// Safety bound on edge removals per original component.
    pub max_rounds_per_component: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            min_density: 0.6,
            max_rounds_per_component: 256,
        }
    }
}

fn density(num_nodes: usize, num_edges: usize) -> f64 {
    if num_nodes < 2 {
        return 1.0;
    }
    let possible = num_nodes as f64 * (num_nodes as f64 - 1.0) / 2.0;
    num_edges as f64 / possible
}

/// Run the density-adaptive cleanup in place.
pub fn adaptive_cleanup(graph: &mut Graph, config: &AdaptiveConfig) -> CleanupReport {
    let stopwatch = Stopwatch::start();
    let mut report = CleanupReport::default();

    let mut queue: Vec<(Vec<u32>, usize)> = connected_components(graph)
        .into_iter()
        .filter(|component| component.len() >= 3)
        .map(|component| (component, 0usize))
        .collect();

    while let Some((component, rounds)) = queue.pop() {
        if component.len() < 3 || rounds >= config.max_rounds_per_component {
            continue;
        }
        let sub = Subgraph::induce(graph, &component);
        if density(sub.num_nodes(), sub.num_edges()) >= config.min_density {
            continue; // dense enough: accept as a group, any size
        }
        let Some(((a, b), _)) = max_betweenness_edge(&sub) else {
            continue;
        };
        if graph.remove_edge(sub.locals[a as usize], sub.locals[b as usize]) {
            report.betweenness_removed += 1;
            report.betweenness_rounds += 1;
        }
        // Recompute locally and re-enqueue the (possibly split) parts.
        let mut local = Graph::with_nodes(sub.num_nodes());
        for &(x, y) in &sub.edges {
            local.add_edge(x, y);
        }
        local.remove_edge(a, b);
        for part in connected_components(&local) {
            if part.len() >= 3 {
                let originals: Vec<u32> = part.iter().map(|&i| sub.locals[i as usize]).collect();
                queue.push((originals, rounds + 1));
            }
        }
    }

    report.seconds = stopwatch.elapsed_secs();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::entity_groups;

    /// A k-clique on nodes `base..base+k`.
    fn add_clique(graph: &mut Graph, base: u32, k: u32) {
        for i in 0..k {
            for j in (i + 1)..k {
                graph.add_edge(base + i, base + j);
            }
        }
    }

    #[test]
    fn keeps_large_dense_groups() {
        // A 10-clique: density 1.0 — a fixed μ=5 cleanup would shred it,
        // the adaptive cleanup must keep it whole.
        let mut graph = Graph::new();
        add_clique(&mut graph, 0, 10);
        let report = adaptive_cleanup(&mut graph, &AdaptiveConfig::default());
        assert_eq!(report.betweenness_removed, 0);
        assert_eq!(entity_groups(&graph)[0].len(), 10);
    }

    #[test]
    fn splits_bridged_cliques() {
        // Two 6-cliques + 1 bridge: density (15+15+1)/66 = 0.47 < 0.6.
        let mut graph = Graph::new();
        add_clique(&mut graph, 0, 6);
        add_clique(&mut graph, 6, 6);
        graph.add_edge(5, 6);
        let report = adaptive_cleanup(&mut graph, &AdaptiveConfig::default());
        assert_eq!(report.betweenness_removed, 1);
        let groups = entity_groups(&graph);
        assert_eq!(groups[0].len(), 6);
        assert_eq!(groups[1].len(), 6);
    }

    #[test]
    fn heterogeneous_sizes_survive() {
        // Groups of size 2, 4, and 9 (all cliques) + bridges between them.
        let mut graph = Graph::new();
        add_clique(&mut graph, 0, 2);
        add_clique(&mut graph, 2, 4);
        add_clique(&mut graph, 6, 9);
        graph.add_edge(1, 2);
        graph.add_edge(5, 6);
        adaptive_cleanup(&mut graph, &AdaptiveConfig::default());
        let mut sizes: Vec<usize> = entity_groups(&graph)
            .iter()
            .map(|g| g.len())
            .filter(|&s| s > 1)
            .collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 4, 9], "all true group sizes preserved");
    }

    #[test]
    fn sparse_chain_fully_decomposed() {
        // A path of 8 nodes is maximally sparse: it gets cut down to
        // sub-density-threshold fragments (pairs/triples).
        let mut graph = Graph::from_edges((0..7u32).map(|i| (i, i + 1)));
        adaptive_cleanup(&mut graph, &AdaptiveConfig::default());
        for group in entity_groups(&graph) {
            assert!(group.len() <= 3);
        }
    }

    #[test]
    fn round_bound_terminates() {
        let mut graph = Graph::new();
        add_clique(&mut graph, 0, 4);
        add_clique(&mut graph, 4, 4);
        graph.add_edge(3, 4);
        let config = AdaptiveConfig {
            min_density: 0.99, // nearly everything is "sparse"
            max_rounds_per_component: 2,
        };
        let report = adaptive_cleanup(&mut graph, &config);
        assert!(report.betweenness_removed <= 8, "bounded by rounds");
    }

    #[test]
    fn beats_fixed_mu_on_heterogeneous_groups() {
        use crate::cleanup::{graph_cleanup, CleanupConfig};
        use crate::metrics::group_metrics;
        use gralmatch_records::{EntityId, GroundTruth, RecordId};

        // Ground truth: a 9-group and a 4-group, fully matched pairwise,
        // plus one false bridge. Fixed μ=5 must split the 9-group (recall
        // loss); adaptive keeps it.
        let gt = GroundTruth::from_assignments(
            (0..9)
                .map(|r| (RecordId(r), EntityId(1)))
                .chain((9..13).map(|r| (RecordId(r), EntityId(2)))),
        );
        let build = || {
            let mut graph = Graph::new();
            add_clique(&mut graph, 0, 9);
            add_clique(&mut graph, 9, 4);
            graph.add_edge(8, 9);
            graph
        };

        let mut fixed = build();
        graph_cleanup(&mut fixed, &CleanupConfig::new(10, 5));
        let fixed_metrics = group_metrics(&entity_groups(&fixed), &gt);

        let mut adaptive = build();
        adaptive_cleanup(&mut adaptive, &AdaptiveConfig::default());
        let adaptive_metrics = group_metrics(&entity_groups(&adaptive), &gt);

        assert!(
            adaptive_metrics.pairs.recall > fixed_metrics.pairs.recall,
            "adaptive {:?} must beat fixed-mu {:?} on recall",
            adaptive_metrics.pairs,
            fixed_metrics.pairs
        );
        assert_eq!(adaptive_metrics.pairs.precision, 1.0);
    }
}
