//! Prediction-graph diagnostics.
//!
//! Operators of a matching pipeline need to see *why* a graph cleanup is
//! about to do what it does: how big the components are, how dense, how
//! many false-positive-looking bridges and drift-suspect cut vertices they
//! contain. This module condenses the graph substrate's analyses into one
//! report (printed by the harness, usable as a pre-flight check before
//! committing to a cleanup configuration).

use gralmatch_graph::{
    articulation_points, connected_components, degeneracy, find_bridges, Graph, Subgraph,
};

/// Summary of one prediction graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphDiagnostics {
    /// Total nodes (records).
    pub num_nodes: usize,
    /// Total predicted edges.
    pub num_edges: usize,
    /// Number of connected components (including singletons).
    pub num_components: usize,
    /// Size of the largest component.
    pub largest_component: usize,
    /// Components larger than the inspection threshold.
    pub oversized_components: usize,
    /// Bridges across all inspected components (min cuts of weight 1 — the
    /// canonical false-positive signature).
    pub bridges: usize,
    /// Articulation points across inspected components (records that
    /// single-handedly connect groups — drift suspects like record #21).
    pub articulation_points: usize,
    /// Maximum core number seen (high degeneracy = solid clique-like
    /// groups; low = straggly chains).
    pub max_degeneracy: u32,
    /// Mean edge density of components with >= 3 nodes.
    pub mean_density: f64,
}

/// Analyze a prediction graph. `oversized_threshold` marks the component
/// size the cleanup would consider problematic (γ in Algorithm 1 terms).
pub fn diagnose(graph: &Graph, oversized_threshold: usize) -> GraphDiagnostics {
    let components = connected_components(graph);
    let mut diagnostics = GraphDiagnostics {
        num_nodes: graph.num_nodes(),
        num_edges: graph.num_edges(),
        num_components: components.len(),
        largest_component: components.first().map_or(0, |c| c.len()),
        oversized_components: 0,
        bridges: 0,
        articulation_points: 0,
        max_degeneracy: 0,
        mean_density: 0.0,
    };
    let mut density_sum = 0.0;
    let mut density_count = 0usize;
    for component in &components {
        if component.len() < 2 {
            continue;
        }
        if component.len() > oversized_threshold {
            diagnostics.oversized_components += 1;
        }
        let sub = Subgraph::induce(graph, component);
        diagnostics.bridges += find_bridges(&sub).len();
        diagnostics.articulation_points += articulation_points(&sub).len();
        diagnostics.max_degeneracy = diagnostics.max_degeneracy.max(degeneracy(&sub));
        if component.len() >= 3 {
            let possible = component.len() as f64 * (component.len() as f64 - 1.0) / 2.0;
            density_sum += sub.num_edges() as f64 / possible;
            density_count += 1;
        }
    }
    if density_count > 0 {
        diagnostics.mean_density = density_sum / density_count as f64;
    }
    diagnostics
}

impl GraphDiagnostics {
    /// Human-readable multi-line rendering.
    pub fn render(&self) -> String {
        format!(
            "prediction graph: {} nodes, {} edges, {} components (largest {})\n\
             oversized (> threshold): {} | bridges: {} | cut vertices: {}\n\
             max degeneracy: {} | mean density (3+ components): {:.2}",
            self.num_nodes,
            self.num_edges,
            self.num_components,
            self.largest_component,
            self.oversized_components,
            self.bridges,
            self.articulation_points,
            self.max_degeneracy,
            self.mean_density,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add_clique(graph: &mut Graph, base: u32, k: u32) {
        for i in 0..k {
            for j in (i + 1)..k {
                graph.add_edge(base + i, base + j);
            }
        }
    }

    #[test]
    fn diagnoses_bridged_cliques() {
        let mut graph = Graph::new();
        add_clique(&mut graph, 0, 5);
        add_clique(&mut graph, 5, 5);
        graph.add_edge(4, 5); // bridge
        let report = diagnose(&graph, 5);
        assert_eq!(report.num_components, 1);
        assert_eq!(report.largest_component, 10);
        assert_eq!(report.oversized_components, 1);
        assert_eq!(report.bridges, 1);
        assert_eq!(report.articulation_points, 2, "both bridge endpoints");
        assert_eq!(report.max_degeneracy, 4);
        assert!(report.mean_density < 1.0);
    }

    #[test]
    fn clean_groups_have_no_bridges() {
        let mut graph = Graph::new();
        add_clique(&mut graph, 0, 4);
        add_clique(&mut graph, 4, 3);
        let report = diagnose(&graph, 5);
        assert_eq!(report.bridges, 0);
        assert_eq!(report.articulation_points, 0);
        assert!((report.mean_density - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph() {
        let report = diagnose(&Graph::new(), 5);
        assert_eq!(report.num_nodes, 0);
        assert_eq!(report.mean_density, 0.0);
        assert!(!report.render().is_empty());
    }

    #[test]
    fn singletons_counted_as_components() {
        let graph = Graph::with_nodes(7);
        let report = diagnose(&graph, 5);
        assert_eq!(report.num_components, 7);
        assert_eq!(report.largest_component, 1);
    }
}
