//! Decision-threshold calibration: precision–recall curves over scored
//! pairs.
//!
//! The paper's central finding is that *precision* is the deciding factor
//! for entity group matching — which makes the matcher's operating point a
//! first-class knob. This module computes the full precision/recall curve
//! from scored candidate pairs and selects thresholds by target precision,
//! giving the pipeline a principled way to trade recall for the precision
//! the cleanup needs.

use gralmatch_lm::ScoredPair;
use gralmatch_records::GroundTruth;

/// One point of the precision–recall curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Score threshold producing this point (pairs with score >= threshold
    /// are predicted matches).
    pub threshold: f32,
    /// Precision at the threshold.
    pub precision: f64,
    /// Recall at the threshold (denominator: all true pairs of `gt`).
    pub recall: f64,
    /// F1 at the threshold.
    pub f1: f64,
}

/// Compute the precision–recall curve of scored pairs against ground truth.
/// Points are ordered by decreasing threshold; one point per distinct score.
pub fn precision_recall_curve(scored: &[ScoredPair], gt: &GroundTruth) -> Vec<PrPoint> {
    let mut sorted: Vec<(f32, bool)> = scored
        .iter()
        .map(|s| (s.score, gt.is_match_pair(s.pair)))
        .collect();
    sorted.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("scores are finite"));
    let total_true = gt.num_true_pairs() as f64;

    let mut curve = Vec::new();
    let mut tp = 0u64;
    let mut fp = 0u64;
    let mut i = 0usize;
    while i < sorted.len() {
        let threshold = sorted[i].0;
        // Consume the run of equal scores (the curve is defined per
        // distinct threshold).
        while i < sorted.len() && sorted[i].0 == threshold {
            if sorted[i].1 {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        let precision = tp as f64 / (tp + fp) as f64;
        let recall = if total_true == 0.0 {
            0.0
        } else {
            tp as f64 / total_true
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        curve.push(PrPoint {
            threshold,
            precision,
            recall,
            f1,
        });
    }
    curve
}

/// The lowest threshold whose precision is at least `min_precision`
/// (maximizing recall subject to the precision constraint). `None` when no
/// threshold achieves it.
pub fn threshold_for_precision(curve: &[PrPoint], min_precision: f64) -> Option<PrPoint> {
    curve
        .iter()
        .copied()
        .rfind(|point| point.precision >= min_precision)
}

/// The threshold maximizing F1.
pub fn best_f1_threshold(curve: &[PrPoint]) -> Option<PrPoint> {
    curve
        .iter()
        .copied()
        .max_by(|a, b| a.f1.partial_cmp(&b.f1).expect("finite"))
}

/// Area under the precision–recall curve (step-wise, right-continuous).
pub fn average_precision(curve: &[PrPoint]) -> f64 {
    let mut area = 0.0;
    let mut prev_recall = 0.0;
    for point in curve {
        area += (point.recall - prev_recall).max(0.0) * point.precision;
        prev_recall = point.recall;
    }
    area
}

#[cfg(test)]
mod tests {
    use super::*;
    use gralmatch_records::{EntityId, RecordId, RecordPair};

    fn gt_two_pairs() -> GroundTruth {
        GroundTruth::from_assignments([
            (RecordId(0), EntityId(1)),
            (RecordId(1), EntityId(1)),
            (RecordId(2), EntityId(2)),
            (RecordId(3), EntityId(2)),
            (RecordId(4), EntityId(3)),
        ])
    }

    fn scored(a: u32, b: u32, score: f32) -> ScoredPair {
        ScoredPair {
            pair: RecordPair::new(RecordId(a), RecordId(b)),
            score,
        }
    }

    #[test]
    fn perfect_ranking_curve() {
        let gt = gt_two_pairs();
        let pairs = vec![
            scored(0, 1, 0.9), // true
            scored(2, 3, 0.8), // true
            scored(0, 4, 0.2), // false
        ];
        let curve = precision_recall_curve(&pairs, &gt);
        assert_eq!(curve.len(), 3);
        assert_eq!(curve[0].precision, 1.0);
        assert_eq!(curve[0].recall, 0.5);
        assert_eq!(curve[1].precision, 1.0);
        assert_eq!(curve[1].recall, 1.0);
        assert!(curve[2].precision < 1.0);
        assert!((average_precision(&curve) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn threshold_for_precision_picks_max_recall() {
        let gt = gt_two_pairs();
        let pairs = vec![
            scored(0, 1, 0.9),
            scored(0, 4, 0.7), // false positive sneaks in early
            scored(2, 3, 0.5),
        ];
        let curve = precision_recall_curve(&pairs, &gt);
        let point = threshold_for_precision(&curve, 0.99).unwrap();
        assert_eq!(point.threshold, 0.9);
        assert_eq!(point.recall, 0.5);
        assert!(threshold_for_precision(&curve, 2.0).is_none());
    }

    #[test]
    fn best_f1_found() {
        let gt = gt_two_pairs();
        let pairs = vec![scored(0, 1, 0.9), scored(2, 3, 0.8), scored(0, 4, 0.2)];
        let curve = precision_recall_curve(&pairs, &gt);
        let best = best_f1_threshold(&curve).unwrap();
        assert_eq!(best.recall, 1.0);
        assert_eq!(best.precision, 1.0);
    }

    #[test]
    fn tied_scores_form_one_point() {
        let gt = gt_two_pairs();
        let pairs = vec![scored(0, 1, 0.5), scored(0, 4, 0.5)];
        let curve = precision_recall_curve(&pairs, &gt);
        assert_eq!(curve.len(), 1);
        assert_eq!(curve[0].precision, 0.5);
    }

    #[test]
    fn empty_inputs() {
        let gt = gt_two_pairs();
        assert!(precision_recall_curve(&[], &gt).is_empty());
        assert_eq!(average_precision(&[]), 0.0);
        assert!(best_f1_threshold(&[]).is_none());
    }
}
