//! The domain-generic staged execution engine (paper Figure 1).
//!
//! A pipeline run is an ordered list of [`Stage`]s driven over a shared
//! [`StageContext`]: each stage consumes upstream artifacts from the
//! context (candidate set, predictions, prediction graph) and deposits its
//! own, while the engine records wall-clock, item counts, and resident-set
//! deltas into a [`PipelineTrace`]. The
//! standard lineup is
//!
//! ```text
//! BlockingStage<D> → InferenceStage → CleanupStage → GroupingStage
//! ```
//!
//! where `D` is any [`MatchingDomain`] —
//! the only domain-aware stage is blocking; everything downstream operates
//! on ids. Callers with precomputed candidates (streaming upserts, cached
//! blockings, the sharded pipeline's per-shard runs) seed
//! [`StageContext::candidates`] and run [`StagePipeline::post_blocking`]
//! instead.

use crate::cleanup::{graph_cleanup_with_pool, pre_cleanup, CleanupReport};
use crate::domain::MatchingDomain;
use crate::groups::{entity_groups, prediction_graph};
use crate::metrics::{group_metrics, pairwise_metrics, GroupMetrics, PairMetrics};
use crate::pipeline::PipelineConfig;
use crate::trace::{stage_names, CleanupPhases, PipelineTrace, StageTrace};
use gralmatch_blocking::{
    run_blockers_traced, text_only_provenance, BlockerRun, BlockingContext, CandidateSet,
};
use gralmatch_graph::Graph;
use gralmatch_lm::{predict_positive_with, PairScorer};
use gralmatch_records::{GroundTruth, RecordId, RecordPair};
use gralmatch_util::{current_rss_bytes, Error, Stopwatch, WorkerPool};
use std::borrow::Cow;

/// Item counts a stage reports for its trace entry.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageStats {
    /// Items the stage consumed.
    pub items_in: usize,
    /// Items the stage produced.
    pub items_out: usize,
    /// Core-work seconds, when distinct from the full stage wall-clock
    /// (see [`StageTrace::core_seconds`](crate::trace::StageTrace)).
    pub core_seconds: Option<f64>,
    /// Scorer-owned compiled-arena bytes (inference stages with a
    /// compiled scorer; see [`PairScorer::memory_bytes`]).
    pub arena_bytes: Option<usize>,
    /// Per-phase cleanup timing split (cleanup-bearing stages only).
    pub phases: Option<CleanupPhases>,
}

/// Shared state threaded through the stages of one pipeline run.
pub struct StageContext<'a> {
    /// Number of records in the matched dataset (dense-id invariant).
    pub num_records: usize,
    /// Ground truth for the three-stage evaluation.
    pub gt: &'a GroundTruth,
    /// The pairwise decision procedure (trained matcher, heuristic, oracle).
    pub scorer: &'a dyn PairScorer,
    /// Pipeline knobs.
    pub config: &'a PipelineConfig,
    /// Worker pool shared by all parallel steps of this run; sized lazily
    /// from the first parallel workload (see [`StageContext::pool_for`]).
    pub pool: Option<WorkerPool>,
    /// Blocking output (provenance-tagged candidate pairs). Borrowed when
    /// the caller seeded a precomputed set (no copy), owned when produced
    /// by the blocking stage.
    pub candidates: Option<Cow<'a, CandidateSet>>,
    /// Per-recipe blocking diagnostics (one entry per recipe, zero-candidate
    /// recipes included — trace shapes are stable across runs). Empty when
    /// the caller seeded precomputed candidates.
    pub blocker_runs: Vec<BlockerRun>,
    /// Number of distinct candidate pairs (survives candidate consumption).
    pub num_candidates: usize,
    /// Positively predicted pairs.
    pub predicted: Option<Vec<RecordPair>>,
    /// Stage 1 metrics: pairwise on blocked pairs.
    pub pairwise: Option<PairMetrics>,
    /// The (progressively cleaned) prediction graph.
    pub graph: Option<Graph>,
    /// Stage 2 metrics: closure of the raw prediction graph.
    pub pre_cleanup: Option<GroupMetrics>,
    /// What the cleanup removed.
    pub cleanup_report: CleanupReport,
    /// Final entity groups.
    pub groups: Option<Vec<Vec<RecordId>>>,
    /// Stage 3 metrics: closure of the cleaned components.
    pub post_cleanup: Option<GroupMetrics>,
}

impl<'a> StageContext<'a> {
    /// Fresh context for one run.
    pub fn new(
        num_records: usize,
        gt: &'a GroundTruth,
        scorer: &'a dyn PairScorer,
        config: &'a PipelineConfig,
    ) -> Self {
        StageContext {
            num_records,
            gt,
            scorer,
            config,
            pool: None,
            candidates: None,
            blocker_runs: Vec::new(),
            num_candidates: 0,
            predicted: None,
            pairwise: None,
            graph: None,
            pre_cleanup: None,
            cleanup_report: CleanupReport::default(),
            groups: None,
            post_cleanup: None,
        }
    }

    /// The run's shared worker pool, sized by the configured
    /// [`Parallelism`](gralmatch_util::Parallelism) for `num_items`.
    ///
    /// The pool is shared across stages and only ever *grows*: a later,
    /// larger workload upgrades the worker count, while a small workload
    /// after a large one keeps the existing pool. This prevents an early
    /// small stage (e.g. blocking over few records) from locking the whole
    /// run into sequential execution under `Parallelism::Auto`.
    pub fn pool_for(&mut self, num_items: usize) -> WorkerPool {
        let resolved = self.config.parallelism.pool_for(num_items);
        let pool = match self.pool {
            Some(existing) if existing.workers() >= resolved.workers() => existing,
            _ => resolved,
        };
        self.pool = Some(pool);
        pool
    }

    fn missing(stage: &'static str, what: &str) -> Error {
        Error::Pipeline {
            stage,
            message: format!("missing upstream artifact: {what}"),
        }
    }
}

/// One step of the execution engine.
pub trait Stage {
    /// Stage name recorded in the trace.
    fn name(&self) -> &'static str;

    /// Execute over the shared context.
    fn run(&self, ctx: &mut StageContext<'_>) -> Result<StageStats, Error>;
}

/// Candidate generation: folds the domain's declarative
/// [`Blocker`](gralmatch_blocking::Blocker) list into a provenance-tagged candidate
/// set. Independent recipes run concurrently on the run's shared worker
/// pool, and parallel blockers (token overlap's per-record counting) scale
/// through the same pool.
pub struct BlockingStage<'d, D: MatchingDomain> {
    domain: &'d D,
}

impl<'d, D: MatchingDomain> BlockingStage<'d, D> {
    /// Blocking for the given domain.
    pub fn new(domain: &'d D) -> Self {
        BlockingStage { domain }
    }
}

impl<D: MatchingDomain> Stage for BlockingStage<'_, D> {
    fn name(&self) -> &'static str {
        stage_names::BLOCKING
    }

    fn run(&self, ctx: &mut StageContext<'_>) -> Result<StageStats, Error> {
        let records = self.domain.records();
        let strategies = self.domain.blocking_strategies();
        let pool = ctx.pool_for(records.len());
        let (candidates, runs) =
            run_blockers_traced(records, &strategies, &BlockingContext::with_pool(pool));
        ctx.blocker_runs = runs;
        ctx.num_candidates = candidates.len();
        ctx.candidates = Some(Cow::Owned(candidates));
        Ok(StageStats {
            items_in: records.len(),
            items_out: ctx.num_candidates,
            core_seconds: None,
            arena_bytes: None,
            phases: None,
        })
    }
}

/// Pairwise matching: scores every candidate pair on the shared worker
/// pool and keeps positive predictions, recording stage 1 metrics.
#[derive(Debug, Clone, Copy, Default)]
pub struct InferenceStage;

impl Stage for InferenceStage {
    fn name(&self) -> &'static str {
        stage_names::INFERENCE
    }

    fn run(&self, ctx: &mut StageContext<'_>) -> Result<StageStats, Error> {
        let candidates = ctx
            .candidates
            .as_ref()
            .ok_or_else(|| StageContext::missing(self.name(), "candidate set"))?;
        let pairs = candidates.pairs_sorted();
        ctx.num_candidates = pairs.len();
        let pool = ctx.pool_for(pairs.len());
        // Core timing covers scoring only (not the candidate sort above or
        // the metrics pass below), matching the paper tables' inference
        // time column.
        let scoring = Stopwatch::start();
        let predicted = predict_positive_with(ctx.scorer, &pairs, &pool);
        let scoring_seconds = scoring.elapsed_secs();
        ctx.pairwise = Some(pairwise_metrics(&predicted, ctx.gt));
        let stats = StageStats {
            items_in: pairs.len(),
            items_out: predicted.len(),
            core_seconds: Some(scoring_seconds),
            arena_bytes: ctx.scorer.memory_bytes(),
            phases: None,
        };
        ctx.predicted = Some(predicted);
        Ok(stats)
    }
}

/// GraLMatch Graph Cleanup: builds the prediction graph, records the
/// pre-cleanup (stage 2) metrics over its transitive closure, then applies
/// the Section 4.2.1 pre-cleanup and Algorithm 1.
#[derive(Debug, Clone, Copy, Default)]
pub struct CleanupStage;

impl Stage for CleanupStage {
    fn name(&self) -> &'static str {
        stage_names::CLEANUP
    }

    fn run(&self, ctx: &mut StageContext<'_>) -> Result<StageStats, Error> {
        let predicted = ctx
            .predicted
            .as_ref()
            .ok_or_else(|| StageContext::missing(self.name(), "predicted pairs"))?;
        let mut graph = prediction_graph(ctx.num_records, predicted);
        let edges_before = graph.num_edges();
        ctx.pre_cleanup = Some(group_metrics(&entity_groups(&graph), ctx.gt));

        let mut report = CleanupReport::default();
        let cleanup_work = Stopwatch::start();
        if let Some(threshold) = ctx.config.cleanup.pre_cleanup_threshold {
            // Only text-sourced edges are removable: a pair also proposed by
            // an identifier blocking keeps its edge (Section 4.2.1).
            let candidates = ctx
                .candidates
                .as_ref()
                .ok_or_else(|| StageContext::missing(self.name(), "candidate provenance"))?;
            let pre_watch = Stopwatch::start();
            report.pre_cleanup_removed = pre_cleanup(&mut graph, threshold, |a, b| {
                text_only_provenance(
                    candidates.provenance(RecordPair::new(RecordId(a), RecordId(b))),
                )
            });
            report.pre_cleanup_seconds = pre_watch.elapsed_secs();
        }
        let pool = ctx.pool_for(graph.num_edges());
        report.merge(&graph_cleanup_with_pool(
            &mut graph,
            &ctx.config.cleanup,
            &pool,
        ));
        let cleanup_seconds = cleanup_work.elapsed_secs();
        report.seconds = cleanup_seconds;
        let phases = report.phases();
        ctx.cleanup_report = report;

        let edges_after = graph.num_edges();
        ctx.graph = Some(graph);
        Ok(StageStats {
            items_in: edges_before,
            items_out: edges_after,
            // Pre-cleanup + Algorithm 1, excluding graph construction and
            // the pre-cleanup metrics evaluation.
            core_seconds: Some(cleanup_seconds),
            arena_bytes: None,
            phases: Some(phases),
        })
    }
}

/// Entity groups: connected components of the cleaned graph plus the
/// stage 3 (post-cleanup) metrics.
#[derive(Debug, Clone, Copy, Default)]
pub struct GroupingStage;

impl Stage for GroupingStage {
    fn name(&self) -> &'static str {
        stage_names::GROUPING
    }

    fn run(&self, ctx: &mut StageContext<'_>) -> Result<StageStats, Error> {
        let graph = ctx
            .graph
            .as_ref()
            .ok_or_else(|| StageContext::missing(self.name(), "cleaned prediction graph"))?;
        let groups = entity_groups(graph);
        ctx.post_cleanup = Some(group_metrics(&groups, ctx.gt));
        let stats = StageStats {
            items_in: graph.num_edges(),
            items_out: groups.len(),
            core_seconds: None,
            arena_bytes: None,
            phases: None,
        };
        ctx.groups = Some(groups);
        Ok(stats)
    }
}

/// An ordered stage list, executed with uniform tracing.
#[derive(Default)]
pub struct StagePipeline<'a> {
    stages: Vec<Box<dyn Stage + 'a>>,
}

impl<'a> StagePipeline<'a> {
    /// Empty pipeline.
    pub fn new() -> Self {
        StagePipeline { stages: Vec::new() }
    }

    /// Append a stage.
    pub fn with_stage(mut self, stage: impl Stage + 'a) -> Self {
        self.stages.push(Box::new(stage));
        self
    }

    /// The standard Figure 1 lineup for a domain:
    /// blocking → inference → cleanup → grouping.
    pub fn standard<D: MatchingDomain>(domain: &'a D) -> Self {
        StagePipeline::new()
            .with_stage(BlockingStage::new(domain))
            .with_stage(InferenceStage)
            .with_stage(CleanupStage)
            .with_stage(GroupingStage)
    }

    /// The standard lineup minus blocking, for contexts seeded with a
    /// precomputed candidate set.
    pub fn post_blocking() -> Self {
        StagePipeline::new()
            .with_stage(InferenceStage)
            .with_stage(CleanupStage)
            .with_stage(GroupingStage)
    }

    /// Stage names in execution order.
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// Execute all stages over `ctx`, returning the per-stage trace.
    pub fn run(&self, ctx: &mut StageContext<'_>) -> Result<PipelineTrace, Error> {
        let mut trace = PipelineTrace::default();
        for stage in &self.stages {
            let rss_before = current_rss_bytes();
            let stopwatch = Stopwatch::start();
            let stats = stage.run(ctx)?;
            let seconds = stopwatch.elapsed_secs();
            let rss_delta_bytes = match (rss_before, current_rss_bytes()) {
                (Some(before), Some(after)) => Some(after as i64 - before as i64),
                _ => None,
            };
            trace.push(StageTrace {
                stage: stage.name(),
                seconds,
                items_in: stats.items_in,
                items_out: stats.items_out,
                rss_delta_bytes,
                arena_bytes: stats.arena_bytes,
                core_seconds: stats.core_seconds,
                phases: stats.phases,
            });
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::OracleScorer;
    use gralmatch_blocking::BlockingKind;
    use gralmatch_records::EntityId;

    fn tiny_gt() -> GroundTruth {
        GroundTruth::from_assignments([
            (RecordId(0), EntityId(1)),
            (RecordId(1), EntityId(1)),
            (RecordId(2), EntityId(2)),
        ])
    }

    fn seeded_candidates() -> CandidateSet {
        let mut set = CandidateSet::new();
        set.add(
            RecordPair::new(RecordId(0), RecordId(1)),
            BlockingKind::TokenOverlap,
        );
        set.add(
            RecordPair::new(RecordId(1), RecordId(2)),
            BlockingKind::TokenOverlap,
        );
        set
    }

    #[test]
    fn post_blocking_pipeline_runs_all_stages() {
        let gt = tiny_gt();
        let scorer = OracleScorer::new(&gt);
        let config = PipelineConfig::new(10, 5);
        let mut ctx = StageContext::new(3, &gt, &scorer, &config);
        ctx.candidates = Some(Cow::Owned(seeded_candidates()));
        let pipeline = StagePipeline::post_blocking();
        let trace = pipeline.run(&mut ctx).unwrap();
        assert_eq!(
            trace.stages.iter().map(|s| s.stage).collect::<Vec<_>>(),
            vec![
                stage_names::INFERENCE,
                stage_names::CLEANUP,
                stage_names::GROUPING
            ]
        );
        assert_eq!(ctx.num_candidates, 2);
        assert_eq!(ctx.predicted.as_ref().unwrap().len(), 1);
        assert_eq!(ctx.pairwise.unwrap().tp, 1);
        assert!(ctx.groups.is_some());
    }

    #[test]
    fn inference_without_candidates_is_a_pipeline_error() {
        let gt = tiny_gt();
        let scorer = OracleScorer::new(&gt);
        let config = PipelineConfig::new(10, 5);
        let mut ctx = StageContext::new(3, &gt, &scorer, &config);
        let err = StagePipeline::post_blocking().run(&mut ctx).unwrap_err();
        assert!(matches!(err, Error::Pipeline { stage, .. } if stage == stage_names::INFERENCE));
    }

    #[test]
    fn pool_is_created_once_and_shared() {
        let gt = tiny_gt();
        let scorer = OracleScorer::new(&gt);
        let config =
            PipelineConfig::new(10, 5).with_parallelism(gralmatch_util::Parallelism::Fixed(3));
        let mut ctx = StageContext::new(3, &gt, &scorer, &config);
        let first = ctx.pool_for(10);
        assert_eq!(first.workers(), 3);
        // A later, larger workload still reuses the same pool value.
        let second = ctx.pool_for(1_000_000);
        assert_eq!(first, second);
    }

    #[test]
    fn auto_pool_grows_for_larger_workloads() {
        let gt = tiny_gt();
        let scorer = OracleScorer::new(&gt);
        let config = PipelineConfig::new(10, 5);
        let mut ctx = StageContext::new(3, &gt, &scorer, &config);
        // A tiny first workload must not lock the run into 1 worker.
        assert_eq!(ctx.pool_for(10).workers(), 1);
        let grown = ctx.pool_for(1_000_000).workers();
        assert!(grown >= 1);
        // And a small workload afterwards keeps the grown pool.
        assert_eq!(ctx.pool_for(10).workers(), grown);
    }
}
