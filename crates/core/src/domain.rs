//! Matching domains: the datasets the engine is generic over.
//!
//! A [`MatchingDomain`] bundles what the paper treats per dataset —
//! record access, encoding, ground truth, and the Table 2 blocking recipe —
//! behind one trait, so the Figure 1 pipeline runs companies, securities,
//! and WDC-style products (and any future workload) through the *same*
//! engine instead of a per-dataset copy of the orchestration.
//!
//! The three paper domains are provided: [`CompanyDomain`] (ID overlap
//! through issued securities + token overlap), [`SecurityDomain`] (ID
//! overlap + issuer match fed by a company-level grouping), and
//! [`ProductDomain`] (token overlap only).

use crate::engine::{FixedScorerProvider, MatchEngine};
use crate::pipeline::{MatchingOutcome, PipelineConfig};
use crate::shard::ShardPlan;
use crate::stage::{StageContext, StagePipeline};
use gralmatch_blocking::{
    run_blockers, Blocker, BlockingContext, CandidateSet, CompanyIdOverlap, IssuerMatch,
    SecurityIdOverlap, TokenOverlap, TokenOverlapConfig,
};
use gralmatch_lm::{
    CompiledDataset, CompiledMatcher, CompiledScorer, EncodedRecord, ModelSpec, PairScorer,
};
use gralmatch_records::{
    CompanyRecord, GroundTruth, ProductRecord, Record, RecordId, SecurityRecord,
};
use gralmatch_util::{Error, FxHashMap};
use std::cell::OnceCell;

/// A dataset the staged pipeline can match: records, ground truth, and the
/// declarative blocking recipe.
pub trait MatchingDomain {
    /// The record type.
    type Rec: Record + Sync;

    /// Short label for traces and reports.
    fn name(&self) -> &'static str;

    /// The records, honoring the dense-id invariant (`records[i].id() == i`).
    fn records(&self) -> &[Self::Rec];

    /// Ground truth used by the three-stage evaluation.
    fn ground_truth(&self) -> &GroundTruth;

    /// The Table 2 blocking recipe as a [`Blocker`] list.
    fn blocking_strategies(&self) -> Vec<Box<dyn Blocker<Self::Rec> + '_>>;

    /// Encode the records under a model spec's encoder.
    fn encode(&self, spec: ModelSpec) -> Vec<EncodedRecord> {
        spec.encode_records(self.records())
    }
}

/// Run a domain's blocking recipe without the rest of the pipeline
/// (sequential; the staged engine parallelizes through its own context).
pub fn blocked_candidates<D: MatchingDomain>(domain: &D) -> CandidateSet {
    run_blockers(
        domain.records(),
        &domain.blocking_strategies(),
        &BlockingContext::sequential(),
    )
}

/// Run a one-shot match over a domain with any pair scorer — a thin
/// wrapper over [`MatchEngine::bootstrap`] under a single-shard plan (one
/// insert-only batch against an empty state), evaluated under the paper's
/// three-stage protocol. The trace reports the engine's stage lineup
/// (`blocking → inference → merge`).
pub fn run_domain<D>(
    domain: &D,
    scorer: &dyn PairScorer,
    config: &PipelineConfig,
) -> Result<MatchingOutcome, Error>
where
    D: MatchingDomain,
    D::Rec: Clone,
{
    let (engine, load) = MatchEngine::bootstrap_domain(
        domain,
        ShardPlan::new(1),
        Box::new(FixedScorerProvider(scorer)),
        config.clone(),
    )?;
    Ok(engine.evaluate(domain.ground_truth(), &load))
}

/// Run the **legacy staged** one-shot pipeline
/// (`BlockingStage → InferenceStage → CleanupStage → GroupingStage`).
///
/// This is the pre-engine reference implementation, kept as the
/// *independent oracle* the equivalence suites compare
/// [`MatchEngine`]-routed runs against
/// (`tests/engine_equivalence.rs`, `tests/shard_equivalence.rs`); the
/// legacy sharded runner's single-shard branch also lands here so the
/// oracle never routes through the engine. Production callers use
/// [`run_domain`] or the engine directly.
pub fn run_domain_staged<D: MatchingDomain>(
    domain: &D,
    scorer: &dyn PairScorer,
    config: &PipelineConfig,
) -> Result<MatchingOutcome, Error> {
    let mut ctx = StageContext::new(
        domain.records().len(),
        domain.ground_truth(),
        scorer,
        config,
    );
    let trace = StagePipeline::standard(domain).run(&mut ctx)?;
    Ok(MatchingOutcome::from_context(ctx, trace))
}

/// Run a one-shot match over a domain with a pairwise matcher and
/// pre-encoded records (the common trained-model path) — engine-routed
/// like [`run_domain`].
///
/// The encoded streams are compiled once up front
/// ([`CompiledDataset::compile`]) and all candidate pairs score through
/// the zero-allocation [`CompiledScorer`] path — identical scores to
/// [`MatcherScorer`](gralmatch_lm::MatcherScorer), without the per-pair
/// hashing.
pub fn run_domain_with_matcher<D, M: CompiledMatcher>(
    domain: &D,
    matcher: &M,
    encoded: &[EncodedRecord],
    config: &PipelineConfig,
) -> Result<MatchingOutcome, Error>
where
    D: MatchingDomain,
    D::Rec: Clone,
{
    let compiled = CompiledDataset::compile(encoded, &matcher.feature_config());
    run_domain(domain, &CompiledScorer::new(matcher, &compiled), config)
}

/// Companies: ID Overlap (through their securities' codes) + Token Overlap.
pub struct CompanyDomain<'a> {
    companies: &'a [CompanyRecord],
    securities: &'a [SecurityRecord],
    token_config: TokenOverlapConfig,
    /// Derived lazily: blocking-only callers never pay for it.
    gt: OnceCell<GroundTruth>,
}

impl<'a> CompanyDomain<'a> {
    /// Domain over a company universe; `securities` is the universe the
    /// companies' `securities` ids point into. Ground truth derives from
    /// the records' entity labels.
    pub fn new(companies: &'a [CompanyRecord], securities: &'a [SecurityRecord]) -> Self {
        CompanyDomain {
            companies,
            securities,
            token_config: TokenOverlapConfig::default(),
            gt: OnceCell::new(),
        }
    }

    /// Override the token-overlap blocking parameters.
    pub fn with_token_config(mut self, config: TokenOverlapConfig) -> Self {
        self.token_config = config;
        self
    }
}

impl MatchingDomain for CompanyDomain<'_> {
    type Rec = CompanyRecord;

    fn name(&self) -> &'static str {
        "companies"
    }

    fn records(&self) -> &[CompanyRecord] {
        self.companies
    }

    fn ground_truth(&self) -> &GroundTruth {
        self.gt
            .get_or_init(|| GroundTruth::from_records(self.companies))
    }

    fn blocking_strategies(&self) -> Vec<Box<dyn Blocker<CompanyRecord> + '_>> {
        vec![
            Box::new(CompanyIdOverlap {
                securities: self.securities,
            }),
            Box::new(TokenOverlap::new(self.token_config.clone())),
        ]
    }
}

/// Securities: ID Overlap + Issuer Match (fed by a company grouping).
pub struct SecurityDomain<'a> {
    securities: &'a [SecurityRecord],
    company_group_of: &'a FxHashMap<RecordId, u32>,
    /// Derived lazily: blocking-only callers never pay for it.
    gt: OnceCell<GroundTruth>,
}

impl<'a> SecurityDomain<'a> {
    /// Domain over a security universe. `company_group_of` maps company
    /// record ids to their matched-group ids (output of the company-level
    /// matching, Section 5.3.1).
    pub fn new(
        securities: &'a [SecurityRecord],
        company_group_of: &'a FxHashMap<RecordId, u32>,
    ) -> Self {
        SecurityDomain {
            securities,
            company_group_of,
            gt: OnceCell::new(),
        }
    }
}

impl MatchingDomain for SecurityDomain<'_> {
    type Rec = SecurityRecord;

    fn name(&self) -> &'static str {
        "securities"
    }

    fn records(&self) -> &[SecurityRecord] {
        self.securities
    }

    fn ground_truth(&self) -> &GroundTruth {
        self.gt
            .get_or_init(|| GroundTruth::from_records(self.securities))
    }

    fn blocking_strategies(&self) -> Vec<Box<dyn Blocker<SecurityRecord> + '_>> {
        vec![
            Box::new(SecurityIdOverlap),
            Box::new(IssuerMatch {
                company_group_of: self.company_group_of,
            }),
        ]
    }
}

/// WDC-style products: Token Overlap only (no identifier codes).
pub struct ProductDomain<'a> {
    products: &'a [ProductRecord],
    token_config: TokenOverlapConfig,
    /// Derived lazily: blocking-only callers never pay for it.
    gt: OnceCell<GroundTruth>,
}

impl<'a> ProductDomain<'a> {
    /// Domain over a product universe.
    pub fn new(products: &'a [ProductRecord]) -> Self {
        ProductDomain {
            products,
            token_config: TokenOverlapConfig::default(),
            gt: OnceCell::new(),
        }
    }

    /// Override the token-overlap blocking parameters.
    pub fn with_token_config(mut self, config: TokenOverlapConfig) -> Self {
        self.token_config = config;
        self
    }
}

impl MatchingDomain for ProductDomain<'_> {
    type Rec = ProductRecord;

    fn name(&self) -> &'static str {
        "products"
    }

    fn records(&self) -> &[ProductRecord] {
        self.products
    }

    fn ground_truth(&self) -> &GroundTruth {
        self.gt
            .get_or_init(|| GroundTruth::from_records(self.products))
    }

    fn blocking_strategies(&self) -> Vec<Box<dyn Blocker<ProductRecord> + '_>> {
        vec![Box::new(TokenOverlap::new(self.token_config.clone()))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gralmatch_records::{EntityId, SourceId};

    fn products() -> Vec<ProductRecord> {
        let mut one = ProductRecord::new(RecordId(0), SourceId(0), "Acme Blender 3000 Pro");
        one.entity = Some(EntityId(1));
        let mut two = ProductRecord::new(RecordId(1), SourceId(1), "Acme Blender 3000 Pro");
        two.entity = Some(EntityId(1));
        let mut three = ProductRecord::new(RecordId(2), SourceId(2), "Globex Kettle 12");
        three.entity = Some(EntityId(2));
        vec![one, two, three]
    }

    #[test]
    fn product_domain_blocks_by_token_overlap_only() {
        let records = products();
        let domain = ProductDomain::new(&records).with_token_config(TokenOverlapConfig {
            top_n: 5,
            max_token_df: 50,
            min_overlap: 2,
        });
        assert_eq!(domain.name(), "products");
        let strategies = domain.blocking_strategies();
        assert_eq!(strategies.len(), 1);
        let candidates = blocked_candidates(&domain);
        assert!(candidates.from_blocking(
            gralmatch_records::RecordPair::new(RecordId(0), RecordId(1)),
            gralmatch_blocking::BlockingKind::TokenOverlap
        ));
    }

    #[test]
    fn domain_ground_truth_derives_from_labels() {
        let records = products();
        let domain = ProductDomain::new(&records);
        assert_eq!(domain.ground_truth().num_true_pairs(), 1);
        assert_eq!(domain.records().len(), 3);
    }

    #[test]
    fn domain_encodes_under_spec() {
        let records = products();
        let domain = ProductDomain::new(&records);
        let encoded = domain.encode(ModelSpec::DistilBert128All);
        assert_eq!(encoded.len(), 3);
        assert!(!encoded[0].is_empty());
    }
}
