//! Incremental upserts: apply delta batches against a persisted
//! [`PipelineState`] instead of re-running the pipeline from scratch.
//!
//! Real catalogs (companies, securities, products) mutate daily, and the
//! paper's pairwise-to-group propagation (Section 4) means a handful of
//! changed records can rewire whole transitive components. The engine here
//! treats a delta batch as a synthetic shard over the standing
//! [`ShardPlan`]:
//!
//! 1. **Re-block only what moved.** The cheap cross-shard hash joins
//!    ([`Blocker::cross_shard`]) re-run over the full live population —
//!    they are near-linear, and their degeneracy guards are *non-monotone*
//!    (a code crossing [`MAX_CODE_HOLDERS`] retracts standing pairs), so a
//!    probe-only join could not stay exact. The quadratic text blockers
//!    re-run **only for touched shards**, through
//!    [`Blocker::block_delta`] (zero-copy over the shard's standing/new
//!    split); untouched shards keep their standing candidate sets
//!    verbatim.
//! 2. **Re-score only new or invalidated pairs.** Every standing candidate
//!    pair whose endpoints did not change keeps its score; pairs touching
//!    an updated/deleted record, and pairs the re-block newly proposed,
//!    go to the scorer.
//! 3. **Reconcile through [`MergeStage`].** Retained predictions and new
//!    positives union via `UnionFind`; components containing a dirty node
//!    (changed record or retracted raw edge endpoint) or a new positive
//!    edge are rebuilt from raw predictions and pass through pre-cleanup +
//!    Algorithm 1 again — all other components keep their standing cleaned
//!    edges untouched.
//!
//! Because every step preserves the pipeline's observable state exactly —
//! the candidate set (with provenance), the raw positive predictions, and
//! the per-component cleanup of the raw prediction graph — an initial load
//! followed by **any** partition of the remaining records into upsert
//! batches lands on the same groups as a one-shot [`run_sharded`] over the
//! final population (property-tested in `tests/upsert_equivalence.rs`).
//! The initial load itself is just an insert-only batch against an empty
//! state, so there is one reconciliation code path, not two.
//!
//! [`run_sharded`]: crate::shard::run_sharded
//! [`MAX_CODE_HOLDERS`]: gralmatch_blocking::MAX_CODE_HOLDERS

use crate::cleanup::CleanupReport;
use crate::groups::entity_groups;
use crate::pipeline::PipelineConfig;
use crate::shard::{MergeStage, ShardKey, ShardPlan};
use crate::trace::{stage_names, PipelineTrace, StageTrace};
use gralmatch_blocking::{
    text_only_provenance, Blocker, BlockerRun, BlockingContext, CandidateSet,
};
use gralmatch_graph::{CutIndex, Graph};
use gralmatch_lm::{predict_positive_with, PairScorer};
use gralmatch_records::{Record, RecordId, RecordPair};
use gralmatch_util::{Error, FromJson, FxHashMap, FxHashSet, Json, JsonError, Stopwatch, ToJson};

/// One delta batch in the global record-id space.
///
/// Ids are **stable**: an update carries the same id as the record it
/// replaces, a delete names a live id, an insert brings a previously
/// unseen id. Deleted ids may be re-inserted by a later batch.
#[derive(Debug, Clone, Default)]
pub struct UpsertBatch<R> {
    /// Records with ids not currently live.
    pub inserts: Vec<R>,
    /// New versions of currently live records (matched by id).
    pub updates: Vec<R>,
    /// Ids of live records to remove.
    pub deletes: Vec<RecordId>,
}

impl<R> UpsertBatch<R> {
    /// Empty batch.
    pub fn new() -> Self {
        UpsertBatch {
            inserts: Vec::new(),
            updates: Vec::new(),
            deletes: Vec::new(),
        }
    }

    /// Insert-only batch.
    pub fn inserting(inserts: Vec<R>) -> Self {
        UpsertBatch {
            inserts,
            updates: Vec::new(),
            deletes: Vec::new(),
        }
    }

    /// Total mutations in the batch.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.updates.len() + self.deletes.len()
    }

    /// Whether the batch mutates nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The `j`-th delete/re-insert churn window over an initially loaded
/// prefix of `initial` records: a small slice (width 3) of already-loaded
/// records that replay harnesses delete in batch `j` and re-insert in
/// batch `j + 1`, so a replay exercises retraction and component
/// re-cleaning, not just growth. One definition shared by the equivalence
/// suites and the serve bootstrap, so the windowing arithmetic cannot
/// drift between copies (`stride` staggers successive windows apart).
pub fn churn_window(initial: usize, j: usize, stride: usize) -> std::ops::Range<usize> {
    const WIDTH: usize = 3;
    let start = (j * stride) % initial.saturating_sub(WIDTH + 1).max(1);
    start..(start + WIDTH).min(initial)
}

impl<R: ToJson> ToJson for UpsertBatch<R> {
    fn to_json(&self) -> Json {
        Json::obj([
            ("inserts", self.inserts.to_json()),
            ("updates", self.updates.to_json()),
            ("deletes", self.deletes.to_json()),
        ])
    }
}

impl<R: FromJson> FromJson for UpsertBatch<R> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        // Absent sections default to empty so hand-written batch files
        // (serve stdin/`--apply`) can name only what they mutate.
        let empty = Json::Arr(Vec::new());
        let section = |key: &str| json.field(key).unwrap_or(&empty);
        Ok(UpsertBatch {
            inserts: Vec::from_json(section("inserts"))?,
            updates: Vec::from_json(section("updates"))?,
            deletes: Vec::from_json(section("deletes"))?,
        })
    }
}

/// What one [`PipelineState::apply`] call did — per-batch latency lives in
/// `trace`, reconciliation scope in the counters.
#[derive(Debug, Clone)]
pub struct UpsertOutcome {
    /// Entity groups after the batch (largest first, dead singletons
    /// dropped).
    pub groups: Vec<Vec<RecordId>>,
    /// Blocking / inference / merge wall-clock for this batch.
    pub trace: PipelineTrace,
    /// Per-recipe blocking diagnostics for this batch (shape-stable: every
    /// executed recipe reports, zero-candidate ones included).
    pub blocker_runs: Vec<BlockerRun>,
    /// Records inserted.
    pub inserted: usize,
    /// Records updated (replaced in place by id).
    pub updated: usize,
    /// Records deleted.
    pub deleted: usize,
    /// Shards whose text blocking re-ran.
    pub touched_shards: usize,
    /// Candidate pairs sent to the scorer (new or invalidated).
    pub pairs_scored: usize,
    /// Positive predictions gained this batch.
    pub new_predictions: usize,
    /// Standing positive predictions retracted (endpoint changed, or the
    /// pair fell out of the candidate set).
    pub retracted_predictions: usize,
    /// Raw-graph components rebuilt and re-cleaned.
    pub touched_components: usize,
    /// New positive edges that connected two previously distinct
    /// components.
    pub boundary_merges: usize,
    /// Every record id whose group membership may have changed this batch
    /// (the batch's own ids plus all members of rebuilt components),
    /// sorted. Records outside this set kept their exact standing group —
    /// the invalidation set for the engine's record-id → group index.
    pub changed_nodes: Vec<u32>,
    /// Edges removed by this batch's component re-cleanup.
    pub cleanup: CleanupReport,
    /// Epoch of the [`GroupSnapshot`] published for this batch (0 when the
    /// batch was applied directly to a [`PipelineState`], outside an
    /// engine).
    ///
    /// [`GroupSnapshot`]: crate::snapshot::GroupSnapshot
    pub epoch: u64,
    /// Wall-clock seconds the engine spent building and publishing the
    /// batch's snapshot (0 outside an engine).
    pub snapshot_publish_seconds: f64,
    /// Snapshot buckets rebuilt for this batch — the unit of publish cost;
    /// everything else was shared with the previous epoch (0 outside an
    /// engine).
    pub snapshot_buckets_rebuilt: usize,
}

/// The standing state an incremental pipeline reconciles against:
/// live records with their shard membership, per-shard text-blocking
/// candidates, the global hash-join candidates, raw positive predictions,
/// and the cleaned prediction graph. Round-trips through
/// [`ToJson`]/[`FromJson`] so a long-running matcher can persist between
/// batches.
#[derive(Debug, Clone)]
pub struct PipelineState<R> {
    plan: ShardPlan,
    /// Id-space size (max record id ever seen + 1); deleted ids stay
    /// inside the space so graphs and union-finds stay index-stable.
    num_ids: usize,
    /// Live records, unordered.
    records: Vec<R>,
    /// Record id → position in `records`.
    index_of: FxHashMap<u32, u32>,
    /// Record id → shard (under `plan`).
    shard_of: FxHashMap<u32, u32>,
    /// Per-shard candidates from the shard-local (text) blockers.
    local: Vec<CandidateSet>,
    /// Candidates from the cross-shard hash joins over the full live
    /// population (within-shard and boundary pairs alike).
    global: CandidateSet,
    /// Union of `global` and all `local` sets (derived; kept because the
    /// next batch diffs against it to skip already-scored pairs).
    candidates: CandidateSet,
    /// Standing positive predictions (sorted raw edges).
    predicted: Vec<RecordPair>,
    /// Standing cleaned prediction graph (per-component cleanup of
    /// `predicted`).
    cleaned: Graph,
}

/// The persisted components of a [`PipelineState`], as both the JSON and
/// binary codecs carry them: everything except the derived id index,
/// shard membership, and merged candidate union, which
/// [`PipelineState::from_parts`] rebuilds.
pub(crate) struct StateParts<R> {
    pub plan: ShardPlan,
    pub num_ids: usize,
    pub records: Vec<R>,
    pub local: Vec<CandidateSet>,
    pub global: CandidateSet,
    pub predicted: Vec<RecordPair>,
    pub cleaned_edges: Vec<RecordPair>,
}

impl<R: Record + Clone + Sync> PipelineState<R> {
    /// Empty state under a shard plan.
    pub fn new(plan: ShardPlan) -> Self {
        PipelineState {
            plan,
            num_ids: 0,
            records: Vec::new(),
            index_of: FxHashMap::default(),
            shard_of: FxHashMap::default(),
            local: (0..plan.num_shards).map(|_| CandidateSet::new()).collect(),
            global: CandidateSet::new(),
            candidates: CandidateSet::new(),
            predicted: Vec::new(),
            cleaned: Graph::new(),
        }
    }

    /// Build a state by loading `records` as one insert-only batch — the
    /// initial load of an incremental pipeline. Exactly equivalent to
    /// `PipelineState::new(plan)` + [`apply`](PipelineState::apply).
    pub fn initial_load(
        plan: ShardPlan,
        records: Vec<R>,
        strategies: &[Box<dyn Blocker<R> + '_>],
        scorer: &dyn PairScorer,
        config: &PipelineConfig,
    ) -> Result<(Self, UpsertOutcome), Error> {
        let mut state = PipelineState::new(plan);
        let outcome = state.apply(&UpsertBatch::inserting(records), strategies, scorer, config)?;
        Ok((state, outcome))
    }

    /// The shard plan the state reconciles under.
    pub fn plan(&self) -> ShardPlan {
        self.plan
    }

    /// Live records (unordered).
    pub fn live_records(&self) -> &[R] {
        &self.records
    }

    /// Number of live records.
    pub fn num_live(&self) -> usize {
        self.records.len()
    }

    /// Id-space size (max id ever seen + 1).
    pub fn num_ids(&self) -> usize {
        self.num_ids
    }

    /// Whether a record id is currently live.
    pub fn is_live(&self, id: RecordId) -> bool {
        self.index_of.contains_key(&id.0)
    }

    /// Standing candidate pairs (union over all blockings, with
    /// provenance).
    pub fn candidates(&self) -> &CandidateSet {
        &self.candidates
    }

    /// Per-shard candidate sets from the shard-local blockers (persisted
    /// verbatim; the merged union is derived).
    pub(crate) fn local_sets(&self) -> &[CandidateSet] {
        &self.local
    }

    /// Candidates from the cross-shard hash joins.
    pub(crate) fn global_set(&self) -> &CandidateSet {
        &self.global
    }

    /// Rebuild a state from its persisted parts, validating them and
    /// deriving the id index, shard membership, and merged candidate
    /// union. Shared by the JSON and binary decoders, so both reject the
    /// same malformed inputs with the same messages.
    pub(crate) fn from_parts(parts: StateParts<R>) -> Result<Self, String> {
        let StateParts {
            plan,
            num_ids,
            records,
            local,
            global,
            mut predicted,
            cleaned_edges,
        } = parts;
        if local.len() != plan.num_shards {
            return Err(format!(
                "{} local candidate sets for {} shards",
                local.len(),
                plan.num_shards
            ));
        }
        // Candidate pairs feed the scorer (which indexes encodings by id)
        // before the merge's union-find, so out-of-space pairs must error
        // here like out-of-space predicted/cleaned edges do. `b` bounds
        // both endpoints (RecordPair canonicalizes a ≤ b).
        for set in local.iter().chain(std::iter::once(&global)) {
            for (pair, _) in set.iter() {
                if pair.b.0 as usize >= num_ids {
                    return Err(format!(
                        "candidate pair endpoint {} outside num_ids",
                        pair.b.0
                    ));
                }
            }
        }
        for pair in &predicted {
            // `RecordPair::new` canonicalizes a ≤ b, so checking b bounds
            // both endpoints; an out-of-space edge would panic deep in the
            // merge's union-find instead of erroring here.
            if pair.b.0 as usize >= num_ids {
                return Err(format!(
                    "predicted edge endpoint {} outside num_ids",
                    pair.b.0
                ));
            }
        }
        predicted.sort_unstable();

        // Derived structures: id index, shard membership (a pure function
        // of each record under the plan), merged candidate union.
        let mut index_of = FxHashMap::default();
        let mut shard_of = FxHashMap::default();
        index_of.reserve(records.len());
        shard_of.reserve(records.len());
        for (position, record) in records.iter().enumerate() {
            let id = record.id().0;
            if (id as usize) >= num_ids {
                return Err(format!("record id {id} outside num_ids {num_ids}"));
            }
            if index_of.insert(id, position as u32).is_some() {
                return Err(format!("duplicate record id {id}"));
            }
            shard_of.insert(id, plan.assign_record(record));
        }
        let mut candidates = global.clone();
        candidates.reserve(local.iter().map(CandidateSet::len).sum());
        for set in &local {
            candidates.merge(set);
        }
        let mut cleaned = Graph::with_nodes(num_ids);
        for pair in &cleaned_edges {
            if pair.b.0 as usize >= num_ids {
                return Err(format!(
                    "cleaned edge endpoint {} outside num_ids",
                    pair.b.0
                ));
            }
            cleaned.add_edge(pair.a.0, pair.b.0);
        }
        Ok(PipelineState {
            plan,
            num_ids,
            records,
            index_of,
            shard_of,
            local,
            global,
            candidates,
            predicted,
            cleaned,
        })
    }

    /// Standing raw positive predictions, sorted.
    pub fn predicted(&self) -> &[RecordPair] {
        &self.predicted
    }

    /// The standing cleaned prediction graph (per-component cleanup of the
    /// raw predictions, in the full id space — deleted ids are isolated
    /// nodes). Group lookups traverse this directly; the engine's group
    /// index is derived from it.
    pub fn cleaned(&self) -> &Graph {
        &self.cleaned
    }

    /// Look up one record by id.
    pub fn record(&self, id: RecordId) -> Option<&R> {
        self.index_of
            .get(&id.0)
            .map(|&position| &self.records[position as usize])
    }

    /// Current entity groups: components of the standing cleaned graph,
    /// largest first, singleton components of non-live ids dropped.
    pub fn groups(&self) -> Vec<Vec<RecordId>> {
        entity_groups(&self.cleaned)
            .into_iter()
            .filter(|group| group.len() > 1 || self.index_of.contains_key(&group[0].0))
            .collect()
    }

    fn upsert_error(message: String) -> Error {
        Error::Pipeline {
            stage: "upsert",
            message,
        }
    }

    /// Remove a live record, returning its old shard. Swap-remove keeps
    /// `records` dense; blockers are order-insensitive (ties break on
    /// record ids, never positions).
    fn remove_record(&mut self, id: u32) -> u32 {
        let position = self.index_of.remove(&id).expect("caller validated id") as usize;
        self.records.swap_remove(position);
        if position < self.records.len() {
            let moved = self.records[position].id().0;
            self.index_of.insert(moved, position as u32);
        }
        self.shard_of
            .remove(&id)
            .expect("shard tracked per live id")
    }

    fn add_record(&mut self, record: R) -> u32 {
        let id = record.id().0;
        let shard = self.plan.assign_record(&record);
        self.num_ids = self.num_ids.max(id as usize + 1);
        self.index_of.insert(id, self.records.len() as u32);
        self.shard_of.insert(id, shard);
        self.records.push(record);
        shard
    }

    /// Check a batch against the standing state without mutating
    /// anything: inserts must bring unseen ids, updates and deletes must
    /// name live ids, and no id may appear twice in one batch.
    ///
    /// [`apply`](PipelineState::apply) runs this itself, but callers that
    /// absorb the batch into *other* state first (the engine's scorer
    /// provider) must call it up front so a rejected batch leaves every
    /// view untouched.
    pub fn validate(&self, batch: &UpsertBatch<R>) -> Result<(), Error> {
        for record in &batch.inserts {
            if self.is_live(record.id()) {
                return Err(Self::upsert_error(format!(
                    "insert of live record id {}",
                    record.id().0
                )));
            }
        }
        for record in &batch.updates {
            if !self.is_live(record.id()) {
                return Err(Self::upsert_error(format!(
                    "update of unknown record id {}",
                    record.id().0
                )));
            }
        }
        for &id in &batch.deletes {
            if !self.is_live(id) {
                return Err(Self::upsert_error(format!(
                    "delete of unknown record id {}",
                    id.0
                )));
            }
        }
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        for id in batch
            .inserts
            .iter()
            .map(|r| r.id().0)
            .chain(batch.updates.iter().map(|r| r.id().0))
            .chain(batch.deletes.iter().map(|id| id.0))
        {
            if !seen.insert(id) {
                return Err(Self::upsert_error(format!(
                    "record id {id} appears twice in one batch"
                )));
            }
        }
        Ok(())
    }

    /// Apply one delta batch: re-block touched shards, re-score new and
    /// invalidated pairs, reconcile into the standing groups. See the
    /// module docs for the exactness argument.
    pub fn apply(
        &mut self,
        batch: &UpsertBatch<R>,
        strategies: &[Box<dyn Blocker<R> + '_>],
        scorer: &dyn PairScorer,
        config: &PipelineConfig,
    ) -> Result<UpsertOutcome, Error> {
        self.apply_with_index(batch, strategies, scorer, config, None)
    }

    /// [`apply`](PipelineState::apply) with an optional persistent
    /// [`CutIndex`] mirroring the standing cleaned graph. The merge feeds
    /// the index this batch's exact edge delta and answers the re-clean's
    /// bridge queries from the cached cut structure — identical groups,
    /// O(affected region) instead of a per-component Tarjan rescan. The
    /// caller (the engine) owns the index across batches and must rebuild
    /// it whenever the cleaned graph changes outside `apply` (model swap,
    /// recovery).
    pub fn apply_with_index(
        &mut self,
        batch: &UpsertBatch<R>,
        strategies: &[Box<dyn Blocker<R> + '_>],
        scorer: &dyn PairScorer,
        config: &PipelineConfig,
        index: Option<&mut CutIndex>,
    ) -> Result<UpsertOutcome, Error> {
        // -- 1. Validate + apply the record mutations. ---------------------
        self.validate(batch)?;

        let mut dirty: FxHashSet<u32> = FxHashSet::default();
        let mut touched_shards: FxHashSet<u32> = FxHashSet::default();
        let mut added_ids: FxHashSet<u32> = FxHashSet::default();
        for &id in &batch.deletes {
            touched_shards.insert(self.remove_record(id.0));
            dirty.insert(id.0);
        }
        for record in &batch.updates {
            let id = record.id().0;
            touched_shards.insert(self.remove_record(id));
            touched_shards.insert(self.add_record(record.clone()));
            dirty.insert(id);
            added_ids.insert(id);
        }
        for record in &batch.inserts {
            let id = record.id().0;
            touched_shards.insert(self.add_record(record.clone()));
            dirty.insert(id);
            added_ids.insert(id);
        }

        // -- 2. Re-block: global hash joins + touched shards' text recipes.
        let blocking_watch = Stopwatch::start();
        let pool = config.parallelism.pool_for(self.records.len());
        let ctx = BlockingContext::with_pool(pool);
        let mut blocker_runs: Vec<BlockerRun> = Vec::new();

        // Independent hash joins run concurrently on the shared pool,
        // through the same dispatch `run_sharded` uses for this subset.
        let cross_blockers: Vec<&dyn Blocker<R>> = strategies
            .iter()
            .filter(|b| b.cross_shard())
            .map(|b| b.as_ref())
            .collect();
        let (global, global_runs) =
            gralmatch_blocking::run_blocker_refs_traced(&self.records, &cross_blockers, &ctx);
        for run in global_runs {
            BlockerRun::accumulate(&mut blocker_runs, run);
        }
        self.global = global;

        // Collect each touched shard's records once, split standing/new.
        let mut standing_of: FxHashMap<u32, Vec<R>> = FxHashMap::default();
        let mut new_of: FxHashMap<u32, Vec<R>> = FxHashMap::default();
        for record in &self.records {
            let id = record.id().0;
            let shard = self.shard_of[&id];
            if !touched_shards.contains(&shard) {
                continue;
            }
            if added_ids.contains(&id) {
                new_of.entry(shard).or_default().push(record.clone());
            } else {
                standing_of.entry(shard).or_default().push(record.clone());
            }
        }
        for &shard in &touched_shards {
            let standing = standing_of.remove(&shard).unwrap_or_default();
            let new = new_of.remove(&shard).unwrap_or_default();
            let mut set = CandidateSet::new();
            for blocker in strategies.iter().filter(|b| !b.cross_shard()) {
                let watch = Stopwatch::start();
                let mut recipe_set = CandidateSet::new();
                blocker.block_delta(&new, &standing, &ctx, &mut recipe_set);
                BlockerRun::accumulate(
                    &mut blocker_runs,
                    BlockerRun {
                        name: blocker.name(),
                        candidates: recipe_set.len(),
                        seconds: watch.elapsed_secs(),
                    },
                );
                set.merge(&recipe_set);
            }
            self.local[shard as usize] = set;
        }

        let mut candidates_now = self.global.clone();
        for local in &self.local {
            candidates_now.merge(local);
        }
        let blocking_seconds = blocking_watch.elapsed_secs();

        // -- 3. Re-score new and invalidated pairs. ------------------------
        let inference_watch = Stopwatch::start();
        let untouched =
            |pair: &RecordPair| !dirty.contains(&pair.a.0) && !dirty.contains(&pair.b.0);
        let mut to_score: Vec<RecordPair> = candidates_now
            .iter()
            .map(|(pair, _)| pair)
            .filter(|pair| !(self.candidates.contains(*pair) && untouched(pair)))
            .collect();
        to_score.sort_unstable();
        let scoring_pool = config.parallelism.pool_for(to_score.len());
        let scoring_watch = Stopwatch::start();
        let new_positives = predict_positive_with(scorer, &to_score, &scoring_pool);
        let scoring_seconds = scoring_watch.elapsed_secs();

        // Standing positives persist while both endpoints are unchanged and
        // the pair is still a candidate; anything else is retracted, and
        // its endpoints go dirty so the merge re-cleans their components.
        let mut persisting: Vec<RecordPair> = Vec::with_capacity(self.predicted.len());
        let mut dirty_nodes: FxHashSet<u32> = dirty.clone();
        let mut retracted = 0usize;
        for &pair in &self.predicted {
            if untouched(&pair) && candidates_now.contains(pair) {
                persisting.push(pair);
            } else {
                retracted += 1;
                dirty_nodes.insert(pair.a.0);
                dirty_nodes.insert(pair.b.0);
            }
        }
        let inference_seconds = inference_watch.elapsed_secs();

        // -- 4. Reconcile through the merge stage. -------------------------
        let merge_watch = Stopwatch::start();
        let is_removable = |a: u32, b: u32| {
            text_only_provenance(
                candidates_now.provenance(RecordPair::new(RecordId(a), RecordId(b))),
            )
        };
        let merge = MergeStage::new(config).merge_with_index(
            self.num_ids,
            std::slice::from_ref(&self.cleaned),
            &persisting,
            &new_positives,
            &dirty_nodes,
            &is_removable,
            index,
        );

        let mut predicted_now = persisting;
        predicted_now.extend(new_positives.iter().copied());
        predicted_now.sort_unstable();
        let new_prediction_count = new_positives.len();
        let changed_nodes = merge.touched_nodes;
        self.predicted = predicted_now;
        self.cleaned = merge.graph;
        self.candidates = candidates_now;
        let groups = self.groups();
        let merge_seconds = merge_watch.elapsed_secs();

        let mut trace = PipelineTrace::default();
        trace.push(StageTrace {
            stage: stage_names::BLOCKING,
            seconds: blocking_seconds,
            items_in: batch.len(),
            items_out: self.candidates.len(),
            rss_delta_bytes: None,
            arena_bytes: None,
            core_seconds: None,
            phases: None,
        });
        trace.push(StageTrace {
            stage: stage_names::INFERENCE,
            seconds: inference_seconds,
            items_in: to_score.len(),
            items_out: new_prediction_count,
            rss_delta_bytes: None,
            // The scorer's compiled view persists across batches and is
            // rebuilt only for touched records; report its footprint so
            // the upsert JSON shows memory next to wall-clock.
            arena_bytes: scorer.memory_bytes(),
            core_seconds: Some(scoring_seconds),
            phases: None,
        });
        trace.push(StageTrace {
            stage: stage_names::MERGE,
            seconds: merge_seconds,
            items_in: new_prediction_count,
            items_out: groups.len(),
            rss_delta_bytes: None,
            arena_bytes: None,
            core_seconds: Some(merge.cleanup.seconds),
            phases: Some(merge.cleanup.phases()),
        });

        Ok(UpsertOutcome {
            groups,
            trace,
            blocker_runs,
            inserted: batch.inserts.len(),
            updated: batch.updates.len(),
            deleted: batch.deletes.len(),
            touched_shards: touched_shards.len(),
            pairs_scored: to_score.len(),
            new_predictions: new_prediction_count,
            retracted_predictions: retracted,
            touched_components: merge.touched_components,
            boundary_merges: merge.boundary_merges,
            changed_nodes,
            cleanup: merge.cleanup,
            epoch: 0,
            snapshot_publish_seconds: 0.0,
            snapshot_buckets_rebuilt: 0,
        })
    }
}

// --- Persistence --------------------------------------------------------

fn pair_to_json(pair: &RecordPair) -> Json {
    Json::Arr(vec![Json::Num(pair.a.0 as f64), Json::Num(pair.b.0 as f64)])
}

fn pair_from_json(json: &Json) -> Result<RecordPair, JsonError> {
    let parts = json
        .as_arr()
        .filter(|p| p.len() == 2)
        .ok_or_else(|| JsonError {
            message: "expected [a, b] pair".into(),
        })?;
    Ok(RecordPair::new(
        RecordId(u32::from_json(&parts[0])?),
        RecordId(u32::from_json(&parts[1])?),
    ))
}

impl ToJson for ShardKey {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                ShardKey::Entity => "entity",
                ShardKey::Source => "source",
            }
            .to_string(),
        )
    }
}

impl FromJson for ShardKey {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json.as_str() {
            Some("entity") => Ok(ShardKey::Entity),
            Some("source") => Ok(ShardKey::Source),
            other => Err(JsonError {
                message: format!("unknown shard key {other:?}"),
            }),
        }
    }
}

impl ToJson for ShardPlan {
    fn to_json(&self) -> Json {
        Json::obj([
            ("num_shards", self.num_shards.to_json()),
            ("key", self.key.to_json()),
        ])
    }
}

impl FromJson for ShardPlan {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let num_shards = usize::from_json(json.field("num_shards")?)?;
        if num_shards == 0 {
            return Err(JsonError {
                message: "num_shards must be positive".into(),
            });
        }
        Ok(ShardPlan::new(num_shards).with_key(ShardKey::from_json(json.field("key")?)?))
    }
}

impl<R: Record + ToJson> ToJson for PipelineState<R> {
    fn to_json(&self) -> Json {
        // Records sorted by id and edge lists sorted, so equal states
        // serialize identically regardless of mutation history.
        let mut by_id: Vec<&R> = self.records.iter().collect();
        by_id.sort_unstable_by_key(|r| r.id());
        let mut cleaned: Vec<RecordPair> = self
            .cleaned
            .edges()
            .map(|edge| RecordPair::new(RecordId(edge.a), RecordId(edge.b)))
            .collect();
        cleaned.sort_unstable();
        Json::obj([
            ("plan", self.plan.to_json()),
            ("num_ids", self.num_ids.to_json()),
            (
                "records",
                Json::Arr(by_id.into_iter().map(|r| r.to_json()).collect()),
            ),
            (
                "local",
                Json::Arr(self.local.iter().map(|set| set.to_json()).collect()),
            ),
            ("global", self.global.to_json()),
            (
                "predicted",
                Json::Arr(self.predicted.iter().map(pair_to_json).collect()),
            ),
            (
                "cleaned",
                Json::Arr(cleaned.iter().map(pair_to_json).collect()),
            ),
        ])
    }
}

impl<R: Record + Clone + Sync + FromJson> FromJson for PipelineState<R> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let plan = ShardPlan::from_json(json.field("plan")?)?;
        let num_ids = usize::from_json(json.field("num_ids")?)?;
        let records: Vec<R> = Vec::from_json(json.field("records")?)?;
        let local: Vec<CandidateSet> = Vec::from_json(json.field("local")?)?;
        if local.len() != plan.num_shards {
            return Err(JsonError {
                message: format!(
                    "{} local candidate sets for {} shards",
                    local.len(),
                    plan.num_shards
                ),
            });
        }
        let global = CandidateSet::from_json(json.field("global")?)?;
        let predicted_json = json.field("predicted")?.as_arr().ok_or_else(|| JsonError {
            message: "expected predicted array".into(),
        })?;
        let predicted = predicted_json
            .iter()
            .map(pair_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let cleaned_json = json.field("cleaned")?.as_arr().ok_or_else(|| JsonError {
            message: "expected cleaned array".into(),
        })?;
        let cleaned_edges = cleaned_json
            .iter()
            .map(pair_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        PipelineState::from_parts(StateParts {
            plan,
            num_ids,
            records,
            local,
            global,
            predicted,
            cleaned_edges,
        })
        .map_err(|message| JsonError { message })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{MatchingDomain, SecurityDomain};
    use crate::pipeline::OracleScorer;
    use crate::shard::run_sharded;
    use gralmatch_datagen::{generate, GenerationConfig};
    use gralmatch_records::SecurityRecord;
    use gralmatch_util::FxHashMap;

    fn dataset() -> gralmatch_datagen::FinancialDataset {
        let mut config = GenerationConfig::synthetic_full();
        config.num_entities = 80;
        generate(&config).unwrap()
    }

    fn company_groups(data: &gralmatch_datagen::FinancialDataset) -> FxHashMap<RecordId, u32> {
        data.companies
            .records()
            .iter()
            .map(|company| (company.id, company.entity.unwrap().0))
            .collect()
    }

    fn normalize(groups: &[Vec<RecordId>]) -> Vec<Vec<RecordId>> {
        let mut out: Vec<Vec<RecordId>> = groups
            .iter()
            .map(|group| {
                let mut g = group.clone();
                g.sort_unstable();
                g
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn initial_load_matches_one_shot_sharded_run() {
        let data = dataset();
        let securities = data.securities.records();
        let group_of = company_groups(&data);
        let domain = SecurityDomain::new(securities, &group_of);
        let gt = domain.ground_truth().clone();
        let scorer = OracleScorer::new(&gt);
        let config = PipelineConfig::new(25, 5);
        let plan = ShardPlan::new(4);

        let one_shot = run_sharded(&domain, &scorer, &config, &plan).unwrap();
        let (state, outcome) = PipelineState::initial_load(
            plan,
            securities.to_vec(),
            &domain.blocking_strategies(),
            &scorer,
            &config,
        )
        .unwrap();
        assert_eq!(
            normalize(&outcome.groups),
            normalize(&one_shot.outcome.groups)
        );
        assert_eq!(state.candidates().len(), one_shot.outcome.num_candidates);
        assert_eq!(state.predicted().len(), one_shot.outcome.num_predicted);
        assert_eq!(outcome.inserted, securities.len());
        assert_eq!(outcome.touched_shards, 4);
        // Every recipe reports, including those local to a single shard.
        assert!(outcome
            .blocker_runs
            .iter()
            .any(|run| run.name == "id-overlap"));
    }

    #[test]
    fn delete_then_reinsert_restores_the_standing_groups() {
        let data = dataset();
        let securities = data.securities.records();
        let group_of = company_groups(&data);
        let domain = SecurityDomain::new(securities, &group_of);
        let gt = domain.ground_truth().clone();
        let scorer = OracleScorer::new(&gt);
        let config = PipelineConfig::new(25, 5);
        let strategies = domain.blocking_strategies();

        let (mut state, load) = PipelineState::initial_load(
            ShardPlan::new(2),
            securities.to_vec(),
            &strategies,
            &scorer,
            &config,
        )
        .unwrap();
        let baseline = normalize(&load.groups);

        // Delete the members of the largest multi-record group.
        let victim: Vec<RecordId> = load
            .groups
            .iter()
            .find(|g| g.len() > 1)
            .expect("some multi-record group")
            .clone();
        let deleted = state
            .apply(
                &UpsertBatch {
                    inserts: Vec::new(),
                    updates: Vec::new(),
                    deletes: victim.clone(),
                },
                &strategies,
                &scorer,
                &config,
            )
            .unwrap();
        assert_eq!(deleted.deleted, victim.len());
        assert!(deleted.retracted_predictions > 0);
        for &id in &victim {
            assert!(!state.is_live(id));
            assert!(deleted.groups.iter().all(|g| !g.contains(&id)));
        }

        // Re-insert them: the standing groups must be restored exactly.
        let reinserts: Vec<SecurityRecord> = securities
            .iter()
            .filter(|record| victim.contains(&record.id))
            .cloned()
            .collect();
        let restored = state
            .apply(
                &UpsertBatch::inserting(reinserts),
                &strategies,
                &scorer,
                &config,
            )
            .unwrap();
        assert_eq!(normalize(&restored.groups), baseline);
    }

    #[test]
    fn noop_batch_changes_nothing_and_scores_nothing() {
        let data = dataset();
        let securities = data.securities.records();
        let group_of = company_groups(&data);
        let domain = SecurityDomain::new(securities, &group_of);
        let gt = domain.ground_truth().clone();
        let scorer = OracleScorer::new(&gt);
        let config = PipelineConfig::new(25, 5);
        let strategies = domain.blocking_strategies();
        let (mut state, load) = PipelineState::initial_load(
            ShardPlan::new(2),
            securities.to_vec(),
            &strategies,
            &scorer,
            &config,
        )
        .unwrap();
        let outcome = state
            .apply(&UpsertBatch::new(), &strategies, &scorer, &config)
            .unwrap();
        assert_eq!(outcome.pairs_scored, 0);
        assert_eq!(outcome.touched_shards, 0);
        assert_eq!(outcome.retracted_predictions, 0);
        assert_eq!(normalize(&outcome.groups), normalize(&load.groups));
    }

    #[test]
    fn invalid_batches_are_rejected() {
        let data = dataset();
        let securities = data.securities.records();
        let group_of = company_groups(&data);
        let domain = SecurityDomain::new(securities, &group_of);
        let gt = domain.ground_truth().clone();
        let scorer = OracleScorer::new(&gt);
        let config = PipelineConfig::new(25, 5);
        let strategies = domain.blocking_strategies();
        let (mut state, _) = PipelineState::initial_load(
            ShardPlan::new(2),
            securities.to_vec(),
            &strategies,
            &scorer,
            &config,
        )
        .unwrap();

        // Insert of a live id.
        let err = state
            .apply(
                &UpsertBatch::inserting(vec![securities[0].clone()]),
                &strategies,
                &scorer,
                &config,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            Error::Pipeline {
                stage: "upsert",
                ..
            }
        ));
        // Delete of an unknown id.
        let err = state
            .apply(
                &UpsertBatch {
                    inserts: Vec::new(),
                    updates: Vec::new(),
                    deletes: vec![RecordId(9_999_999)],
                },
                &strategies,
                &scorer,
                &config,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            Error::Pipeline {
                stage: "upsert",
                ..
            }
        ));
        // Update of an unknown id.
        let mut ghost = securities[0].clone();
        ghost.id = RecordId(9_999_998);
        let err = state
            .apply(
                &UpsertBatch {
                    inserts: Vec::new(),
                    updates: vec![ghost],
                    deletes: Vec::new(),
                },
                &strategies,
                &scorer,
                &config,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            Error::Pipeline {
                stage: "upsert",
                ..
            }
        ));
    }

    #[test]
    fn state_round_trips_through_json() {
        let data = dataset();
        let securities = data.securities.records();
        let group_of = company_groups(&data);
        let domain = SecurityDomain::new(securities, &group_of);
        let gt = domain.ground_truth().clone();
        let scorer = OracleScorer::new(&gt);
        let config = PipelineConfig::new(25, 5);
        let strategies = domain.blocking_strategies();
        let (state, _) = PipelineState::initial_load(
            ShardPlan::new(3),
            securities.to_vec(),
            &strategies,
            &scorer,
            &config,
        )
        .unwrap();

        let text = state.to_json().to_compact_string();
        let back: PipelineState<SecurityRecord> =
            PipelineState::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.num_ids(), state.num_ids());
        assert_eq!(back.num_live(), state.num_live());
        assert_eq!(back.plan(), state.plan());
        assert_eq!(back.candidates().len(), state.candidates().len());
        for (pair, flags) in state.candidates().iter() {
            assert_eq!(back.candidates().provenance(pair), flags);
        }
        assert_eq!(back.predicted(), state.predicted());
        assert_eq!(normalize(&back.groups()), normalize(&state.groups()));
        // Serialization is canonical: a round-tripped state re-serializes
        // to the identical text.
        assert_eq!(back.to_json().to_compact_string(), text);

        // And an upsert applied to the restored state behaves like one
        // applied to the original.
        let victim = state.live_records()[0].id();
        let mut original = state.clone();
        let mut restored = back;
        let batch = UpsertBatch {
            inserts: Vec::new(),
            updates: Vec::new(),
            deletes: vec![victim],
        };
        let a = original
            .apply(&batch, &strategies, &scorer, &config)
            .unwrap();
        let b = restored
            .apply(&batch, &strategies, &scorer, &config)
            .unwrap();
        assert_eq!(normalize(&a.groups), normalize(&b.groups));
    }

    #[test]
    fn state_json_rejects_out_of_space_edges() {
        let data = dataset();
        let securities = data.securities.records();
        let group_of = company_groups(&data);
        let domain = SecurityDomain::new(securities, &group_of);
        let gt = domain.ground_truth().clone();
        let scorer = OracleScorer::new(&gt);
        let config = PipelineConfig::new(25, 5);
        let strategies = domain.blocking_strategies();
        let (state, _) = PipelineState::initial_load(
            ShardPlan::new(2),
            securities.to_vec(),
            &strategies,
            &scorer,
            &config,
        )
        .unwrap();
        assert!(!state.predicted().is_empty(), "fixture needs predictions");
        let text = state.to_json().to_compact_string();
        // A corrupted predicted edge pointing outside the id space must be
        // rejected at load time, not panic inside the next merge.
        let tampered = text.replace("\"predicted\":[", "\"predicted\":[[0,999999],");
        assert_ne!(tampered, text);
        let err = PipelineState::<SecurityRecord>::from_json(&Json::parse(&tampered).unwrap())
            .unwrap_err();
        assert!(err.message.contains("outside num_ids"), "{}", err.message);
        // Same for a candidate pair: it would reach the scorer (which
        // indexes encodings by id) before the merge.
        let tampered = text.replace("\"global\":[", "\"global\":[[0,999999,1],");
        assert_ne!(tampered, text);
        let err = PipelineState::<SecurityRecord>::from_json(&Json::parse(&tampered).unwrap())
            .unwrap_err();
        assert!(err.message.contains("outside num_ids"), "{}", err.message);
    }

    #[test]
    fn shard_plan_json_round_trips() {
        for plan in [
            ShardPlan::new(1),
            ShardPlan::new(4),
            ShardPlan::new(8).with_key(ShardKey::Source),
        ] {
            let text = plan.to_json().to_compact_string();
            let back = ShardPlan::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, plan);
        }
        assert!(ShardPlan::from_json(
            &Json::parse("{\"num_shards\":0,\"key\":\"entity\"}").unwrap()
        )
        .is_err());
    }
}
