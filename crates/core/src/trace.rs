//! Unified per-stage diagnostics for pipeline runs.
//!
//! Every stage of the execution engine records wall-clock seconds, item
//! counts, and the resident-set delta into a [`PipelineTrace`] — replacing
//! the old ad-hoc `inference_seconds` field with a uniform view over the
//! whole Figure 1 pipeline. The Table 4 binaries read the inference stage's
//! timing from here; ops dashboards get blocking/cleanup/grouping for free.

use std::fmt;

/// Canonical stage names used by the standard pipeline.
pub mod stage_names {
    /// Candidate generation.
    pub const BLOCKING: &str = "blocking";
    /// Pairwise matching over blocked candidates.
    pub const INFERENCE: &str = "inference";
    /// Pre-cleanup + Algorithm 1.
    pub const CLEANUP: &str = "cleanup";
    /// Connected components → entity groups.
    pub const GROUPING: &str = "grouping";
    /// Cross-shard merge (sharded pipelines only): boundary blocking +
    /// scoring, component union, boundary cleanup.
    pub const MERGE: &str = "merge";
}

/// Per-phase wall-clock split of a cleanup-bearing stage: the pre-cleanup
/// pass, the min-cut phase, and the betweenness phase of Algorithm 1.
///
/// Min-cut/betweenness seconds are summed across components, so under a
/// parallel pool they can exceed the stage wall-clock.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CleanupPhases {
    /// Seconds removing token-overlap edges from oversized components.
    pub pre_cleanup_seconds: f64,
    /// Seconds in the min-cut phase (bridge-first + Stoer–Wagner).
    pub mincut_seconds: f64,
    /// Seconds in the betweenness-removal phase.
    pub betweenness_seconds: f64,
    /// Min-cut rounds answered from the persistent
    /// [`CutIndex`](gralmatch_graph::CutIndex) without a Tarjan scan
    /// (0 on the non-indexed path).
    pub bridge_cache_hits: usize,
    /// Nodes the `CutIndex` had to Tarjan-rescan (dirty blocks + cold
    /// regions; 0 on the non-indexed path).
    pub rescanned_nodes: usize,
}

impl CleanupPhases {
    /// Fieldwise sum, for rolling shard traces up.
    pub fn merged(self, other: CleanupPhases) -> CleanupPhases {
        CleanupPhases {
            pre_cleanup_seconds: self.pre_cleanup_seconds + other.pre_cleanup_seconds,
            mincut_seconds: self.mincut_seconds + other.mincut_seconds,
            betweenness_seconds: self.betweenness_seconds + other.betweenness_seconds,
            bridge_cache_hits: self.bridge_cache_hits + other.bridge_cache_hits,
            rescanned_nodes: self.rescanned_nodes + other.rescanned_nodes,
        }
    }
}

/// Diagnostics of one executed stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTrace {
    /// Stage name (see [`stage_names`] for the standard pipeline).
    pub stage: &'static str,
    /// Wall-clock seconds spent in the stage.
    pub seconds: f64,
    /// Items entering the stage (records, candidate pairs, edges…).
    pub items_in: usize,
    /// Items leaving the stage.
    pub items_out: usize,
    /// Resident-set change across the stage, when the platform exposes RSS.
    pub rss_delta_bytes: Option<i64>,
    /// Heap bytes of the scorer's compiled featurization arena (symbol
    /// arena + per-symbol feature tables + interner), reported by
    /// inference stages driven by a compiled scorer — the memory side of
    /// the compile-once/score-many tradeoff, next to the wall-clock.
    pub arena_bytes: Option<usize>,
    /// Seconds of the stage's core work only, when the stage distinguishes
    /// it from setup/evaluation bookkeeping (e.g. pair scoring without the
    /// candidate sort and metrics pass). `seconds` is always the full
    /// stage wall-clock.
    pub core_seconds: Option<f64>,
    /// Per-phase cleanup timing split, reported by cleanup-bearing stages
    /// (cleanup, merge).
    pub phases: Option<CleanupPhases>,
}

impl StageTrace {
    /// Input items processed per second (0 for an instantaneous stage).
    pub fn throughput(&self) -> f64 {
        if self.seconds > 0.0 {
            self.items_in as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// Ordered stage diagnostics of one pipeline run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineTrace {
    /// One entry per executed stage, in execution order.
    pub stages: Vec<StageTrace>,
}

impl PipelineTrace {
    /// Record a finished stage.
    pub fn push(&mut self, stage: StageTrace) {
        self.stages.push(stage);
    }

    /// Roll several traces (e.g. one per shard) up into one: same-named
    /// stages are summed — seconds, item counts, RSS deltas, and core
    /// timings — in first-appearance order, so a sharded run reports one
    /// aggregate line per stage like an unsharded run does.
    pub fn rolled_up(traces: &[PipelineTrace]) -> PipelineTrace {
        let mut rolled = PipelineTrace::default();
        for trace in traces {
            for stage in &trace.stages {
                match rolled.stages.iter_mut().find(|s| s.stage == stage.stage) {
                    Some(existing) => {
                        existing.seconds += stage.seconds;
                        existing.items_in += stage.items_in;
                        existing.items_out += stage.items_out;
                        existing.rss_delta_bytes =
                            match (existing.rss_delta_bytes, stage.rss_delta_bytes) {
                                (Some(a), Some(b)) => Some(a + b),
                                (a, b) => a.or(b),
                            };
                        // Shards share one compiled arena: report the
                        // largest observation, not a double-counting sum.
                        existing.arena_bytes = match (existing.arena_bytes, stage.arena_bytes) {
                            (Some(a), Some(b)) => Some(a.max(b)),
                            (a, b) => a.or(b),
                        };
                        existing.core_seconds = match (existing.core_seconds, stage.core_seconds) {
                            (Some(a), Some(b)) => Some(a + b),
                            (a, b) => a.or(b),
                        };
                        existing.phases = match (existing.phases, stage.phases) {
                            (Some(a), Some(b)) => Some(a.merged(b)),
                            (a, b) => a.or(b),
                        };
                    }
                    None => rolled.stages.push(stage.clone()),
                }
            }
        }
        rolled
    }

    /// Total wall-clock seconds across all stages.
    pub fn total_seconds(&self) -> f64 {
        self.stages.iter().map(|s| s.seconds).sum()
    }

    /// The trace of a stage by name (first match).
    pub fn stage(&self, name: &str) -> Option<&StageTrace> {
        self.stages.iter().find(|s| s.stage == name)
    }

    /// Seconds spent in a stage (0.0 when the stage did not run).
    pub fn seconds_for(&self, name: &str) -> f64 {
        self.stage(name).map_or(0.0, |s| s.seconds)
    }

    /// Seconds of the pairwise-matching stage (Table 4's time column).
    ///
    /// Uses the stage's core-work timing (scoring only) when available, so
    /// the number stays comparable to the pre-engine `inference_seconds`
    /// field, which excluded candidate sorting and metrics evaluation.
    pub fn inference_seconds(&self) -> f64 {
        self.stage(stage_names::INFERENCE)
            .map_or(0.0, |s| s.core_seconds.unwrap_or(s.seconds))
    }
}

impl fmt::Display for PipelineTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:>10} {:>12} {:>12} {:>14}",
            "stage", "seconds", "items in", "items out", "rss delta"
        )?;
        for stage in &self.stages {
            let rss = stage.rss_delta_bytes.map_or("-".to_string(), |d| {
                format!("{:+.1} MiB", d as f64 / (1024.0 * 1024.0))
            });
            writeln!(
                f,
                "{:<12} {:>10.3} {:>12} {:>12} {:>14}",
                stage.stage, stage.seconds, stage.items_in, stage.items_out, rss
            )?;
        }
        write!(f, "total        {:>10.3}", self.total_seconds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PipelineTrace {
        let mut trace = PipelineTrace::default();
        trace.push(StageTrace {
            stage: stage_names::BLOCKING,
            seconds: 0.5,
            items_in: 100,
            items_out: 400,
            rss_delta_bytes: Some(1 << 20),
            arena_bytes: None,
            core_seconds: None,
            phases: None,
        });
        trace.push(StageTrace {
            stage: stage_names::INFERENCE,
            seconds: 2.0,
            items_in: 400,
            items_out: 120,
            rss_delta_bytes: None,
            arena_bytes: Some(1 << 16),
            core_seconds: Some(1.5),
            phases: Some(CleanupPhases {
                pre_cleanup_seconds: 0.1,
                mincut_seconds: 0.3,
                betweenness_seconds: 0.2,
                bridge_cache_hits: 5,
                rescanned_nodes: 7,
            }),
        });
        trace
    }

    #[test]
    fn totals_and_lookup() {
        let trace = sample();
        assert!((trace.total_seconds() - 2.5).abs() < 1e-12);
        assert_eq!(trace.stage(stage_names::BLOCKING).unwrap().items_out, 400);
        assert_eq!(trace.seconds_for("missing"), 0.0);
        // inference_seconds prefers the core-work timing when present.
        assert!((trace.inference_seconds() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn throughput_is_items_in_per_second() {
        let trace = sample();
        let inference = trace.stage(stage_names::INFERENCE).unwrap();
        assert!((inference.throughput() - 200.0).abs() < 1e-9);
        let instant = StageTrace {
            stage: "x",
            seconds: 0.0,
            items_in: 10,
            items_out: 10,
            rss_delta_bytes: None,
            arena_bytes: None,
            core_seconds: None,
            phases: None,
        };
        assert_eq!(instant.throughput(), 0.0);
    }

    #[test]
    fn rolled_up_sums_same_named_stages() {
        let shard_a = sample();
        let shard_b = sample();
        let rolled = PipelineTrace::rolled_up(&[shard_a, shard_b]);
        assert_eq!(rolled.stages.len(), 2, "one aggregate line per stage");
        let blocking = rolled.stage(stage_names::BLOCKING).unwrap();
        assert!((blocking.seconds - 1.0).abs() < 1e-12);
        assert_eq!(blocking.items_in, 200);
        assert_eq!(blocking.rss_delta_bytes, Some(2 << 20));
        let inference = rolled.stage(stage_names::INFERENCE).unwrap();
        assert_eq!(inference.core_seconds, Some(3.0));
        // Phase splits sum fieldwise across shards.
        let phases = inference.phases.unwrap();
        assert!((phases.pre_cleanup_seconds - 0.2).abs() < 1e-12);
        assert!((phases.mincut_seconds - 0.6).abs() < 1e-12);
        assert!((phases.betweenness_seconds - 0.4).abs() < 1e-12);
        assert_eq!(phases.bridge_cache_hits, 10);
        assert_eq!(phases.rescanned_nodes, 14);
        // Arena sizes roll up as a max (shards share one compiled view).
        assert_eq!(inference.arena_bytes, Some(1 << 16));
        // Order is first-appearance: blocking before inference.
        assert_eq!(rolled.stages[0].stage, stage_names::BLOCKING);
    }

    #[test]
    fn display_renders_all_stages() {
        let text = sample().to_string();
        assert!(text.contains("blocking"));
        assert!(text.contains("inference"));
        assert!(text.contains("total"));
    }
}
