//! Multi-tenant engine host: N named, domain-erased engines behind one
//! registry, with per-tenant model routing and hot model swap.
//!
//! The three matching domains (companies, securities, products) share one
//! engine implementation but distinct record types, so a process hosting
//! all of them needs the engine behind a vtable. [`TenantEngine`] is that
//! vtable: the record type is erased at the batch boundary — batches
//! arrive as JSON ([`TenantEngine::apply_batch_json`]) and parse into the
//! tenant's own `UpsertBatch<R>` behind the trait object — while lookups,
//! stats, snapshots, and state persistence are domain-independent
//! already. [`EngineTenant`] is the one generic implementation wrapping a
//! [`MatchEngine`]; [`EngineHost`] owns the named registry.
//!
//! ## Model routing and hot swap
//!
//! Every tenant carries a scorer fingerprint
//! ([`model_fingerprint`]) naming the domain and the exact scorer
//! (heuristic, or a [`SavedModel`] content digest) its standing
//! predictions were scored under. [`EngineHost::swap_model`] recompiles a
//! new provider from a `SavedModel` and republishes the snapshot (an
//! epoch bump with zero rebuilt buckets — readers observe the swap
//! without any group changing), but only after validating a recorded
//! fingerprint sidecar against the *tenant's* domain: a model whose
//! sidecar was written for another domain (or whose weights do not match
//! its sidecar) is rejected, and the old scorer keeps serving. Standing
//! predictions are never re-scored by a swap; only pairs scored in
//! subsequent batches see the new model.

use crate::engine::{CompiledScorerProvider, EngineStats, MatchEngine, ScorerProvider};
use crate::incremental::{UpsertBatch, UpsertOutcome};
use crate::persist::{CheckpointInfo, CheckpointPolicy};
use crate::snapshot::GroupSnapshot;
use gralmatch_lm::{HeuristicMatcher, ModelSpec, SavedModel};
use gralmatch_records::{Record, RecordId, RecordPair};
use gralmatch_util::{BinRecord, FromJson, Json, Published, Stopwatch, ToJson};
use std::any::Any;
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// Jaccard threshold of the fallback heuristic scorer — shared by
/// [`scorer_provider`] and [`model_fingerprint`] so the mismatch guard
/// can never drift from the scorer it describes.
pub const HEURISTIC_JACCARD: f32 = 0.45;

/// Scorer provider for a hosted tenant: a compiled view over the loaded
/// [`SavedModel`]'s matcher + encoder, or the training-free heuristic
/// matcher when no model is given.
pub fn scorer_provider<R: Record + 'static>(
    model: Option<SavedModel>,
) -> Box<dyn ScorerProvider<R> + 'static> {
    match model {
        Some(saved) => Box::new(CompiledScorerProvider::new(
            saved.matcher,
            saved.spec.encoder(),
        )),
        None => Box::new(CompiledScorerProvider::new(
            HeuristicMatcher {
                jaccard_threshold: HEURISTIC_JACCARD,
            },
            ModelSpec::DistilBert128All.encoder(),
        )),
    }
}

/// Identity of the scorer a tenant's state was built with — written next
/// to state and model files and checked at resume and at
/// [`EngineHost::swap_model`], because standing predictions scored under
/// one matcher must not be reconciled against pairs scored under another
/// (the groups would silently mix regimes). The fingerprint leads with
/// the **domain**, so a model fingerprinted for companies can never
/// validate onto a securities tenant; the digest covers the model's full
/// canonical serialization (weights included), so two same-shape models
/// trained on different data do not collide.
pub fn model_fingerprint(domain: &str, model: Option<&SavedModel>) -> String {
    match model {
        Some(saved) => format!(
            "{domain} saved-model spec={} digest={:016x}",
            saved.spec.key(),
            fnv1a(saved.to_json().to_compact_string().as_bytes())
        ),
        None => format!("{domain} heuristic jaccard={HEURISTIC_JACCARD}"),
    }
}

/// FNV-1a over a byte stream (content digest for the scorer sidecar; not
/// cryptographic, just collision-resistant enough to catch a swapped
/// weight file).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Why a host operation failed. Serving layers map these onto stable
/// protocol error codes, so the variants are the contract — a batch that
/// fails to *parse* is distinguishable from one the engine *rejected*,
/// and an unknown tenant from an unknown record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostError {
    /// No tenant is registered under the name.
    UnknownTenant(String),
    /// A batch failed to parse as the tenant's record type.
    BadBatch(String),
    /// The engine rejected the batch (validation failure); nothing was
    /// applied.
    BatchRejected(String),
    /// A model swap was refused; the old scorer keeps serving.
    ModelRejected(String),
    /// Registry misuse: duplicate or invalid tenant name.
    InvalidTenant(String),
    /// A durability operation (WAL append, checkpoint, recovery) failed,
    /// or a checkpoint was requested on a tenant that never enabled
    /// durability.
    Durability(String),
}

impl fmt::Display for HostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostError::UnknownTenant(name) => write!(f, "no tenant named {name:?}"),
            HostError::BadBatch(message) => write!(f, "bad batch: {message}"),
            HostError::BatchRejected(message) => write!(f, "batch rejected: {message}"),
            HostError::ModelRejected(message) => write!(f, "model rejected: {message}"),
            HostError::InvalidTenant(message) => write!(f, "invalid tenant: {message}"),
            HostError::Durability(message) => write!(f, "durability: {message}"),
        }
    }
}

/// One hosted, domain-erased engine. Everything a serving front-end needs
/// is object-safe here: JSON-boundary batch application, group lookups,
/// stats, the snapshot publish slot for concurrent readers, state
/// persistence, and the model-swap hook. [`EngineTenant`] is the only
/// implementation; the trait exists so companies/securities/products
/// tenants coexist in one [`EngineHost`] behind one vtable.
pub trait TenantEngine {
    /// The matching domain this tenant serves (`"companies"`,
    /// `"securities"`, `"products"`, …) — the namespace its model
    /// fingerprints validate against.
    fn domain(&self) -> &'static str;

    /// Fingerprint of the scorer currently serving (see
    /// [`model_fingerprint`]).
    fn fingerprint(&self) -> &str;

    /// Parse `batch` as this tenant's record type and apply it, returning
    /// the outcome and its wall-clock seconds. This is the erasure point:
    /// the typed `UpsertBatch<R>` exists only behind the vtable.
    fn apply_batch_json(&mut self, batch: &Json) -> Result<(UpsertOutcome, f64), HostError>;

    /// Group id of a record (`None` when the id is not live).
    fn group_of(&self, id: RecordId) -> Option<RecordId>;

    /// Sorted members of a group (`None` when `group` is not a group id).
    fn group_members(&self, group: RecordId) -> Option<Vec<RecordId>>;

    /// Score one pair under the scorer currently serving (swap tests and
    /// diagnostics; serving itself scores inside `apply`).
    fn score_pair(&self, pair: RecordPair) -> f32;

    /// Aggregate engine counters.
    fn stats(&self) -> EngineStats;

    /// The current epoch's published snapshot.
    fn snapshot(&self) -> Arc<GroupSnapshot>;

    /// The publish slot concurrent readers subscribe to (one
    /// [`gralmatch_util::PublishedReader`] per reader thread per tenant).
    fn snapshot_source(&self) -> Arc<Published<GroupSnapshot>>;

    /// Serialize the standing pipeline state (pretty JSON, the
    /// `PipelineState` codec).
    fn state_json(&self) -> String;

    /// Install a new scorer: recompile the provider over the live
    /// records, adopt `fingerprint`, and republish the snapshot (epoch
    /// bump, zero groups changed). Callers must have validated the model
    /// against this tenant's domain first — use
    /// [`EngineHost::swap_model`], which does. On a durable tenant the
    /// swap forces a checkpoint *before* installing the new scorer, so
    /// no WAL frame written under the old scorer can ever replay under
    /// the new one — and a checkpoint failure leaves the tenant serving
    /// the old model with its durable files untouched.
    fn swap_model(&mut self, model: SavedModel, fingerprint: String) -> Result<(), HostError>;

    /// Turn on binary durability: write an initial checkpoint (snapshot +
    /// empty WAL + scorer-fingerprint sidecar) at `snapshot_path` and
    /// append every subsequent batch to the WAL before applying it (see
    /// [`crate::persist`]).
    fn enable_durability(
        &mut self,
        snapshot_path: &Path,
        policy: CheckpointPolicy,
    ) -> Result<(), HostError>;

    /// Force a checkpoint now: atomically rewrite the snapshot at the
    /// published epoch and truncate the WAL. Errs with
    /// [`HostError::Durability`] when the tenant is not durable.
    fn checkpoint(&mut self) -> Result<CheckpointInfo, HostError>;

    /// Whether [`TenantEngine::enable_durability`] has been called.
    fn is_durable(&self) -> bool;

    /// Downcast support for typed access ([`EngineHost::typed_tenant_mut`]).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// The one [`TenantEngine`] implementation: a domain tag, a fingerprint,
/// and a [`MatchEngine`] over the tenant's record type.
pub struct EngineTenant<R>
where
    R: Record + Clone + Sync + ToJson + FromJson + BinRecord + 'static,
{
    domain: &'static str,
    engine: MatchEngine<'static, R>,
    fingerprint: String,
}

impl<R> EngineTenant<R>
where
    R: Record + Clone + Sync + ToJson + FromJson + BinRecord + 'static,
{
    /// Wrap an engine as a tenant. `fingerprint` must describe the scorer
    /// the engine is serving with (see [`model_fingerprint`]).
    pub fn new(domain: &'static str, engine: MatchEngine<'static, R>, fingerprint: String) -> Self {
        EngineTenant {
            domain,
            engine,
            fingerprint,
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &MatchEngine<'static, R> {
        &self.engine
    }

    /// Apply one typed batch, returning the outcome and its wall-clock
    /// seconds — the allocation-free path for in-process drivers
    /// (loadgen, tests); protocol traffic goes through
    /// [`TenantEngine::apply_batch_json`].
    pub fn apply(&mut self, batch: &UpsertBatch<R>) -> Result<(UpsertOutcome, f64), HostError> {
        let watch = Stopwatch::start();
        let outcome = self
            .engine
            .apply_batch(batch)
            .map_err(|e| HostError::BatchRejected(format!("{e:?}")))?;
        Ok((outcome, watch.elapsed_secs()))
    }
}

impl<R> TenantEngine for EngineTenant<R>
where
    R: Record + Clone + Sync + ToJson + FromJson + BinRecord + 'static,
{
    fn domain(&self) -> &'static str {
        self.domain
    }

    fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    fn apply_batch_json(&mut self, batch: &Json) -> Result<(UpsertOutcome, f64), HostError> {
        let batch =
            UpsertBatch::<R>::from_json(batch).map_err(|e| HostError::BadBatch(e.message))?;
        self.apply(&batch)
    }

    fn group_of(&self, id: RecordId) -> Option<RecordId> {
        self.engine.group_of(id)
    }

    fn group_members(&self, group: RecordId) -> Option<Vec<RecordId>> {
        self.engine.group_members(group).map(<[RecordId]>::to_vec)
    }

    fn score_pair(&self, pair: RecordPair) -> f32 {
        self.engine.scorer().score_pair(pair)
    }

    fn stats(&self) -> EngineStats {
        self.engine.stats()
    }

    fn snapshot(&self) -> Arc<GroupSnapshot> {
        self.engine.snapshot()
    }

    fn snapshot_source(&self) -> Arc<Published<GroupSnapshot>> {
        self.engine.snapshot_source()
    }

    fn state_json(&self) -> String {
        self.engine.state().to_json().to_pretty_string()
    }

    fn swap_model(&mut self, model: SavedModel, fingerprint: String) -> Result<(), HostError> {
        // WAL frames must never replay under a different scorer than the
        // one that scored them, so a durable tenant checkpoints *before*
        // the swap installs anything: the snapshot data is
        // model-independent, and the truncated WAL guarantees every
        // future frame replays under the scorer named by the (freshly
        // rewritten) sidecar. Checkpoint-first also makes failure safe —
        // an error leaves the tenant untouched, still serving the old
        // model with its WAL (and old sidecar, written last inside the
        // checkpoint) intact, instead of serving a model the durable
        // files do not record.
        if self.engine.is_durable() {
            self.engine
                .set_durability_fingerprint(Some(fingerprint.clone()));
            if let Err(e) = self.engine.checkpoint() {
                self.engine
                    .set_durability_fingerprint(Some(self.fingerprint.clone()));
                return Err(HostError::Durability(e.to_string()));
            }
        }
        self.engine.replace_provider(scorer_provider(Some(model)));
        self.fingerprint = fingerprint;
        Ok(())
    }

    fn enable_durability(
        &mut self,
        snapshot_path: &Path,
        policy: CheckpointPolicy,
    ) -> Result<(), HostError> {
        // Attach first, set the fingerprint, then checkpoint once — the
        // initial snapshot and its `.scorer` sidecar land together.
        self.engine
            .attach_durability(snapshot_path.to_path_buf(), policy)
            .map_err(|e| HostError::Durability(e.to_string()))?;
        self.engine
            .set_durability_fingerprint(Some(self.fingerprint.clone()));
        self.engine
            .checkpoint()
            .map_err(|e| HostError::Durability(e.to_string()))?;
        Ok(())
    }

    fn checkpoint(&mut self) -> Result<CheckpointInfo, HostError> {
        self.engine
            .checkpoint()
            .map_err(|e| HostError::Durability(e.to_string()))
    }

    fn is_durable(&self) -> bool {
        self.engine.is_durable()
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The registry: N named tenants in registration order. The first tenant
/// registered is the **default** — single-tenant deployments are just a
/// one-entry host, and protocol clients that never say `use <tenant>`
/// talk to it.
#[derive(Default)]
pub struct EngineHost {
    tenants: Vec<(String, Box<dyn TenantEngine>)>,
}

impl EngineHost {
    /// An empty host; tenants arrive via [`add_tenant`](Self::add_tenant).
    pub fn new() -> Self {
        EngineHost::default()
    }

    /// Register a tenant under `name`. Names are protocol tokens
    /// (`<name>.group_of 7`), so they are restricted to
    /// `[A-Za-z0-9_-]+`; duplicates are rejected.
    pub fn add_tenant(
        &mut self,
        name: impl Into<String>,
        tenant: Box<dyn TenantEngine>,
    ) -> Result<(), HostError> {
        let name = name.into();
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(HostError::InvalidTenant(format!(
                "name {name:?} is not a protocol token ([A-Za-z0-9_-]+)"
            )));
        }
        if self.tenant(&name).is_some() {
            return Err(HostError::InvalidTenant(format!(
                "tenant {name:?} is already registered"
            )));
        }
        self.tenants.push((name, tenant));
        Ok(())
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Tenant names in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.tenants.iter().map(|(name, _)| name.as_str()).collect()
    }

    /// The default tenant's name (first registered).
    pub fn default_tenant(&self) -> Option<&str> {
        self.tenants.first().map(|(name, _)| name.as_str())
    }

    /// Iterate `(name, tenant)` in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &dyn TenantEngine)> {
        self.tenants
            .iter()
            .map(|(name, tenant)| (name.as_str(), tenant.as_ref()))
    }

    /// A tenant by name.
    pub fn tenant(&self, name: &str) -> Option<&dyn TenantEngine> {
        self.tenants
            .iter()
            .find(|(tenant, _)| tenant == name)
            .map(|(_, tenant)| tenant.as_ref())
    }

    /// A tenant by name, mutably.
    pub fn tenant_mut(&mut self, name: &str) -> Option<&mut Box<dyn TenantEngine>> {
        self.tenants
            .iter_mut()
            .find(|(tenant, _)| tenant == name)
            .map(|(_, tenant)| tenant)
    }

    /// Downcast a tenant to its typed [`EngineTenant`] (in-process
    /// drivers that batch without the JSON boundary). `None` when the
    /// name is unknown *or* the record type does not match.
    pub fn typed_tenant_mut<R>(&mut self, name: &str) -> Option<&mut EngineTenant<R>>
    where
        R: Record + Clone + Sync + ToJson + FromJson + BinRecord + 'static,
    {
        self.tenant_mut(name)?.as_any_mut().downcast_mut()
    }

    /// Hot-swap `tenant`'s model: validate the recorded fingerprint
    /// sidecar (when present) against the model **under this tenant's
    /// domain**, then recompile the provider and republish. Returns the
    /// new fingerprint. On `Err` the tenant is untouched — the old scorer
    /// keeps serving and no epoch is published.
    ///
    /// A missing sidecar is advisory-accept (hand-built models), matching
    /// the resume-time contract; a *recorded* mismatch — wrong domain or
    /// wrong weights — is a rejection.
    pub fn swap_model(
        &mut self,
        tenant: &str,
        model: SavedModel,
        recorded: Option<&str>,
    ) -> Result<String, HostError> {
        let entry = self
            .tenant_mut(tenant)
            .ok_or_else(|| HostError::UnknownTenant(tenant.to_string()))?;
        let fingerprint = model_fingerprint(entry.domain(), Some(&model));
        if let Some(recorded) = recorded {
            if recorded.trim() != fingerprint {
                return Err(HostError::ModelRejected(format!(
                    "sidecar records {:?} but the model fingerprints as {:?} for tenant \
                     {tenant:?} — old scorer keeps serving",
                    recorded.trim(),
                    fingerprint
                )));
            }
        }
        entry.swap_model(model, fingerprint.clone())?;
        Ok(fingerprint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use crate::shard::ShardPlan;
    use gralmatch_blocking::{SecurityIdOverlap, TokenOverlap, TokenOverlapConfig};
    use gralmatch_datagen::{generate, GenerationConfig};
    use gralmatch_lm::{FeatureConfig, LogisticModel, TrainedMatcher};
    use gralmatch_records::SecurityRecord;

    fn securities() -> Vec<SecurityRecord> {
        let mut config = GenerationConfig::synthetic_full();
        config.num_entities = 40;
        generate(&config).unwrap().securities.records().to_vec()
    }

    fn security_tenant(records: Vec<SecurityRecord>) -> EngineTenant<SecurityRecord> {
        let (engine, _) = MatchEngine::bootstrap(
            ShardPlan::new(2),
            records,
            vec![
                Box::new(SecurityIdOverlap),
                Box::new(TokenOverlap::new(TokenOverlapConfig::default())),
            ],
            scorer_provider(None),
            PipelineConfig::new(25, 5),
        )
        .unwrap();
        EngineTenant::new("securities", engine, model_fingerprint("securities", None))
    }

    #[test]
    fn registry_routes_by_name_and_rejects_bad_names() {
        let mut host = EngineHost::new();
        assert!(host.is_empty());
        host.add_tenant("sec", Box::new(security_tenant(securities())))
            .unwrap();
        assert_eq!(host.default_tenant(), Some("sec"));
        assert_eq!(host.names(), vec!["sec"]);
        assert_eq!(host.tenant("sec").unwrap().domain(), "securities");
        assert!(host.tenant("nope").is_none());
        assert!(host.typed_tenant_mut::<SecurityRecord>("sec").is_some());
        assert!(host
            .typed_tenant_mut::<gralmatch_records::CompanyRecord>("sec")
            .is_none());

        // Duplicate and non-token names are registry errors.
        let dup = host.add_tenant("sec", Box::new(security_tenant(securities())));
        assert!(matches!(dup, Err(HostError::InvalidTenant(_))), "{dup:?}");
        for bad in ["", "a.b", "a b", "a\nb"] {
            let err = host.add_tenant(bad, Box::new(security_tenant(securities())));
            assert!(matches!(err, Err(HostError::InvalidTenant(_))), "{bad:?}");
        }
    }

    #[test]
    fn json_batches_apply_behind_the_vtable() {
        let records = securities();
        let held_out = records.last().unwrap().clone();
        let held_id = held_out.id;
        let mut host = EngineHost::new();
        host.add_tenant(
            "sec",
            Box::new(security_tenant(records[..records.len() - 1].to_vec())),
        )
        .unwrap();

        let tenant = host.tenant_mut("sec").unwrap();
        let epoch = tenant.snapshot().epoch();
        let batch = UpsertBatch::inserting(vec![held_out]).to_json();
        let (outcome, seconds) = tenant.apply_batch_json(&batch).unwrap();
        assert_eq!(outcome.inserted, 1);
        assert!(seconds >= 0.0);
        assert_eq!(tenant.snapshot().epoch(), epoch + 1);
        assert!(tenant.group_of(held_id).is_some());

        // A malformed batch is BadBatch; a rejected one BatchRejected.
        let garbage = Json::parse("{\"inserts\": 7}").unwrap();
        assert!(matches!(
            tenant.apply_batch_json(&garbage),
            Err(HostError::BadBatch(_))
        ));
        let replay = tenant.apply_batch_json(&batch);
        assert!(
            matches!(replay, Err(HostError::BatchRejected(_))),
            "{replay:?}"
        );
        // Errors leave the epoch alone.
        assert_eq!(tenant.snapshot().epoch(), epoch + 1);
    }

    #[test]
    fn swap_model_validates_the_sidecar_against_the_tenant_domain() {
        let mut host = EngineHost::new();
        host.add_tenant("sec", Box::new(security_tenant(securities())))
            .unwrap();
        let heuristic = model_fingerprint("securities", None);
        assert_eq!(host.tenant("sec").unwrap().fingerprint(), heuristic);
        let epoch = host.tenant("sec").unwrap().snapshot().epoch();

        let matcher = TrainedMatcher::new(
            LogisticModel::new(FeatureConfig::default().dim()),
            FeatureConfig::default(),
        );
        let model = SavedModel::new(ModelSpec::Ditto128, matcher);

        // Sidecar written for another domain: rejected, nothing published.
        let wrong_domain = model_fingerprint("companies", Some(&model));
        let err = host.swap_model("sec", model.clone(), Some(&wrong_domain));
        assert!(matches!(err, Err(HostError::ModelRejected(_))), "{err:?}");
        assert_eq!(host.tenant("sec").unwrap().fingerprint(), heuristic);
        assert_eq!(host.tenant("sec").unwrap().snapshot().epoch(), epoch);

        // Unknown tenant is its own error.
        assert!(matches!(
            host.swap_model("nope", model.clone(), None),
            Err(HostError::UnknownTenant(_))
        ));

        // Matching sidecar: accepted, fingerprint adopted, epoch bumped
        // with the groups untouched.
        let groups = host.tenant("sec").unwrap().snapshot().groups();
        let right = model_fingerprint("securities", Some(&model));
        let adopted = host.swap_model("sec", model, Some(&right)).unwrap();
        assert_eq!(adopted, right);
        let tenant = host.tenant("sec").unwrap();
        assert_eq!(tenant.fingerprint(), right);
        assert_eq!(tenant.snapshot().epoch(), epoch + 1);
        assert_eq!(tenant.snapshot().groups(), groups);
    }

    #[test]
    fn durable_tenant_checkpoints_on_swap_and_on_demand() {
        let dir = std::env::temp_dir().join("gralmatch-host-durable");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let snapshot = dir.join("sec.bin");

        let records = securities();
        let held_out = records.last().unwrap().clone();
        let mut host = EngineHost::new();
        host.add_tenant(
            "sec",
            Box::new(security_tenant(records[..records.len() - 1].to_vec())),
        )
        .unwrap();

        let tenant = host.tenant_mut("sec").unwrap();
        assert!(!tenant.is_durable());
        let not_durable = tenant.checkpoint();
        assert!(
            matches!(not_durable, Err(HostError::Durability(_))),
            "{not_durable:?}"
        );

        tenant
            .enable_durability(&snapshot, CheckpointPolicy::default())
            .unwrap();
        assert!(tenant.is_durable());
        // The initial checkpoint writes the snapshot and the scorer
        // sidecar together.
        assert!(snapshot.exists());
        let sidecar = std::fs::read_to_string(crate::persist::fingerprint_path(&snapshot)).unwrap();
        assert_eq!(sidecar, model_fingerprint("securities", None));

        let batch = UpsertBatch::inserting(vec![held_out]).to_json();
        tenant.apply_batch_json(&batch).unwrap();
        let wal = crate::persist::wal_path(&snapshot);
        assert_eq!(crate::persist::read_wal(&wal).unwrap().frames.len(), 1);

        // A model swap on a durable tenant truncates the WAL (no frame
        // scored under the old model can replay under the new one) and
        // rewrites the sidecar.
        let matcher = TrainedMatcher::new(
            LogisticModel::new(FeatureConfig::default().dim()),
            FeatureConfig::default(),
        );
        let model = SavedModel::new(ModelSpec::Ditto128, matcher);
        let adopted = host.swap_model("sec", model, None).unwrap();
        assert_eq!(crate::persist::read_wal(&wal).unwrap().frames.len(), 0);
        let sidecar = std::fs::read_to_string(crate::persist::fingerprint_path(&snapshot)).unwrap();
        assert_eq!(sidecar, adopted);

        // An explicit checkpoint reports the published epoch.
        let tenant = host.tenant_mut("sec").unwrap();
        let info = tenant.checkpoint().unwrap();
        assert_eq!(info.epoch, tenant.snapshot().epoch());
        assert!(info.snapshot_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprints_distinguish_domains_and_model_contents() {
        assert_eq!(
            model_fingerprint("securities", None),
            "securities heuristic jaccard=0.45"
        );
        assert_ne!(
            model_fingerprint("securities", None),
            model_fingerprint("companies", None)
        );
        let matcher = TrainedMatcher::new(
            LogisticModel::new(FeatureConfig::default().dim()),
            FeatureConfig::default(),
        );
        let a = SavedModel::new(ModelSpec::Ditto128, matcher.clone());
        let b = SavedModel::new(ModelSpec::Ditto128, matcher.with_threshold(0.7));
        assert_ne!(
            model_fingerprint("securities", Some(&a)),
            model_fingerprint("securities", Some(&b)),
            "fingerprint must cover model contents, not just its shape"
        );
        assert_ne!(
            model_fingerprint("securities", Some(&a)),
            model_fingerprint("products", Some(&a)),
            "fingerprint must cover the domain"
        );
    }
}
