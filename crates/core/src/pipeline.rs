//! Pipeline configuration, outcome, and the oracle scorers.
//!
//! The end-to-end pipeline (paper Figure 1) is a **domain-generic staged
//! engine**: a [`MatchingDomain`](crate::domain::MatchingDomain) supplies
//! records, ground truth, and a declarative
//! [`Blocker`](gralmatch_blocking::Blocker) list, and the
//! [`StagePipeline`] drives
//!
//! ```text
//! BlockingStage → InferenceStage → CleanupStage → GroupingStage
//! ```
//!
//! over a shared context, recording wall-clock / throughput / memory per
//! stage into a [`PipelineTrace`]. The usual
//! entry points are [`run_domain`](crate::domain::run_domain) /
//! [`run_domain_with_matcher`](crate::domain::run_domain_with_matcher) with
//! one of the paper domains ([`CompanyDomain`](crate::domain::CompanyDomain),
//! [`SecurityDomain`](crate::domain::SecurityDomain),
//! [`ProductDomain`](crate::domain::ProductDomain)); evaluation reports the
//! paper's three stages (pairwise / pre-cleanup / post-cleanup — the column
//! groups of Table 4) in a [`MatchingOutcome`].
//!
//! This module keeps the engine-independent pieces — [`PipelineConfig`],
//! [`MatchingOutcome`], the oracle scorers. (The pre-engine free-function
//! shims — `company_candidates`, `run_pipeline`, … — served their one
//! deprecation release and are gone; use the domain/engine entry points.)

use crate::cleanup::{CleanupConfig, CleanupReport};
use crate::metrics::{GroupMetrics, PairMetrics};
use crate::stage::{StageContext, StagePipeline};
use crate::trace::PipelineTrace;
use gralmatch_blocking::{BlockerRun, CandidateSet};
use gralmatch_lm::PairScorer;
use gralmatch_records::{GroundTruth, RecordId, RecordPair};
use gralmatch_util::{Error, FxHashSet, Parallelism};

/// Pipeline knobs (γ/μ per Table 2, parallelism, pre-cleanup).
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Graph-cleanup thresholds.
    pub cleanup: CleanupConfig,
    /// Worker-pool sizing for parallel stages. `Auto` (the default) uses
    /// all hardware threads for large inputs and runs small inputs
    /// sequentially; `Fixed(n)` is honored regardless of input size.
    pub parallelism: Parallelism,
}

impl PipelineConfig {
    /// Construct with Table 2 thresholds.
    pub fn new(gamma: usize, mu: usize) -> Self {
        PipelineConfig {
            cleanup: CleanupConfig::new(gamma, mu),
            parallelism: Parallelism::Auto,
        }
    }

    /// Enable the companies' pre-cleanup (threshold 50 in the paper).
    pub fn with_pre_cleanup(mut self, threshold: usize) -> Self {
        self.cleanup.pre_cleanup_threshold = Some(threshold);
        self
    }

    /// Override worker-pool sizing.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Force exactly `threads` workers (legacy `threads` field migration).
    pub fn with_threads(self, threads: usize) -> Self {
        self.with_parallelism(Parallelism::Fixed(threads))
    }
}

/// Everything the Table 4 rows need for one (dataset, model) cell.
#[derive(Debug, Clone)]
pub struct MatchingOutcome {
    /// Number of candidate pairs after blocking (Table 2 column).
    pub num_candidates: usize,
    /// Positively predicted pairs (stage 1 input).
    pub num_predicted: usize,
    /// Stage 1: pairwise metrics on blocked pairs.
    pub pairwise: PairMetrics,
    /// Stage 2: metrics over the closure of raw predictions.
    pub pre_cleanup: GroupMetrics,
    /// Stage 3: metrics over the closure of cleaned components.
    pub post_cleanup: GroupMetrics,
    /// Final entity groups (largest first).
    pub groups: Vec<Vec<RecordId>>,
    /// Per-stage wall-clock / throughput / memory diagnostics.
    pub trace: PipelineTrace,
    /// Per-recipe blocking diagnostics: one entry per recipe of the
    /// domain's blocking list, zero-candidate recipes included, so report
    /// shapes are stable across runs. Empty when blocking ran outside the
    /// engine (seeded candidate sets).
    pub blocker_runs: Vec<BlockerRun>,
    /// Cleanup diagnostics.
    pub cleanup_report: CleanupReport,
}

impl MatchingOutcome {
    /// Inference wall-clock seconds (Table 4's time column), read from the
    /// trace's inference stage.
    pub fn inference_seconds(&self) -> f64 {
        self.trace.inference_seconds()
    }

    /// Assemble the outcome from a finished stage context.
    ///
    /// # Panics
    /// If the context did not run the full inference→cleanup→grouping
    /// lineup (engine entry points guarantee it did).
    pub fn from_context(ctx: StageContext<'_>, trace: PipelineTrace) -> Self {
        MatchingOutcome {
            num_candidates: ctx.num_candidates,
            num_predicted: ctx.predicted.as_ref().map_or(0, Vec::len),
            pairwise: ctx.pairwise.expect("inference stage ran"),
            pre_cleanup: ctx.pre_cleanup.expect("cleanup stage ran"),
            post_cleanup: ctx.post_cleanup.expect("grouping stage ran"),
            groups: ctx.groups.expect("grouping stage ran"),
            trace,
            blocker_runs: ctx.blocker_runs,
            cleanup_report: ctx.cleanup_report,
        }
    }
}

/// Run the post-blocking stages (inference → cleanup → grouping) over a
/// precomputed candidate set — for callers that ran blocking separately
/// (cached blockings, incremental upserts) or drive a custom scorer.
pub fn run_with_candidates(
    num_records: usize,
    candidates: &CandidateSet,
    scorer: &dyn PairScorer,
    gt: &GroundTruth,
    config: &PipelineConfig,
) -> Result<MatchingOutcome, Error> {
    let mut ctx = StageContext::new(num_records, gt, scorer, config);
    ctx.num_candidates = candidates.len();
    ctx.candidates = Some(std::borrow::Cow::Borrowed(candidates));
    let trace = StagePipeline::post_blocking().run(&mut ctx)?;
    Ok(MatchingOutcome::from_context(ctx, trace))
}

/// Oracle matcher for tests and upper-bound experiments: predicts the
/// ground truth restricted to the candidate pairs.
#[derive(Debug, Clone)]
pub struct OracleMatcher<'gt> {
    gt: &'gt GroundTruth,
    /// Pairs on which the oracle deliberately predicts the opposite of the
    /// truth — used to study false-positive effects.
    pub flip_pairs: Vec<RecordPair>,
}

impl<'gt> OracleMatcher<'gt> {
    /// Perfect oracle.
    pub fn new(gt: &'gt GroundTruth) -> Self {
        OracleMatcher {
            gt,
            flip_pairs: Vec::new(),
        }
    }

    /// Oracle with deliberate errors injected on `flip_pairs`.
    pub fn with_flips(gt: &'gt GroundTruth, flip_pairs: Vec<RecordPair>) -> Self {
        OracleMatcher { gt, flip_pairs }
    }

    /// The scorer driving this oracle through the engine.
    pub fn scorer(&self) -> OracleScorer<'gt> {
        OracleScorer {
            gt: self.gt,
            flips: self.flip_pairs.iter().copied().collect(),
        }
    }
}

/// [`PairScorer`] reading the ground truth (with optional flipped pairs) —
/// the oracle needs record ids, not encodings, so it bypasses the
/// matcher/encoder layer entirely.
#[derive(Debug, Clone)]
pub struct OracleScorer<'gt> {
    gt: &'gt GroundTruth,
    flips: FxHashSet<RecordPair>,
}

impl<'gt> OracleScorer<'gt> {
    /// Perfect oracle scorer.
    pub fn new(gt: &'gt GroundTruth) -> Self {
        OracleScorer {
            gt,
            flips: FxHashSet::default(),
        }
    }
}

impl PairScorer for OracleScorer<'_> {
    fn score_pair(&self, pair: RecordPair) -> f32 {
        if self.gt.is_match_pair(pair) != self.flips.contains(&pair) {
            1.0
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{
        blocked_candidates, run_domain, run_domain_with_matcher, CompanyDomain, MatchingDomain,
        SecurityDomain,
    };
    use crate::trace::stage_names;
    use gralmatch_datagen::{generate, GenerationConfig};
    use gralmatch_lm::ModelSpec;
    use gralmatch_records::Record;
    use gralmatch_util::FxHashMap;

    fn dataset() -> gralmatch_datagen::FinancialDataset {
        let mut config = GenerationConfig::synthetic_full();
        config.num_entities = 150;
        generate(&config).unwrap()
    }

    #[test]
    fn oracle_pipeline_reaches_high_f1() {
        let data = dataset();
        let companies = data.companies.records();
        let domain = CompanyDomain::new(companies, data.securities.records());
        let config = PipelineConfig::new(25, 5).with_pre_cleanup(50);
        let gt = domain.ground_truth().clone();
        let outcome = run_domain(&domain, &OracleScorer::new(&gt), &config).unwrap();
        // The oracle's pairwise precision is 1; recall bounded by blocking.
        assert_eq!(outcome.pairwise.precision, 1.0);
        assert!(outcome.pairwise.recall > 0.6, "{:?}", outcome.pairwise);
        assert!(outcome.post_cleanup.pairs.f1 > 0.6);
        assert!(outcome.post_cleanup.cluster_purity > 0.9);
        // The trace covers the engine's bootstrap lineup: one insert-only
        // batch through blocking → inference → dirty-component merge.
        assert_eq!(
            outcome
                .trace
                .stages
                .iter()
                .map(|s| s.stage)
                .collect::<Vec<_>>(),
            vec![
                stage_names::BLOCKING,
                stage_names::INFERENCE,
                stage_names::MERGE
            ]
        );
        assert_eq!(
            outcome
                .trace
                .stage(stage_names::INFERENCE)
                .unwrap()
                .items_in,
            outcome.num_candidates
        );
    }

    #[test]
    fn false_positive_bridge_hurts_pre_cleanup_only() {
        let data = dataset();
        let companies = data.companies.records();
        let domain = CompanyDomain::new(companies, data.securities.records());
        let gt = domain.ground_truth().clone();
        // Flip one candidate non-match into a predicted match.
        let flip = blocked_candidates(&domain)
            .pairs_sorted()
            .into_iter()
            .find(|&pair| !gt.is_match_pair(pair))
            .expect("some negative candidate exists");
        let config = PipelineConfig::new(25, 5).with_pre_cleanup(50);
        let oracle = OracleMatcher::with_flips(&gt, vec![flip]);
        let outcome = run_domain(&domain, &oracle.scorer(), &config).unwrap();
        assert!(outcome.pairwise.precision < 1.0);
        // The cleanup should recover most of the damage.
        assert!(outcome.post_cleanup.pairs.precision >= outcome.pre_cleanup.pairs.precision);
    }

    #[test]
    fn trained_pipeline_end_to_end() {
        use gralmatch_records::{DatasetSplit, SplitRatios};
        use gralmatch_util::SplitRng;
        let data = dataset();
        let companies = data.companies.records();
        let gt = data.companies.ground_truth();
        let spec = ModelSpec::DistilBert128All;
        let encoded = spec.encode_records(companies);
        let split = DatasetSplit::new(&gt, SplitRatios::default(), &mut SplitRng::new(3));
        let (matcher, _) =
            gralmatch_lm::train(companies, &encoded, &gt, &split, &spec.train_config()).unwrap();
        let domain = CompanyDomain::new(companies, data.securities.records());
        let config = PipelineConfig::new(25, 5).with_pre_cleanup(50);
        let outcome = run_domain_with_matcher(&domain, &matcher, &encoded, &config).unwrap();
        assert!(outcome.num_candidates > 0);
        assert!(outcome.pairwise.f1 > 0.5, "pairwise {:?}", outcome.pairwise);
        assert!(
            outcome.post_cleanup.pairs.f1 >= outcome.pre_cleanup.pairs.f1 * 0.8,
            "cleanup should not destroy the matching: pre {:?} post {:?}",
            outcome.pre_cleanup.pairs,
            outcome.post_cleanup.pairs
        );
        // μ bound: no final group exceeds the number of sources by much —
        // Algorithm 1 guarantees all components ≤ μ.
        assert!(outcome.groups.iter().all(|g| g.len() <= 5));
        // The inference timing column reads from the trace.
        assert!(outcome.inference_seconds() >= 0.0);
    }

    #[test]
    fn security_pipeline_with_company_groups() {
        let data = dataset();
        let companies = data.companies.records();
        let securities = data.securities.records();
        // Perfect company grouping as issuer-match input.
        let mut group_of: FxHashMap<RecordId, u32> = FxHashMap::default();
        for company in companies {
            group_of.insert(company.id(), company.entity.unwrap().0);
        }
        let domain = SecurityDomain::new(securities, &group_of);
        assert!(!blocked_candidates(&domain).is_empty());
        let security_gt = domain.ground_truth().clone();
        let config = PipelineConfig::new(25, 5);
        let outcome = run_domain(&domain, &OracleScorer::new(&security_gt), &config).unwrap();
        assert!(outcome.pairwise.recall > 0.5, "{:?}", outcome.pairwise);
    }

    #[test]
    fn seeded_candidates_match_engine_results() {
        // `run_with_candidates` over a domain's blocked set must agree with
        // the engine running blocking itself (cached-blocking contract).
        let data = dataset();
        let companies = data.companies.records();
        let gt = data.companies.ground_truth();
        let config = PipelineConfig::new(25, 5).with_pre_cleanup(50);

        let domain = CompanyDomain::new(companies, data.securities.records());
        let candidates = blocked_candidates(&domain);
        let oracle = OracleMatcher::new(&gt);
        let via_seeded =
            run_with_candidates(companies.len(), &candidates, &oracle.scorer(), &gt, &config)
                .unwrap();
        let via_engine = run_domain(&domain, &oracle.scorer(), &config).unwrap();
        assert_eq!(via_seeded.num_candidates, via_engine.num_candidates);
        assert_eq!(via_seeded.num_predicted, via_engine.num_predicted);
        assert_eq!(via_seeded.pairwise, via_engine.pairwise);
        assert_eq!(
            via_seeded.post_cleanup.pairs.f1,
            via_engine.post_cleanup.pairs.f1
        );
    }
}
