//! End-to-end entity group matching pipeline (paper Figure 1) and the
//! three-stage evaluation of Section 5.3.2.
//!
//! 1. **Blocking** — per-dataset candidate builders
//!    ([`company_candidates`], [`security_candidates`], [`product_candidates`]).
//! 2. **Pairwise matching** — any [`PairwiseMatcher`] over the encoded
//!    records, parallelized.
//! 3. **GraLMatch Graph Cleanup** — pre-cleanup + Algorithm 1.
//! 4. **Entity groups** — connected components of the cleaned graph.
//!
//! Evaluation reports three stages: pairwise (blocked pairs), pre-cleanup
//! (implied transitive closure of raw predictions), post-cleanup (closure of
//! cleaned components) — the three column groups of Table 4.

use crate::cleanup::{graph_cleanup, pre_cleanup, CleanupConfig, CleanupReport};
use crate::groups::{entity_groups, prediction_graph};
use crate::metrics::{group_metrics, pairwise_metrics, GroupMetrics, PairMetrics};
use gralmatch_blocking::{
    id_overlap_companies, id_overlap_securities, issuer_match, token_overlap, BlockingKind,
    CandidateSet, TokenOverlapConfig,
};
use gralmatch_lm::{predict_positive, EncodedRecord, PairwiseMatcher};
use gralmatch_records::{
    CompanyRecord, GroundTruth, ProductRecord, RecordId, RecordPair, SecurityRecord,
};
use gralmatch_util::{FxHashMap, Stopwatch};

/// Pipeline knobs (γ/μ per Table 2, threading, pre-cleanup).
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Graph-cleanup thresholds.
    pub cleanup: CleanupConfig,
    /// Inference worker threads.
    pub threads: usize,
}

impl PipelineConfig {
    /// Construct with Table 2 thresholds.
    pub fn new(gamma: usize, mu: usize) -> Self {
        PipelineConfig {
            cleanup: CleanupConfig::new(gamma, mu),
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        }
    }

    /// Enable the companies' pre-cleanup (threshold 50 in the paper).
    pub fn with_pre_cleanup(mut self, threshold: usize) -> Self {
        self.cleanup.pre_cleanup_threshold = Some(threshold);
        self
    }
}

/// Everything the Table 4 rows need for one (dataset, model) cell.
#[derive(Debug, Clone)]
pub struct MatchingOutcome {
    /// Number of candidate pairs after blocking (Table 2 column).
    pub num_candidates: usize,
    /// Positively predicted pairs (stage 1 input).
    pub num_predicted: usize,
    /// Stage 1: pairwise metrics on blocked pairs.
    pub pairwise: PairMetrics,
    /// Stage 2: metrics over the closure of raw predictions.
    pub pre_cleanup: GroupMetrics,
    /// Stage 3: metrics over the closure of cleaned components.
    pub post_cleanup: GroupMetrics,
    /// Final entity groups (largest first).
    pub groups: Vec<Vec<RecordId>>,
    /// Inference wall-clock seconds (Table 4's time column).
    pub inference_seconds: f64,
    /// Cleanup diagnostics.
    pub cleanup_report: CleanupReport,
}

/// Blocking for the companies datasets: ID Overlap (through securities) +
/// Token Overlap (Table 2).
pub fn company_candidates(
    companies: &[CompanyRecord],
    securities: &[SecurityRecord],
    token_config: &TokenOverlapConfig,
) -> CandidateSet {
    let mut candidates = CandidateSet::new();
    id_overlap_companies(companies, securities, &mut candidates);
    token_overlap(companies, token_config, &mut candidates);
    candidates
}

/// Blocking for the securities datasets: ID Overlap + Issuer Match, the
/// latter fed by the company matching's group assignment (Table 2).
pub fn security_candidates(
    securities: &[SecurityRecord],
    company_group_of: &FxHashMap<RecordId, u32>,
) -> CandidateSet {
    let mut candidates = CandidateSet::new();
    id_overlap_securities(securities, &mut candidates);
    issuer_match(securities, company_group_of, &mut candidates);
    candidates
}

/// Blocking for WDC-style products: Token Overlap only (Table 2).
pub fn product_candidates(
    products: &[ProductRecord],
    token_config: &TokenOverlapConfig,
) -> CandidateSet {
    let mut candidates = CandidateSet::new();
    token_overlap(products, token_config, &mut candidates);
    candidates
}

/// Run pairwise matching + cleanup + evaluation over a candidate set.
pub fn run_pipeline<M: PairwiseMatcher>(
    num_records: usize,
    candidates: &CandidateSet,
    matcher: &M,
    encoded: &[EncodedRecord],
    gt: &GroundTruth,
    config: &PipelineConfig,
) -> MatchingOutcome {
    // Stage 1: pairwise predictions over blocked candidates.
    let pairs = candidates.pairs_sorted();
    let stopwatch = Stopwatch::start();
    let predicted = predict_positive(matcher, encoded, &pairs, config.threads);
    let inference_seconds = stopwatch.elapsed_secs();
    let pairwise = pairwise_metrics(&predicted, gt);

    // Stage 2: implied transitive closure of the raw prediction graph.
    let mut graph = prediction_graph(num_records, &predicted);
    let pre_groups = entity_groups(&graph);
    let pre_cleanup_metrics = group_metrics(&pre_groups, gt);

    // Stage 3: pre-cleanup + Algorithm 1, then the closure of the output.
    let mut cleanup_report = CleanupReport::default();
    if let Some(threshold) = config.cleanup.pre_cleanup_threshold {
        cleanup_report.pre_cleanup_removed = pre_cleanup(&mut graph, threshold, |pair| {
            candidates.from_blocking(pair, BlockingKind::TokenOverlap)
                && !candidates.from_blocking(pair, BlockingKind::IdOverlap)
                && !candidates.from_blocking(pair, BlockingKind::IssuerMatch)
        });
    }
    let algo_report = graph_cleanup(&mut graph, &config.cleanup);
    cleanup_report.mincut_removed = algo_report.mincut_removed;
    cleanup_report.betweenness_removed = algo_report.betweenness_removed;
    cleanup_report.mincut_rounds = algo_report.mincut_rounds;
    cleanup_report.betweenness_rounds = algo_report.betweenness_rounds;
    cleanup_report.seconds = algo_report.seconds;

    let groups = entity_groups(&graph);
    let post_cleanup_metrics = group_metrics(&groups, gt);

    MatchingOutcome {
        num_candidates: pairs.len(),
        num_predicted: predicted.len(),
        pairwise,
        pre_cleanup: pre_cleanup_metrics,
        post_cleanup: post_cleanup_metrics,
        groups,
        inference_seconds,
        cleanup_report,
    }
}

/// Oracle matcher for tests and upper-bound experiments: predicts the
/// ground truth restricted to the candidate pairs.
#[derive(Debug, Clone)]
pub struct OracleMatcher<'gt> {
    gt: &'gt GroundTruth,
    /// id lookup: encoded index == record id by pipeline invariant.
    pub flip_pairs: Vec<RecordPair>,
}

impl<'gt> OracleMatcher<'gt> {
    /// Perfect oracle.
    pub fn new(gt: &'gt GroundTruth) -> Self {
        OracleMatcher {
            gt,
            flip_pairs: Vec::new(),
        }
    }

    /// Oracle with deliberate errors injected on `flip_pairs` (predicts the
    /// opposite of the truth there) — used to study false-positive effects.
    pub fn with_flips(gt: &'gt GroundTruth, flip_pairs: Vec<RecordPair>) -> Self {
        OracleMatcher { gt, flip_pairs }
    }
}

// The oracle cheats by reading record ids out of band: the pipeline scores
// pairs positionally, so `score` receives streams only. To stay inside the
// PairwiseMatcher interface, the oracle is driven through
// `run_pipeline_with_oracle` below instead.
/// Run the pipeline with an oracle pairwise decision (ground truth with
/// optional flipped pairs) — bypasses the matcher interface.
pub fn run_pipeline_with_oracle(
    num_records: usize,
    candidates: &CandidateSet,
    oracle: &OracleMatcher<'_>,
    gt: &GroundTruth,
    config: &PipelineConfig,
) -> MatchingOutcome {
    let pairs = candidates.pairs_sorted();
    let flip: gralmatch_util::FxHashSet<RecordPair> =
        oracle.flip_pairs.iter().copied().collect();
    let predicted: Vec<RecordPair> = pairs
        .iter()
        .copied()
        .filter(|&pair| oracle.gt.is_match_pair(pair) != flip.contains(&pair))
        .collect();
    let pairwise = pairwise_metrics(&predicted, gt);

    let mut graph = prediction_graph(num_records, &predicted);
    let pre_groups = entity_groups(&graph);
    let pre_cleanup_metrics = group_metrics(&pre_groups, gt);

    let mut cleanup_report = CleanupReport::default();
    if let Some(threshold) = config.cleanup.pre_cleanup_threshold {
        cleanup_report.pre_cleanup_removed = pre_cleanup(&mut graph, threshold, |pair| {
            candidates.only_from(pair, BlockingKind::TokenOverlap)
        });
    }
    let algo_report = graph_cleanup(&mut graph, &config.cleanup);
    cleanup_report.seconds = algo_report.seconds;
    cleanup_report.mincut_removed = algo_report.mincut_removed;
    cleanup_report.betweenness_removed = algo_report.betweenness_removed;

    let groups = entity_groups(&graph);
    let post_cleanup_metrics = group_metrics(&groups, gt);
    MatchingOutcome {
        num_candidates: pairs.len(),
        num_predicted: predicted.len(),
        pairwise,
        pre_cleanup: pre_cleanup_metrics,
        post_cleanup: post_cleanup_metrics,
        groups,
        inference_seconds: 0.0,
        cleanup_report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gralmatch_datagen::{generate, GenerationConfig};
    use gralmatch_lm::ModelSpec;
    use gralmatch_records::Record;

    fn dataset() -> gralmatch_datagen::FinancialDataset {
        let mut config = GenerationConfig::synthetic_full();
        config.num_entities = 150;
        generate(&config).unwrap()
    }

    #[test]
    fn oracle_pipeline_reaches_high_f1() {
        let data = dataset();
        let companies = data.companies.records();
        let gt = data.companies.ground_truth();
        let candidates = company_candidates(
            companies,
            data.securities.records(),
            &TokenOverlapConfig::default(),
        );
        let config = PipelineConfig::new(25, 5).with_pre_cleanup(50);
        let oracle = OracleMatcher::new(&gt);
        let outcome =
            run_pipeline_with_oracle(companies.len(), &candidates, &oracle, &gt, &config);
        // The oracle's pairwise precision is 1; recall bounded by blocking.
        assert_eq!(outcome.pairwise.precision, 1.0);
        assert!(outcome.pairwise.recall > 0.6, "{:?}", outcome.pairwise);
        assert!(outcome.post_cleanup.pairs.f1 > 0.6);
        assert!(outcome.post_cleanup.cluster_purity > 0.9);
    }

    #[test]
    fn false_positive_bridge_hurts_pre_cleanup_only() {
        let data = dataset();
        let companies = data.companies.records();
        let gt = data.companies.ground_truth();
        let candidates = company_candidates(
            companies,
            data.securities.records(),
            &TokenOverlapConfig::default(),
        );
        // Flip one candidate non-match into a predicted match.
        let flip = candidates
            .pairs_sorted()
            .into_iter()
            .find(|&pair| !gt.is_match_pair(pair))
            .expect("some negative candidate exists");
        let config = PipelineConfig::new(25, 5).with_pre_cleanup(50);
        let oracle = OracleMatcher::with_flips(&gt, vec![flip]);
        let outcome =
            run_pipeline_with_oracle(companies.len(), &candidates, &oracle, &gt, &config);
        assert!(outcome.pairwise.precision < 1.0);
        // The cleanup should recover most of the damage.
        assert!(
            outcome.post_cleanup.pairs.precision >= outcome.pre_cleanup.pairs.precision
        );
    }

    #[test]
    fn trained_pipeline_end_to_end() {
        use gralmatch_records::{DatasetSplit, SplitRatios};
        use gralmatch_util::SplitRng;
        let data = dataset();
        let companies = data.companies.records();
        let gt = data.companies.ground_truth();
        let spec = ModelSpec::DistilBert128All;
        let encoded = spec.encode_records(companies);
        let split = DatasetSplit::new(&gt, SplitRatios::default(), &mut SplitRng::new(3));
        let (matcher, _) =
            gralmatch_lm::train(companies, &encoded, &gt, &split, &spec.train_config()).unwrap();
        let candidates = company_candidates(
            companies,
            data.securities.records(),
            &TokenOverlapConfig::default(),
        );
        let config = PipelineConfig::new(25, 5).with_pre_cleanup(50);
        let outcome = run_pipeline(
            companies.len(),
            &candidates,
            &matcher,
            &encoded,
            &gt,
            &config,
        );
        assert!(outcome.num_candidates > 0);
        assert!(outcome.pairwise.f1 > 0.5, "pairwise {:?}", outcome.pairwise);
        assert!(
            outcome.post_cleanup.pairs.f1 >= outcome.pre_cleanup.pairs.f1 * 0.8,
            "cleanup should not destroy the matching: pre {:?} post {:?}",
            outcome.pre_cleanup.pairs,
            outcome.post_cleanup.pairs
        );
        // μ bound: no final group exceeds the number of sources by much —
        // Algorithm 1 guarantees all components ≤ μ.
        assert!(outcome.groups.iter().all(|g| g.len() <= 5));
    }

    #[test]
    fn security_pipeline_with_company_groups() {
        let data = dataset();
        let companies = data.companies.records();
        let securities = data.securities.records();
        let company_gt = data.companies.ground_truth();
        // Perfect company grouping as issuer-match input.
        let mut group_of: FxHashMap<RecordId, u32> = FxHashMap::default();
        for company in companies {
            group_of.insert(company.id(), company.entity.unwrap().0);
        }
        let candidates = security_candidates(securities, &group_of);
        assert!(!candidates.is_empty());
        let security_gt = data.securities.ground_truth();
        let oracle = OracleMatcher::new(&security_gt);
        let config = PipelineConfig::new(25, 5);
        let outcome = run_pipeline_with_oracle(
            securities.len(),
            &candidates,
            &oracle,
            &security_gt,
            &config,
        );
        assert!(outcome.pairwise.recall > 0.5, "{:?}", outcome.pairwise);
        let _ = company_gt;
    }
}
