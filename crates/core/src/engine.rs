//! The long-lived match engine: incremental execution as the *only* code
//! path, with group lookups served from a standing index.
//!
//! Earlier revisions had three parallel ways to run the Figure 1 pipeline
//! — the one-shot staged lineup
//! ([`run_domain`](crate::domain::run_domain)), the sharded runner
//! ([`run_sharded`](crate::shard::run_sharded)), and the incremental
//! upsert reconciliation ([`PipelineState::apply`]) — plus bespoke
//! scorer-state threading in the bench replay. A [`MatchEngine`] collapses
//! them: it owns the [`PipelineState`], the blocking-strategy list, the
//! scorer (with any compiled featurization view, see
//! [`CompiledScorerProvider`]), and a record-id → group index for its
//! whole lifetime, and **every** execution shape is expressed through
//! [`MatchEngine::apply_batch`]:
//!
//! * a **one-shot run** is [`MatchEngine::bootstrap`] — a single
//!   insert-only batch against an empty state (already property-tested
//!   equivalent to the staged one-shot),
//! * a **sharded run** is the same bootstrap under a multi-shard
//!   [`ShardPlan`],
//! * an **incremental run** is the bootstrap followed by more batches,
//! * a **serving process** is [`MatchEngine::from_state`] — a state and a
//!   trained matcher loaded from disk — followed by batches and lookups.
//!
//! The legacy staged/sharded runners survive only as the *reference
//! oracle* the equivalence suites compare against
//! (`tests/engine_equivalence.rs`, `tests/upsert_equivalence.rs`); the
//! public one-shot entry points are thin wrappers over this engine.
//!
//! ## Group lookups
//!
//! The engine answers [`group_of`](MatchEngine::group_of) /
//! [`group_members`](MatchEngine::group_members) from a [`GroupIndex`]
//! maintained **incrementally**: each applied batch reports the exact
//! invalidation set of the dirty-component merge
//! ([`UpsertOutcome::changed_nodes`] — batch ids plus every member of a
//! rebuilt component), and only those entries are recomputed. Lookup cost
//! is a hash probe; maintenance cost is proportional to the reconciled
//! surface, not the dataset. A group's id is its smallest member's record
//! id — stable under any mutation that does not change the group's
//! membership.

use crate::domain::MatchingDomain;
use crate::groups::{entity_groups, prediction_graph};
use crate::incremental::{PipelineState, UpsertBatch, UpsertOutcome};
use crate::metrics::{group_metrics, pairwise_metrics};
use crate::persist::{self, CheckpointInfo, CheckpointPolicy, Durability};
use crate::pipeline::{MatchingOutcome, PipelineConfig};
use crate::shard::ShardPlan;
use crate::snapshot::GroupSnapshot;
use gralmatch_blocking::Blocker;
use gralmatch_graph::CutIndex;
use gralmatch_lm::{
    CompiledDataset, CompiledMatcher, EncodedRecord, PairEncoder, PairScorer, ScoreScratch,
};
use gralmatch_records::{GroundTruth, Record, RecordId, RecordPair};
use gralmatch_util::{BinRecord, Error, FxHashMap, FxHashSet, Published, Stopwatch};
use std::path::PathBuf;
use std::sync::Arc;

/// Supplies the engine's pair scorer across the engine's lifetime,
/// absorbing record mutations into any scorer-side state first.
///
/// This is where the old bench-side `ReplayScorer` plumbing lives now:
/// a provider holding a compiled featurization view
/// ([`CompiledScorerProvider`]) recompiles exactly the records a batch
/// touches, so the expensive per-record string work persists across
/// batches. Stateless scorers (oracles, pre-encoded views) use
/// [`FixedScorerProvider`].
pub trait ScorerProvider<R> {
    /// Absorb an already-standing population (engine resume from a
    /// persisted state): called once by [`MatchEngine::from_state`] with
    /// the live records before any batch arrives. Default: no-op.
    fn prime(&mut self, records: &[R]) {
        let _ = records;
    }

    /// Absorb one batch's record mutations into scorer-side state, before
    /// the batch is reconciled. Default: no-op.
    fn absorb(&mut self, batch: &UpsertBatch<R>) {
        let _ = batch;
    }

    /// The scorer reflecting everything absorbed so far.
    fn scorer(&self) -> &dyn PairScorer;

    /// A scorer for *independent verification* runs (replay-vs-one-shot
    /// cross-checks). Providers maintaining incremental state should
    /// rebuild their view from scratch here so a corrupted incremental
    /// view cannot self-agree; the default returns the standing scorer,
    /// which is correct for stateless providers.
    fn verify_scorer(&mut self) -> &dyn PairScorer {
        self.scorer()
    }
}

/// [`ScorerProvider`] for scorers without per-batch state: oracles, or
/// compiled scorers built over a pre-encoded full population.
pub struct FixedScorerProvider<'s>(pub &'s dyn PairScorer);

impl<R> ScorerProvider<R> for FixedScorerProvider<'_> {
    fn scorer(&self) -> &dyn PairScorer {
        self.0
    }
}

/// [`ScorerProvider`] owning a matcher, its encoder, and a
/// [`CompiledDataset`] view maintained incrementally: each absorbed batch
/// encodes and recompiles exactly its touched records
/// (`recompile_record`/`clear_record`); untouched records keep their
/// compiled spans for the engine's whole lifetime.
pub struct CompiledScorerProvider<M: CompiledMatcher, E: PairEncoder> {
    matcher: M,
    encoder: E,
    compiled: CompiledDataset,
    /// Encoded streams as absorbed so far, by record id (deletes become
    /// empty streams) — the input for [`ScorerProvider::verify_scorer`]'s
    /// independent recompile.
    encoded: Vec<EncodedRecord>,
}

impl<M: CompiledMatcher, E: PairEncoder> CompiledScorerProvider<M, E> {
    /// Empty provider; records arrive via `prime`/`absorb`.
    pub fn new(matcher: M, encoder: E) -> Self {
        let compiled = CompiledDataset::new(&matcher.feature_config());
        CompiledScorerProvider {
            matcher,
            encoder,
            compiled,
            encoded: Vec::new(),
        }
    }

    /// The wrapped matcher.
    pub fn matcher(&self) -> &M {
        &self.matcher
    }

    /// Heap footprint of the compiled view.
    pub fn arena_bytes(&self) -> usize {
        self.compiled.arena_bytes()
    }

    fn remember(&mut self, id: u32, stream: EncodedRecord) {
        if id as usize >= self.encoded.len() {
            self.encoded.resize_with(id as usize + 1, Default::default);
        }
        self.encoded[id as usize] = stream;
    }

    fn recompile<R: Record>(&mut self, record: &R) {
        let stream = self.encoder.encode(record);
        self.compiled.recompile_record(record.id().0, &stream);
        self.remember(record.id().0, stream);
    }
}

impl<M: CompiledMatcher, E: PairEncoder> PairScorer for CompiledScorerProvider<M, E> {
    fn score_pair(&self, pair: RecordPair) -> f32 {
        self.score_pair_scratch(pair, &mut ScoreScratch::default())
    }

    fn score_pair_scratch(&self, pair: RecordPair, scratch: &mut ScoreScratch) -> f32 {
        self.matcher
            .score_compiled(&self.compiled, pair.a.0, pair.b.0, scratch)
    }

    fn threshold(&self) -> f32 {
        self.matcher.threshold()
    }

    fn memory_bytes(&self) -> Option<usize> {
        Some(self.compiled.arena_bytes())
    }
}

impl<M: CompiledMatcher, E: PairEncoder, R: Record> ScorerProvider<R>
    for CompiledScorerProvider<M, E>
{
    fn prime(&mut self, records: &[R]) {
        for record in records {
            self.recompile(record);
        }
    }

    fn absorb(&mut self, batch: &UpsertBatch<R>) {
        for record in batch.inserts.iter().chain(&batch.updates) {
            self.recompile(record);
        }
        for &id in &batch.deletes {
            self.compiled.clear_record(id.0);
            self.remember(id.0, Default::default());
        }
    }

    fn scorer(&self) -> &dyn PairScorer {
        self
    }

    fn verify_scorer(&mut self) -> &dyn PairScorer {
        // Rebuild the view from the remembered streams so verification is
        // independent of the incremental recompiles: if per-batch
        // maintenance ever corrupted a span, a replay-vs-one-shot groups
        // check fails instead of self-agreeing through the same arena.
        self.compiled = CompiledDataset::compile(&self.encoded, &self.matcher.feature_config());
        self
    }
}

/// Record-id → group index over the standing cleaned graph. A group's id
/// is its **smallest member's record id**; every live record belongs to
/// exactly one group (possibly a singleton).
#[derive(Debug, Clone, Default)]
pub struct GroupIndex {
    root_of: FxHashMap<u32, u32>,
    members: FxHashMap<u32, Vec<RecordId>>,
}

impl GroupIndex {
    /// Group id of a record (`None` when the id is not live).
    pub fn group_of(&self, id: RecordId) -> Option<RecordId> {
        self.root_of.get(&id.0).map(|&root| RecordId(root))
    }

    /// Sorted members of a group (`None` when `group` is not a group id).
    pub fn group_members(&self, group: RecordId) -> Option<&[RecordId]> {
        self.members.get(&group.0).map(Vec::as_slice)
    }

    /// Number of groups (singletons included).
    pub fn num_groups(&self) -> usize {
        self.members.len()
    }

    /// Records in the largest group.
    pub fn largest_group(&self) -> usize {
        self.members.values().map(Vec::len).max().unwrap_or(0)
    }

    /// All groups, largest first (ties by ascending group id) — the same
    /// observable ordering contract as
    /// [`PipelineState::groups`].
    pub fn groups(&self) -> Vec<Vec<RecordId>> {
        let mut roots: Vec<u32> = self.members.keys().copied().collect();
        roots.sort_unstable_by_key(|root| (usize::MAX - self.members[root].len(), *root));
        roots
            .into_iter()
            .map(|root| self.members[&root].clone())
            .collect()
    }

    /// Rebuild from scratch (engine resume from a persisted state).
    fn rebuild<R: Record + Clone + Sync>(state: &PipelineState<R>) -> Self {
        let mut index = GroupIndex::default();
        for group in state.groups() {
            index.insert_group(group);
        }
        index
    }

    /// Raw root-id lookup (snapshot construction).
    pub(crate) fn root_of_raw(&self, id: u32) -> Option<u32> {
        self.root_of.get(&id).copied()
    }

    /// Members of the group rooted at `root`, if `root` is a group id
    /// (snapshot construction).
    pub(crate) fn members_of_root(&self, root: u32) -> Option<&Vec<RecordId>> {
        self.members.get(&root)
    }

    /// Iterate `(root, members)` over all groups in arbitrary order
    /// (snapshot construction).
    pub(crate) fn iter(&self) -> impl Iterator<Item = (u32, &Vec<RecordId>)> {
        self.members.iter().map(|(&root, members)| (root, members))
    }

    pub(crate) fn insert_group(&mut self, mut group: Vec<RecordId>) {
        group.sort_unstable();
        let root = group[0].0;
        for &member in &group {
            self.root_of.insert(member.0, root);
        }
        self.members.insert(root, group);
    }

    /// Reconcile the index after one applied batch. `changed` is the
    /// merge's invalidation set ([`UpsertOutcome::changed_nodes`]); the
    /// update walks the *closure* of changed nodes — their standing
    /// groups, plus everything reachable in the new cleaned graph — and
    /// recomputes components only there. Entries outside the closure are
    /// untouched, so maintenance cost tracks the reconciled surface.
    ///
    /// Returns the affected closure (sorted, deduplicated): every id
    /// whose root assignment or rooted group may differ from before —
    /// exactly the set a derived [`GroupSnapshot`] must re-examine.
    fn apply<R: Record + Clone + Sync>(
        &mut self,
        state: &PipelineState<R>,
        changed: &[u32],
    ) -> Vec<u32> {
        // 1. Affected closure: changed nodes, the full membership of any
        //    standing group containing one, and the new-graph neighborhood
        //    (so component recomputation below cannot escape the closure).
        let graph = state.cleaned();
        let mut affected: FxHashSet<u32> = FxHashSet::default();
        let mut queue: Vec<u32> = changed.to_vec();
        while let Some(node) = queue.pop() {
            if !affected.insert(node) {
                continue;
            }
            if let Some(root) = self.root_of.get(&node) {
                if let Some(members) = self.members.get(root) {
                    queue.extend(members.iter().map(|member| member.0));
                }
            }
            if (node as usize) < graph.num_nodes() {
                queue.extend(graph.neighbors(node));
            }
        }

        // 2. Drop the closure's standing entries.
        let roots: FxHashSet<u32> = affected
            .iter()
            .filter_map(|node| self.root_of.get(node).copied())
            .collect();
        for root in roots {
            self.members.remove(&root);
        }
        for node in &affected {
            self.root_of.remove(node);
        }

        // 3. Recompute components among the live part of the closure.
        //    Dead ids simply stay removed (they are isolated in the
        //    cleaned graph — their edges were retracted by the merge).
        let mut ordered: Vec<u32> = affected.iter().copied().collect();
        ordered.sort_unstable();
        let mut assigned: FxHashSet<u32> = FxHashSet::default();
        for &start in &ordered {
            if assigned.contains(&start) || !state.is_live(RecordId(start)) {
                continue;
            }
            let mut component = vec![start];
            assigned.insert(start);
            let mut cursor = 0;
            while cursor < component.len() {
                let node = component[cursor];
                cursor += 1;
                for next in graph.neighbors(node) {
                    if assigned.insert(next) {
                        component.push(next);
                    }
                }
            }
            self.insert_group(component.into_iter().map(RecordId).collect());
        }
        ordered
    }
}

/// Aggregate engine counters for dashboards and the serve binary's
/// `stats` command.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EngineStats {
    /// Live records.
    pub num_live: usize,
    /// Id-space size (max id ever seen + 1).
    pub num_ids: usize,
    /// Standing entity groups (live singletons included).
    pub num_groups: usize,
    /// Records in the largest group.
    pub largest_group: usize,
    /// Standing candidate pairs.
    pub num_candidates: usize,
    /// Standing positive predictions.
    pub num_predicted: usize,
    /// Batches applied over the engine's lifetime (bootstrap included).
    pub batches_applied: usize,
    /// Total wall-clock seconds spent in `apply_batch`.
    pub total_apply_seconds: f64,
}

/// The long-lived execution engine. See the [module docs](self) for the
/// lifecycle (bootstrap / apply / lookup) and what it replaced.
pub struct MatchEngine<'a, R: Record + Clone + Sync> {
    state: PipelineState<R>,
    strategies: Vec<Box<dyn Blocker<R> + 'a>>,
    provider: Box<dyn ScorerProvider<R> + 'a>,
    config: PipelineConfig,
    index: GroupIndex,
    /// The epoch-published read path: after every applied batch the
    /// engine advances an immutable [`GroupSnapshot`] here; concurrent
    /// readers hold [`gralmatch_util::PublishedReader`]s over this slot.
    published: Arc<Published<GroupSnapshot>>,
    batches_applied: usize,
    total_apply_seconds: f64,
    /// Optional WAL + checkpoint hookup ([`MatchEngine::enable_durability`]).
    /// `None` keeps the engine purely in-memory — the historical behavior.
    durability: Option<Durability<R>>,
    /// Persistent cut-structure cache over the standing cleaned graph.
    /// Maintained across [`apply_batch`](MatchEngine::apply_batch) calls by
    /// the merge's exact edge-delta feed, so steady-state churn re-cleans
    /// in O(affected region); rebuilt wholesale on recovery and model swap
    /// (the only paths where the cleaned graph changes hands outside the
    /// delta feed).
    cut_index: CutIndex,
}

impl<'a, R: Record + Clone + Sync> MatchEngine<'a, R> {
    /// Empty engine under a shard plan; records arrive via
    /// [`apply_batch`](MatchEngine::apply_batch).
    pub fn new(
        plan: ShardPlan,
        strategies: Vec<Box<dyn Blocker<R> + 'a>>,
        provider: Box<dyn ScorerProvider<R> + 'a>,
        config: PipelineConfig,
    ) -> Self {
        MatchEngine {
            state: PipelineState::new(plan),
            strategies,
            provider,
            config,
            index: GroupIndex::default(),
            published: Arc::new(Published::new(GroupSnapshot::empty(EngineStats::default()))),
            batches_applied: 0,
            total_apply_seconds: 0.0,
            durability: None,
            cut_index: CutIndex::new(),
        }
    }

    /// One-shot load: an empty engine plus a single insert-only batch.
    /// This **is** the engine's one-shot run — under a single-shard plan
    /// it replaces the staged `run_domain` lineup, under a multi-shard
    /// plan the sharded runner.
    pub fn bootstrap(
        plan: ShardPlan,
        records: Vec<R>,
        strategies: Vec<Box<dyn Blocker<R> + 'a>>,
        provider: Box<dyn ScorerProvider<R> + 'a>,
        config: PipelineConfig,
    ) -> Result<(Self, UpsertOutcome), Error> {
        let mut engine = MatchEngine::new(plan, strategies, provider, config);
        let outcome = engine.apply_batch(&UpsertBatch::inserting(records))?;
        Ok((engine, outcome))
    }

    /// Resume from a persisted [`PipelineState`] (the serve path): primes
    /// the provider with the live records and rebuilds the group index;
    /// no pairs are re-scored.
    pub fn from_state(
        state: PipelineState<R>,
        strategies: Vec<Box<dyn Blocker<R> + 'a>>,
        provider: Box<dyn ScorerProvider<R> + 'a>,
        config: PipelineConfig,
    ) -> Self {
        MatchEngine::from_state_at(state, 0, 0, strategies, provider, config)
    }

    /// Resume from a persisted [`PipelineState`] **at a persisted epoch**
    /// — the binary-snapshot recovery path
    /// ([`crate::persist::recover_engine`]). The first snapshot publishes
    /// at exactly `epoch` with `batches_applied` restored, so a recovered
    /// engine is indistinguishable from the one that wrote the snapshot:
    /// replaying the WAL tail lands on the same epoch the crashed engine
    /// had published.
    pub fn from_state_at(
        state: PipelineState<R>,
        epoch: u64,
        batches_applied: usize,
        strategies: Vec<Box<dyn Blocker<R> + 'a>>,
        mut provider: Box<dyn ScorerProvider<R> + 'a>,
        config: PipelineConfig,
    ) -> Self {
        provider.prime(state.live_records());
        let index = GroupIndex::rebuild(&state);
        // A resumed cleaned graph arrives from outside the delta feed, so
        // the cut index is rebuilt from it wholesale: an empty index would
        // violate its "indexed node ⇒ all its edges represented" contract
        // the moment a batch touched a standing component.
        let mut cut_index = CutIndex::new();
        cut_index.rebuild_from(state.cleaned());
        let mut engine = MatchEngine {
            state,
            strategies,
            provider,
            config,
            index,
            published: Arc::new(Published::new(GroupSnapshot::empty(EngineStats::default()))),
            batches_applied,
            total_apply_seconds: 0.0,
            durability: None,
            cut_index,
        };
        // Resumed engines serve a full snapshot of the persisted groups
        // from the persisted epoch (0 for JSON-resumed states).
        engine.published = Arc::new(Published::new(GroupSnapshot::rebuild_full(
            &engine.index,
            epoch,
            engine.stats_for_snapshot(),
            engine.state.num_ids(),
        )));
        engine
    }

    /// Bootstrap over a domain's records and blocking recipe.
    pub fn bootstrap_domain<D>(
        domain: &'a D,
        plan: ShardPlan,
        provider: Box<dyn ScorerProvider<R> + 'a>,
        config: PipelineConfig,
    ) -> Result<(Self, UpsertOutcome), Error>
    where
        D: MatchingDomain<Rec = R>,
    {
        MatchEngine::bootstrap(
            plan,
            domain.records().to_vec(),
            domain.blocking_strategies(),
            provider,
            config,
        )
    }

    /// Apply one delta batch: validate it, absorb it into the scorer,
    /// reconcile the pipeline state, update the group index from the
    /// merge's invalidation set, and publish the next epoch's
    /// [`GroupSnapshot`] for concurrent readers.
    pub fn apply_batch(&mut self, batch: &UpsertBatch<R>) -> Result<UpsertOutcome, Error> {
        let watch = Stopwatch::start();
        // Validate *before* the provider absorbs the batch: a rejected
        // batch must leave both the pipeline state and any scorer-side
        // compiled view untouched, or the two diverge.
        self.state.validate(batch)?;
        // WAL append sits between validation and application: a validated
        // batch applies deterministically, so a crash right after the
        // append recovers to the same state as a crash right after the
        // apply — the frame just replays. The frame's seq is the batch
        // counter this batch will land on, so recovery can order it
        // against the snapshot header's counter.
        let seq = self.batches_applied as u64 + 1;
        if let Some(durability) = self.durability.as_mut() {
            let payload = (durability.encode_batch)(batch);
            durability.wal.append(seq, &payload)?;
        }
        self.provider.absorb(batch);
        let mut outcome = self.state.apply_with_index(
            batch,
            &self.strategies,
            self.provider.scorer(),
            &self.config,
            Some(&mut self.cut_index),
        )?;
        let affected = self.index.apply(&self.state, &outcome.changed_nodes);
        self.batches_applied += 1;
        self.total_apply_seconds += watch.elapsed_secs();

        let publish_watch = Stopwatch::start();
        let (next, buckets_rebuilt) = self.published.load().advance(
            &self.index,
            &affected,
            self.stats_for_snapshot(),
            self.state.num_ids(),
        );
        let next = Arc::new(next);
        self.published.publish(next.clone());
        let publish_seconds = publish_watch.elapsed_secs();
        self.total_apply_seconds += publish_seconds;
        outcome.epoch = next.epoch();
        outcome.snapshot_publish_seconds = publish_seconds;
        outcome.snapshot_buckets_rebuilt = buckets_rebuilt;

        debug_assert_eq!(
            {
                let mut from_index: Vec<Vec<RecordId>> = self.index.groups();
                from_index.sort();
                from_index
            },
            {
                let mut from_state: Vec<Vec<RecordId>> = self
                    .state
                    .groups()
                    .into_iter()
                    .map(|mut group| {
                        group.sort_unstable();
                        group
                    })
                    .collect();
                from_state.sort();
                from_state
            },
            "incremental group index diverged from the standing graph"
        );
        debug_assert_eq!(
            {
                let mut from_snapshot: Vec<Vec<RecordId>> = next.groups();
                from_snapshot.sort();
                from_snapshot
            },
            {
                let mut from_index: Vec<Vec<RecordId>> = self.index.groups();
                from_index.sort();
                from_index
            },
            "incrementally advanced snapshot diverged from the group index"
        );
        self.maybe_checkpoint()?;
        Ok(outcome)
    }

    /// Arm crash-safe persistence on this engine: every subsequent
    /// [`apply_batch`](MatchEngine::apply_batch) appends the encoded
    /// batch to `<snapshot_path>.wal` before applying it, and the engine
    /// checkpoints (atomic snapshot rewrite + WAL truncate) whenever the
    /// log crosses the policy's thresholds. Enabling always establishes a
    /// fresh checkpoint, so stale snapshot/WAL files under the same path
    /// are overwritten rather than mixed with the new lineage. Use
    /// [`crate::persist::recover_engine`] to resume from the files.
    pub fn enable_durability(
        &mut self,
        snapshot_path: impl Into<PathBuf>,
        policy: CheckpointPolicy,
    ) -> Result<CheckpointInfo, Error>
    where
        R: BinRecord,
    {
        self.attach_durability(snapshot_path.into(), policy)?;
        self.checkpoint()
    }

    /// Install the durability bundle without checkpointing — the recovery
    /// path, where the on-disk snapshot + WAL prefix already equal the
    /// engine's state.
    pub(crate) fn attach_durability(
        &mut self,
        snapshot_path: PathBuf,
        policy: CheckpointPolicy,
    ) -> Result<(), Error>
    where
        R: BinRecord,
    {
        let wal = persist::WalWriter::open(&persist::wal_path(&snapshot_path), policy.fsync)?;
        self.durability = Some(Durability {
            wal,
            snapshot_path,
            policy,
            fingerprint: None,
            encode_batch: persist::encode_batch::<R>,
            encode_state: persist::encode_state::<R>,
        });
        Ok(())
    }

    /// Whether [`enable_durability`](MatchEngine::enable_durability) is
    /// active.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Scorer fingerprint written as a `<snapshot>.scorer` sidecar on
    /// every checkpoint, so a resume can validate its model against the
    /// snapshot exactly like the JSON serve path does. `None` skips the
    /// sidecar.
    pub fn set_durability_fingerprint(&mut self, fingerprint: Option<String>) {
        if let Some(durability) = self.durability.as_mut() {
            durability.fingerprint = fingerprint;
        }
    }

    /// Checkpoint now: atomically rewrite the binary snapshot at the
    /// current published epoch (temp file + rename, fsynced when the
    /// policy asks), truncate the WAL, then rewrite the fingerprint
    /// sidecar when one is set. Errors when durability is not enabled.
    ///
    /// Step order is load-bearing. A crash after the snapshot write but
    /// before the truncate leaves already-incorporated frames in the
    /// log — recovery skips them by seq (see
    /// [`crate::persist::recover_engine`]). The sidecar goes last so
    /// that if the checkpoint dies earlier, the sidecar still names the
    /// scorer the surviving WAL frames were scored under — the
    /// model-swap path relies on this to stay consistent on failure.
    pub fn checkpoint(&mut self) -> Result<CheckpointInfo, Error> {
        let epoch = self.published.load().epoch();
        let Some(durability) = self.durability.as_mut() else {
            return Err(Error::InvalidConfig(
                "checkpoint requires durability; call enable_durability first".into(),
            ));
        };
        let bytes = (durability.encode_state)(&self.state, epoch, self.batches_applied);
        persist::write_atomic(&durability.snapshot_path, &bytes, durability.policy.fsync)?;
        durability.wal.truncate()?;
        if let Some(fingerprint) = &durability.fingerprint {
            persist::write_atomic(
                &persist::fingerprint_path(&durability.snapshot_path),
                fingerprint.as_bytes(),
                durability.policy.fsync,
            )?;
        }
        Ok(CheckpointInfo {
            epoch,
            snapshot_bytes: bytes.len() as u64,
        })
    }

    /// Checkpoint if the WAL crossed the policy's batch/byte thresholds.
    fn maybe_checkpoint(&mut self) -> Result<(), Error> {
        let due = self.durability.as_ref().is_some_and(|durability| {
            durability.wal.frames() >= durability.policy.max_wal_batches
                || durability.wal.bytes() >= durability.policy.max_wal_bytes
        });
        if due {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Engine counters with the group counters left for the snapshot to
    /// recompute from its own buckets (an O(num_buckets) fold instead of
    /// an O(num_groups) scan per publish).
    fn stats_for_snapshot(&self) -> EngineStats {
        EngineStats {
            num_live: self.state.num_live(),
            num_ids: self.state.num_ids(),
            num_groups: 0,
            largest_group: 0,
            num_candidates: self.state.candidates().len(),
            num_predicted: self.state.predicted().len(),
            batches_applied: self.batches_applied,
            total_apply_seconds: self.total_apply_seconds,
        }
    }

    /// Group id of a record: the smallest record id in its group. `None`
    /// when `id` is not live.
    pub fn group_of(&self, id: RecordId) -> Option<RecordId> {
        self.index.group_of(id)
    }

    /// Sorted members of a group. `None` when `group` is not a current
    /// group id (group ids are smallest members — see
    /// [`group_of`](MatchEngine::group_of)).
    pub fn group_members(&self, group: RecordId) -> Option<&[RecordId]> {
        self.index.group_members(group)
    }

    /// All standing groups, largest first (from the index — equal to
    /// [`PipelineState::groups`] up to member ordering).
    pub fn groups(&self) -> Vec<Vec<RecordId>> {
        self.index.groups()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            num_live: self.state.num_live(),
            num_ids: self.state.num_ids(),
            num_groups: self.index.num_groups(),
            largest_group: self.index.largest_group(),
            num_candidates: self.state.candidates().len(),
            num_predicted: self.state.predicted().len(),
            batches_applied: self.batches_applied,
            total_apply_seconds: self.total_apply_seconds,
        }
    }

    /// The current epoch's published [`GroupSnapshot`].
    pub fn snapshot(&self) -> Arc<GroupSnapshot> {
        self.published.load()
    }

    /// The publish slot concurrent readers subscribe to (wrap it in a
    /// [`gralmatch_util::PublishedReader`] per reader thread). The engine
    /// keeps publishing into this same slot for its whole lifetime.
    pub fn snapshot_source(&self) -> Arc<Published<GroupSnapshot>> {
        self.published.clone()
    }

    /// The standing pipeline state (persist it with `to_json`).
    pub fn state(&self) -> &PipelineState<R> {
        &self.state
    }

    /// The engine's pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The shard plan the engine reconciles under.
    pub fn plan(&self) -> ShardPlan {
        self.state.plan()
    }

    /// Mutable access to the scorer provider (verification runs).
    pub fn provider_mut(&mut self) -> &mut dyn ScorerProvider<R> {
        self.provider.as_mut()
    }

    /// The standing pair scorer (reflecting everything absorbed so far).
    pub fn scorer(&self) -> &dyn PairScorer {
        self.provider.scorer()
    }

    /// Replace the scorer provider in place — the hot model swap path.
    /// The new provider is primed with the live records (so its compiled
    /// view covers the standing population), and the snapshot is
    /// republished at the next epoch with **zero** buckets rebuilt:
    /// standing predictions and groups are untouched — only pairs scored
    /// in subsequent batches see the new scorer — but readers observe the
    /// swap as an epoch bump.
    pub fn replace_provider(&mut self, mut provider: Box<dyn ScorerProvider<R> + 'a>) {
        provider.prime(self.state.live_records());
        self.provider = provider;
        // Model swaps mark an epoch boundary for every derived structure;
        // the cut index is invalidated and rebuilt from the standing
        // cleaned graph rather than trusted across the swap.
        self.cut_index.rebuild_from(self.state.cleaned());
        let (next, buckets_rebuilt) = self.published.load().advance(
            &self.index,
            &[],
            self.stats_for_snapshot(),
            self.state.num_ids(),
        );
        debug_assert_eq!(buckets_rebuilt, 0, "provider swap must not rebuild groups");
        self.published.publish(Arc::new(next));
    }

    /// Evaluate the standing state under the paper's three-stage protocol
    /// (pairwise / pre-cleanup / post-cleanup), packaging a
    /// [`MatchingOutcome`] exactly like the legacy one-shot entry points
    /// did. `load` supplies the per-stage trace and blocking diagnostics
    /// of the batch that produced the standing state (usually the
    /// bootstrap batch).
    pub fn evaluate(&self, gt: &GroundTruth, load: &UpsertOutcome) -> MatchingOutcome {
        let predicted = self.state.predicted();
        let pairwise = pairwise_metrics(predicted, gt);
        // The raw-prediction graph spans the full id space; after
        // delete-bearing batches, dead ids sit in it as isolated nodes
        // and must not count as phantom singleton groups (the
        // post-cleanup path filters them inside `PipelineState::groups`).
        let pre_groups: Vec<Vec<RecordId>> =
            entity_groups(&prediction_graph(self.state.num_ids(), predicted))
                .into_iter()
                .filter(|group| group.len() > 1 || self.state.is_live(group[0]))
                .collect();
        let pre_cleanup = group_metrics(&pre_groups, gt);
        let groups = self.state.groups();
        let post_cleanup = group_metrics(&groups, gt);
        MatchingOutcome {
            num_candidates: self.state.candidates().len(),
            num_predicted: predicted.len(),
            pairwise,
            pre_cleanup,
            post_cleanup,
            groups,
            trace: load.trace.clone(),
            blocker_runs: load.blocker_runs.clone(),
            cleanup_report: load.cleanup.clone(),
        }
    }

    /// Tear down into the standing state (persistence at shutdown).
    pub fn into_state(self) -> PipelineState<R> {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{MatchingDomain, SecurityDomain};
    use crate::pipeline::OracleScorer;
    use gralmatch_datagen::{generate, GenerationConfig};
    use gralmatch_records::SecurityRecord;

    fn dataset() -> gralmatch_datagen::FinancialDataset {
        let mut config = GenerationConfig::synthetic_full();
        config.num_entities = 80;
        generate(&config).unwrap()
    }

    fn company_groups(data: &gralmatch_datagen::FinancialDataset) -> FxHashMap<RecordId, u32> {
        data.companies
            .records()
            .iter()
            .map(|company| (company.id, company.entity.unwrap().0))
            .collect()
    }

    #[test]
    fn lookups_agree_with_groups_across_delete_bearing_batches() {
        let data = dataset();
        let securities: Vec<SecurityRecord> = data.securities.records().to_vec();
        let group_of = company_groups(&data);
        let domain = SecurityDomain::new(&securities, &group_of);
        let gt = domain.ground_truth().clone();
        let scorer = OracleScorer::new(&gt);
        let config = PipelineConfig::new(25, 5);
        let strategies = domain.blocking_strategies();

        let split = securities.len() * 2 / 3;
        let (mut engine, load) = MatchEngine::bootstrap(
            ShardPlan::new(3),
            securities[..split].to_vec(),
            strategies,
            Box::new(FixedScorerProvider(&scorer)),
            config,
        )
        .unwrap();
        assert_eq!(load.inserted, split);

        // Every live record resolves; the group id is its smallest member
        // and membership is closed under lookup.
        let check = |engine: &MatchEngine<'_, SecurityRecord>| {
            for group in engine.groups() {
                let root = group[0];
                for &member in &group {
                    assert_eq!(engine.group_of(member), Some(root));
                }
                assert_eq!(engine.group_members(root).unwrap(), &group[..]);
            }
        };
        check(&engine);

        // Delete a multi-record group's members; lookups must reflect the
        // re-cleaned components immediately.
        let victim: Vec<RecordId> = engine
            .groups()
            .into_iter()
            .find(|group| group.len() > 1)
            .expect("some multi-record group");
        engine
            .apply_batch(&UpsertBatch {
                inserts: Vec::new(),
                updates: Vec::new(),
                deletes: victim.clone(),
            })
            .unwrap();
        for &id in &victim {
            assert_eq!(engine.group_of(id), None, "deleted id still resolves");
        }
        check(&engine);

        // Insert the remainder (plus re-insert the victims) and re-check.
        let mut rest: Vec<SecurityRecord> = securities[split..].to_vec();
        rest.extend(
            securities[..split]
                .iter()
                .filter(|record| victim.contains(&record.id))
                .cloned(),
        );
        engine.apply_batch(&UpsertBatch::inserting(rest)).unwrap();
        check(&engine);
        let stats = engine.stats();
        assert_eq!(stats.num_live, securities.len());
        assert_eq!(stats.batches_applied, 3);
        assert_eq!(stats.num_groups, engine.groups().len());
        assert!(stats.total_apply_seconds > 0.0);
    }

    #[test]
    fn snapshots_publish_per_batch_and_stay_frozen() {
        let data = dataset();
        let securities: Vec<SecurityRecord> = data.securities.records().to_vec();
        let group_of = company_groups(&data);
        let domain = SecurityDomain::new(&securities, &group_of);
        let gt = domain.ground_truth().clone();
        let scorer = OracleScorer::new(&gt);
        let config = PipelineConfig::new(25, 5);

        let split = securities.len() / 2;
        let (mut engine, load) = MatchEngine::bootstrap(
            ShardPlan::new(2),
            securities[..split].to_vec(),
            domain.blocking_strategies(),
            Box::new(FixedScorerProvider(&scorer)),
            config,
        )
        .unwrap();
        assert_eq!(load.epoch, 1);
        assert!(load.snapshot_buckets_rebuilt > 0);
        let first = engine.snapshot();
        assert_eq!(first.epoch(), 1);

        let outcome = engine
            .apply_batch(&UpsertBatch::inserting(securities[split..].to_vec()))
            .unwrap();
        assert_eq!(outcome.epoch, 2);
        let second = engine.snapshot();
        assert_eq!(second.epoch(), 2);
        assert_eq!(engine.snapshot_source().version(), 2);

        // The new epoch answers exactly like the live engine; the old
        // epoch still serves its own frozen pre-batch state.
        for group in engine.groups() {
            assert_eq!(second.group_of(group[0]), Some(group[0]));
            assert_eq!(second.group_members(group[0]).unwrap(), &group[..]);
        }
        let stats = engine.stats();
        assert_eq!(second.stats().num_groups, stats.num_groups);
        assert_eq!(second.stats().largest_group, stats.largest_group);
        assert_eq!(second.stats().num_live, stats.num_live);
        assert_eq!(first.stats().num_live, split);
        let late_id = securities[split..]
            .iter()
            .map(|record| record.id)
            .find(|id| first.group_of(*id).is_none())
            .expect("some id first live in batch 2");
        assert!(second.group_of(late_id).is_some());
    }

    #[test]
    fn rejected_batches_leave_the_engine_untouched() {
        let data = dataset();
        let securities: Vec<SecurityRecord> = data.securities.records().to_vec();
        let group_of = company_groups(&data);
        let domain = SecurityDomain::new(&securities, &group_of);
        let gt = domain.ground_truth().clone();
        let scorer = OracleScorer::new(&gt);
        let (mut engine, _) = MatchEngine::bootstrap(
            ShardPlan::new(2),
            securities.clone(),
            domain.blocking_strategies(),
            Box::new(FixedScorerProvider(&scorer)),
            PipelineConfig::new(25, 5),
        )
        .unwrap();
        let groups = engine.groups();
        // Insert of a live id is rejected before anything absorbs it: no
        // epoch is published and the stats are unchanged.
        assert!(engine
            .apply_batch(&UpsertBatch::inserting(vec![securities[0].clone()]))
            .is_err());
        assert_eq!(engine.snapshot().epoch(), 1);
        assert_eq!(engine.stats().batches_applied, 1);
        assert_eq!(engine.groups(), groups);
    }

    #[test]
    fn from_state_serves_the_persisted_groups() {
        use gralmatch_util::{FromJson, Json, ToJson};
        let data = dataset();
        let securities: Vec<SecurityRecord> = data.securities.records().to_vec();
        let group_of = company_groups(&data);
        let domain = SecurityDomain::new(&securities, &group_of);
        let gt = domain.ground_truth().clone();
        let scorer = OracleScorer::new(&gt);
        let config = PipelineConfig::new(25, 5);

        let (engine, _) = MatchEngine::bootstrap(
            ShardPlan::new(2),
            securities.clone(),
            domain.blocking_strategies(),
            Box::new(FixedScorerProvider(&scorer)),
            config.clone(),
        )
        .unwrap();
        let expected = engine.groups();

        // Round-trip the state through JSON and resume a fresh engine.
        let text = engine.state().to_json().to_compact_string();
        let state: PipelineState<SecurityRecord> =
            PipelineState::from_json(&Json::parse(&text).unwrap()).unwrap();
        let resumed = MatchEngine::from_state(
            state,
            domain.blocking_strategies(),
            Box::new(FixedScorerProvider(&scorer)),
            config,
        );
        assert_eq!(resumed.groups(), expected);
        for group in &expected {
            assert_eq!(resumed.group_of(group[0]), Some(group[0]));
        }
        // Resume publishes a full snapshot at epoch 0, ready for readers
        // before any batch arrives.
        let snapshot = resumed.snapshot();
        assert_eq!(snapshot.epoch(), 0);
        assert_eq!(snapshot.groups(), expected);
        assert_eq!(snapshot.stats().num_live, securities.len());
    }
}
