//! Immutable, epoch-published snapshots of the group-lookup read path.
//!
//! The engine's standing [`GroupIndex`] is a
//! mutable structure the writer reconciles in place; concurrent readers
//! can never touch it mid-batch. A [`GroupSnapshot`] is the frozen view
//! the writer derives *after* each batch and hands to readers through
//! [`Published`](gralmatch_util::Published): lookups
//! ([`group_of`](GroupSnapshot::group_of),
//! [`group_members`](GroupSnapshot::group_members),
//! [`stats`](GroupSnapshot::stats)) run against whichever snapshot the
//! reader holds, with no locks and no coordination with the writer.
//!
//! ## Incremental construction
//!
//! Publishing must not cost a full index copy per batch — that would put
//! an O(total state) wall between batches at serving time. Snapshots are
//! therefore **persistent** in the functional-data-structure sense: the
//! record-id space is cut into fixed buckets of `2^`[`BUCKET_BITS`] ids,
//! and each bucket's storage is held behind an `Arc`. Advancing a
//! snapshot rebuilds only the buckets containing ids in the batch's
//! affected closure (the same invalidation set the in-place
//! [`GroupIndex`] update walks) and shares
//! every other bucket's `Arc` with the previous epoch — publish cost
//! scales with the delta, not with the dataset.

use crate::engine::{EngineStats, GroupIndex};
use gralmatch_records::RecordId;
use gralmatch_util::FxHashMap;
use std::sync::Arc;

/// Log2 of the number of record ids per snapshot bucket.
pub const BUCKET_BITS: u32 = 10;
/// Record ids per bucket.
pub const BUCKET_SIZE: usize = 1 << BUCKET_BITS;
/// Root-slot sentinel for "this id is not live".
const NO_ROOT: u32 = u32::MAX;

/// All groups whose root id falls inside one id bucket, plus the bucket's
/// aggregate counters (so snapshot-wide stats fold over buckets instead
/// of groups).
#[derive(Debug, Default)]
struct GroupBucket {
    /// Root id → sorted members, for roots in this bucket.
    members: FxHashMap<u32, Arc<Vec<RecordId>>>,
    /// Size of the largest group rooted in this bucket.
    largest: usize,
}

impl GroupBucket {
    fn recompute_largest(&mut self) {
        self.largest = self
            .members
            .values()
            .map(|group| group.len())
            .max()
            .unwrap_or(0);
    }
}

/// An immutable view of the engine's groups and counters as of one epoch.
///
/// # Epoch-publication invariant
///
/// A `GroupSnapshot` is **never mutated after publication**. The single
/// writer builds snapshot `N+1` from snapshot `N` plus one batch's
/// affected closure, then publishes it with a single pointer swap; a
/// reader that loaded epoch `N` keeps a fully self-consistent view — the
/// root table, member lists, and [`stats`](GroupSnapshot::stats) all
/// describe the *same* post-batch (or pre-batch) state, and no
/// interleaving of reads can observe a half-applied batch. Unchanged
/// buckets are physically shared (`Arc`) between consecutive epochs;
/// sharing is safe precisely because published buckets are frozen.
#[derive(Debug)]
pub struct GroupSnapshot {
    epoch: u64,
    /// Per-bucket root slots: `roots[id >> BUCKET_BITS][id & (BUCKET_SIZE
    /// - 1)]` is the record's group id, or [`NO_ROOT`] when not live.
    roots: Vec<Arc<Vec<u32>>>,
    groups: Vec<Arc<GroupBucket>>,
    stats: EngineStats,
}

fn bucket_of(id: u32) -> usize {
    (id >> BUCKET_BITS) as usize
}

fn empty_roots() -> Arc<Vec<u32>> {
    Arc::new(vec![NO_ROOT; BUCKET_SIZE])
}

impl GroupSnapshot {
    /// The empty snapshot at epoch 0 (a fresh engine before any batch).
    pub fn empty(stats: EngineStats) -> Self {
        GroupSnapshot {
            epoch: 0,
            roots: Vec::new(),
            groups: Vec::new(),
            stats,
        }
    }

    /// Build a snapshot of the whole `index` from scratch (engine resume
    /// from a persisted state). `stats`' group counters are overwritten
    /// with the snapshot's own aggregation.
    pub fn rebuild_full(
        index: &GroupIndex,
        epoch: u64,
        stats: EngineStats,
        num_ids: usize,
    ) -> Self {
        let num_buckets = num_ids.div_ceil(BUCKET_SIZE);
        let mut roots: Vec<Vec<u32>> = vec![vec![NO_ROOT; BUCKET_SIZE]; num_buckets];
        let mut groups: Vec<GroupBucket> = Vec::with_capacity(num_buckets);
        groups.resize_with(num_buckets, GroupBucket::default);
        for (root, members) in index.iter() {
            let shared = Arc::new(members.clone());
            for member in shared.iter() {
                roots[bucket_of(member.0)][member.0 as usize & (BUCKET_SIZE - 1)] = root;
            }
            let bucket = &mut groups[bucket_of(root)];
            bucket.largest = bucket.largest.max(shared.len());
            bucket.members.insert(root, shared);
        }
        let mut snapshot = GroupSnapshot {
            epoch,
            roots: roots.into_iter().map(Arc::new).collect(),
            groups: groups.into_iter().map(Arc::new).collect(),
            stats,
        };
        snapshot.refresh_group_stats();
        snapshot
    }

    /// Derive the next epoch's snapshot from this one plus one batch's
    /// affected closure (the ids whose group assignment may have changed
    /// — [`UpsertOutcome::changed_nodes`]' closure as computed by the
    /// group-index update). Only buckets containing affected ids are
    /// rebuilt; every other bucket is shared with `self`. Returns the new
    /// snapshot and the number of buckets rebuilt.
    ///
    /// `stats`' group counters are overwritten with the snapshot's own
    /// aggregation.
    ///
    /// [`UpsertOutcome::changed_nodes`]: crate::incremental::UpsertOutcome::changed_nodes
    pub fn advance(
        &self,
        index: &GroupIndex,
        affected: &[u32],
        stats: EngineStats,
        num_ids: usize,
    ) -> (Self, usize) {
        let num_buckets = num_ids.div_ceil(BUCKET_SIZE).max(self.roots.len());
        let mut roots = self.roots.clone();
        let mut groups = self.groups.clone();
        roots.resize_with(num_buckets, empty_roots);
        groups.resize_with(num_buckets, || Arc::new(GroupBucket::default()));

        // Group the affected ids by bucket; each dirty bucket is rebuilt
        // once, by patching a copy of its previous storage.
        let mut dirty: FxHashMap<usize, Vec<u32>> = FxHashMap::default();
        for &id in affected {
            dirty.entry(bucket_of(id)).or_default().push(id);
        }
        let buckets_rebuilt = dirty.len();
        for (bucket, ids) in dirty {
            let mut slots = roots[bucket].as_ref().clone();
            let mut group_bucket = GroupBucket {
                members: groups[bucket].members.clone(),
                largest: groups[bucket].largest,
            };
            for &id in &ids {
                slots[id as usize & (BUCKET_SIZE - 1)] = index.root_of_raw(id).unwrap_or(NO_ROOT);
                // An affected id is also a potential group root: its group
                // entry here is stale either way.
                match index.members_of_root(id) {
                    Some(members) => {
                        group_bucket.members.insert(id, Arc::new(members.clone()));
                    }
                    None => {
                        group_bucket.members.remove(&id);
                    }
                }
            }
            group_bucket.recompute_largest();
            roots[bucket] = Arc::new(slots);
            groups[bucket] = Arc::new(group_bucket);
        }

        let mut next = GroupSnapshot {
            epoch: self.epoch + 1,
            roots,
            groups,
            stats,
        };
        next.refresh_group_stats();
        (next, buckets_rebuilt)
    }

    fn refresh_group_stats(&mut self) {
        self.stats.num_groups = self.groups.iter().map(|bucket| bucket.members.len()).sum();
        self.stats.largest_group = self
            .groups
            .iter()
            .map(|bucket| bucket.largest)
            .max()
            .unwrap_or(0);
    }

    /// The epoch this snapshot was published at (0 = pre-first-batch).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Group id of a record (`None` when the id is not live in this
    /// epoch).
    pub fn group_of(&self, id: RecordId) -> Option<RecordId> {
        let slot = *self
            .roots
            .get(bucket_of(id.0))?
            .get(id.0 as usize & (BUCKET_SIZE - 1))?;
        (slot != NO_ROOT).then_some(RecordId(slot))
    }

    /// Sorted members of a group (`None` when `group` is not a group id
    /// in this epoch).
    pub fn group_members(&self, group: RecordId) -> Option<&[RecordId]> {
        self.groups
            .get(bucket_of(group.0))?
            .members
            .get(&group.0)
            .map(|members| members.as_slice())
    }

    /// Aggregate engine counters as of this epoch (group counters
    /// recomputed from the snapshot itself).
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Number of groups in this epoch.
    pub fn num_groups(&self) -> usize {
        self.stats.num_groups
    }

    /// All groups, largest first (ties by ascending group id) — same
    /// ordering contract as the live index's `groups()`.
    pub fn groups(&self) -> Vec<Vec<RecordId>> {
        let mut all: Vec<(u32, &Arc<Vec<RecordId>>)> = self
            .groups
            .iter()
            .flat_map(|bucket| {
                bucket
                    .members
                    .iter()
                    .map(|(&root, members)| (root, members))
            })
            .collect();
        all.sort_unstable_by_key(|(root, members)| (usize::MAX - members.len(), *root));
        all.into_iter()
            .map(|(_, members)| members.as_ref().clone())
            .collect()
    }

    /// True when `other` physically shares this snapshot's storage for
    /// the bucket containing `id` (test hook for the sharing guarantee).
    pub fn shares_bucket_with(&self, other: &GroupSnapshot, id: RecordId) -> bool {
        let bucket = bucket_of(id.0);
        match (self.roots.get(bucket), other.roots.get(bucket)) {
            (Some(mine), Some(theirs)) => {
                Arc::ptr_eq(mine, theirs)
                    && Arc::ptr_eq(&self.groups[bucket], &other.groups[bucket])
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_of(groups: &[&[u32]]) -> GroupIndex {
        let mut index = GroupIndex::default();
        for group in groups {
            index.insert_group(group.iter().map(|&id| RecordId(id)).collect());
        }
        index
    }

    fn sorted_groups(snapshot: &GroupSnapshot) -> Vec<Vec<RecordId>> {
        let mut groups = snapshot.groups();
        groups.sort();
        groups
    }

    #[test]
    fn full_rebuild_serves_the_index_exactly() {
        let index = index_of(&[&[0, 1, 7], &[2048, 2049], &[5000]]);
        let snapshot = GroupSnapshot::rebuild_full(&index, 3, EngineStats::default(), 5001);
        assert_eq!(snapshot.epoch(), 3);
        assert_eq!(snapshot.num_groups(), 3);
        assert_eq!(snapshot.stats().largest_group, 3);
        assert_eq!(snapshot.group_of(RecordId(7)), Some(RecordId(0)));
        assert_eq!(snapshot.group_of(RecordId(2049)), Some(RecordId(2048)));
        assert_eq!(snapshot.group_of(RecordId(5000)), Some(RecordId(5000)));
        // Not live / out of space.
        assert_eq!(snapshot.group_of(RecordId(3)), None);
        assert_eq!(snapshot.group_of(RecordId(1 << 20)), None);
        assert_eq!(
            snapshot.group_members(RecordId(0)).unwrap(),
            &[RecordId(0), RecordId(1), RecordId(7)]
        );
        // A member id is not a group id.
        assert_eq!(snapshot.group_members(RecordId(1)), None);
        let mut from_index = index.groups();
        from_index.sort();
        assert_eq!(sorted_groups(&snapshot), from_index);
    }

    #[test]
    fn advance_matches_full_rebuild_and_shares_untouched_buckets() {
        let before = index_of(&[&[0, 1], &[2048], &[5000, 5001]]);
        let old = GroupSnapshot::rebuild_full(&before, 0, EngineStats::default(), 5002);

        // One batch grows the group at 2048 and rewires 5000..=5002; the
        // bucket holding ids 0..1023 is untouched.
        let after = index_of(&[&[0, 1], &[2048, 2049], &[5000], &[5001, 5002]]);
        let affected = [2048, 2049, 5000, 5001, 5002];
        let (new, buckets_rebuilt) = old.advance(&after, &affected, EngineStats::default(), 5003);

        assert_eq!(new.epoch(), 1);
        assert_eq!(buckets_rebuilt, 2, "ids 2048/2049 and 5000..5002");
        let full = GroupSnapshot::rebuild_full(&after, 1, EngineStats::default(), 5003);
        assert_eq!(sorted_groups(&new), sorted_groups(&full));
        assert_eq!(new.stats().num_groups, full.stats().num_groups);
        assert_eq!(new.stats().largest_group, full.stats().largest_group);

        // The untouched bucket physically shares storage with the old
        // epoch; rebuilt buckets do not.
        assert!(new.shares_bucket_with(&old, RecordId(0)));
        assert!(!new.shares_bucket_with(&old, RecordId(2048)));
        assert!(!new.shares_bucket_with(&old, RecordId(5000)));
        // The old epoch still answers from its own frozen state.
        assert_eq!(old.group_of(RecordId(2049)), None);
        assert_eq!(new.group_of(RecordId(2049)), Some(RecordId(2048)));
    }

    #[test]
    fn advance_handles_deletes_and_id_space_growth() {
        let before = index_of(&[&[0, 1], &[10, 11]]);
        let old = GroupSnapshot::rebuild_full(&before, 0, EngineStats::default(), 12);
        // Delete the group at 10 and insert a record in a new bucket.
        let after = index_of(&[&[0, 1], &[9000]]);
        let (new, _) = old.advance(&after, &[10, 11, 9000], EngineStats::default(), 9001);
        assert_eq!(new.group_of(RecordId(10)), None);
        assert_eq!(new.group_members(RecordId(10)), None);
        assert_eq!(new.group_of(RecordId(9000)), Some(RecordId(9000)));
        assert_eq!(new.num_groups(), 2);
        // Chained advances stay equivalent to a fresh full rebuild.
        let final_index = index_of(&[&[0, 1, 9000]]);
        let (newer, _) = new.advance(&final_index, &[0, 1, 9000], EngineStats::default(), 9001);
        let full = GroupSnapshot::rebuild_full(&final_index, 2, EngineStats::default(), 9001);
        assert_eq!(sorted_groups(&newer), sorted_groups(&full));
        assert_eq!(newer.epoch(), 2);
    }

    #[test]
    fn empty_snapshot_answers_nothing() {
        let snapshot = GroupSnapshot::empty(EngineStats::default());
        assert_eq!(snapshot.epoch(), 0);
        assert_eq!(snapshot.group_of(RecordId(0)), None);
        assert_eq!(snapshot.group_members(RecordId(0)), None);
        assert_eq!(snapshot.num_groups(), 0);
        assert!(snapshot.groups().is_empty());
    }
}
