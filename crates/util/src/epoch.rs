//! Epoch-published immutable values: one writer swaps in a new
//! [`Arc`]-wrapped value, many readers observe it without blocking the
//! writer or each other.
//!
//! This is the read/write split concurrent serving needs: the match
//! engine (single writer) builds an immutable snapshot after every
//! applied batch and [`Published::publish`]es it; lookup threads hold a
//! [`PublishedReader`] and answer queries from whichever snapshot was
//! current when they last checked. A reader can never observe a
//! half-applied batch — it either still holds the previous snapshot or
//! the complete new one.
//!
//! ## How lock-free is it?
//!
//! The steady-state read path is **wait-free**: one relaxed-acquire
//! atomic load of the version counter, compared against the reader's
//! cached version. Only when the version moved does the reader take the
//! swap mutex — for exactly one `Arc` clone, once per published epoch
//! per reader. Writers hold the same mutex only for a pointer-sized
//! store. There is no reader-count, no RCU grace period, and no
//! per-lookup reference counting; the `Arc` held by each reader keeps
//! superseded snapshots alive until the last reader moves on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A single-writer, many-reader published value. See the [module
/// docs](self) for the epoch-publication protocol.
#[derive(Debug)]
pub struct Published<T> {
    current: Mutex<Arc<T>>,
    version: AtomicU64,
}

impl<T> Published<T> {
    /// Publish slot holding `initial` at version 0.
    pub fn new(initial: T) -> Self {
        Published {
            current: Mutex::new(Arc::new(initial)),
            version: AtomicU64::new(0),
        }
    }

    /// Swap in a new value and bump the version. Readers holding the old
    /// `Arc` keep it alive; new loads see `value`.
    pub fn publish(&self, value: Arc<T>) {
        let mut slot = self.current.lock().expect("publish mutex poisoned");
        *slot = value;
        // The mutex release orders the store; the counter bump is what
        // readers poll without taking the lock.
        self.version.fetch_add(1, Ordering::Release);
    }

    /// Current version (bumped on every publish).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Clone the current value's `Arc` (takes the swap mutex briefly).
    pub fn load(&self) -> Arc<T> {
        self.current.lock().expect("publish mutex poisoned").clone()
    }
}

/// A reader-side cache over a shared [`Published`] slot: `current()` is
/// wait-free while the version is unchanged and refreshes the cached
/// `Arc` when the writer published a new one.
#[derive(Debug)]
pub struct PublishedReader<T> {
    source: Arc<Published<T>>,
    cached: Arc<T>,
    version: u64,
}

// Cloning shares the slot and the cached Arc — `T: Clone` is not needed.
impl<T> Clone for PublishedReader<T> {
    fn clone(&self) -> Self {
        PublishedReader {
            source: self.source.clone(),
            cached: self.cached.clone(),
            version: self.version,
        }
    }
}

impl<T> PublishedReader<T> {
    /// Reader over `source`, primed with its current value.
    pub fn new(source: Arc<Published<T>>) -> Self {
        let version = source.version();
        let cached = source.load();
        PublishedReader {
            source,
            cached,
            version,
        }
    }

    /// The freshest published value: one atomic load on the fast path, a
    /// mutex-guarded `Arc` clone only when the version moved.
    pub fn current(&mut self) -> &Arc<T> {
        let version = self.source.version();
        if version != self.version {
            // Record the version read *before* the load: if another
            // publish lands in between we fetch an even newer value now
            // and refresh again on the next call — never miss one.
            self.version = version;
            self.cached = self.source.load();
        }
        &self.cached
    }

    /// The value as of the last `current()` call, without checking for a
    /// newer one.
    pub fn cached(&self) -> &Arc<T> {
        &self.cached
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_and_load_round_trip() {
        let slot = Published::new(1u32);
        assert_eq!(*slot.load(), 1);
        assert_eq!(slot.version(), 0);
        slot.publish(Arc::new(2));
        assert_eq!(*slot.load(), 2);
        assert_eq!(slot.version(), 1);
    }

    #[test]
    fn reader_refreshes_only_on_version_change() {
        let slot = Arc::new(Published::new(10u32));
        let mut reader = PublishedReader::new(slot.clone());
        assert_eq!(**reader.current(), 10);
        let before = Arc::as_ptr(reader.cached());
        // No publish: the cached Arc is reused, not re-loaded.
        assert_eq!(Arc::as_ptr(reader.current()), before);
        slot.publish(Arc::new(11));
        assert_eq!(**reader.current(), 11);
        // A stale clone keeps the old value alive independently.
        assert_eq!(**reader.cached(), 11);
    }

    #[test]
    fn superseded_values_stay_alive_for_holders() {
        let slot = Published::new(vec![1, 2, 3]);
        let held = slot.load();
        slot.publish(Arc::new(vec![4]));
        assert_eq!(*held, vec![1, 2, 3]);
        assert_eq!(*slot.load(), vec![4]);
    }

    #[test]
    fn concurrent_readers_always_see_complete_values() {
        // The writer publishes internally-consistent pairs (n, 2n); any
        // torn read would break the invariant.
        let slot = Arc::new(Published::new((0u64, 0u64)));
        let stop = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let slot = slot.clone();
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                let mut reader = PublishedReader::new(slot);
                let mut seen = 0u64;
                while stop.load(Ordering::Acquire) == 0 {
                    let (n, double) = **reader.current();
                    assert_eq!(double, n * 2, "torn snapshot");
                    seen = seen.max(n);
                }
                seen
            }));
        }
        for n in 1..=500u64 {
            slot.publish(Arc::new((n, n * 2)));
        }
        stop.store(1, Ordering::Release);
        for handle in handles {
            assert!(handle.join().expect("reader panicked") <= 500);
        }
        assert_eq!(slot.version(), 500);
    }
}
