//! Shared utilities for the GraLMatch workspace.
//!
//! This crate deliberately has no heavyweight dependencies; it provides the
//! small building blocks every other crate leans on:
//!
//! * [`hash`] — an FxHash-style fast hasher plus [`FxHashMap`]/[`FxHashSet`]
//!   aliases (profiling-friendly replacement for SipHash in hot indexes),
//! * [`rng`] — deterministic, seed-splittable RNG helpers so every dataset
//!   generation and training run is reproducible,
//! * [`csv`] — a minimal RFC-4180-ish CSV reader/writer used for dataset
//!   import/export,
//! * [`json`] — a dependency-free JSON tree/parser/writer with
//!   [`ToJson`]/[`FromJson`] conversion traits,
//! * [`binfmt`] — little-endian binary codec primitives (checksummed
//!   sections, string tables, the [`BinRecord`] trait) for snapshot/WAL
//!   persistence,
//! * [`parallel`] — the shared batched [`WorkerPool`] (work-stealing over
//!   fixed chunks) used by every parallel pipeline step,
//! * [`epoch`] — single-writer/many-reader epoch publication
//!   ([`Published`]/[`PublishedReader`]) for snapshot serving,
//! * [`histogram`] — a mergeable log-linear [`LatencyHistogram`] with
//!   p50/p99/p999 extraction for latency benches,
//! * [`timer`] — a stopwatch for the timing columns of the paper's tables,
//! * [`mem`] — resident-set probe for per-stage memory diagnostics,
//! * [`error`] — the shared error type.

pub mod binfmt;
pub mod csv;
pub mod epoch;
pub mod error;
pub mod hash;
pub mod histogram;
pub mod json;
pub mod mem;
pub mod parallel;
pub mod rng;
pub mod timer;

pub use binfmt::{BinReader, BinRecord, BinWriter, StringTable};
pub use epoch::{Published, PublishedReader};
pub use error::{Error, Result};
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use histogram::LatencyHistogram;
pub use json::{FromJson, Json, JsonError, ToJson};
pub use mem::current_rss_bytes;
pub use parallel::{Parallelism, WorkerPool, DEFAULT_CHUNK_SIZE, SEQUENTIAL_CUTOFF};
pub use rng::SplitRng;
pub use timer::{format_duration, Stopwatch};
