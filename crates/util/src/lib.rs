//! Shared utilities for the GraLMatch workspace.
//!
//! This crate deliberately has no heavyweight dependencies; it provides the
//! small building blocks every other crate leans on:
//!
//! * [`hash`] — an FxHash-style fast hasher plus [`FxHashMap`]/[`FxHashSet`]
//!   aliases (profiling-friendly replacement for SipHash in hot indexes),
//! * [`rng`] — deterministic, seed-splittable RNG helpers so every dataset
//!   generation and training run is reproducible,
//! * [`csv`] — a minimal RFC-4180-ish CSV reader/writer used for dataset
//!   import/export,
//! * [`timer`] — a stopwatch for the timing columns of the paper's tables,
//! * [`error`] — the shared error type.

pub mod csv;
pub mod error;
pub mod hash;
pub mod rng;
pub mod timer;

pub use error::{Error, Result};
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use rng::SplitRng;
pub use timer::{format_duration, Stopwatch};
