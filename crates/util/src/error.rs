//! Shared error type for the workspace.

use std::fmt;

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by GraLMatch components.
///
/// The workspace is a library first: errors carry enough context to be
/// actionable by a caller, and we avoid panicking on user-facing paths
/// (malformed CSV, inconsistent configs) while keeping internal invariant
/// violations as debug assertions.
#[derive(Debug)]
pub enum Error {
    /// I/O failure while reading or writing datasets.
    Io(std::io::Error),
    /// Malformed CSV input: line number and description.
    Csv { line: usize, message: String },
    /// A configuration value is out of its valid range.
    InvalidConfig(String),
    /// A referenced entity/record/source id does not exist.
    MissingId(String),
    /// The operation requires a non-empty input.
    EmptyInput(&'static str),
    /// Model training/inference failure (e.g. dimension mismatch).
    Model(String),
    /// Corrupt binary state: bad magic, unsupported format version,
    /// checksum mismatch, or truncated input. Distinct from [`Error::Io`]
    /// so recovery code can tell a damaged file from a failing disk.
    Corrupt(String),
    /// A pipeline stage ran without its required upstream artifact (stage
    /// ordering bug or a custom pipeline missing a producer stage).
    Pipeline {
        /// The stage that failed.
        stage: &'static str,
        /// What was missing or wrong.
        message: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::Csv { line, message } => write!(f, "CSV parse error at line {line}: {message}"),
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::MissingId(id) => write!(f, "unknown id: {id}"),
            Error::EmptyInput(what) => write!(f, "empty input: {what}"),
            Error::Model(msg) => write!(f, "model error: {msg}"),
            Error::Corrupt(msg) => write!(f, "corrupt binary state: {msg}"),
            Error::Pipeline { stage, message } => {
                write!(f, "pipeline stage `{stage}` failed: {message}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::Csv {
            line: 7,
            message: "unterminated quote".into(),
        };
        assert_eq!(
            e.to_string(),
            "CSV parse error at line 7: unterminated quote"
        );
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn source_chain() {
        use std::error::Error as _;
        let e: Error = std::io::Error::other("inner").into();
        assert!(e.source().is_some());
        assert!(Error::EmptyInput("records").source().is_none());
    }
}
