//! Wall-clock timing for the tables' "Training Time" / "Inference Time"
//! columns.

use std::time::{Duration, Instant};

/// A simple stopwatch with human-readable formatting matching the paper's
/// style (`23.25 h`, `6.7 min`, `31 sec`).
#[derive(Debug, Clone)]
pub struct Stopwatch {
    start: Instant,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed seconds as f64.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Format the elapsed time like the paper's tables.
    pub fn display(&self) -> String {
        format_duration(self.elapsed())
    }
}

/// Format a duration in the paper's table style.
pub fn format_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 3600.0 {
        let h = (secs / 3600.0).floor();
        let m = ((secs - h * 3600.0) / 60.0).round();
        if m > 0.0 {
            format!("{h:.0}h {m:.0}min")
        } else {
            format!("{:.2} h", secs / 3600.0)
        }
    } else if secs >= 60.0 {
        format!("{:.1} min", secs / 60.0)
    } else if secs >= 1.0 {
        format!("{secs:.1} sec")
    } else {
        format!("{:.1} ms", secs * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_hours() {
        assert_eq!(
            format_duration(Duration::from_secs(3600 + 26 * 60)),
            "1h 26min"
        );
    }

    #[test]
    fn formats_minutes() {
        assert_eq!(format_duration(Duration::from_secs_f64(402.0)), "6.7 min");
    }

    #[test]
    fn formats_seconds() {
        assert_eq!(format_duration(Duration::from_secs(31)), "31.0 sec");
    }

    #[test]
    fn formats_millis() {
        assert_eq!(format_duration(Duration::from_millis(250)), "250.0 ms");
    }

    #[test]
    fn stopwatch_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_secs();
        let b = sw.elapsed_secs();
        assert!(b >= a);
    }
}
