//! Minimal CSV reader/writer (RFC 4180 quoting subset).
//!
//! The datasets this workspace produces are plain tables of short string
//! fields; a dedicated dependency is not justified. Supports:
//! quoted fields with embedded commas/newlines/escaped quotes, CRLF and LF
//! line endings, and round-trip fidelity (`write` then `parse` is identity).

use crate::{Error, Result};
use std::io::{BufRead, Write};

/// Parse CSV from a reader into rows of fields.
pub fn read_csv<R: BufRead>(reader: R) -> Result<Vec<Vec<String>>> {
    let mut rows = Vec::new();
    let mut parser = Parser::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        parser.feed_line(&line, lineno + 1)?;
        while let Some(row) = parser.take_row() {
            rows.push(row);
        }
    }
    parser.finish(&mut rows)?;
    Ok(rows)
}

/// Parse CSV from an in-memory string.
pub fn parse_csv(text: &str) -> Result<Vec<Vec<String>>> {
    read_csv(std::io::Cursor::new(text.as_bytes()))
}

/// Write rows as CSV. Fields containing `,`, `"`, or newlines are quoted.
pub fn write_csv<W: Write>(writer: &mut W, rows: &[Vec<String>]) -> Result<()> {
    for row in rows {
        write_row(writer, row.iter().map(|s| s.as_str()))?;
    }
    Ok(())
}

/// Write a single CSV row.
pub fn write_row<'a, W: Write>(
    writer: &mut W,
    fields: impl Iterator<Item = &'a str>,
) -> Result<()> {
    let mut first = true;
    for field in fields {
        if !first {
            writer.write_all(b",")?;
        }
        first = false;
        if field.contains([',', '"', '\n', '\r']) {
            writer.write_all(b"\"")?;
            writer.write_all(field.replace('"', "\"\"").as_bytes())?;
            writer.write_all(b"\"")?;
        } else {
            writer.write_all(field.as_bytes())?;
        }
    }
    writer.write_all(b"\n")?;
    Ok(())
}

/// Serialize rows to a CSV string.
pub fn to_csv_string(rows: &[Vec<String>]) -> String {
    let mut buf = Vec::new();
    // Writing to a Vec cannot fail.
    write_csv(&mut buf, rows).expect("in-memory write");
    String::from_utf8(buf).expect("CSV output is UTF-8")
}

/// Streaming CSV parser that tolerates records spanning multiple lines
/// (quoted embedded newlines).
struct Parser {
    current_field: String,
    current_row: Vec<String>,
    finished_rows: Vec<Vec<String>>,
    in_quotes: bool,
    row_started: bool,
}

impl Parser {
    fn new() -> Self {
        Parser {
            current_field: String::new(),
            current_row: Vec::new(),
            finished_rows: Vec::new(),
            in_quotes: false,
            row_started: false,
        }
    }

    fn feed_line(&mut self, line: &str, lineno: usize) -> Result<()> {
        if self.in_quotes {
            // Continuation of a quoted field across a newline.
            self.current_field.push('\n');
        }
        let mut chars = line.chars().peekable();
        while let Some(c) = chars.next() {
            self.row_started = true;
            if self.in_quotes {
                match c {
                    '"' => {
                        if chars.peek() == Some(&'"') {
                            chars.next();
                            self.current_field.push('"');
                        } else {
                            self.in_quotes = false;
                        }
                    }
                    other => self.current_field.push(other),
                }
            } else {
                match c {
                    '"' => {
                        if !self.current_field.is_empty() {
                            return Err(Error::Csv {
                                line: lineno,
                                message: "quote inside unquoted field".into(),
                            });
                        }
                        self.in_quotes = true;
                    }
                    ',' => {
                        self.current_row
                            .push(std::mem::take(&mut self.current_field));
                    }
                    other => self.current_field.push(other),
                }
            }
        }
        if !self.in_quotes && self.row_started {
            self.current_row
                .push(std::mem::take(&mut self.current_field));
            self.finished_rows
                .push(std::mem::take(&mut self.current_row));
            self.row_started = false;
        }
        Ok(())
    }

    fn take_row(&mut self) -> Option<Vec<String>> {
        if self.finished_rows.is_empty() {
            None
        } else {
            Some(self.finished_rows.remove(0))
        }
    }

    fn finish(mut self, rows: &mut Vec<Vec<String>>) -> Result<()> {
        if self.in_quotes {
            return Err(Error::Csv {
                line: 0,
                message: "unterminated quoted field at end of input".into(),
            });
        }
        if self.row_started {
            self.current_row
                .push(std::mem::take(&mut self.current_field));
            rows.push(self.current_row);
        }
        rows.append(&mut self.finished_rows);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_rows() {
        let rows = parse_csv("a,b,c\nd,e,f\n").unwrap();
        assert_eq!(rows, vec![vec!["a", "b", "c"], vec!["d", "e", "f"]]);
    }

    #[test]
    fn quoted_comma_and_quote() {
        let rows = parse_csv("\"a,b\",\"say \"\"hi\"\"\"\n").unwrap();
        assert_eq!(
            rows,
            vec![vec!["a,b".to_string(), "say \"hi\"".to_string()]]
        );
    }

    #[test]
    fn embedded_newline() {
        let rows = parse_csv("\"line1\nline2\",x\n").unwrap();
        assert_eq!(
            rows,
            vec![vec!["line1\nline2".to_string(), "x".to_string()]]
        );
    }

    #[test]
    fn empty_fields() {
        let rows = parse_csv("a,,c\n,,\n").unwrap();
        assert_eq!(rows[0], vec!["a", "", "c"]);
        assert_eq!(rows[1], vec!["", "", ""]);
    }

    #[test]
    fn missing_trailing_newline() {
        let rows = parse_csv("a,b").unwrap();
        assert_eq!(rows, vec![vec!["a", "b"]]);
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert!(parse_csv("\"oops").is_err());
    }

    #[test]
    fn quote_mid_field_is_error() {
        assert!(parse_csv("ab\"cd,e").is_err());
    }

    #[test]
    fn round_trip() {
        let rows = vec![
            vec!["Crowdstrike Holdings, Inc.".to_string(), "US".to_string()],
            vec!["quote \" in field".to_string(), "multi\nline".to_string()],
            vec![String::new(), "x".to_string()],
        ];
        let text = to_csv_string(&rows);
        let parsed = parse_csv(&text).unwrap();
        assert_eq!(parsed, rows);
    }

    #[test]
    fn crlf_tolerated_via_lines() {
        // BufRead::lines strips \r\n? It strips \n but leaves \r; feed
        // through read_csv to confirm we still parse (the \r lands in the
        // field — callers trim). We document the behaviour here.
        let rows = parse_csv("a,b\nc,d").unwrap();
        assert_eq!(rows.len(), 2);
    }
}
