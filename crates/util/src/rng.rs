//! Deterministic, splittable randomness.
//!
//! Every stochastic step in the reproduction (seed generation, data
//! artifacts, negative sampling, weight init, shuffling) draws from a
//! [`SplitRng`] derived from a single experiment seed, so that
//! `cargo run --bin table4` prints the same numbers on every machine.
//!
//! `SplitRng` is a thin wrapper over a SplitMix64 state. It is *not* used
//! through the `rand` traits in hot paths (the raw `next_u64` is enough),
//! but it can hand out independent child streams keyed by a label, which is
//! what makes per-subsystem determinism robust to code motion: adding an
//! extra draw inside the datagen does not perturb the trainer's stream.

use crate::hash::hash_bytes;

/// SplitMix64: tiny, fast, passes BigCrush when used as a stream, and
/// supports cheap key-derived splitting.
#[derive(Debug, Clone)]
pub struct SplitRng {
    state: u64,
}

impl SplitRng {
    /// Create a stream from an experiment-level seed.
    pub fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point.
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Derive an independent child stream identified by `label`.
    ///
    /// Children with different labels are decorrelated; the parent stream is
    /// not advanced.
    pub fn split(&self, label: &str) -> SplitRng {
        SplitRng::new(self.state ^ hash_bytes(label.as_bytes()))
    }

    /// Derive an independent child stream identified by an index (e.g. one
    /// stream per entity group).
    pub fn split_index(&self, index: u64) -> SplitRng {
        SplitRng::new(
            self.state
                .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9)),
        )
    }

    /// Next raw 64 bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0, "next_below(0)");
        // Lemire's multiply-shift rejection-free approximation is fine here:
        // bounds are tiny relative to 2^64, bias is negligible (< 2^-40).
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[0, 1)` as f32 (weight init).
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform integer in `[lo, hi]` (inclusive). Requires `lo <= hi`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.next_below(hi - lo + 1)
    }

    /// Pick a uniformly random element of a non-empty slice.
    #[inline]
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.next_below(items.len())]
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i + 1);
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `0..n` (k <= n), order unspecified.
    ///
    /// Uses a partial Fisher-Yates over an index vector for small `n`, and
    /// Floyd's algorithm for large `n` with small `k` to avoid the O(n)
    /// allocation.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        if k == 0 {
            return Vec::new();
        }
        if k * 4 >= n {
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = i + self.next_below(n - i);
                idx.swap(i, j);
            }
            idx.truncate(k);
            idx
        } else {
            // Floyd's: for j in n-k..n, pick t in [0, j]; insert t or j.
            let mut chosen = crate::FxHashSet::default();
            let mut out = Vec::with_capacity(k);
            for j in (n - k)..n {
                let t = self.next_below(j + 1);
                if chosen.insert(t) {
                    out.push(t);
                } else {
                    chosen.insert(j);
                    out.push(j);
                }
            }
            out
        }
    }

    /// Standard normal via Box-Muller (weight init only; not hot).
    pub fn next_gaussian(&mut self) -> f64 {
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = SplitRng::new(7);
        let mut b = SplitRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn split_streams_are_decorrelated() {
        let root = SplitRng::new(7);
        let mut x = root.split("datagen");
        let mut y = root.split("trainer");
        let xs: Vec<u64> = (0..8).map(|_| x.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| y.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn split_does_not_advance_parent() {
        let mut root = SplitRng::new(9);
        let before = root.clone().next_u64();
        let _child = root.split("x");
        assert_eq!(root.next_u64(), before);
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitRng::new(3);
        for _ in 0..1000 {
            assert!(r.next_below(10) < 10);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitRng::new(3);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_inclusive_covers_bounds() {
        let mut r = SplitRng::new(11);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            match r.range_inclusive(2, 4) {
                2 => seen_lo = true,
                4 => seen_hi = true,
                3 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitRng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = SplitRng::new(13);
        for &(n, k) in &[(10usize, 10usize), (100, 5), (1000, 3), (5, 0)] {
            let s = r.sample_indices(n, k);
            assert_eq!(s.len(), k);
            let set: crate::FxHashSet<usize> = s.iter().copied().collect();
            assert_eq!(set.len(), k, "duplicates for n={n} k={k}");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitRng::new(1);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut r = SplitRng::new(17);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.next_gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
