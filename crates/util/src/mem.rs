//! Process memory probe for stage diagnostics.
//!
//! The pipeline trace reports per-stage resident-set deltas. On Linux this
//! reads the `VmRSS` line of `/proc/self/status` (reported in kB, so no
//! page-size assumption — kernels ship 4K/16K/64K pages depending on
//! architecture); elsewhere it returns `None` and the trace simply omits
//! memory numbers.

/// Current resident set size in bytes, when the platform exposes it.
pub fn current_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
        let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
        Some(kb * 1024)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn rss_is_positive_on_linux() {
        let rss = current_rss_bytes().expect("statm readable");
        assert!(rss > 0);
    }
}
