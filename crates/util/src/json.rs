//! Minimal JSON tree, writer, and parser.
//!
//! The build environment is offline, so the workspace cannot pull in
//! `serde`/`serde_json`. This module provides the small subset the project
//! needs: a [`Json`] value tree with a compact writer, a pretty writer, a
//! strict parser, and [`ToJson`]/[`FromJson`] conversion traits that record
//! types implement by hand. Numbers are `f64` (like JSON itself); `f32`
//! payloads round-trip exactly because every `f32` is representable as `f64`
//! and the writer emits shortest round-trip decimal forms.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion order is preserved (JSON objects are unordered,
    /// but stable output keeps diffs and golden files readable).
    Obj(Vec<(String, Json)>),
}

/// Error from parsing or converting JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
}

impl JsonError {
    fn new(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

/// Convert a value into a [`Json`] tree.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Reconstruct a value from a [`Json`] tree.
pub trait FromJson: Sized {
    /// Parse `json` into `Self`, or describe what is wrong.
    fn from_json(json: &Json) -> Result<Self, JsonError>;
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Look up a key in an object (None for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object field, as an error when missing.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::new(format!("missing field `{key}`")))
    }

    /// String payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array payload.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Compact serialization.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Pretty serialization with two-space indentation.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        const INDENT: &str = "  ";
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&INDENT.repeat(depth + 1));
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&INDENT.repeat(depth));
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&INDENT.repeat(depth + 1));
                    write_string(key, out);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&INDENT.repeat(depth));
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// Parse JSON text.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(JsonError::new(format!(
                "trailing input at byte {}",
                parser.pos
            )));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact_string())
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the least-bad lossy encoding.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        // `{:?}` prints the shortest string that round-trips the double.
        out.push_str(&format!("{n:?}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(JsonError::new(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(JsonError::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            fields.push((key, self.value()?));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(JsonError::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self
                .peek()
                .is_some_and(|b| b != b'"' && b != b'\\' && b >= 0x20)
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError::new("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.unicode_escape()?;
                            out.push(code);
                            continue;
                        }
                        _ => return Err(JsonError::new("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(JsonError::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| JsonError::new("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| JsonError::new("bad \\u escape"))?;
        let value = u32::from_str_radix(text, 16).map_err(|_| JsonError::new("bad \\u escape"))?;
        self.pos += 4;
        Ok(value)
    }

    /// Parses the 4 hex digits after `\u` (cursor on the `u`), handling
    /// surrogate pairs. Leaves the cursor after the final consumed digit.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        self.pos += 1; // consume 'u'
        let high = self.hex4()?;
        let code = if (0xD800..0xDC00).contains(&high) {
            if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                return Err(JsonError::new("lone high surrogate"));
            }
            self.pos += 2;
            let low = self.hex4()?;
            if !(0xDC00..0xE000).contains(&low) {
                return Err(JsonError::new("invalid low surrogate"));
            }
            0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00)
        } else {
            high
        };
        char::from_u32(code).ok_or_else(|| JsonError::new("invalid codepoint"))
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError::new(format!("bad number `{text}`")))
    }
}

// --- Conversions for primitives and containers --------------------------

macro_rules! impl_json_int {
    ($($ty:ty),*) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
        impl FromJson for $ty {
            fn from_json(json: &Json) -> Result<Self, JsonError> {
                let n = json
                    .as_f64()
                    .ok_or_else(|| JsonError::new("expected number"))?;
                if n.fract() != 0.0 {
                    return Err(JsonError::new(format!("expected integer, got {n}")));
                }
                // Range-check before casting: float-to-int casts saturate,
                // which would turn corrupt input into plausible values.
                if n < <$ty>::MIN as f64 || n > <$ty>::MAX as f64 {
                    return Err(JsonError::new(format!(
                        "{n} out of range for {}",
                        stringify!($ty)
                    )));
                }
                Ok(n as $ty)
            }
        }
    )*};
}
impl_json_int!(u16, u32, u64, usize, i64);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}
impl FromJson for f64 {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_f64()
            .ok_or_else(|| JsonError::new("expected number"))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(f64::from(*self))
    }
}
impl FromJson for f32 {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let n = f64::from_json(json)?;
        let v = n as f32;
        // The cast saturates to ±inf for finite doubles beyond f32 range;
        // reject those instead of smuggling infinities into models.
        if v.is_infinite() && n.is_finite() {
            return Err(JsonError::new(format!("{n} out of range for f32")));
        }
        Ok(v)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}
impl FromJson for bool {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_bool()
            .ok_or_else(|| JsonError::new("expected bool"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}
impl FromJson for String {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::new("expected string"))
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}
impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_arr()
            .ok_or_else(|| JsonError::new("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(value) => value.to_json(),
            None => Json::Null,
        }
    }
}
impl<T: FromJson> FromJson for Option<T> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        if json.is_null() {
            Ok(None)
        } else {
            T::from_json(json).map(Some)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-3", "2.5", "\"hi\""] {
            let value = Json::parse(text).unwrap();
            assert_eq!(value.to_compact_string(), text);
        }
    }

    #[test]
    fn nested_round_trip() {
        let value = Json::obj([
            ("a", Json::Arr(vec![Json::Num(1.0), Json::Null])),
            ("b", Json::obj([("c", Json::Str("x\"y\n".into()))])),
        ]);
        let text = value.to_compact_string();
        assert_eq!(Json::parse(&text).unwrap(), value);
        let pretty = value.to_pretty_string();
        assert_eq!(Json::parse(&pretty).unwrap(), value);
    }

    #[test]
    fn string_escapes() {
        let parsed = Json::parse(r#""tab\tquote\"uAsurrogate😀""#).unwrap();
        assert_eq!(parsed.as_str().unwrap(), "tab\tquote\"uAsurrogate😀");
    }

    #[test]
    fn f32_round_trips_exactly() {
        for value in [0.1f32, 1.0 / 3.0, f32::MIN_POSITIVE, 123456.78] {
            let json = value.to_json().to_compact_string();
            let back = f32::from_json(&Json::parse(&json).unwrap()).unwrap();
            assert_eq!(back, value);
        }
    }

    #[test]
    fn integers_reject_fractions() {
        assert!(u32::from_json(&Json::Num(1.5)).is_err());
        assert_eq!(u32::from_json(&Json::Num(7.0)).unwrap(), 7);
    }

    #[test]
    fn integers_reject_out_of_range() {
        assert!(u32::from_json(&Json::Num(-1.0)).is_err());
        assert!(u16::from_json(&Json::Num(1e6)).is_err());
        assert!(u32::from_json(&Json::Num(f64::from(u32::MAX))).is_ok());
    }

    #[test]
    fn f32_rejects_out_of_range() {
        assert!(f32::from_json(&Json::Num(1e300)).is_err());
        assert!(f32::from_json(&Json::Num(-1e300)).is_err());
        assert!(f32::from_json(&Json::Num(3.0e38)).is_ok());
    }

    #[test]
    fn errors_are_reported() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
    }

    #[test]
    fn object_lookup() {
        let value = Json::obj([("k", Json::Num(3.0))]);
        assert_eq!(value.field("k").unwrap().as_f64(), Some(3.0));
        assert!(value.field("missing").is_err());
    }
}
