//! Shared batched worker pool (work-stealing over fixed chunks).
//!
//! Pipeline stages — pairwise inference first and foremost — process long
//! slices of independent items. Splitting such a slice into one contiguous
//! chunk per thread serializes the whole run on the slowest chunk when per
//! item cost is skewed (e.g. candidate pairs of long, identifier-heavy
//! records cost several times more to featurize than short ones). The
//! [`WorkerPool`] instead cuts the input into *fixed-size* chunks and lets
//! workers pull the next unclaimed chunk from a shared atomic cursor, so a
//! worker that finishes early steals remaining work instead of idling.
//!
//! Output order always matches input order: workers tag each produced chunk
//! with its index and the pool reassembles them.

use std::sync::atomic::{AtomicUsize, Ordering};

/// How many worker threads a parallel step should use.
///
/// `Auto` applies the small-input heuristic (below
/// [`SEQUENTIAL_CUTOFF`] items the fixed cost of spawning scoped threads
/// exceeds the work itself, so the step runs sequentially). `Fixed(n)` is an
/// explicit override and is honored *regardless of input size* — callers
/// that measured their workload can force parallelism where the heuristic
/// would decline it, or force `Fixed(1)` for deterministic profiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Pick a worker count from `std::thread::available_parallelism`,
    /// falling back to sequential for small inputs.
    #[default]
    Auto,
    /// Exactly this many workers (minimum 1), even for small inputs.
    Fixed(usize),
}

/// Inputs shorter than this run sequentially under [`Parallelism::Auto`].
///
/// The value is the break-even point measured for pairwise scoring: below
/// ~1K pairs, thread spawn + join overhead (tens of microseconds per
/// thread) dominates the per-pair scoring cost.
pub const SEQUENTIAL_CUTOFF: usize = 1024;

/// Default number of items per stealable work chunk.
///
/// Small enough that skewed chunks rebalance (a slice of 1M pairs yields
/// ~1000 steal opportunities), large enough that cursor contention is
/// negligible.
pub const DEFAULT_CHUNK_SIZE: usize = 1024;

impl Parallelism {
    /// Resolve to a concrete worker count for an input of `num_items`.
    pub fn worker_count(&self, num_items: usize) -> usize {
        match self {
            Parallelism::Fixed(n) => (*n).max(1),
            Parallelism::Auto => {
                if num_items < SEQUENTIAL_CUTOFF {
                    1
                } else {
                    std::thread::available_parallelism().map_or(4, |n| n.get())
                }
            }
        }
    }

    /// A pool sized for an input of `num_items`.
    pub fn pool_for(&self, num_items: usize) -> WorkerPool {
        WorkerPool::new(self.worker_count(num_items))
    }
}

/// A batched map executor shared by pipeline stages.
///
/// The pool is a cheap value (two integers); "shared" means all stages of a
/// pipeline run size their parallel steps through the same pool instance,
/// not that OS threads persist between calls — each [`WorkerPool::map`]
/// spawns scoped workers and joins them before returning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    workers: usize,
    chunk_size: usize,
}

impl WorkerPool {
    /// Pool with `workers` threads (minimum 1) and the default chunk size.
    pub fn new(workers: usize) -> Self {
        WorkerPool {
            workers: workers.max(1),
            chunk_size: DEFAULT_CHUNK_SIZE,
        }
    }

    /// Override the steal-chunk size (minimum 1).
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size.max(1);
        self
    }

    /// Number of worker threads `map` will use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Map `f` over `items`, preserving input order in the output.
    ///
    /// Runs sequentially when the pool has one worker or the input fits in
    /// a single chunk; otherwise workers steal fixed-size chunks from a
    /// shared cursor until the input is drained. `f` must be pure with
    /// respect to ordering: it receives items in an unspecified schedule.
    pub fn map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.map_init(items, || (), move |(), item| f(item))
    }

    /// Like [`WorkerPool::map`], but each worker thread builds one scratch
    /// state with `init` and reuses it across every chunk it steals —
    /// `f(&mut state, item)` can keep allocations (hash maps, buffers)
    /// alive for the whole run instead of paying per item. Output order
    /// matches input order; the per-worker states are dropped at the end,
    /// so `f` must fold everything it wants to keep into its return value.
    pub fn map_init<T, U, S, I, F>(&self, items: &[T], init: I, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, &T) -> U + Sync,
    {
        self.filter_map_init(items, init, move |state, item| Some(f(state, item)))
    }

    /// Run `f(worker_index)` once on each of the pool's workers
    /// concurrently and collect the results in worker order.
    ///
    /// Where [`WorkerPool::map`] splits one input across workers,
    /// `broadcast` gives every worker the *same* long-running job — the
    /// shape of serving threads and closed-loop load clients, where each
    /// worker owns a loop over shared state rather than a slice of items.
    /// With a single worker the closure runs on the calling thread.
    pub fn broadcast<U, F>(&self, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        if self.workers == 1 {
            return vec![f(0)];
        }
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.workers)
                .map(|index| scope.spawn(move || f(index)))
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("broadcast worker panicked"))
                .collect()
        })
    }

    /// [`WorkerPool::map_init`] with a pool-side filter: items mapped to
    /// `None` never allocate an output slot — workers drop them inside
    /// their chunks instead of materializing a full-width intermediate
    /// vector for the caller to filter. The surviving items keep input
    /// order. This is the shape of threshold scoring, where the
    /// overwhelming majority of candidate pairs are negative.
    pub fn filter_map_init<T, U, S, I, F>(&self, items: &[T], init: I, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, &T) -> Option<U> + Sync,
    {
        if self.workers == 1 || items.len() < 2 {
            let mut state = init();
            return items
                .iter()
                .filter_map(|item| f(&mut state, item))
                .collect();
        }

        // Honor multi-worker pools even for inputs smaller than the default
        // chunk: shrink chunks until every worker can claim at least one
        // (an explicit `Parallelism::Fixed(n)` must actually parallelize).
        let chunk_size = self
            .chunk_size
            .min(items.len().div_ceil(self.workers))
            .max(1);
        let num_chunks = items.len().div_ceil(chunk_size);
        let workers = self.workers.min(num_chunks);
        let cursor = AtomicUsize::new(0);
        let f = &f;
        let init = &init;

        let mut tagged: Vec<(usize, Vec<U>)> = Vec::with_capacity(num_chunks);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let cursor = &cursor;
                handles.push(scope.spawn(move || {
                    let mut state = init();
                    let mut produced: Vec<(usize, Vec<U>)> = Vec::new();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= num_chunks {
                            return produced;
                        }
                        let start = index * chunk_size;
                        let end = (start + chunk_size).min(items.len());
                        produced.push((
                            index,
                            items[start..end]
                                .iter()
                                .filter_map(|item| f(&mut state, item))
                                .collect(),
                        ));
                    }
                }));
            }
            for handle in handles {
                tagged.extend(handle.join().expect("worker panicked"));
            }
        });

        tagged.sort_unstable_by_key(|(index, _)| *index);
        let mut out = Vec::with_capacity(tagged.iter().map(|(_, chunk)| chunk.len()).sum());
        for (_, chunk) in tagged {
            out.extend(chunk);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<u64> = (0..10_000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for workers in [1, 2, 4, 7] {
            let pool = WorkerPool::new(workers).with_chunk_size(256);
            assert_eq!(
                pool.map(&items, |x| x * 3 + 1),
                expected,
                "{workers} workers"
            );
        }
    }

    #[test]
    fn skewed_costs_still_ordered() {
        // Early items are much slower; stealing must not scramble output.
        let items: Vec<usize> = (0..4_096).collect();
        let pool = WorkerPool::new(4).with_chunk_size(64);
        let out = pool.map(&items, |&i| {
            if i < 64 {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
            i
        });
        assert_eq!(out, items);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let pool = WorkerPool::new(8);
        assert!(pool.map(&[] as &[u32], |&x| x).is_empty());
        assert_eq!(pool.map(&[5u32], |&x| x + 1), vec![6]);
    }

    #[test]
    fn auto_parallelism_heuristic() {
        assert_eq!(Parallelism::Auto.worker_count(SEQUENTIAL_CUTOFF - 1), 1);
        assert!(Parallelism::Auto.worker_count(SEQUENTIAL_CUTOFF) >= 1);
    }

    #[test]
    fn fixed_overrides_small_inputs() {
        // The explicit override is honored even below the cutoff.
        assert_eq!(Parallelism::Fixed(3).worker_count(10), 3);
        assert_eq!(Parallelism::Fixed(0).worker_count(10), 1);
    }

    #[test]
    fn map_init_reuses_state_within_workers() {
        // The scratch buffer must survive across chunks: count how many
        // items each state instance saw — total must equal the input size,
        // and with 4 workers at most 4 states are ever built.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let states = AtomicUsize::new(0);
        let items: Vec<u64> = (0..10_000).collect();
        let pool = WorkerPool::new(4).with_chunk_size(128);
        let out = pool.map_init(
            &items,
            || {
                states.fetch_add(1, Ordering::Relaxed);
                Vec::<u64>::new()
            },
            |scratch, &x| {
                scratch.clear();
                scratch.push(x);
                scratch[0] * 2
            },
        );
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        assert!(states.load(Ordering::Relaxed) <= 4);
    }

    #[test]
    fn filter_map_init_drops_and_keeps_order() {
        let items: Vec<u64> = (0..10_000).collect();
        let expected: Vec<u64> = items.iter().copied().filter(|x| x % 3 == 0).collect();
        for workers in [1, 2, 4] {
            let pool = WorkerPool::new(workers).with_chunk_size(128);
            let out = pool.filter_map_init(&items, || (), |(), &x| (x % 3 == 0).then_some(x));
            assert_eq!(out, expected, "{workers} workers");
        }
        // All-dropped and all-kept edges.
        let pool = WorkerPool::new(4).with_chunk_size(64);
        assert!(pool
            .filter_map_init(&items, || (), |(), _| None::<u64>)
            .is_empty());
        assert_eq!(pool.filter_map_init(&items, || (), |(), &x| Some(x)), items);
    }

    #[test]
    fn map_init_sequential_single_state() {
        let items: Vec<u32> = (0..10).collect();
        let pool = WorkerPool::new(1);
        // The sequential path threads one state through all items.
        let out = pool.map_init(
            &items,
            || 0u32,
            |seen, &x| {
                *seen += 1;
                (x, *seen)
            },
        );
        assert_eq!(out.last(), Some(&(9, 10)));
    }

    #[test]
    fn broadcast_runs_every_worker_once() {
        let pool = WorkerPool::new(4);
        let mut out = pool.broadcast(|index| index * 10);
        out.sort_unstable();
        assert_eq!(out, vec![0, 10, 20, 30]);
        // Single-worker pools run inline.
        assert_eq!(WorkerPool::new(1).broadcast(|index| index + 7), vec![7]);
    }

    #[test]
    fn broadcast_workers_share_state() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let pool = WorkerPool::new(3);
        pool.broadcast(|_| counter.fetch_add(1, Ordering::Relaxed));
        assert_eq!(counter.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn pool_is_shared_value() {
        let pool = Parallelism::Fixed(2).pool_for(10);
        assert_eq!(pool.workers(), 2);
        let a = pool.map(&[1, 2, 3], |&x: &i32| x);
        let b = pool.map(&[4, 5], |&x: &i32| x * 2);
        assert_eq!((a, b), (vec![1, 2, 3], vec![8, 10]));
    }
}
