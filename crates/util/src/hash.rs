//! FxHash-style hashing.
//!
//! The workspace indexes millions of short keys (record ids, token ids,
//! identifier strings). The standard library's SipHash is collision-resistant
//! but slow for these; the Fx algorithm (as used by rustc) is a multiply-xor
//! construction that is dramatically faster on short keys. We implement it
//! here rather than pulling in an extra dependency.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A fast, non-cryptographic hasher suitable for in-memory indexes.
///
/// Not HashDoS-resistant; never use for attacker-controlled keys crossing a
/// trust boundary. All uses in this workspace hash internally generated ids
/// and tokens.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            // Unwrap is fine: chunks_exact guarantees 8 bytes.
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Mix in the length so "a" and "a\0" differ.
            buf[7] = rem.len() as u8;
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

/// Hash a byte slice in one call (used by the feature-hashing vectorizer).
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// Hash a pair of u64s in one call (used for candidate-pair dedup keys).
#[inline]
pub fn hash_u64_pair(a: u64, b: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(a);
    h.write_u64(b);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(hash_bytes(b"crowdstrike"), hash_bytes(b"crowdstrike"));
    }

    #[test]
    fn hash_differs_for_different_inputs() {
        assert_ne!(hash_bytes(b"crowdstrike"), hash_bytes(b"crowdstreet"));
    }

    #[test]
    fn short_strings_with_shared_prefix_differ() {
        assert_ne!(hash_bytes(b"a"), hash_bytes(b"aa"));
        assert_ne!(hash_bytes(b"a"), hash_bytes(b"a\0"));
    }

    #[test]
    fn empty_input_hashes_to_zero_state() {
        // The empty hash is whatever the initial state finishes to; it must
        // simply be stable and distinct from a one-byte write.
        assert_eq!(hash_bytes(b""), hash_bytes(b""));
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<&str, u32> = FxHashMap::default();
        m.insert("isin", 1);
        assert_eq!(m.get("isin"), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(42);
        assert!(s.contains(&42));
    }

    #[test]
    fn pair_hash_order_sensitive() {
        assert_ne!(hash_u64_pair(1, 2), hash_u64_pair(2, 1));
    }

    #[test]
    fn chunked_writes_match_single_write() {
        // Hasher state depends on write boundaries for the remainder path, so
        // we only require that *identical* write sequences agree.
        let mut h1 = FxHasher::default();
        h1.write(b"0123456789abcdef");
        let mut h2 = FxHasher::default();
        h2.write(b"0123456789abcdef");
        assert_eq!(h1.finish(), h2.finish());
    }
}
