//! Little-endian binary codec primitives for state snapshots and WALs.
//!
//! The JSON tree in [`crate::json`] is the debug/export format; hot
//! persistence paths (engine snapshots, write-ahead logs) go through this
//! module instead: length-prefixed sections framed as
//! `[tag u8][len u64][payload][checksum64(payload) u64]`, a leading magic +
//! format-version byte per file, and a [`StringTable`] that interns
//! repeated record field values once per file. Everything is
//! little-endian and densely packed so a load is a near-sequential read
//! with no per-value parsing.
//!
//! Corruption surfaces as [`Error::Corrupt`] — never a panic — so callers
//! can distinguish a torn tail (truncate and continue) from a damaged
//! snapshot (refuse to serve).

use crate::error::{Error, Result};
use crate::hash::FxHashMap;

/// On-disk format version, bumped on any layout change. A mismatched
/// version byte is a hard [`Error::Corrupt`] — old readers must never
/// misparse new files.
pub const FORMAT_VERSION: u8 = 1;

/// FNV-1a 64-bit digest (the textbook byte-at-a-time definition; used for
/// short inputs like fingerprint digests, and as the reference the tests
/// pin down).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The checksum appended to every section and WAL frame: FNV-1a folded
/// over little-endian `u64` words (the final partial word zero-padded),
/// with the input length mixed in so padding cannot alias. One multiply
/// per 8 bytes instead of per byte — ~6× faster over megabyte sections —
/// while still catching any single-bit flip or truncation (this is a
/// torn-write detector, not a cryptographic integrity boundary).
pub fn checksum64(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325 ^ (bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        hash ^= u64::from_le_bytes(chunk.try_into().unwrap());
        hash = hash.wrapping_mul(PRIME);
    }
    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut word = [0u8; 8];
        word[..tail.len()].copy_from_slice(tail);
        hash ^= u64::from_le_bytes(word);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

fn corrupt(message: impl Into<String>) -> Error {
    Error::Corrupt(message.into())
}

/// Append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct BinWriter {
    buf: Vec<u8>,
}

impl BinWriter {
    /// Empty writer.
    pub fn new() -> Self {
        BinWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The accumulated buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the accumulated buffer.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Write one byte.
    pub fn put_u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Write a `u16`, little-endian.
    pub fn put_u16(&mut self, value: u16) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Write a `u32`, little-endian.
    pub fn put_u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Write a `u64`, little-endian.
    pub fn put_u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Write raw bytes with no length prefix.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Write a `u32` length prefix followed by the UTF-8 bytes.
    pub fn put_str(&mut self, value: &str) {
        self.put_u32(value.len() as u32);
        self.put_bytes(value.as_bytes());
    }
}

/// Bounds-checked little-endian cursor over an immutable byte slice.
#[derive(Debug)]
pub struct BinReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BinReader<'a> {
    /// Cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        BinReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor is at the end.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Consume `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(corrupt(format!(
                "unexpected end of input: need {n} bytes at offset {}, {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a `u32`-length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| {
            corrupt(format!(
                "invalid UTF-8 in string at offset {}",
                self.pos - len
            ))
        })
    }
}

/// Write a file header: 4 magic bytes + the format version byte.
pub fn write_magic(w: &mut BinWriter, magic: &[u8; 4]) {
    w.put_bytes(magic);
    w.put_u8(FORMAT_VERSION);
}

/// Byte length of the header written by [`write_magic`].
pub const MAGIC_LEN: usize = 5;

/// Validate a file header written by [`write_magic`]: wrong magic and
/// wrong version are distinct [`Error::Corrupt`] messages.
pub fn check_magic(r: &mut BinReader<'_>, magic: &[u8; 4]) -> Result<()> {
    let found = r.take(4)?;
    if found != magic {
        return Err(corrupt(format!(
            "bad magic {found:02x?} (expected {magic:02x?})"
        )));
    }
    let version = r.get_u8()?;
    if version != FORMAT_VERSION {
        return Err(corrupt(format!(
            "unsupported format version {version} (expected {FORMAT_VERSION})"
        )));
    }
    Ok(())
}

/// Frame one section: `[tag u8][len u64][payload][checksum64(payload) u64]`.
pub fn write_section(w: &mut BinWriter, tag: u8, payload: &[u8]) {
    w.put_u8(tag);
    w.put_u64(payload.len() as u64);
    w.put_bytes(payload);
    w.put_u64(checksum64(payload));
}

/// Read one section framed by [`write_section`], enforcing the expected
/// tag and verifying the payload checksum.
pub fn read_section<'a>(r: &mut BinReader<'a>, expect_tag: u8) -> Result<&'a [u8]> {
    let tag = r.get_u8()?;
    if tag != expect_tag {
        return Err(corrupt(format!(
            "section tag {tag} where {expect_tag} was expected"
        )));
    }
    let len = r.get_u64()? as usize;
    let payload = r.take(len)?;
    let checksum = r.get_u64()?;
    if checksum != checksum64(payload) {
        return Err(corrupt(format!(
            "checksum mismatch in section {expect_tag} ({len} bytes)"
        )));
    }
    Ok(payload)
}

/// Deduplicating string pool: every distinct string is stored once and
/// referenced by a dense `u32` index. Snapshots intern all record field
/// values through one table, so repeated vendor strings (country codes,
/// listings fragments, categories) cost one copy on disk.
///
/// Values live in one contiguous arena with a span per index, so loading
/// a table is a single buffer copy + one UTF-8 validation pass rather
/// than an allocation per string.
#[derive(Debug, Default)]
pub struct StringTable {
    arena: String,
    spans: Vec<(u32, u32)>,
    index: FxHashMap<String, u32>,
}

impl StringTable {
    /// Empty table.
    pub fn new() -> Self {
        StringTable::default()
    }

    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    fn span(&self, id: usize) -> &str {
        let (start, end) = self.spans[id];
        &self.arena[start as usize..end as usize]
    }

    /// Index of `value`, inserting it on first sight.
    pub fn intern(&mut self, value: &str) -> u32 {
        // Tables loaded by [`read`](StringTable::read) arrive without the
        // reverse index (decoding never needs it); build it on the first
        // intern so a reloaded table keeps deduplicating correctly.
        if self.index.is_empty() && !self.spans.is_empty() {
            self.index.reserve(self.spans.len());
            for id in 0..self.spans.len() {
                self.index.insert(self.span(id).to_string(), id as u32);
            }
        }
        if let Some(&id) = self.index.get(value) {
            return id;
        }
        let id = self.spans.len() as u32;
        let start = self.arena.len() as u32;
        self.arena.push_str(value);
        self.spans.push((start, self.arena.len() as u32));
        self.index.insert(value.to_string(), id);
        id
    }

    /// Resolve an index written by [`intern`](StringTable::intern).
    pub fn get(&self, id: u32) -> Result<&str> {
        if id as usize >= self.spans.len() {
            return Err(corrupt(format!(
                "string index {id} outside table of {}",
                self.spans.len()
            )));
        }
        Ok(self.span(id as usize))
    }

    /// Serialize as a `u32` count followed by length-prefixed strings.
    pub fn write(&self, w: &mut BinWriter) {
        w.put_u32(self.spans.len() as u32);
        for id in 0..self.spans.len() {
            w.put_str(self.span(id));
        }
    }

    /// Deserialize a table written by [`write`](StringTable::write).
    ///
    /// All payload bytes are gathered into the arena first and validated
    /// as UTF-8 in one pass (per-span starts are then checked against
    /// char boundaries, which covers every span edge since spans are
    /// contiguous). The reverse (string → index) map is **not** rebuilt
    /// here — decoding only resolves indexes — so loading stays a single
    /// sequential pass; [`intern`](StringTable::intern) rebuilds it
    /// lazily if the table is ever written to again.
    pub fn read(r: &mut BinReader<'_>) -> Result<Self> {
        let count = r.get_u32()? as usize;
        let mut spans = Vec::with_capacity(count.min(r.remaining()));
        let mut bytes = Vec::with_capacity(r.remaining().saturating_sub(4 * count));
        for _ in 0..count {
            let len = r.get_u32()? as usize;
            let start = bytes.len() as u32;
            bytes.extend_from_slice(r.take(len)?);
            spans.push((start, bytes.len() as u32));
        }
        let arena = String::from_utf8(bytes)
            .map_err(|_| corrupt("invalid UTF-8 in string table".to_string()))?;
        for &(start, _) in &spans {
            if !arena.is_char_boundary(start as usize) {
                return Err(corrupt(format!(
                    "string table span starts mid-character at offset {start}"
                )));
            }
        }
        Ok(StringTable {
            arena,
            spans,
            index: FxHashMap::default(),
        })
    }
}

/// Binary record codec against a shared [`StringTable`]: the snapshot and
/// WAL formats are generic over any record type implementing this.
/// Implementations must round-trip exactly (`decode(encode(r)) == r`).
pub trait BinRecord: Sized {
    /// Append this record's fixed-width fields to `w`, interning string
    /// fields into `strings`.
    fn encode_bin(&self, w: &mut BinWriter, strings: &mut StringTable);

    /// Decode one record written by [`encode_bin`](BinRecord::encode_bin).
    fn decode_bin(r: &mut BinReader<'_>, strings: &StringTable) -> Result<Self>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = BinWriter::new();
        w.put_u8(7);
        w.put_u16(0xbeef);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 1);
        w.put_str("héllo");
        let bytes = w.into_bytes();
        let mut r = BinReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 0xbeef);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert!(r.is_empty());
    }

    #[test]
    fn reads_are_bounds_checked() {
        let mut r = BinReader::new(&[1, 2]);
        assert!(matches!(r.get_u32(), Err(Error::Corrupt(_))));
        // The failed read consumed nothing.
        assert_eq!(r.get_u16().unwrap(), 0x0201);
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn checksum_distinguishes_flips_padding_and_length() {
        let base = checksum64(b"12345678abc");
        // A flipped bit in the word-aligned body and in the padded tail
        // both change the digest.
        assert_ne!(base, checksum64(b"12345678abd"));
        assert_ne!(base, checksum64(b"02345678abc"));
        // Zero-padding cannot alias: explicit trailing zero differs.
        assert_ne!(checksum64(b"abc"), checksum64(b"abc\0"));
        assert_ne!(checksum64(b""), checksum64(b"\0"));
    }

    #[test]
    fn section_round_trip_and_checksum() {
        let mut w = BinWriter::new();
        write_section(&mut w, 3, b"payload");
        let mut good = w.into_bytes();
        let mut r = BinReader::new(&good);
        assert_eq!(read_section(&mut r, 3).unwrap(), b"payload");

        let mut wrong_tag = BinReader::new(&good);
        let err = read_section(&mut wrong_tag, 4).unwrap_err();
        assert!(err.to_string().contains("section tag"));

        // Flip one payload byte: the checksum must catch it.
        good[10] ^= 0x40;
        let mut r = BinReader::new(&good);
        let err = read_section(&mut r, 3).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"));
    }

    #[test]
    fn magic_rejects_wrong_version() {
        let mut w = BinWriter::new();
        write_magic(&mut w, b"TEST");
        let mut bytes = w.into_bytes();
        assert_eq!(bytes.len(), MAGIC_LEN);
        let mut r = BinReader::new(&bytes);
        check_magic(&mut r, b"TEST").unwrap();

        let mut wrong_magic = BinReader::new(&bytes);
        assert!(check_magic(&mut wrong_magic, b"ELSE")
            .unwrap_err()
            .to_string()
            .contains("bad magic"));

        bytes[4] = FORMAT_VERSION + 1;
        let mut r = BinReader::new(&bytes);
        let err = check_magic(&mut r, b"TEST").unwrap_err();
        assert!(err.to_string().contains("unsupported format version"));
    }

    #[test]
    fn string_table_interns_and_round_trips() {
        let mut table = StringTable::new();
        let a = table.intern("alpha");
        let b = table.intern("beta");
        assert_eq!(table.intern("alpha"), a);
        assert_ne!(a, b);
        assert_eq!(table.len(), 2);

        let mut w = BinWriter::new();
        table.write(&mut w);
        let bytes = w.into_bytes();
        let mut r = BinReader::new(&bytes);
        let loaded = StringTable::read(&mut r).unwrap();
        assert_eq!(loaded.get(a).unwrap(), "alpha");
        assert_eq!(loaded.get(b).unwrap(), "beta");
        assert!(loaded.get(99).is_err());

        // A reloaded table keeps interning without duplicating.
        let mut loaded = loaded;
        assert_eq!(loaded.intern("beta"), b);
    }

    #[test]
    fn string_table_rejects_spans_splitting_a_character() {
        // Two "strings" whose boundary falls inside one UTF-8 character:
        // the concatenated arena is valid UTF-8, the individual spans are
        // not, and the reader must reject rather than slice mid-char.
        let e_acute = "é".as_bytes();
        let mut w = BinWriter::new();
        w.put_u32(2);
        w.put_u32(1);
        w.put_bytes(&e_acute[..1]);
        w.put_u32(1);
        w.put_bytes(&e_acute[1..]);
        let bytes = w.into_bytes();
        let err = StringTable::read(&mut BinReader::new(&bytes)).unwrap_err();
        assert!(err.to_string().contains("mid-character"));
    }
}
