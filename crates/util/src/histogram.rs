//! Fixed-bucket log-linear latency histogram.
//!
//! Latency distributions span many orders of magnitude (a cached lookup
//! is hundreds of nanoseconds; a lookup racing a snapshot refresh can be
//! tens of microseconds; a batch apply is milliseconds), so linear
//! buckets either blow up in count or lose all tail resolution.
//! [`LatencyHistogram`] buckets by the value's binary octave, with each
//! octave split into `SUB_BUCKETS` linear sub-buckets — relative
//! quantile error is bounded by `1 / SUB_BUCKETS` (12.5%) at every
//! scale, and the whole histogram is a flat array of 512 counters that
//! records in a handful of instructions with no allocation.
//!
//! Histograms from independent threads [`merge`](LatencyHistogram::merge)
//! by adding counters, so closed-loop load generators can keep one
//! histogram per client thread and combine at the end.

/// Linear sub-buckets per binary octave (power of two).
const SUB_BUCKETS: u64 = 8;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();
/// Bucket count covering the full `u64` range: `2 * SUB_BUCKETS` exact
/// buckets plus `SUB_BUCKETS` per octave above them.
const NUM_BUCKETS: usize = ((64 - SUB_BITS as u64 + 1) << SUB_BITS) as usize;

/// A mergeable log-linear histogram of `u64` samples (by convention,
/// nanoseconds). See the [module docs](self) for the bucketing scheme.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; NUM_BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        // Values below 2 * SUB_BUCKETS index their own exact bucket;
        // above that each binary octave splits into SUB_BUCKETS linear
        // sub-buckets keyed by the top SUB_BITS mantissa bits, packed
        // contiguously after the exact range.
        if value < 2 * SUB_BUCKETS {
            return value as usize;
        }
        let octave = 63 - value.leading_zeros();
        let sub = (value >> (octave - SUB_BITS)) & (SUB_BUCKETS - 1);
        ((u64::from(octave) - u64::from(SUB_BITS) + 1) << SUB_BITS | sub) as usize
    }

    /// Upper bound (inclusive) of the values mapped to `bucket` — the
    /// value reported for any quantile landing in it.
    fn bucket_upper(bucket: usize) -> u64 {
        let bucket = bucket as u64;
        if bucket < 2 * SUB_BUCKETS {
            return bucket;
        }
        let octave = ((bucket >> SUB_BITS) + u64::from(SUB_BITS) - 1) as u32;
        let sub = bucket & (SUB_BUCKETS - 1);
        let step = 1u64 << (octave - SUB_BITS);
        // `base - 1 + width` instead of `base + width - 1`: the very last
        // bucket's bound is exactly u64::MAX and must not overflow.
        (1u64 << octave) - 1 + (sub + 1) * step
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.total += 1;
        self.sum += u128::from(value);
        self.max = self.max.max(value);
    }

    /// Record a duration as nanoseconds (saturating past ~584 years).
    pub fn record_duration(&mut self, duration: std::time::Duration) {
        self.record(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Fold another histogram's samples into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]` (upper bound of the bucket
    /// holding the q-th sample; within 12.5% of the true sample). 0 when
    /// empty.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                // Never report past the true max (the last bucket's upper
                // bound can overshoot it by up to 12.5%).
                return Self::bucket_upper(bucket).min(self.max);
            }
        }
        self.max
    }

    /// Median sample.
    pub fn p50(&self) -> u64 {
        self.value_at_quantile(0.50)
    }

    /// 99th-percentile sample.
    pub fn p99(&self) -> u64 {
        self.value_at_quantile(0.99)
    }

    /// 99.9th-percentile sample.
    pub fn p999(&self) -> u64 {
        self.value_at_quantile(0.999)
    }

    /// One-line summary with nanosecond quantiles, for log/trace output.
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={:.0}ns p50={}ns p99={}ns p999={}ns max={}ns",
            self.total,
            self.mean(),
            self.p50(),
            self.p99(),
            self.p999(),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_round_trip_bounds() {
        // Every value must land in a bucket whose range contains it.
        for value in (0..4096u64).chain([1 << 20, (1 << 20) + 12_345, u64::MAX / 2, u64::MAX - 1]) {
            let bucket = LatencyHistogram::bucket_of(value);
            assert!(
                LatencyHistogram::bucket_upper(bucket) >= value,
                "value {value} above upper bound of its bucket {bucket}"
            );
            if bucket > 0 {
                assert!(
                    LatencyHistogram::bucket_upper(bucket - 1) < value,
                    "value {value} not above previous bucket {bucket}"
                );
            }
        }
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn quantiles_within_relative_error() {
        let mut h = LatencyHistogram::new();
        for value in 1..=100_000u64 {
            h.record(value);
        }
        assert_eq!(h.count(), 100_000);
        assert_eq!(h.max(), 100_000);
        for (q, exact) in [(0.50, 50_000u64), (0.99, 99_000), (0.999, 99_900)] {
            let got = h.value_at_quantile(q);
            let err = got.abs_diff(exact) as f64 / exact as f64;
            assert!(err <= 0.125, "q={q}: got {got}, exact {exact}, err {err}");
        }
        // Never beyond the recorded max.
        assert!(h.value_at_quantile(1.0) <= h.max());
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let samples_a = [3u64, 17, 1_000, 250_000, 9];
        let samples_b = [1u64, 1 << 30, 42];
        let mut merged = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for &s in &samples_a {
            merged.record(s);
            all.record(s);
        }
        for &s in &samples_b {
            b.record(s);
            all.record(s);
        }
        merged.merge(&b);
        assert_eq!(merged.count(), all.count());
        assert_eq!(merged.max(), all.max());
        assert_eq!(merged.mean(), all.mean());
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(merged.value_at_quantile(q), all.value_at_quantile(q));
        }
    }

    #[test]
    fn skewed_distribution_tail() {
        // 996 fast samples and 4 slow ones: p999 must land in the outlier
        // region while p50 stays fast.
        let mut h = LatencyHistogram::new();
        for _ in 0..996 {
            h.record(100);
        }
        for _ in 0..4 {
            h.record(1_000_000);
        }
        assert!(h.p50() <= 112); // 100 within 12.5%
        assert!(h.p999() >= 875_000); // the outliers within 12.5%
        let s = h.summary();
        assert!(s.contains("n=1000"), "{s}");
    }
}
