//! Shared experiment harness for the table-regeneration binaries.
//!
//! Implements the paper's experimental protocol end to end:
//!
//! * datasets are generated at a configurable **scale factor**
//!   (`GRALMATCH_SCALE`, default 0.02 ⇒ 4K company entities; 1.0 is the
//!   paper-sized benchmark),
//! * models are fine-tuned on the train/val splits (60/20 % of groups),
//! * the end-to-end entity group matching experiment runs on the **test
//!   split** (20 % of groups — Table 2's record counts are exactly the test
//!   splits of the full datasets),
//! * the securities pipeline receives issuer groups from a heuristic
//!   company matching (see EXPERIMENTS.md for this simplification).

use crate::cli::BenchCli;
use gralmatch_blocking::TokenOverlapConfig;
use gralmatch_core::{
    blocked_candidates, entity_groups, group_assignment, prediction_graph, run_sharded,
    CleanupVariant, CompanyDomain, EngineStats, FixedScorerProvider, MatchEngine, MatchingDomain,
    MatchingOutcome, PipelineConfig, ProductDomain, ScorerProvider, SecurityDomain, ShardPlan,
    UpsertBatch, UpsertOutcome,
};
use gralmatch_datagen::{generate, generate_wdc, FinancialDataset, GenerationConfig, WdcConfig};
use gralmatch_lm::{
    predict_positive_with, train, train_with_negative_pool, CompiledDataset, CompiledScorer,
    HeuristicMatcher, ModelSpec, PairwiseMatcher, SavedModel, TrainedMatcher, TrainingReport,
};
use gralmatch_records::{
    CompanyRecord, Dataset, DatasetSplit, GroundTruth, ProductRecord, Record, RecordId, RecordPair,
    SecurityRecord, SplitRatios,
};
use gralmatch_util::{FxHashMap, FxHashSet, Parallelism, SplitRng};
use std::path::PathBuf;

/// JSON for one [`StageTrace`](gralmatch_core::StageTrace) entry —
/// seconds, item counts, and (when the stage observed one) the compiled
/// featurization arena's footprint. Shared by the repro and upsert report
/// writers so a new trace field cannot silently ship in only one report.
pub fn stage_trace_json(stage: &gralmatch_core::StageTrace) -> gralmatch_util::Json {
    use gralmatch_util::ToJson;
    let mut fields = vec![
        ("seconds".to_string(), stage.seconds.to_json()),
        ("items_in".to_string(), stage.items_in.to_json()),
        ("items_out".to_string(), stage.items_out.to_json()),
    ];
    // Memory next to wall-clock: the compiled arena backing the scoring.
    if let Some(bytes) = stage.arena_bytes {
        fields.push(("arena_bytes".to_string(), bytes.to_json()));
    }
    // Cleanup-bearing stages expose their per-phase wall-clock split. The
    // perf gate ignores nested objects inside a stage, so adding this is
    // shape-safe for existing baselines.
    if let Some(phases) = stage.phases {
        fields.push((
            "phases".to_string(),
            gralmatch_util::Json::obj([
                ("pre_cleanup_seconds", phases.pre_cleanup_seconds.to_json()),
                ("mincut_seconds", phases.mincut_seconds.to_json()),
                ("betweenness_seconds", phases.betweenness_seconds.to_json()),
                (
                    "bridge_cache_hits",
                    (phases.bridge_cache_hits as f64).to_json(),
                ),
                ("rescanned_nodes", (phases.rescanned_nodes as f64).to_json()),
            ]),
        ));
    }
    gralmatch_util::Json::Obj(fields)
}

/// Experiment scale factor.
#[derive(Debug, Clone, Copy)]
pub struct Scale(pub f64);

impl Scale {
    /// Read from `GRALMATCH_SCALE` (default 0.02).
    pub fn from_env() -> Self {
        let factor = std::env::var("GRALMATCH_SCALE")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(0.02);
        assert!(factor > 0.0 && factor <= 1.0, "scale must be in (0, 1]");
        Scale(factor)
    }
}

/// On-disk trained-model cache behind the `--save-model DIR` /
/// `--load-model DIR` flags of the repro/table4 binaries: models are
/// stored as [`SavedModel`] JSON under
/// `DIR/<tag>-s<scale>-<spec-key>.json` — the scale factor is part of
/// the key, so a cache warmed at one `GRALMATCH_SCALE` is never silently
/// reused for a differently sized dataset. With a load dir, a present
/// file skips training entirely (bit-identical scores — see
/// `lm::persist`); with a save dir, every freshly trained model is
/// written back. Pointing both at the same directory makes it a warm
/// cache across runs.
#[derive(Debug, Clone)]
pub struct ModelStore {
    save_dir: Option<PathBuf>,
    load_dir: Option<PathBuf>,
    scale: Scale,
}

impl ModelStore {
    /// No persistence: always train.
    pub fn disabled() -> Self {
        ModelStore {
            save_dir: None,
            load_dir: None,
            scale: Scale(1.0),
        }
    }

    /// Read `--save-model` / `--load-model` from parsed CLI flags (the
    /// scale comes from `GRALMATCH_SCALE` like the datasets themselves),
    /// creating the save directory eagerly so a typoed path fails before
    /// hours of training.
    pub fn from_cli(cli: &BenchCli) -> Self {
        let save_dir = cli.value("save-model").map(PathBuf::from);
        if let Some(dir) = &save_dir {
            std::fs::create_dir_all(dir).expect("--save-model directory is creatable");
        }
        ModelStore {
            save_dir,
            load_dir: cli.value("load-model").map(PathBuf::from),
            scale: Scale::from_env(),
        }
    }

    fn file_name(&self, tag: &str, spec: ModelSpec) -> String {
        let slug: String = tag
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect();
        format!("{slug}-s{}-{}.json", self.scale.0, spec.key())
    }

    /// Load `tag`'s model for `spec` if persisted, else run `train` (and
    /// persist the result when saving is on). Returns the matcher and the
    /// training wall-clock (0 for a loaded model — the time column then
    /// reflects that no training happened).
    pub fn load_or_train(
        &self,
        tag: &str,
        spec: ModelSpec,
        train: impl FnOnce() -> (TrainedMatcher, TrainingReport),
    ) -> (TrainedMatcher, f64) {
        let file = self.file_name(tag, spec);
        if let Some(dir) = &self.load_dir {
            let path = dir.join(&file);
            if path.exists() {
                let saved = SavedModel::load(&path)
                    .unwrap_or_else(|e| panic!("loading {}: {e:?}", path.display()));
                assert_eq!(
                    saved.spec,
                    spec,
                    "{} was saved under a different model spec",
                    path.display()
                );
                eprintln!("model-store: loaded {}", path.display());
                return (saved.matcher, 0.0);
            }
        }
        let (matcher, report) = train();
        if let Some(dir) = &self.save_dir {
            let path = dir.join(&file);
            SavedModel::new(spec, matcher.clone())
                .save(&path)
                .unwrap_or_else(|e| panic!("saving {}: {e:?}", path.display()));
            eprintln!("model-store: saved {}", path.display());
        }
        (matcher, report.train_seconds)
    }
}

/// Run a domain through the [`MatchEngine`]: one bootstrap batch under an
/// entity-keyed [`ShardPlan`] (`shards` = 1 is the unsharded setting),
/// evaluated under the paper's three-stage protocol. Scores go through
/// the compiled zero-allocation path; the trace reports the engine lineup
/// (`blocking → inference → merge`), identical for sharded and unsharded
/// runs.
pub fn run_domain_maybe_sharded<D>(
    domain: &D,
    matcher: &TrainedMatcher,
    encoded: &[gralmatch_lm::EncodedRecord],
    config: &PipelineConfig,
    shards: usize,
) -> MatchingOutcome
where
    D: MatchingDomain,
    D::Rec: Clone,
{
    // Compile once, score every batch through the zero-allocation path —
    // same scores as the reference featurization, no per-pair hashing.
    let compiled = CompiledDataset::compile(encoded, &matcher.feature_config());
    let scorer = CompiledScorer::new(matcher, &compiled);
    let (engine, load) = MatchEngine::bootstrap_domain(
        domain,
        ShardPlan::new(shards),
        Box::new(FixedScorerProvider(&scorer)),
        config.clone(),
    )
    .expect("engine bootstrap succeeds");
    engine.evaluate(domain.ground_truth(), &load)
}

/// One batch of an upsert replay: the upsert outcome plus its wall-clock.
pub struct ReplayBatch {
    /// Batch index (0 = initial load).
    pub index: usize,
    /// What the batch did (counts, per-stage trace, groups).
    pub outcome: UpsertOutcome,
    /// End-to-end wall-clock seconds of the `apply_batch` call.
    pub seconds: f64,
}

/// Result of [`run_upsert_replay`]: per-batch latency plus the end-state
/// comparison against a one-shot run of the legacy sharded oracle.
pub struct UpsertReplay {
    /// Initial load followed by the delta batches.
    pub batches: Vec<ReplayBatch>,
    /// Final group count.
    pub num_groups: usize,
    /// Whether the engine's final groups equal a one-shot
    /// [`run_sharded`] (the legacy staged oracle) over the full
    /// population (they must for deterministic scorers; reported rather
    /// than asserted so the bench binary stays a measurement tool).
    pub matches_one_shot: bool,
    /// Wall-clock seconds of the one-shot oracle run, for the speedup
    /// column.
    pub one_shot_seconds: f64,
    /// Engine counters after the last batch.
    pub final_stats: EngineStats,
}

/// Replay a domain's records as an initial load (the first
/// `1 - delta_fraction` of the records) plus `num_batches` delta batches,
/// measuring per-batch reconciliation latency, then compare the end state
/// against a one-shot run of the legacy sharded oracle over the full
/// population.
pub fn run_upsert_replay<D>(
    domain: &D,
    scorer: &dyn gralmatch_lm::PairScorer,
    config: &PipelineConfig,
    plan: ShardPlan,
    num_batches: usize,
    delta_fraction: f64,
) -> UpsertReplay
where
    D: MatchingDomain,
    D::Rec: Clone,
{
    run_upsert_replay_with(
        domain,
        Box::new(FixedScorerProvider(scorer)),
        config,
        plan,
        num_batches,
        delta_fraction,
    )
}

/// [`run_upsert_replay`] with a scorer provider — the entry point for
/// scorers whose compiled views are maintained incrementally alongside
/// the engine state (see
/// [`CompiledScorerProvider`](gralmatch_core::CompiledScorerProvider)).
/// The whole replay drives one [`MatchEngine`]: bootstrap with the
/// initial slice, then one `apply_batch` per delta.
pub fn run_upsert_replay_with<'a, D>(
    domain: &'a D,
    provider: Box<dyn ScorerProvider<D::Rec> + 'a>,
    config: &PipelineConfig,
    plan: ShardPlan,
    num_batches: usize,
    delta_fraction: f64,
) -> UpsertReplay
where
    D: MatchingDomain,
    D::Rec: Clone,
{
    let records = domain.records();
    let delta_len = ((records.len() as f64 * delta_fraction) as usize)
        .clamp(num_batches.min(records.len()), records.len());
    let initial = records.len() - delta_len;

    let mut batches = Vec::with_capacity(num_batches + 1);
    let watch = gralmatch_util::Stopwatch::start();
    let (mut engine, load) = MatchEngine::bootstrap(
        plan,
        records[..initial].to_vec(),
        domain.blocking_strategies(),
        provider,
        config.clone(),
    )
    .expect("initial load succeeds");
    batches.push(ReplayBatch {
        index: 0,
        outcome: load,
        seconds: watch.elapsed_secs(),
    });

    let remainder = &records[initial..];
    let chunk = remainder.len().div_ceil(num_batches.max(1)).max(1);
    let mut groups = Vec::new();
    for (index, slice) in remainder.chunks(chunk).enumerate() {
        let watch = gralmatch_util::Stopwatch::start();
        let outcome = engine
            .apply_batch(&UpsertBatch::inserting(slice.to_vec()))
            .expect("delta batch succeeds");
        groups = outcome.groups.clone();
        batches.push(ReplayBatch {
            index: index + 1,
            outcome,
            seconds: watch.elapsed_secs(),
        });
    }
    let final_stats = engine.stats();

    // The comparison run goes through the *legacy staged oracle* with an
    // independently built scorer view (`verify_scorer`), so the check
    // cross-checks both the engine's reconciliation and any incremental
    // scorer maintenance.
    let one_shot_watch = gralmatch_util::Stopwatch::start();
    let scorer = engine.provider_mut().verify_scorer();
    let one_shot = run_sharded(domain, scorer, config, &plan).expect("one-shot run succeeds");
    let one_shot_seconds = one_shot_watch.elapsed_secs();
    let normalize = |groups: &[Vec<RecordId>]| {
        let mut out: Vec<Vec<RecordId>> = groups
            .iter()
            .map(|g| {
                let mut g = g.clone();
                g.sort_unstable();
                g
            })
            .collect();
        out.sort();
        out
    };
    UpsertReplay {
        num_groups: groups.len(),
        matches_one_shot: normalize(&groups) == normalize(&one_shot.outcome.groups),
        one_shot_seconds,
        batches,
        final_stats,
    }
}

/// A generated financial benchmark with ground truths and splits.
pub struct PreparedFinancial {
    /// The generated datasets.
    pub data: FinancialDataset,
    /// Company ground truth.
    pub company_gt: GroundTruth,
    /// Security ground truth.
    pub security_gt: GroundTruth,
    /// Company split (60/20/20 by group).
    pub company_split: DatasetSplit,
    /// Security split.
    pub security_split: DatasetSplit,
}

/// Generate + split one financial benchmark.
pub fn prepare_financial(config: &GenerationConfig) -> PreparedFinancial {
    let data = generate(config).expect("valid config");
    let company_gt = data.companies.ground_truth();
    let security_gt = data.securities.ground_truth();
    let mut split_rng = SplitRng::new(config.seed ^ 0x5011).split("splits");
    let company_split = DatasetSplit::new(&company_gt, SplitRatios::default(), &mut split_rng);
    let security_split = DatasetSplit::new(&security_gt, SplitRatios::default(), &mut split_rng);
    PreparedFinancial {
        data,
        company_gt,
        security_gt,
        company_split,
        security_split,
    }
}

/// The synthetic benchmark at a scale factor.
pub fn prepare_synthetic(scale: Scale) -> PreparedFinancial {
    prepare_financial(&GenerationConfig::synthetic_scaled(scale.0))
}

/// The real-subset simulator (fixed size).
pub fn prepare_real_sim() -> PreparedFinancial {
    prepare_financial(&GenerationConfig::real_simulated())
}

/// The WDC-style product benchmark with ground truth and split.
pub struct PreparedWdc {
    /// Product records.
    pub products: Dataset<ProductRecord>,
    /// Ground truth.
    pub gt: GroundTruth,
    /// Split.
    pub split: DatasetSplit,
}

/// Generate + split the product benchmark. The split is **family-aware**:
/// a corner-case sibling always lands in the same split as its original,
/// so the hard negative pairs the benchmark exists for are evaluable
/// (mirrors how WDC ships fixed pair sets per split).
pub fn prepare_wdc() -> PreparedWdc {
    let generated = generate_wdc(&WdcConfig::default());
    let gt = generated.products.ground_truth();
    let mut split_rng = SplitRng::new(0xdc).split("splits");

    // Group entities by family, shuffle families, split 60/20/20.
    let mut by_family: FxHashMap<u32, Vec<gralmatch_records::EntityId>> = FxHashMap::default();
    for (&entity, &family) in &generated.family_of {
        by_family.entry(family).or_default().push(entity);
    }
    let mut families: Vec<u32> = by_family.keys().copied().collect();
    families.sort_unstable();
    split_rng.shuffle(&mut families);
    let n = families.len();
    let n_train = (n as f64 * 0.6).round() as usize;
    let n_val = (n as f64 * 0.2).round() as usize;

    let collect = |fams: &[u32]| -> (Vec<gralmatch_records::EntityId>, Vec<RecordId>) {
        let mut entities: Vec<gralmatch_records::EntityId> = fams
            .iter()
            .flat_map(|f| by_family[f].iter().copied())
            .collect();
        entities.sort_unstable();
        let mut records: Vec<RecordId> = entities
            .iter()
            .flat_map(|&e| gt.group_members(e).unwrap_or(&[]).iter().copied())
            .collect();
        records.sort_unstable();
        (entities, records)
    };
    let (train_entities, train_records) = collect(&families[..n_train]);
    let (val_entities, val_records) = collect(&families[n_train..n_train + n_val]);
    let (test_entities, test_records) = collect(&families[n_train + n_val..]);
    let split = DatasetSplit {
        train_entities,
        val_entities,
        test_entities,
        train_records,
        val_records,
        test_records,
    };
    PreparedWdc {
        products: generated.products,
        gt,
        split,
    }
}

/// Restrict a (companies, securities) universe to the given company and
/// security id sets, re-assigning dense ids and fixing cross-references.
/// Every kept security's issuer must be in `keep_companies`.
pub fn restrict_financial(
    companies: &[CompanyRecord],
    securities: &[SecurityRecord],
    keep_companies: &FxHashSet<RecordId>,
    keep_securities: &FxHashSet<RecordId>,
) -> (Vec<CompanyRecord>, Vec<SecurityRecord>) {
    let mut company_map: FxHashMap<RecordId, RecordId> = FxHashMap::default();
    let mut kept_companies: Vec<CompanyRecord> = Vec::with_capacity(keep_companies.len());
    for company in companies {
        if keep_companies.contains(&company.id) {
            let new_id = RecordId(kept_companies.len() as u32);
            company_map.insert(company.id, new_id);
            let mut cloned = company.clone();
            cloned.id = new_id;
            cloned.securities.clear(); // refilled below
            kept_companies.push(cloned);
        }
    }
    let mut kept_securities: Vec<SecurityRecord> = Vec::with_capacity(keep_securities.len());
    for security in securities {
        if keep_securities.contains(&security.id) {
            let Some(&issuer) = company_map.get(&security.issuer) else {
                panic!("kept security {} references dropped issuer", security.id);
            };
            let new_id = RecordId(kept_securities.len() as u32);
            let mut cloned = security.clone();
            cloned.id = new_id;
            cloned.issuer = issuer;
            kept_companies[issuer.0 as usize].securities.push(new_id);
            kept_securities.push(cloned);
        }
    }
    (kept_companies, kept_securities)
}

/// Test-split restriction for the **companies** experiment: test companies
/// plus all securities they issue (identifier context).
pub fn company_test_universe(
    prepared: &PreparedFinancial,
) -> (Vec<CompanyRecord>, Vec<SecurityRecord>) {
    let keep_companies = prepared.company_split.test_set();
    let keep_securities: FxHashSet<RecordId> = prepared
        .data
        .companies
        .records()
        .iter()
        .filter(|company| keep_companies.contains(&company.id))
        .flat_map(|company| company.securities.iter().copied())
        .collect();
    restrict_financial(
        prepared.data.companies.records(),
        prepared.data.securities.records(),
        &keep_companies,
        &keep_securities,
    )
}

/// Test-split restriction for the **securities** experiment: test
/// securities plus their issuing companies.
pub fn security_test_universe(
    prepared: &PreparedFinancial,
) -> (Vec<CompanyRecord>, Vec<SecurityRecord>) {
    let keep_securities = prepared.security_split.test_set();
    let keep_companies: FxHashSet<RecordId> = prepared
        .data
        .securities
        .records()
        .iter()
        .filter(|security| keep_securities.contains(&security.id))
        .map(|security| security.issuer)
        .collect();
    restrict_financial(
        prepared.data.companies.records(),
        prepared.data.securities.records(),
        &keep_companies,
        &keep_securities,
    )
}

/// Fine-tuning evaluation (Table 3): P/R/F1 on test pairs (all test
/// positives + 5:1 sampled negatives), matching Section 5.1.3.
#[derive(Debug, Clone, Copy)]
pub struct FineTuneEval {
    /// Precision on test pairs.
    pub precision: f64,
    /// Recall on test pairs.
    pub recall: f64,
    /// F1 on test pairs.
    pub f1: f64,
}

/// Evaluate a trained matcher on a split's test pairs. When
/// `negative_pool` is given (WDC's fixed corner-case pairs), negatives are
/// drawn from it first, topped up randomly — matching how fixed-pair
/// benchmarks evaluate.
pub fn evaluate_on_test_pairs<R: Record>(
    records: &[R],
    matcher: &TrainedMatcher,
    spec: ModelSpec,
    gt: &GroundTruth,
    split: &DatasetSplit,
    seed: u64,
    negative_pool: Option<&[RecordPair]>,
) -> FineTuneEval {
    let encoded = spec.encode_records(records);
    let test_set = split.test_set();
    let restricted = gt.restrict_to(&test_set);
    let positives = restricted.all_true_pairs();
    let mut rng = SplitRng::new(seed).split("test-negatives");
    let mut pairs: Vec<RecordPair> = positives.clone();
    let test_records = &split.test_records;
    let mut negatives = 0usize;
    let wanted = positives.len() * 5;
    if let Some(pool) = negative_pool {
        let mut hard: Vec<RecordPair> = pool
            .iter()
            .copied()
            .filter(|p| test_set.contains(&p.a) && test_set.contains(&p.b) && !gt.is_match_pair(*p))
            .collect();
        rng.shuffle(&mut hard);
        for pair in hard.into_iter().take(wanted) {
            pairs.push(pair);
            negatives += 1;
        }
    }
    let mut attempts = 0usize;
    while negatives < wanted && attempts < wanted * 20 + 100 && test_records.len() >= 2 {
        attempts += 1;
        let a = test_records[rng.next_below(test_records.len())];
        let b = test_records[rng.next_below(test_records.len())];
        if a == b || gt.is_match(a, b) {
            continue;
        }
        pairs.push(RecordPair::new(a, b));
        negatives += 1;
    }
    let compiled = CompiledDataset::compile(&encoded, &matcher.feature_config());
    let scorer = CompiledScorer::new(matcher, &compiled);
    let predicted =
        predict_positive_with(&scorer, &pairs, &Parallelism::Auto.pool_for(pairs.len()));
    let positive_set: FxHashSet<RecordPair> = positives.iter().copied().collect();
    let tp = predicted
        .iter()
        .filter(|p| positive_set.contains(p))
        .count() as u64;
    let fp = predicted.len() as u64 - tp;
    let fn_ = positives.len() as u64 - tp;
    let metrics = gralmatch_core::PairMetrics::from_counts(tp, fp, fn_);
    FineTuneEval {
        precision: metrics.precision,
        recall: metrics.recall,
        f1: metrics.f1,
    }
}

/// Train a spec on a dataset's train/val splits.
pub fn train_spec<R: Record>(
    records: &[R],
    gt: &GroundTruth,
    split: &DatasetSplit,
    spec: ModelSpec,
) -> (TrainedMatcher, TrainingReport) {
    let encoded = spec.encode_records(records);
    train(records, &encoded, gt, split, &spec.train_config()).expect("training succeeds")
}

/// Train a spec with a hard-negative pool (WDC protocol).
pub fn train_spec_with_pool<R: Record>(
    records: &[R],
    gt: &GroundTruth,
    split: &DatasetSplit,
    spec: ModelSpec,
    pool: &[RecordPair],
) -> (TrainedMatcher, TrainingReport) {
    let encoded = spec.encode_records(records);
    train_with_negative_pool(
        records,
        &encoded,
        gt,
        split,
        &spec.train_config(),
        Some(pool),
    )
    .expect("training succeeds")
}

/// The WDC hard-negative pool: token-overlap candidates over the full
/// product dataset (the corner-case pairs the benchmark ships). A single
/// shared token qualifies (`min_overlap: 1`) and the document-frequency cap
/// is widened: corner-case siblings share only the model-number token, and
/// they are exactly the pairs the pool exists to surface.
pub fn wdc_negative_pool(prepared: &PreparedWdc) -> Vec<RecordPair> {
    let pool_config = TokenOverlapConfig {
        top_n: 20,
        max_token_df: 600,
        min_overlap: 1,
    };
    let domain = ProductDomain::new(prepared.products.records()).with_token_config(pool_config);
    blocked_candidates(&domain).pairs_sorted()
}

/// Company-level grouping used as Issuer-Match input for the securities
/// pipeline: ID overlap + token overlap candidates decided by the
/// heuristic name matcher, grouped as connected components (the "benchmark
/// heuristic" company matching of Section 5.3.1).
pub fn heuristic_company_groups(
    companies: &[CompanyRecord],
    securities: &[SecurityRecord],
) -> FxHashMap<RecordId, u32> {
    let candidates = blocked_candidates(&CompanyDomain::new(companies, securities));
    let encoder = gralmatch_lm::PlainEncoder::new(128);
    let encoded = gralmatch_lm::encode_dataset(companies, &encoder);
    let matcher = HeuristicMatcher {
        jaccard_threshold: 0.45,
    };
    let pairs = candidates.pairs_sorted();
    let compiled = CompiledDataset::compile(&encoded, &matcher.feature_config());
    let scorer = CompiledScorer::new(&matcher, &compiled);
    let predicted =
        predict_positive_with(&scorer, &pairs, &Parallelism::Auto.pool_for(pairs.len()));
    let graph = prediction_graph(companies.len(), &predicted);
    let groups = entity_groups(&graph);
    group_assignment(&groups)
}

/// One Table 4 cell: pipeline outcome + training time.
pub struct Table4Cell {
    /// Records entering the end-to-end experiment (Table 2 column).
    pub num_records: usize,
    /// The pipeline outcome (stages, groups, timings).
    pub outcome: MatchingOutcome,
    /// Fine-tuning wall-clock seconds.
    pub train_seconds: f64,
}

/// End-to-end companies experiment for one spec. `shards > 1` runs the
/// engine under a multi-shard entity-keyed [`ShardPlan`]. `tag` names the
/// dataset for the [`ModelStore`]'s files.
#[allow(clippy::too_many_arguments)]
pub fn run_companies_table4(
    prepared: &PreparedFinancial,
    spec: ModelSpec,
    gamma: usize,
    mu: usize,
    variant: CleanupVariant,
    shards: usize,
    store: &ModelStore,
    tag: &str,
) -> Table4Cell {
    let (matcher, train_seconds) = store.load_or_train(&format!("{tag}-companies"), spec, || {
        train_spec(
            prepared.data.companies.records(),
            &prepared.company_gt,
            &prepared.company_split,
            spec,
        )
    });
    run_companies_table4_with(
        prepared,
        &matcher,
        train_seconds,
        spec,
        gamma,
        mu,
        variant,
        shards,
    )
}

/// Variant runner that reuses a trained matcher (sensitivity rows).
#[allow(clippy::too_many_arguments)]
pub fn run_companies_table4_with(
    prepared: &PreparedFinancial,
    matcher: &TrainedMatcher,
    train_seconds: f64,
    spec: ModelSpec,
    gamma: usize,
    mu: usize,
    variant: CleanupVariant,
    shards: usize,
) -> Table4Cell {
    let (test_companies, test_securities) = company_test_universe(prepared);
    let encoded = spec.encode_records(&test_companies);
    let domain = CompanyDomain::new(&test_companies, &test_securities);
    let config = PipelineConfig {
        cleanup: gralmatch_core::CleanupConfig::new(gamma, mu)
            .with_pre_cleanup(50)
            .variant(variant),
        parallelism: Parallelism::Auto,
    };
    let outcome = run_domain_maybe_sharded(&domain, matcher, &encoded, &config, shards);
    Table4Cell {
        num_records: test_companies.len(),
        outcome,
        train_seconds,
    }
}

/// End-to-end securities experiment for one spec. `shards > 1` runs the
/// engine under a multi-shard entity-keyed [`ShardPlan`]. `tag` names the
/// dataset for the [`ModelStore`]'s files.
pub fn run_securities_table4(
    prepared: &PreparedFinancial,
    spec: ModelSpec,
    gamma: usize,
    mu: usize,
    shards: usize,
    store: &ModelStore,
    tag: &str,
) -> Table4Cell {
    let (matcher, train_seconds) = store.load_or_train(&format!("{tag}-securities"), spec, || {
        train_spec(
            prepared.data.securities.records(),
            &prepared.security_gt,
            &prepared.security_split,
            spec,
        )
    });
    let (issuer_companies, test_securities) = security_test_universe(prepared);
    let encoded = spec.encode_records(&test_securities);
    let company_groups = heuristic_company_groups(&issuer_companies, &test_securities);
    let domain = SecurityDomain::new(&test_securities, &company_groups);
    let config = PipelineConfig {
        cleanup: gralmatch_core::CleanupConfig::new(gamma, mu),
        parallelism: Parallelism::Auto,
    };
    let outcome = run_domain_maybe_sharded(&domain, &matcher, &encoded, &config, shards);
    Table4Cell {
        num_records: test_securities.len(),
        outcome,
        train_seconds,
    }
}

/// End-to-end WDC products experiment for one spec. `shards > 1` runs the
/// engine under a multi-shard entity-keyed [`ShardPlan`].
pub fn run_wdc_table4(
    prepared: &PreparedWdc,
    spec: ModelSpec,
    gamma: usize,
    mu: usize,
    shards: usize,
    store: &ModelStore,
) -> Table4Cell {
    let (matcher, train_seconds) = store.load_or_train("wdc-products", spec, || {
        let pool = wdc_negative_pool(prepared);
        train_spec_with_pool(
            prepared.products.records(),
            &prepared.gt,
            &prepared.split,
            spec,
            &pool,
        )
    });
    // Restrict to the test split (100 % unseen entities).
    let keep = prepared.split.test_set();
    let mut test_products: Vec<ProductRecord> = Vec::new();
    for product in prepared.products.records() {
        if keep.contains(&product.id) {
            let mut cloned = product.clone();
            cloned.id = RecordId(test_products.len() as u32);
            test_products.push(cloned);
        }
    }
    let encoded = spec.encode_records(&test_products);
    let domain = ProductDomain::new(&test_products);
    let config = PipelineConfig {
        cleanup: gralmatch_core::CleanupConfig::new(gamma, mu),
        parallelism: Parallelism::Auto,
    };
    let outcome = run_domain_maybe_sharded(&domain, &matcher, &encoded, &config, shards);
    Table4Cell {
        num_records: test_products.len(),
        outcome,
        train_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PreparedFinancial {
        let mut config = GenerationConfig::synthetic_full();
        config.num_entities = 120;
        prepare_financial(&config)
    }

    #[test]
    fn restriction_preserves_references() {
        let prepared = tiny();
        let (companies, securities) = company_test_universe(&prepared);
        assert!(!companies.is_empty());
        for security in &securities {
            assert!(companies[security.issuer.0 as usize]
                .securities
                .contains(&security.id));
        }
        for (i, company) in companies.iter().enumerate() {
            assert_eq!(company.id.0 as usize, i);
        }
    }

    #[test]
    fn security_universe_contains_all_test_securities() {
        let prepared = tiny();
        let (_, securities) = security_test_universe(&prepared);
        assert_eq!(securities.len(), prepared.security_split.test_records.len());
    }

    #[test]
    fn heuristic_groups_cover_all_companies() {
        let prepared = tiny();
        let (companies, securities) = security_test_universe(&prepared);
        let groups = heuristic_company_groups(&companies, &securities);
        assert_eq!(groups.len(), companies.len());
    }

    #[test]
    fn scale_env_default() {
        std::env::remove_var("GRALMATCH_SCALE");
        let scale = Scale::from_env();
        assert!((scale.0 - 0.02).abs() < 1e-9);
    }
}
