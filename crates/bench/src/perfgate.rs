//! CI perf-regression gate: compare two repro reports stage by stage.
//!
//! The `perf-gate` CI job runs the repro binary at a small scale, writes
//! `BENCH_ci.json`, and fails the build when any pipeline stage's
//! aggregated wall-clock regresses more than a threshold against the
//! checked-in baseline (`ci/BENCH_baseline.json`, refreshed whenever the
//! pipeline legitimately changes speed). Stages are aggregated across all
//! Table 4 cells — per-cell times at CI scale are noise, sums are not —
//! and an absolute noise floor substitutes for sub-floor baselines so
//! millisecond stages neither flake the gate nor escape it.
//!
//! Trace **shape** is part of the contract: the baseline and current
//! reports must expose the same stage names and the same blocking-recipe
//! names (zero-candidate recipes still report, see
//! [`gralmatch_blocking::run_blockers_traced`]), so a silently dropped
//! stage or recipe fails the gate instead of skewing the comparison.

use gralmatch_util::Json;

/// Gate thresholds.
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Maximum tolerated relative slowdown per stage (0.30 = +30 %).
    pub max_regression: f64,
    /// Noise floor in seconds: a stage is compared against
    /// `max(baseline, min_seconds)`, so sub-floor baselines neither flake
    /// on timer noise nor grant a free pass — a 1 ms stage blowing up to
    /// seconds still trips the gate.
    pub min_seconds: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            max_regression: 0.30,
            // Sub-tenth-second aggregates swing tens of percent from
            // thread scheduling alone (observed ±40 % on a 50 ms recipe
            // line between back-to-back local runs); everything the gate
            // is meant to protect aggregates well above this.
            min_seconds: 0.1,
        }
    }
}

/// One stage that regressed beyond the threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Stage (or `recipe:<name>`) label.
    pub stage: String,
    /// Baseline aggregate seconds.
    pub baseline: f64,
    /// Current aggregate seconds.
    pub current: f64,
}

impl Regression {
    /// Relative slowdown (0.5 = +50 %).
    pub fn slowdown(&self) -> f64 {
        if self.baseline > 0.0 {
            self.current / self.baseline - 1.0
        } else {
            f64::INFINITY
        }
    }
}

/// Aggregate a repro report's per-cell stage seconds into ordered
/// `(label, total_seconds)` lines: one per pipeline stage, then one per
/// blocking recipe (prefixed `recipe:`). Fails on structurally invalid
/// reports.
pub fn stage_totals(report: &Json) -> Result<Vec<(String, f64)>, String> {
    let cells = report
        .get("table4")
        .and_then(Json::as_arr)
        .ok_or("report has no table4 array")?;
    if cells.is_empty() {
        return Err("report has an empty table4".into());
    }
    let mut totals: Vec<(String, f64)> = Vec::new();
    let mut add = |label: String, seconds: f64| match totals.iter_mut().find(|(l, _)| *l == label) {
        Some((_, total)) => *total += seconds,
        None => totals.push((label, seconds)),
    };
    for cell in cells {
        let stages = cell.get("stages").ok_or("cell has no stages object")?;
        let Json::Obj(fields) = stages else {
            return Err("cell stages is not an object".into());
        };
        for (stage, value) in fields {
            let seconds = value
                .get("seconds")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("stage `{stage}` has no seconds"))?;
            add(stage.clone(), seconds);
        }
        if let Some(Json::Obj(recipes)) = cell.get("recipes") {
            for (recipe, value) in recipes {
                let seconds = value
                    .get("seconds")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("recipe `{recipe}` has no seconds"))?;
                add(format!("recipe:{recipe}"), seconds);
            }
        }
    }
    // Optional serving-latency aggregates merged in by the loadgen binary
    // (`--merge-into`). Every value is seconds with bigger = worse —
    // counts, ratios, and speedups belong in the ungated `loadgen_info`
    // section, since the gate's `current > baseline` direction would
    // misread them.
    match report.get("loadgen") {
        None => {}
        Some(Json::Obj(fields)) => {
            for (label, value) in fields {
                let seconds = value
                    .as_f64()
                    .ok_or_else(|| format!("loadgen `{label}` is not a number"))?;
                add(format!("loadgen:{label}"), seconds);
            }
        }
        Some(_) => return Err("loadgen section is not an object".into()),
    }
    // Optional hub-cleanup aggregates merged in by the hubbench binary
    // (`--merge-into`). Same contract as `loadgen`: every value is seconds
    // with bigger = worse; speedups and counts live in the ungated
    // `cleanup_info` section.
    match report.get("cleanup") {
        None => {}
        Some(Json::Obj(fields)) => {
            for (label, value) in fields {
                let seconds = value
                    .as_f64()
                    .ok_or_else(|| format!("cleanup `{label}` is not a number"))?;
                add(format!("cleanup:{label}"), seconds);
            }
        }
        Some(_) => return Err("cleanup section is not an object".into()),
    }
    // Optional state-persistence aggregates merged in by the statebench
    // binary (`--merge-into`). Same contract as `loadgen`: every value is
    // seconds with bigger = worse; speedups and byte counts live in the
    // ungated `state_info` section.
    match report.get("state") {
        None => {}
        Some(Json::Obj(fields)) => {
            for (label, value) in fields {
                let seconds = value
                    .as_f64()
                    .ok_or_else(|| format!("state `{label}` is not a number"))?;
                add(format!("state:{label}"), seconds);
            }
        }
        Some(_) => return Err("state section is not an object".into()),
    }
    Ok(totals)
}

/// Compare two repro reports. `Err` means the comparison itself is invalid
/// (malformed report or trace-shape mismatch); `Ok` carries the stages
/// that regressed beyond the threshold (empty = gate passes).
pub fn compare(
    baseline: &Json,
    current: &Json,
    config: &GateConfig,
) -> Result<Vec<Regression>, String> {
    let baseline_totals = stage_totals(baseline).map_err(|e| format!("baseline: {e}"))?;
    let current_totals = stage_totals(current).map_err(|e| format!("current: {e}"))?;

    let baseline_labels: Vec<&str> = baseline_totals.iter().map(|(l, _)| l.as_str()).collect();
    let current_labels: Vec<&str> = current_totals.iter().map(|(l, _)| l.as_str()).collect();
    for label in &baseline_labels {
        if !current_labels.contains(label) {
            return Err(format!(
                "trace shape changed: `{label}` present in baseline but missing from current run"
            ));
        }
    }
    for label in &current_labels {
        if !baseline_labels.contains(label) {
            return Err(format!(
                "trace shape changed: `{label}` present in current run but missing from baseline \
                 (refresh ci/BENCH_baseline.json if the pipeline gained a stage)"
            ));
        }
    }

    let mut regressions = Vec::new();
    for (label, baseline_seconds) in &baseline_totals {
        let current_seconds = current_totals
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, s)| *s)
            .expect("shape-checked above");
        // The noise floor substitutes for tiny baselines instead of
        // skipping them: a sub-floor stage cannot flake the gate on timer
        // noise, but a real blowup (1 ms → seconds) still fails.
        let reference = baseline_seconds.max(config.min_seconds);
        if current_seconds > reference * (1.0 + config.max_regression) {
            regressions.push(Regression {
                stage: label.clone(),
                baseline: *baseline_seconds,
                current: current_seconds,
            });
        }
    }
    Ok(regressions)
}

/// Render the side-by-side comparison table.
pub fn render_comparison(baseline: &Json, current: &Json) -> String {
    let mut out = format!(
        "{:<24} {:>12} {:>12} {:>9}\n",
        "stage", "baseline s", "current s", "delta"
    );
    let (Ok(baseline_totals), Ok(current_totals)) = (stage_totals(baseline), stage_totals(current))
    else {
        return "<malformed report>".into();
    };
    for (label, baseline_seconds) in &baseline_totals {
        let current_seconds = current_totals
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, s)| *s)
            .unwrap_or(f64::NAN);
        let delta = if *baseline_seconds > 0.0 {
            format!(
                "{:+.0}%",
                (current_seconds / baseline_seconds - 1.0) * 100.0
            )
        } else {
            "-".into()
        };
        out.push_str(&format!(
            "{label:<24} {baseline_seconds:>12.3} {current_seconds:>12.3} {delta:>9}\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gralmatch_util::ToJson;

    fn report(cells: &[&[(&str, f64)]]) -> Json {
        Json::obj([(
            "table4",
            Json::Arr(
                cells
                    .iter()
                    .map(|stages| {
                        Json::obj([(
                            "stages",
                            Json::Obj(
                                stages
                                    .iter()
                                    .map(|(name, seconds)| {
                                        (
                                            name.to_string(),
                                            Json::obj([("seconds", seconds.to_json())]),
                                        )
                                    })
                                    .collect(),
                            ),
                        )])
                    })
                    .collect(),
            ),
        )])
    }

    #[test]
    fn aggregates_across_cells() {
        let r = report(&[
            &[("blocking", 1.0), ("inference", 2.0)],
            &[("blocking", 0.5), ("inference", 1.0)],
        ]);
        let totals = stage_totals(&r).unwrap();
        assert_eq!(totals[0], ("blocking".to_string(), 1.5));
        assert_eq!(totals[1], ("inference".to_string(), 3.0));
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(&[&[("blocking", 1.0), ("cleanup", 0.4)]]);
        assert!(compare(&r, &r, &GateConfig::default()).unwrap().is_empty());
    }

    #[test]
    fn injected_2x_slowdown_fails_the_gate() {
        let baseline = report(&[&[("blocking", 1.0), ("inference", 2.0)]]);
        let slowed = report(&[&[("blocking", 1.0), ("inference", 4.0)]]);
        let regressions = compare(&baseline, &slowed, &GateConfig::default()).unwrap();
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].stage, "inference");
        assert!((regressions[0].slowdown() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn slowdown_within_threshold_passes() {
        let baseline = report(&[&[("inference", 2.0)]]);
        let slightly = report(&[&[("inference", 2.5)]]);
        assert!(compare(&baseline, &slightly, &GateConfig::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn below_floor_noise_is_ignored() {
        // 10x regression on a 1 ms stage: timer noise, not a regression.
        let baseline = report(&[&[("grouping", 0.001)]]);
        let slowed = report(&[&[("grouping", 0.010)]]);
        assert!(compare(&baseline, &slowed, &GateConfig::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn below_floor_baseline_does_not_grant_a_free_pass() {
        // The floor substitutes for the tiny baseline; a genuine blowup
        // on a millisecond stage still trips the gate.
        let baseline = report(&[&[("grouping", 0.001)]]);
        let blown_up = report(&[&[("grouping", 60.0)]]);
        let regressions = compare(&baseline, &blown_up, &GateConfig::default()).unwrap();
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].stage, "grouping");
    }

    #[test]
    fn shape_mismatch_is_an_error_not_a_pass() {
        let baseline = report(&[&[("blocking", 1.0), ("merge", 0.5)]]);
        let missing = report(&[&[("blocking", 1.0)]]);
        assert!(compare(&baseline, &missing, &GateConfig::default()).is_err());
        assert!(compare(&missing, &baseline, &GateConfig::default()).is_err());
    }

    #[test]
    fn recipe_lines_participate_in_shape_and_comparison() {
        let with_recipes = |seconds: f64| {
            Json::obj([(
                "table4",
                Json::Arr(vec![Json::obj([
                    (
                        "stages",
                        Json::obj([("blocking", Json::obj([("seconds", 1.0f64.to_json())]))]),
                    ),
                    (
                        "recipes",
                        Json::obj([
                            ("token-overlap", Json::obj([("seconds", seconds.to_json())])),
                            ("id-overlap", Json::obj([("seconds", 0.2f64.to_json())])),
                        ]),
                    ),
                ])]),
            )])
        };
        let baseline = with_recipes(0.5);
        let slowed = with_recipes(1.5);
        let regressions = compare(&baseline, &slowed, &GateConfig::default()).unwrap();
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].stage, "recipe:token-overlap");
        // Dropping a recipe line is a shape error.
        let without = report(&[&[("blocking", 1.0)]]);
        assert!(compare(&baseline, &without, &GateConfig::default()).is_err());
    }

    #[test]
    fn malformed_reports_are_rejected() {
        assert!(stage_totals(&Json::obj([("scale", 1.0f64.to_json())])).is_err());
        assert!(stage_totals(&Json::obj([("table4", Json::Arr(vec![]))])).is_err());
    }

    #[test]
    fn loadgen_section_gates_like_a_stage() {
        let with_loadgen = |seconds: f64| {
            let mut base = report(&[&[("blocking", 1.0)]]);
            if let Json::Obj(fields) = &mut base {
                fields.push((
                    "loadgen".to_string(),
                    Json::obj([
                        ("serial_s_per_m_lookups", seconds.to_json()),
                        ("lookup_p99_s", 0.0005f64.to_json()),
                    ]),
                ));
            }
            base
        };
        let baseline = with_loadgen(2.0);
        let totals = stage_totals(&baseline).unwrap();
        assert!(totals.contains(&("loadgen:serial_s_per_m_lookups".to_string(), 2.0)));
        assert!(totals.contains(&("loadgen:lookup_p99_s".to_string(), 0.0005)));

        // A 2x lookup-throughput regression fails the gate.
        let slowed = with_loadgen(4.0);
        let regressions = compare(&baseline, &slowed, &GateConfig::default()).unwrap();
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].stage, "loadgen:serial_s_per_m_lookups");

        // Dropping the loadgen section is a shape error, and reports
        // without it on either side still compare fine.
        let without = report(&[&[("blocking", 1.0)]]);
        assert!(compare(&baseline, &without, &GateConfig::default()).is_err());
        assert!(compare(&without, &without, &GateConfig::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn cleanup_section_gates_like_a_stage() {
        let with_cleanup = |bootstrap: f64, churn: f64| {
            let mut base = report(&[&[("blocking", 1.0)]]);
            if let Json::Obj(fields) = &mut base {
                fields.push((
                    "cleanup".to_string(),
                    Json::obj([
                        ("hub_bootstrap_s", bootstrap.to_json()),
                        ("hub_churn_s", churn.to_json()),
                    ]),
                ));
            }
            base
        };
        let baseline = with_cleanup(0.5, 0.2);
        let totals = stage_totals(&baseline).unwrap();
        assert!(totals.contains(&("cleanup:hub_bootstrap_s".to_string(), 0.5)));
        assert!(totals.contains(&("cleanup:hub_churn_s".to_string(), 0.2)));

        // A regression to sequential full-recompute cleanup (large
        // bootstrap blowup) fails the gate.
        let fallback = with_cleanup(5.0, 0.2);
        let regressions = compare(&baseline, &fallback, &GateConfig::default()).unwrap();
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].stage, "cleanup:hub_bootstrap_s");

        // Dropping the section is a shape error; absent on both sides is
        // fine.
        let without = report(&[&[("blocking", 1.0)]]);
        assert!(compare(&baseline, &without, &GateConfig::default()).is_err());
        assert!(compare(&without, &without, &GateConfig::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn state_section_gates_like_a_stage() {
        let with_state = |load: f64, replay: f64| {
            let mut base = report(&[&[("blocking", 1.0)]]);
            if let Json::Obj(fields) = &mut base {
                fields.push((
                    "state".to_string(),
                    Json::obj([
                        ("snapshot_save_s", 0.3f64.to_json()),
                        ("snapshot_load_s", load.to_json()),
                        ("wal_replay_s", replay.to_json()),
                    ]),
                ));
            }
            base
        };
        let baseline = with_state(0.2, 0.5);
        let totals = stage_totals(&baseline).unwrap();
        assert!(totals.contains(&("state:snapshot_save_s".to_string(), 0.3)));
        assert!(totals.contains(&("state:snapshot_load_s".to_string(), 0.2)));
        assert!(totals.contains(&("state:wal_replay_s".to_string(), 0.5)));

        // A fallback from the binary codec to JSON load (the blowup
        // statebench's `--mode json` injects) fails the gate.
        let fallback = with_state(2.0, 0.5);
        let regressions = compare(&baseline, &fallback, &GateConfig::default()).unwrap();
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].stage, "state:snapshot_load_s");

        // Dropping the section is a shape error; absent on both sides is
        // fine.
        let without = report(&[&[("blocking", 1.0)]]);
        assert!(compare(&baseline, &without, &GateConfig::default()).is_err());
        assert!(compare(&without, &without, &GateConfig::default())
            .unwrap()
            .is_empty());
    }
}
