//! The paper's reported numbers, transcribed from Tables 1–4 for the
//! paper-vs-measured columns of the reproduction harness.
//!
//! Values are fractions in [0, 1] (the paper prints percentages).

/// One Table 3 row: fine-tuning P/R/F1 on test pairs.
#[derive(Debug, Clone, Copy)]
pub struct Table3Row {
    /// Dataset label.
    pub dataset: &'static str,
    /// Model label (paper spelling).
    pub model: &'static str,
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// F1.
    pub f1: f64,
}

/// Table 3 as published.
pub const TABLE3: &[Table3Row] = &[
    Table3Row {
        dataset: "Real Companies",
        model: "DITTO (128)",
        precision: 0.6882,
        recall: 0.8349,
        f1: 0.7511,
    },
    Table3Row {
        dataset: "Real Companies",
        model: "DITTO (256)",
        precision: 0.9990,
        recall: 0.9967,
        f1: 0.9978,
    },
    Table3Row {
        dataset: "Real Companies",
        model: "DistilBERT (128)-ALL",
        precision: 0.9993,
        recall: 0.9956,
        f1: 0.9973,
    },
    Table3Row {
        dataset: "Synthetic Companies",
        model: "DITTO (128)",
        precision: 0.9945,
        recall: 0.9670,
        f1: 0.9815,
    },
    Table3Row {
        dataset: "Synthetic Companies",
        model: "DITTO (256)",
        precision: 0.9955,
        recall: 0.9688,
        f1: 0.9820,
    },
    Table3Row {
        dataset: "Synthetic Companies",
        model: "DistilBERT (128)-15K",
        precision: 0.9935,
        recall: 0.9477,
        f1: 0.9699,
    },
    Table3Row {
        dataset: "Synthetic Companies",
        model: "DistilBERT (128)-ALL",
        precision: 0.9928,
        recall: 0.9609,
        f1: 0.9766,
    },
    Table3Row {
        dataset: "Real Securities",
        model: "DITTO (128)",
        precision: 0.2555,
        recall: 0.6900,
        f1: 0.3389,
    },
    Table3Row {
        dataset: "Real Securities",
        model: "DITTO (256)",
        precision: 0.9994,
        recall: 0.9913,
        f1: 0.9953,
    },
    Table3Row {
        dataset: "Real Securities",
        model: "DistilBERT (128)-ALL",
        precision: 0.9948,
        recall: 0.9948,
        f1: 0.9947,
    },
    Table3Row {
        dataset: "Synthetic Securities",
        model: "DITTO (128)",
        precision: 0.5782,
        recall: 0.5600,
        f1: 0.5647,
    },
    Table3Row {
        dataset: "Synthetic Securities",
        model: "DITTO (256)",
        precision: 0.8551,
        recall: 0.9135,
        f1: 0.8833,
    },
    Table3Row {
        dataset: "Synthetic Securities",
        model: "DistilBERT (128)-15K",
        precision: 0.9403,
        recall: 0.6111,
        f1: 0.7326,
    },
    Table3Row {
        dataset: "Synthetic Securities",
        model: "DistilBERT (128)-ALL",
        precision: 0.9096,
        recall: 0.7055,
        f1: 0.7946,
    },
    Table3Row {
        dataset: "WDC Products",
        model: "DITTO (128)",
        precision: 0.3592,
        recall: 0.6320,
        f1: 0.4581,
    },
    Table3Row {
        dataset: "WDC Products",
        model: "DITTO (256)",
        precision: 0.4845,
        recall: 0.7230,
        f1: 0.5771,
    },
    Table3Row {
        dataset: "WDC Products",
        model: "DistilBERT (128)-ALL",
        precision: 0.4624,
        recall: 0.7633,
        f1: 0.5758,
    },
];

/// One Table 4 row: the three evaluation stages.
#[derive(Debug, Clone, Copy)]
pub struct Table4Row {
    /// Dataset label.
    pub dataset: &'static str,
    /// Model label (paper spelling, including sensitivity suffixes).
    pub model: &'static str,
    /// Pairwise (blocked) precision / recall / F1.
    pub pairwise: (f64, f64, f64),
    /// Pre-cleanup precision / recall / F1 / cluster purity.
    pub pre: (f64, f64, f64, f64),
    /// Post-cleanup precision / recall / F1 / cluster purity.
    pub post: (f64, f64, f64, f64),
}

/// Table 4 as published.
pub const TABLE4: &[Table4Row] = &[
    Table4Row {
        dataset: "Real Companies",
        model: "DITTO (128)",
        pairwise: (0.2366, 0.9964, 0.3824),
        pre: (0.0005, 0.9966, 0.0010, 0.00),
        post: (0.9986, 0.9823, 0.9906, 1.00),
    },
    Table4Row {
        dataset: "Real Companies",
        model: "DITTO (256)",
        pairwise: (0.2366, 0.9964, 0.3824),
        pre: (0.2352, 0.9968, 0.3806, 0.00),
        post: (0.9842, 0.9970, 0.9905, 0.99),
    },
    Table4Row {
        dataset: "Real Companies",
        model: "DistilBERT (128)-ALL",
        pairwise: (0.9406, 0.9927, 0.9653),
        pre: (0.4907, 0.9973, 0.5692, 0.80),
        post: (0.8690, 0.9698, 0.9164, 0.93),
    },
    Table4Row {
        dataset: "Synthetic Companies",
        model: "DITTO (128)",
        pairwise: (0.3316, 0.8173, 0.4718),
        pre: (0.0000, 0.8306, 0.0000, 0.00),
        post: (0.9909, 0.3694, 0.5378, 0.99),
    },
    Table4Row {
        dataset: "Synthetic Companies",
        model: "DITTO (256)",
        pairwise: (0.3316, 0.8173, 0.4718),
        pre: (0.0000, 0.8366, 0.0000, 0.00),
        post: (0.9907, 0.3806, 0.5493, 0.99),
    },
    Table4Row {
        dataset: "Synthetic Companies",
        model: "DistilBERT (128)-15K",
        pairwise: (0.8308, 0.7748, 0.8011),
        pre: (0.0001, 0.8231, 0.0002, 0.42),
        post: (0.9806, 0.5790, 0.7234, 0.98),
    },
    Table4Row {
        dataset: "Synthetic Companies",
        model: "DistilBERT (128)-ALL",
        pairwise: (0.7703, 0.7946, 0.7818),
        pre: (0.0000, 0.8226, 0.0000, 0.23),
        post: (0.9876, 0.4331, 0.6003, 0.99),
    },
    Table4Row {
        dataset: "Synthetic Companies",
        model: "DistilBERT (128)-ALL-MEC",
        pairwise: (0.7703, 0.7946, 0.7818),
        pre: (0.0000, 0.8226, 0.0000, 0.23),
        post: (0.9857, 0.4279, 0.5950, 0.99),
    },
    Table4Row {
        dataset: "Synthetic Companies",
        model: "DistilBERT (128)-ALL (1/2 g)",
        pairwise: (0.7703, 0.7946, 0.7818),
        pre: (0.0000, 0.8226, 0.0000, 0.23),
        post: (0.9879, 0.4323, 0.5996, 0.99),
    },
    Table4Row {
        dataset: "Synthetic Companies",
        model: "DistilBERT (128)-ALL-BC",
        pairwise: (0.7703, 0.7946, 0.7818),
        pre: (0.0000, 0.8226, 0.0000, 0.23),
        post: (0.9876, 0.4331, 0.6003, 0.99),
    },
    Table4Row {
        dataset: "Real Securities",
        model: "DITTO (128)",
        pairwise: (0.1996, 0.9199, 0.3280),
        pre: (0.1995, 0.9210, 0.3280, 0.20),
        post: (0.1935, 0.1759, 0.1828, 0.19),
    },
    Table4Row {
        dataset: "Real Securities",
        model: "DITTO (256)",
        pairwise: (0.1996, 0.9199, 0.3280),
        pre: (0.1994, 0.9211, 0.3278, 0.20),
        post: (0.1970, 0.2093, 0.2030, 0.19),
    },
    Table4Row {
        dataset: "Real Securities",
        model: "DistilBERT (128)-ALL",
        pairwise: (0.9976, 0.9777, 0.9876),
        pre: (0.9973, 0.9808, 0.9890, 1.00),
        post: (0.9973, 0.9800, 0.9886, 1.00),
    },
    Table4Row {
        dataset: "Synthetic Securities",
        model: "DITTO (128)",
        pairwise: (0.9726, 0.5251, 0.6820),
        pre: (0.9639, 0.5458, 0.6969, 0.98),
        post: (0.9822, 0.4488, 0.6154, 0.99),
    },
    Table4Row {
        dataset: "Synthetic Securities",
        model: "DITTO (256)",
        pairwise: (0.9726, 0.5251, 0.6820),
        pre: (0.9623, 0.5708, 0.7166, 0.98),
        post: (0.9831, 0.5668, 0.7190, 0.99),
    },
    Table4Row {
        dataset: "Synthetic Securities",
        model: "DistilBERT (128)-15K",
        pairwise: (0.9726, 0.5706, 0.7159),
        pre: (0.9605, 0.5706, 0.7159, 0.98),
        post: (0.9808, 0.5656, 0.7171, 0.98),
    },
    Table4Row {
        dataset: "Synthetic Securities",
        model: "DistilBERT (128)-ALL",
        pairwise: (0.9558, 0.5328, 0.6840),
        pre: (0.8781, 0.5840, 0.6982, 0.94),
        post: (0.9670, 0.5752, 0.7211, 0.97),
    },
    Table4Row {
        dataset: "WDC Products",
        model: "DITTO (128)",
        pairwise: (0.1971, 0.3696, 0.2571),
        pre: (0.0119, 0.5038, 0.0233, 0.01),
        post: (0.7259, 0.0902, 0.1603, 0.84),
    },
    Table4Row {
        dataset: "WDC Products",
        model: "DITTO (256)",
        pairwise: (0.1971, 0.3696, 0.2571),
        pre: (0.2034, 0.3997, 0.2696, 0.01),
        post: (0.7414, 0.1806, 0.2896, 0.85),
    },
    Table4Row {
        dataset: "WDC Products",
        model: "DistilBERT (128)-ALL",
        pairwise: (0.3964, 0.6527, 0.4932),
        pre: (0.0747, 0.7140, 0.1303, 0.43),
        post: (0.3554, 0.5793, 0.4404, 0.53),
    },
];

/// Table 1: dataset statistics (synthetic columns; real columns are
/// estimates in the paper).
#[derive(Debug, Clone, Copy)]
pub struct Table1Column {
    /// Dataset label.
    pub dataset: &'static str,
    /// Number of data sources.
    pub sources: f64,
    /// Number of entities.
    pub entities: f64,
    /// Number of records.
    pub records: f64,
    /// Number of matches.
    pub matches: f64,
    /// Average matches per entity.
    pub avg_matches: f64,
    /// % records with text descriptions (companies only).
    pub pct_descriptions: Option<f64>,
}

/// Table 1 as published.
pub const TABLE1: &[Table1Column] = &[
    Table1Column {
        dataset: "Synthetic Companies",
        sources: 5.0,
        entities: 200_000.0,
        records: 868_000.0,
        matches: 1_500_000.0,
        avg_matches: 7.5,
        pct_descriptions: Some(0.32),
    },
    Table1Column {
        dataset: "Synthetic Securities",
        sources: 5.0,
        entities: 275_000.0,
        records: 984_000.0,
        matches: 1_500_000.0,
        avg_matches: 5.4,
        pct_descriptions: None,
    },
    Table1Column {
        dataset: "Real Companies (est.)",
        sources: 10.0,
        entities: 200_000.0,
        records: 600_000.0,
        matches: 1_000_000.0,
        avg_matches: 7.0,
        pct_descriptions: Some(0.25),
    },
    Table1Column {
        dataset: "Real Securities (est.)",
        sources: 10.0,
        entities: 250_000.0,
        records: 1_000_000.0,
        matches: 1_500_000.0,
        avg_matches: 10.0,
        pct_descriptions: None,
    },
];

/// Table 2: blocking setup per dataset.
#[derive(Debug, Clone, Copy)]
pub struct Table2Row {
    /// Dataset label.
    pub dataset: &'static str,
    /// Blockings applied.
    pub blockings: &'static str,
    /// Number of records entering the end-to-end experiment.
    pub records: f64,
    /// Candidate pairs after blocking.
    pub candidate_pairs: f64,
    /// γ threshold.
    pub gamma: usize,
    /// μ threshold.
    pub mu: usize,
}

/// Table 2 as published.
pub const TABLE2: &[Table2Row] = &[
    Table2Row {
        dataset: "Real Companies",
        blockings: "ID Overlap + Token Overlap",
        records: 6_300.0,
        candidate_pairs: 51_000.0,
        gamma: 40,
        mu: 8,
    },
    Table2Row {
        dataset: "Synthetic Companies",
        blockings: "ID Overlap + Token Overlap",
        records: 174_000.0,
        candidate_pairs: 1_140_000.0,
        gamma: 25,
        mu: 5,
    },
    Table2Row {
        dataset: "Real Securities",
        blockings: "ID Overlap + Issuer Match",
        records: 12_800.0,
        candidate_pairs: 41_000.0,
        gamma: 40,
        mu: 8,
    },
    Table2Row {
        dataset: "Synthetic Securities",
        blockings: "ID Overlap + Issuer Match",
        records: 197_000.0,
        candidate_pairs: 826_000.0,
        gamma: 25,
        mu: 5,
    },
    Table2Row {
        dataset: "WDC Products",
        blockings: "Token Overlap",
        records: 1_000.0,
        candidate_pairs: 9_100.0,
        gamma: 25,
        mu: 5,
    },
];

/// Look up a Table 3 reference row.
pub fn table3_reference(dataset: &str, model: &str) -> Option<&'static Table3Row> {
    TABLE3
        .iter()
        .find(|row| row.dataset == dataset && row.model == model)
}

/// Look up a Table 4 reference row.
pub fn table4_reference(dataset: &str, model: &str) -> Option<&'static Table4Row> {
    TABLE4
        .iter()
        .find(|row| row.dataset == dataset && row.model == model)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn references_resolve() {
        assert!(table3_reference("Synthetic Companies", "DITTO (128)").is_some());
        assert!(table4_reference("WDC Products", "DistilBERT (128)-ALL").is_some());
        assert!(table3_reference("Nope", "DITTO (128)").is_none());
    }

    #[test]
    fn table_shapes() {
        assert_eq!(TABLE3.len(), 17);
        assert_eq!(TABLE4.len(), 20);
        assert_eq!(TABLE2.len(), 5);
    }

    #[test]
    fn fractions_in_range() {
        for row in TABLE3 {
            for v in [row.precision, row.recall, row.f1] {
                assert!((0.0..=1.0).contains(&v));
            }
        }
        for row in TABLE4 {
            assert!(row.post.3 <= 1.0);
        }
    }
}
