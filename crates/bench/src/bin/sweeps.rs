//! Ablation sweeps extending the paper's sensitivity analysis.
//!
//! 1. **Label budget** — how precision/recall move as the positive training
//!    cap shrinks (the -15K analysis as a curve).
//! 2. **γ sweep** — post-cleanup F1 across the min-cut/betweenness
//!    crossover (extends the Table 4 MEC/½γ/BC rows).
//! 3. **Fixed μ vs density-adaptive cleanup on WDC** — validates the
//!    paper's Section 6.2.3 conjecture that a group-size-agnostic cleanup
//!    fixes the WDC recall collapse.
//!
//! Usage: `cargo run -p gralmatch-bench --bin sweeps --release`

use gralmatch_bench::harness::{
    prepare_synthetic, prepare_wdc, run_companies_table4_with, train_spec, train_spec_with_pool,
    wdc_negative_pool, Scale,
};
use gralmatch_bench::table::{pct, render};
use gralmatch_core::{
    adaptive_cleanup, blocked_candidates, entity_groups, graph_cleanup, group_metrics,
    prediction_graph, AdaptiveConfig, CleanupConfig, CleanupVariant, ProductDomain,
};
use gralmatch_lm::{predict_positive_with, train_with_negative_pool, MatcherScorer, ModelSpec};
use gralmatch_records::{GroundTruth, ProductRecord, RecordId};
use gralmatch_util::Parallelism;

fn label_budget_sweep() {
    println!("== Sweep 1: label budget (synthetic securities, plain-128) ==");
    let scale = Scale::from_env();
    let prepared = prepare_synthetic(scale);
    let records = prepared.data.securities.records();
    let spec = ModelSpec::DistilBert128All;
    let encoded = spec.encode_records(records);
    let mut rows = Vec::new();
    for cap in [Some(250usize), Some(1_000), Some(4_000), None] {
        let mut config = spec.train_config();
        config.max_train_positives = cap;
        config.max_val_positives = cap.map(|c| c / 2);
        config.require_id_overlap = cap.is_some(); // the -15K style filter
        let (matcher, _) = train_with_negative_pool(
            records,
            &encoded,
            &prepared.security_gt,
            &prepared.security_split,
            &config,
            None,
        )
        .expect("training");
        let eval = gralmatch_bench::harness::evaluate_on_test_pairs(
            records,
            &matcher,
            spec,
            &prepared.security_gt,
            &prepared.security_split,
            11,
            None,
        );
        rows.push(vec![
            cap.map_or("ALL".to_string(), |c| c.to_string()),
            pct(eval.precision),
            pct(eval.recall),
            pct(eval.f1),
        ]);
    }
    println!(
        "{}",
        render(&["max positives", "precision", "recall", "F1"], &rows)
    );
}

fn gamma_sweep() {
    println!("== Sweep 2: γ threshold (synthetic companies post-cleanup) ==");
    let scale = Scale::from_env();
    let prepared = prepare_synthetic(scale);
    let spec = ModelSpec::DistilBert128All;
    let (matcher, report) = train_spec(
        prepared.data.companies.records(),
        &prepared.company_gt,
        &prepared.company_split,
        spec,
    );
    let mu = 5usize;
    let mut rows = Vec::new();
    for gamma in [mu, 2 * mu, 25, 50, usize::MAX] {
        let cell = run_companies_table4_with(
            &prepared,
            &matcher,
            report.train_seconds,
            spec,
            gamma,
            mu,
            CleanupVariant::Full,
            1,
        );
        let label = if gamma == usize::MAX {
            "inf (BC only)".to_string()
        } else {
            gamma.to_string()
        };
        rows.push(vec![
            label,
            pct(cell.outcome.post_cleanup.pairs.precision),
            pct(cell.outcome.post_cleanup.pairs.recall),
            pct(cell.outcome.post_cleanup.pairs.f1),
            format!("{:.2}", cell.outcome.post_cleanup.cluster_purity),
            format!("{:.2}s", cell.outcome.cleanup_report.seconds),
        ]);
    }
    println!(
        "{}",
        render(
            &["γ", "post P", "post R", "post F1", "ClPur", "cleanup time"],
            &rows
        )
    );
}

fn wdc_adaptive_vs_fixed() {
    println!("== Sweep 3: fixed-μ Algorithm 1 vs density-adaptive cleanup (WDC) ==");
    let prepared = prepare_wdc();
    let pool = wdc_negative_pool(&prepared);
    let spec = ModelSpec::DistilBert128All;
    let (matcher, _) = train_spec_with_pool(
        prepared.products.records(),
        &prepared.gt,
        &prepared.split,
        spec,
        &pool,
    );
    // Test universe.
    let keep = prepared.split.test_set();
    let mut test_products: Vec<ProductRecord> = Vec::new();
    for product in prepared.products.records() {
        if keep.contains(&product.id) {
            let mut cloned = product.clone();
            cloned.id = RecordId(test_products.len() as u32);
            test_products.push(cloned);
        }
    }
    let encoded = spec.encode_records(&test_products);
    let gt = GroundTruth::from_records(&test_products);
    let candidates = blocked_candidates(&ProductDomain::new(&test_products));
    let pairs = candidates.pairs_sorted();
    let scorer = MatcherScorer::new(&matcher, &encoded);
    let predicted = predict_positive_with(
        &scorer,
        &pairs,
        &Parallelism::Fixed(4).pool_for(pairs.len()),
    );

    let mut rows = Vec::new();
    // Fixed μ = 5 (Table 2).
    let mut fixed = prediction_graph(test_products.len(), &predicted);
    graph_cleanup(&mut fixed, &CleanupConfig::new(25, 5));
    let fixed_metrics = group_metrics(&entity_groups(&fixed), &gt);
    rows.push(vec![
        "Algorithm 1 (γ=25, μ=5)".to_string(),
        pct(fixed_metrics.pairs.precision),
        pct(fixed_metrics.pairs.recall),
        pct(fixed_metrics.pairs.f1),
        format!("{:.2}", fixed_metrics.cluster_purity),
    ]);
    // Density-adaptive.
    let mut adaptive = prediction_graph(test_products.len(), &predicted);
    adaptive_cleanup(&mut adaptive, &AdaptiveConfig::default());
    let adaptive_metrics = group_metrics(&entity_groups(&adaptive), &gt);
    rows.push(vec![
        "adaptive (density 0.6)".to_string(),
        pct(adaptive_metrics.pairs.precision),
        pct(adaptive_metrics.pairs.recall),
        pct(adaptive_metrics.pairs.f1),
        format!("{:.2}", adaptive_metrics.cluster_purity),
    ]);
    println!(
        "{}",
        render(&["cleanup", "post P", "post R", "post F1", "ClPur"], &rows)
    );
    println!("The paper conjectures a size-agnostic cleanup reverts WDC's recall");
    println!("collapse (Section 6.2.3); the adaptive row tests that conjecture.\n");
}

fn main() {
    label_budget_sweep();
    gamma_sweep();
    wdc_adaptive_vs_fixed();
}
