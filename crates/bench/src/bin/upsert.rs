//! Incremental-upsert replay benchmark: loads a synthetic dataset as
//! initial load + K delta batches through `core::incremental` and reports
//! per-batch reconciliation latency next to the one-shot wall-clock.
//!
//! Usage:
//! `cargo run -p gralmatch-bench --bin upsert --release -- [--shards N] [--batches K] [out.json]`
//!
//! `GRALMATCH_SCALE` sizes the dataset (default 0.02), `--shards`
//! (default 4) the standing [`ShardPlan`], `--batches` (default 3) the
//! number of delta batches replayed over the trailing 30 % of the
//! records. The scorer is the heuristic name matcher — deterministic and
//! training-free, so the numbers isolate the reconciliation engine.

use gralmatch_bench::harness::{
    parse_shards_opt, prepare_synthetic, stage_trace_json, ReplayScorer, Scale,
};
use gralmatch_core::{CompanyDomain, PipelineConfig, ShardPlan, UpsertBatch};
use gralmatch_lm::{
    CompiledDataset, CompiledMatcher, HeuristicMatcher, PairEncoder, PairScorer, PairwiseMatcher,
    PlainEncoder, ScoreScratch,
};
use gralmatch_records::{CompanyRecord, Record, RecordPair};
use gralmatch_util::{Json, ToJson};

/// Replay scorer maintaining a compiled featurization view incrementally:
/// each batch encodes and recompiles exactly its touched records
/// (`recompile_record`/`clear_record`); untouched records keep their
/// standing compiled spans across batches — the upsert-side counterpart of
/// the pipeline state's own delta reconciliation.
struct CompiledReplayScorer {
    matcher: HeuristicMatcher,
    encoder: PlainEncoder,
    compiled: CompiledDataset,
    /// Encoded streams as applied so far, by record id (deletes become
    /// empty streams) — the input for the independent one-shot recompile.
    encoded: Vec<gralmatch_lm::EncodedRecord>,
}

impl CompiledReplayScorer {
    fn new(matcher: HeuristicMatcher, encoder: PlainEncoder) -> Self {
        let compiled = CompiledDataset::new(&matcher.feature_config());
        CompiledReplayScorer {
            matcher,
            encoder,
            compiled,
            encoded: Vec::new(),
        }
    }

    fn remember(&mut self, id: u32, stream: gralmatch_lm::EncodedRecord) {
        if id as usize >= self.encoded.len() {
            self.encoded.resize_with(id as usize + 1, Default::default);
        }
        self.encoded[id as usize] = stream;
    }
}

impl PairScorer for CompiledReplayScorer {
    fn score_pair(&self, pair: RecordPair) -> f32 {
        self.score_pair_scratch(pair, &mut ScoreScratch::default())
    }

    fn score_pair_scratch(&self, pair: RecordPair, scratch: &mut ScoreScratch) -> f32 {
        self.matcher
            .score_compiled(&self.compiled, pair.a.0, pair.b.0, scratch)
    }

    fn threshold(&self) -> f32 {
        self.matcher.threshold()
    }

    fn memory_bytes(&self) -> Option<usize> {
        Some(self.compiled.arena_bytes())
    }
}

impl ReplayScorer<CompanyRecord> for CompiledReplayScorer {
    fn for_batch(&mut self, batch: &UpsertBatch<CompanyRecord>) -> &dyn PairScorer {
        for record in batch.inserts.iter().chain(&batch.updates) {
            let stream = self.encoder.encode(record);
            self.compiled.recompile_record(record.id().0, &stream);
            self.remember(record.id().0, stream);
        }
        for &id in &batch.deletes {
            self.compiled.clear_record(id.0);
            self.remember(id.0, Default::default());
        }
        self
    }

    fn for_one_shot(&mut self) -> &dyn PairScorer {
        // Rebuild the view from scratch so the one-shot run is independent
        // of the incremental recompiles: if per-batch maintenance ever
        // corrupted a span, the replay-vs-one-shot groups check fails
        // instead of self-agreeing through the same corrupted arena.
        self.compiled = CompiledDataset::compile(&self.encoded, &self.matcher.feature_config());
        self
    }
}

fn main() {
    let scale = Scale::from_env();
    let (shards, mut positional) = parse_shards_opt();
    let shards = shards.unwrap_or(4);
    let mut batches = 3usize;
    let mut out_path = "upsert-report.json".to_string();
    let mut iter = std::mem::take(&mut positional).into_iter();
    while let Some(arg) = iter.next() {
        if arg == "--batches" {
            batches = iter
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--batches needs a count");
        } else if let Some(value) = arg.strip_prefix("--batches=") {
            batches = value.parse().expect("--batches needs a count");
        } else {
            out_path = arg;
        }
    }
    eprintln!(
        "upsert: scale {} shards {shards} batches {batches} -> {out_path}",
        scale.0
    );

    let prepared = prepare_synthetic(scale);
    let companies = prepared.data.companies.records();
    let domain = CompanyDomain::new(companies, prepared.data.securities.records());
    let matcher = HeuristicMatcher {
        jaccard_threshold: 0.45,
    };
    let mut scorer = CompiledReplayScorer::new(matcher, PlainEncoder::new(128));
    let config = PipelineConfig::new(25, 5).with_pre_cleanup(50);

    let replay = gralmatch_bench::harness::run_upsert_replay_with(
        &domain,
        &mut scorer,
        &config,
        ShardPlan::new(shards),
        batches,
        0.3,
    );

    let mut batch_rows = Vec::new();
    let mut delta_seconds = 0.0;
    for batch in &replay.batches {
        let label = if batch.index == 0 {
            "initial load"
        } else {
            "delta"
        };
        eprintln!(
            "upsert: batch {} ({label}): {:.3}s, +{} records, {} pairs scored, {} shards re-blocked",
            batch.index,
            batch.seconds,
            batch.outcome.inserted,
            batch.outcome.pairs_scored,
            batch.outcome.touched_shards,
        );
        if batch.index > 0 {
            delta_seconds += batch.seconds;
        }
        let stages = Json::Obj(
            batch
                .outcome
                .trace
                .stages
                .iter()
                .map(|stage| (stage.stage.to_string(), stage_trace_json(stage)))
                .collect(),
        );
        batch_rows.push(Json::obj([
            ("index", batch.index.to_json()),
            ("seconds", batch.seconds.to_json()),
            ("inserted", batch.outcome.inserted.to_json()),
            ("pairs_scored", batch.outcome.pairs_scored.to_json()),
            ("new_predictions", batch.outcome.new_predictions.to_json()),
            ("touched_shards", batch.outcome.touched_shards.to_json()),
            (
                "touched_components",
                batch.outcome.touched_components.to_json(),
            ),
            ("stages", stages),
        ]));
    }
    eprintln!(
        "upsert: {} delta batches in {delta_seconds:.3}s vs one-shot {:.3}s (groups match: {})",
        batches, replay.one_shot_seconds, replay.matches_one_shot
    );

    let report = Json::obj([
        ("scale", scale.0.to_json()),
        ("shards", shards.to_json()),
        ("num_batches", batches.to_json()),
        ("num_groups", replay.num_groups.to_json()),
        ("matches_one_shot", replay.matches_one_shot.to_json()),
        ("one_shot_seconds", replay.one_shot_seconds.to_json()),
        ("delta_seconds_total", delta_seconds.to_json()),
        ("batches", Json::Arr(batch_rows)),
    ]);
    std::fs::write(&out_path, report.to_pretty_string()).expect("write report");
    println!("wrote {out_path}");
}
