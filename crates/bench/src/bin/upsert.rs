//! Incremental-upsert replay benchmark: loads a synthetic dataset as
//! initial load + K delta batches through one long-lived `MatchEngine`
//! and reports per-batch reconciliation latency next to the one-shot
//! wall-clock of the legacy sharded oracle.
//!
//! Usage:
//! `cargo run -p gralmatch-bench --bin upsert --release -- [--shards N] [--batches K] [out.json]`
//!
//! `GRALMATCH_SCALE` sizes the dataset (default 0.02), `--shards`
//! (default 4) the standing `ShardPlan`, `--batches` (default 3) the
//! number of delta batches replayed over the trailing 30 % of the
//! records. The scorer is the heuristic name matcher — deterministic and
//! training-free, so the numbers isolate the reconciliation engine. Its
//! compiled featurization view lives in the engine's
//! `CompiledScorerProvider`, which recompiles exactly the records each
//! batch touches.

use gralmatch_bench::cli::BenchCli;
use gralmatch_bench::harness::{prepare_synthetic, stage_trace_json, Scale};
use gralmatch_core::{CompanyDomain, CompiledScorerProvider, PipelineConfig, ShardPlan};
use gralmatch_lm::{HeuristicMatcher, PlainEncoder};
use gralmatch_util::{Json, ToJson};

fn main() {
    let scale = Scale::from_env();
    let cli = BenchCli::parse(&["shards", "batches"]);
    let shards = cli.shards_or(4);
    let batches = cli.usize_value("batches").unwrap_or(3);
    let out_path = cli.out_path("upsert-report.json");
    eprintln!(
        "upsert: scale {} shards {shards} batches {batches} -> {out_path}",
        scale.0
    );

    let prepared = prepare_synthetic(scale);
    let companies = prepared.data.companies.records();
    let domain = CompanyDomain::new(companies, prepared.data.securities.records());
    let provider = CompiledScorerProvider::new(
        HeuristicMatcher {
            jaccard_threshold: 0.45,
        },
        PlainEncoder::new(128),
    );
    let config = PipelineConfig::new(25, 5).with_pre_cleanup(50);

    let replay = gralmatch_bench::harness::run_upsert_replay_with(
        &domain,
        Box::new(provider),
        &config,
        ShardPlan::new(shards),
        batches,
        0.3,
    );

    let mut batch_rows = Vec::new();
    let mut delta_seconds = 0.0;
    for batch in &replay.batches {
        let label = if batch.index == 0 {
            "initial load"
        } else {
            "delta"
        };
        eprintln!(
            "upsert: batch {} ({label}): {:.3}s, +{} records, {} pairs scored, {} shards re-blocked",
            batch.index,
            batch.seconds,
            batch.outcome.inserted,
            batch.outcome.pairs_scored,
            batch.outcome.touched_shards,
        );
        if batch.index > 0 {
            delta_seconds += batch.seconds;
        }
        let stages = Json::Obj(
            batch
                .outcome
                .trace
                .stages
                .iter()
                .map(|stage| (stage.stage.to_string(), stage_trace_json(stage)))
                .collect(),
        );
        batch_rows.push(Json::obj([
            ("index", batch.index.to_json()),
            ("seconds", batch.seconds.to_json()),
            ("inserted", batch.outcome.inserted.to_json()),
            ("pairs_scored", batch.outcome.pairs_scored.to_json()),
            ("new_predictions", batch.outcome.new_predictions.to_json()),
            ("touched_shards", batch.outcome.touched_shards.to_json()),
            (
                "touched_components",
                batch.outcome.touched_components.to_json(),
            ),
            ("stages", stages),
        ]));
    }
    eprintln!(
        "upsert: {} delta batches in {delta_seconds:.3}s vs one-shot {:.3}s (groups match: {})",
        batches, replay.one_shot_seconds, replay.matches_one_shot
    );

    let report = Json::obj([
        ("scale", scale.0.to_json()),
        ("shards", shards.to_json()),
        ("num_batches", batches.to_json()),
        ("num_groups", replay.num_groups.to_json()),
        ("matches_one_shot", replay.matches_one_shot.to_json()),
        ("one_shot_seconds", replay.one_shot_seconds.to_json()),
        ("delta_seconds_total", delta_seconds.to_json()),
        (
            "engine_apply_seconds",
            replay.final_stats.total_apply_seconds.to_json(),
        ),
        ("batches", Json::Arr(batch_rows)),
    ]);
    std::fs::write(&out_path, report.to_pretty_string()).expect("write report");
    println!("wrote {out_path}");
}
