//! Incremental-upsert replay benchmark: loads a synthetic dataset as
//! initial load + K delta batches through `core::incremental` and reports
//! per-batch reconciliation latency next to the one-shot wall-clock.
//!
//! Usage:
//! `cargo run -p gralmatch-bench --bin upsert --release -- [--shards N] [--batches K] [out.json]`
//!
//! `GRALMATCH_SCALE` sizes the dataset (default 0.02), `--shards`
//! (default 4) the standing [`ShardPlan`], `--batches` (default 3) the
//! number of delta batches replayed over the trailing 30 % of the
//! records. The scorer is the heuristic name matcher — deterministic and
//! training-free, so the numbers isolate the reconciliation engine.

use gralmatch_bench::harness::{parse_shards_opt, prepare_synthetic, Scale};
use gralmatch_core::{CompanyDomain, PipelineConfig, ShardPlan};
use gralmatch_lm::{encode_dataset, HeuristicMatcher, MatcherScorer, PlainEncoder};
use gralmatch_util::{Json, ToJson};

fn main() {
    let scale = Scale::from_env();
    let (shards, mut positional) = parse_shards_opt();
    let shards = shards.unwrap_or(4);
    let mut batches = 3usize;
    let mut out_path = "upsert-report.json".to_string();
    let mut iter = std::mem::take(&mut positional).into_iter();
    while let Some(arg) = iter.next() {
        if arg == "--batches" {
            batches = iter
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--batches needs a count");
        } else if let Some(value) = arg.strip_prefix("--batches=") {
            batches = value.parse().expect("--batches needs a count");
        } else {
            out_path = arg;
        }
    }
    eprintln!(
        "upsert: scale {} shards {shards} batches {batches} -> {out_path}",
        scale.0
    );

    let prepared = prepare_synthetic(scale);
    let companies = prepared.data.companies.records();
    let domain = CompanyDomain::new(companies, prepared.data.securities.records());
    let encoded = encode_dataset(companies, &PlainEncoder::new(128));
    let matcher = HeuristicMatcher {
        jaccard_threshold: 0.45,
    };
    let scorer = MatcherScorer::new(&matcher, &encoded);
    let config = PipelineConfig::new(25, 5).with_pre_cleanup(50);

    let replay = gralmatch_bench::harness::run_upsert_replay(
        &domain,
        &scorer,
        &config,
        ShardPlan::new(shards),
        batches,
        0.3,
    );

    let mut batch_rows = Vec::new();
    let mut delta_seconds = 0.0;
    for batch in &replay.batches {
        let label = if batch.index == 0 {
            "initial load"
        } else {
            "delta"
        };
        eprintln!(
            "upsert: batch {} ({label}): {:.3}s, +{} records, {} pairs scored, {} shards re-blocked",
            batch.index,
            batch.seconds,
            batch.outcome.inserted,
            batch.outcome.pairs_scored,
            batch.outcome.touched_shards,
        );
        if batch.index > 0 {
            delta_seconds += batch.seconds;
        }
        let stages = Json::Obj(
            batch
                .outcome
                .trace
                .stages
                .iter()
                .map(|stage| {
                    (
                        stage.stage.to_string(),
                        Json::obj([
                            ("seconds", stage.seconds.to_json()),
                            ("items_in", stage.items_in.to_json()),
                            ("items_out", stage.items_out.to_json()),
                        ]),
                    )
                })
                .collect(),
        );
        batch_rows.push(Json::obj([
            ("index", batch.index.to_json()),
            ("seconds", batch.seconds.to_json()),
            ("inserted", batch.outcome.inserted.to_json()),
            ("pairs_scored", batch.outcome.pairs_scored.to_json()),
            ("new_predictions", batch.outcome.new_predictions.to_json()),
            ("touched_shards", batch.outcome.touched_shards.to_json()),
            (
                "touched_components",
                batch.outcome.touched_components.to_json(),
            ),
            ("stages", stages),
        ]));
    }
    eprintln!(
        "upsert: {} delta batches in {delta_seconds:.3}s vs one-shot {:.3}s (groups match: {})",
        batches, replay.one_shot_seconds, replay.matches_one_shot
    );

    let report = Json::obj([
        ("scale", scale.0.to_json()),
        ("shards", shards.to_json()),
        ("num_batches", batches.to_json()),
        ("num_groups", replay.num_groups.to_json()),
        ("matches_one_shot", replay.matches_one_shot.to_json()),
        ("one_shot_seconds", replay.one_shot_seconds.to_json()),
        ("delta_seconds_total", delta_seconds.to_json()),
        ("batches", Json::Arr(batch_rows)),
    ]);
    std::fs::write(&out_path, report.to_pretty_string()).expect("write report");
    println!("wrote {out_path}");
}
