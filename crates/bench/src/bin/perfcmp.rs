//! Perf-regression comparator for the CI `perf-gate` job.
//!
//! Usage:
//! `cargo run -p gralmatch-bench --bin perfcmp -- baseline.json current.json [--threshold 0.30] [--min-seconds 0.05]`
//!
//! Reads two repro reports, aggregates per-stage (and per-blocking-recipe)
//! wall-clock across all Table 4 cells, and exits non-zero when any stage
//! regressed beyond the threshold — or when the trace shapes diverge
//! (missing stage/recipe lines are treated as failures, not as skips).

use gralmatch_bench::perfgate::{compare, render_comparison, GateConfig};
use gralmatch_util::Json;

fn read_report(path: &str) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("perfcmp: cannot read {path}: {e}"));
    Json::parse(&text).unwrap_or_else(|e| panic!("perfcmp: {path} is not valid JSON: {e}"))
}

fn main() {
    let mut config = GateConfig::default();
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threshold" {
            config.max_regression = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--threshold needs a fraction");
        } else if let Some(value) = arg.strip_prefix("--threshold=") {
            config.max_regression = value.parse().expect("--threshold needs a fraction");
        } else if arg == "--min-seconds" {
            config.min_seconds = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--min-seconds needs a number");
        } else if let Some(value) = arg.strip_prefix("--min-seconds=") {
            config.min_seconds = value.parse().expect("--min-seconds needs a number");
        } else {
            paths.push(arg);
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        eprintln!(
            "usage: perfcmp <baseline.json> <current.json> [--threshold F] [--min-seconds S]"
        );
        std::process::exit(2);
    };

    let baseline = read_report(baseline_path);
    let current = read_report(current_path);
    print!("{}", render_comparison(&baseline, &current));

    match compare(&baseline, &current, &config) {
        Ok(regressions) if regressions.is_empty() => {
            println!(
                "perfcmp: OK — no stage regressed more than {:.0}% (floor {:.0} ms)",
                config.max_regression * 100.0,
                config.min_seconds * 1000.0
            );
        }
        Ok(regressions) => {
            for regression in &regressions {
                eprintln!(
                    "perfcmp: FAIL — {} regressed {:+.0}% ({:.3}s -> {:.3}s, threshold {:.0}%)",
                    regression.stage,
                    regression.slowdown() * 100.0,
                    regression.baseline,
                    regression.current,
                    config.max_regression * 100.0
                );
            }
            std::process::exit(1);
        }
        Err(message) => {
            eprintln!("perfcmp: FAIL — {message}");
            std::process::exit(1);
        }
    }
}
