//! Concurrent serving load generator: measures what epoch-snapshot
//! publication buys — lookups that keep flowing while the writer applies
//! churn batches — in single-tenant (perf-gated) and multi-tenant modes.
//!
//! ## Single-tenant mode (default)
//!
//! Two phases over the same securities tenant and the same churn-batch
//! stream:
//!
//! 1. **Serial baseline** — one thread alternates "apply a churn batch,
//!    then `--serial-lookups-per-batch` lookups", the shape of the old
//!    stdin serve loop where every lookup stalls behind the batch in
//!    front of it.
//! 2. **Concurrent** — the main thread becomes the single writer,
//!    applying churn batches back to back (`--write-pause-ms` sets the
//!    effective read:write ratio), while `--clients` closed-loop reader
//!    threads hammer `group_of` through their own
//!    [`PublishedReader`],
//!    checking every answer for internal consistency (the group returned
//!    for a record must list that record as a member, epochs must be
//!    monotone) and recording per-lookup latency into a
//!    [`LatencyHistogram`].
//!
//! The report (default `LOADGEN.json`, or merged into an existing repro
//! report with `--merge-into`) carries a `loadgen` object of
//! seconds-valued aggregates the perf gate compares
//! (`loadgen:<label>` lines) and an ungated `loadgen_info` object with
//! counts, the serial→concurrent speedup, and the publish-cost scaling
//! evidence (full-rebuild vs per-churn-batch publish cost).
//!
//! ## Multi-tenant mode (`--tenants companies,securities,products`)
//!
//! Boots one tenant per listed domain into an
//! [`EngineHost`] and runs the concurrent
//! phase across all of them: readers are spread round-robin over the
//! tenants (each pinned to one tenant's snapshot source), the writer
//! round-robins churn batches across the tenants, and the report gains
//! an **ungated** `loadgen_tenants` object with per-tenant
//! p50/p99/p999, lookup/batch counts, and the final epoch. Tenant
//! isolation is enforced by exit code: each tenant's final epoch must be
//! exactly `1 + its own batches` (any cross-tenant bleed shifts it), on
//! top of the per-answer consistency checks.
//!
//! Exits nonzero when any reader observed an inconsistent answer or no
//! lookups completed — CI's loadgen smoke relies on that.

use gralmatch_bench::cli::BenchCli;
use gralmatch_bench::harness::{prepare_synthetic, Scale};
use gralmatch_bench::serve::{
    bootstrap_tenant, lookup_response, HostSession, ServeCommand, ServeDomain,
};
use gralmatch_core::{churn_window, EngineHost, ShardPlan, UpsertBatch, UpsertOutcome};
use gralmatch_datagen::{generate_wdc, WdcConfig};
use gralmatch_records::{CompanyRecord, ProductRecord, Record, RecordId, SecurityRecord};
use gralmatch_util::{Json, LatencyHistogram, PublishedReader, ToJson};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Cyclic delete/re-insert churn over the bootstrapped population: batch
/// `j` deletes a small window of live records and re-inserts the window
/// batch `j-1` deleted, so the population stays near-constant while every
/// batch exercises retraction and component re-cleaning.
struct ChurnStream<R> {
    records: Vec<R>,
    pending: Vec<R>,
    next: usize,
}

impl<R: Record + Clone> ChurnStream<R> {
    fn new(records: Vec<R>) -> Self {
        ChurnStream {
            records,
            pending: Vec::new(),
            next: 0,
        }
    }

    fn next_batch(&mut self) -> UpsertBatch<R> {
        let window = churn_window(self.records.len(), self.next, 5);
        self.next += 1;
        let churn: Vec<R> = self.records[window]
            .iter()
            .filter(|record| !self.pending.iter().any(|p| p.id() == record.id()))
            .cloned()
            .collect();
        let mut batch = UpsertBatch::new();
        batch.inserts = std::mem::replace(&mut self.pending, churn.clone());
        batch.deletes = churn.iter().map(|record| record.id()).collect();
        batch
    }
}

/// Deterministic per-thread id sampler (splitmix-style LCG).
struct IdSampler {
    state: u64,
    num_ids: u64,
}

impl IdSampler {
    fn new(seed: u64, num_ids: usize) -> Self {
        IdSampler {
            state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1),
            num_ids: num_ids.max(1) as u64,
        }
    }

    fn next_id(&mut self) -> RecordId {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        RecordId((self.state >> 33) as u32 % self.num_ids as u32)
    }
}

/// One reader thread's tallies.
struct ReaderReport {
    lookups: u64,
    consistency_errors: u64,
    histogram: LatencyHistogram,
}

/// One consistency-checked lookup against the given snapshot: `group_of`,
/// then the returned group must list the record as a member.
fn checked_lookup(
    snapshot: &gralmatch_core::GroupSnapshot,
    id: RecordId,
    report: &mut ReaderReport,
) {
    let start = Instant::now();
    // `None` (deleted by churn) is a consistent answer; a group that does
    // not list the record as a member is not.
    if let Some(group) = snapshot.group_of(id) {
        match snapshot.group_members(group) {
            Some(members) if members.contains(&id) => {}
            _ => report.consistency_errors += 1,
        }
    }
    report.histogram.record_duration(start.elapsed());
    report.lookups += 1;
}

/// A closed-loop reader pinned to one tenant's snapshot source until the
/// stop flag rises.
fn run_reader(
    source: std::sync::Arc<gralmatch_util::Published<gralmatch_core::GroupSnapshot>>,
    seed: u64,
    num_ids: usize,
    stop: &AtomicBool,
) -> ReaderReport {
    let mut reader = PublishedReader::new(source);
    let mut sampler = IdSampler::new(seed, num_ids);
    let mut report = ReaderReport {
        lookups: 0,
        consistency_errors: 0,
        histogram: LatencyHistogram::new(),
    };
    let mut last_epoch = 0;
    while !stop.load(Ordering::Acquire) {
        let snapshot = reader.current();
        if snapshot.epoch() < last_epoch {
            report.consistency_errors += 1;
        }
        last_epoch = snapshot.epoch();
        checked_lookup(snapshot, sampler.next_id(), &mut report);
    }
    report
}

/// One tenant's churn driver in multi-tenant mode: typed batches behind a
/// domain-erased dispatch, applied through the host's typed fast path.
enum TenantDriver {
    Companies(ChurnStream<CompanyRecord>),
    Securities(ChurnStream<SecurityRecord>),
    Products(ChurnStream<ProductRecord>),
}

impl TenantDriver {
    fn apply_next(&mut self, session: &mut HostSession, tenant: &str) -> (UpsertOutcome, f64) {
        match self {
            TenantDriver::Companies(stream) => session.apply(tenant, &stream.next_batch()),
            TenantDriver::Securities(stream) => session.apply(tenant, &stream.next_batch()),
            TenantDriver::Products(stream) => session.apply(tenant, &stream.next_batch()),
        }
        .expect("churn batch applies")
    }
}

fn main() {
    let cli = BenchCli::parse(&[
        "clients",
        "duration-secs",
        "serial-lookups-per-batch",
        "write-pause-ms",
        "shards",
        "tenants",
        "merge-into",
    ]);
    let clients = cli.usize_value("clients").unwrap_or(4);
    let duration = Duration::from_secs_f64(
        cli.value("duration-secs")
            .map(|v| v.parse().expect("--duration-secs needs a number"))
            .unwrap_or(5.0),
    );
    let serial_lookups_per_batch = cli.usize_value("serial-lookups-per-batch").unwrap_or(200);
    let write_pause = Duration::from_millis(cli.usize_value("write-pause-ms").unwrap_or(0) as u64);
    let shards = cli.shards_or(2);
    let out_path = cli.out_path("LOADGEN.json");

    let scale = Scale::from_env();
    if let Some(domains) = cli.value("tenants") {
        run_multi_tenant(
            &cli,
            scale,
            domains,
            clients,
            duration,
            write_pause,
            shards,
            &out_path,
        );
        return;
    }
    eprintln!(
        "loadgen: scale {} shards {shards}, {clients} client(s), {:.1}s per phase",
        scale.0,
        duration.as_secs_f64()
    );
    let prepared = prepare_synthetic(scale);
    let records: Vec<SecurityRecord> = prepared.data.securities.records().to_vec();
    let num_ids = records.len();

    let boot_watch = Instant::now();
    let (mut tenant, boot_outcome) =
        bootstrap_tenant::<SecurityRecord>(records.clone(), ShardPlan::new(shards), None)
            .expect("bootstrap succeeds");
    eprintln!(
        "loadgen: bootstrapped {num_ids} records in {:.2}s (epoch {}, full publish {:.6}s over {} buckets)",
        boot_watch.elapsed().as_secs_f64(),
        boot_outcome.epoch,
        boot_outcome.snapshot_publish_seconds,
        boot_outcome.snapshot_buckets_rebuilt,
    );
    let mut churn = ChurnStream::new(records);

    // ── Phase 1: serial baseline ─────────────────────────────────────
    // One thread, the old stdin-loop shape: every lookup waits for the
    // batch ahead of it.
    let mut serial_lookups: u64 = 0;
    let mut serial_batches: u64 = 0;
    let mut sampler = IdSampler::new(1, num_ids);
    let serial_start = Instant::now();
    while serial_start.elapsed() < duration {
        let batch = churn.next_batch();
        tenant.apply(&batch).expect("serial churn batch applies");
        serial_batches += 1;
        let snapshot = tenant.engine().snapshot();
        for _ in 0..serial_lookups_per_batch {
            let command = ServeCommand::GroupOf(sampler.next_id());
            let response = lookup_response("securities", &snapshot, &command);
            assert!(response.is_some(), "lookup answered");
            serial_lookups += 1;
        }
    }
    let serial_elapsed = serial_start.elapsed().as_secs_f64();
    let serial_s_per_m = serial_elapsed / serial_lookups.max(1) as f64 * 1e6;
    eprintln!(
        "loadgen: serial baseline {serial_lookups} lookups / {serial_batches} batches in \
         {serial_elapsed:.2}s → {:.0} lookups/s",
        serial_lookups as f64 / serial_elapsed
    );

    // ── Phase 2: concurrent ──────────────────────────────────────────
    // Main thread = single writer (the tenant is not `Send`); reader
    // clients answer from epoch snapshots and never wait on it.
    let stop = AtomicBool::new(false);
    let snapshot_source = tenant.engine().snapshot_source();
    let mut writer_latency = LatencyHistogram::new();
    let mut publish_samples: Vec<(usize, usize, f64)> = Vec::new();
    let mut concurrent_batches: u64 = 0;
    let concurrent_start = Instant::now();
    let reader_reports: Vec<ReaderReport> = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..clients)
            .map(|client| {
                let source = snapshot_source.clone();
                let stop = &stop;
                scope.spawn(move || run_reader(source, 100 + client as u64, num_ids, stop))
            })
            .collect();

        while concurrent_start.elapsed() < duration {
            let batch = churn.next_batch();
            let apply_start = Instant::now();
            let (outcome, _) = tenant
                .apply(&batch)
                .expect("concurrent churn batch applies");
            writer_latency.record_duration(apply_start.elapsed());
            concurrent_batches += 1;
            publish_samples.push((
                outcome.changed_nodes.len(),
                outcome.snapshot_buckets_rebuilt,
                outcome.snapshot_publish_seconds,
            ));
            if !write_pause.is_zero() {
                std::thread::sleep(write_pause);
            }
        }
        stop.store(true, Ordering::Release);
        readers
            .into_iter()
            .map(|handle| handle.join().expect("reader panicked"))
            .collect()
    });
    let concurrent_elapsed = concurrent_start.elapsed().as_secs_f64();

    let mut lookup_latency = LatencyHistogram::new();
    let mut concurrent_lookups: u64 = 0;
    let mut consistency_errors: u64 = 0;
    for report in &reader_reports {
        lookup_latency.merge(&report.histogram);
        concurrent_lookups += report.lookups;
        consistency_errors += report.consistency_errors;
    }
    let concurrent_s_per_m = concurrent_elapsed / concurrent_lookups.max(1) as f64 * 1e6;
    let speedup = serial_s_per_m / concurrent_s_per_m;
    eprintln!(
        "loadgen: concurrent {concurrent_lookups} lookups / {concurrent_batches} batches in \
         {concurrent_elapsed:.2}s → {:.0} lookups/s ({speedup:.1}x serial), \
         lookup latency {}",
        concurrent_lookups as f64 / concurrent_elapsed,
        lookup_latency.summary()
    );
    eprintln!("loadgen: writer batch latency {}", writer_latency.summary());

    let churn_publish_mean = |pick: fn(&(usize, usize, f64)) -> f64| {
        publish_samples.iter().map(pick).sum::<f64>() / publish_samples.len().max(1) as f64
    };
    let ns_to_s = |ns: u64| ns as f64 / 1e9;

    // Seconds-valued aggregates (bigger = worse) — the perf gate compares
    // these as `loadgen:<label>`. Only run-to-run-stable metrics belong
    // here: serial lookup cost tracks batch apply time (stable like every
    // other gated stage), and the latency tails and publish cost sit under
    // the gate's noise floor so they only trip on a catastrophic blowup
    // (an unbounded p999 during applies, publish cost going
    // O(population)). Throughput under thread contention swings tens of
    // percent from scheduling alone, so the concurrent rates and the
    // contended writer latency stay in `loadgen_info`, with the
    // serial/concurrent *ratio* enforced by this binary's exit code.
    let loadgen = Json::obj([
        ("serial_s_per_m_lookups", serial_s_per_m.to_json()),
        ("lookup_p50_s", ns_to_s(lookup_latency.p50()).to_json()),
        ("lookup_p99_s", ns_to_s(lookup_latency.p99()).to_json()),
        ("lookup_p999_s", ns_to_s(lookup_latency.p999()).to_json()),
        (
            "publish_mean_s",
            churn_publish_mean(|(_, _, seconds)| *seconds).to_json(),
        ),
    ]);
    let loadgen_info = Json::obj([
        ("clients", (clients as f64).to_json()),
        ("duration_secs", duration.as_secs_f64().to_json()),
        ("serial_lookups", (serial_lookups as f64).to_json()),
        ("concurrent_lookups", (concurrent_lookups as f64).to_json()),
        (
            "concurrent_lookups_per_sec",
            (concurrent_lookups as f64 / concurrent_elapsed).to_json(),
        ),
        ("concurrent_s_per_m_lookups", concurrent_s_per_m.to_json()),
        (
            "writer_batch_mean_s",
            (writer_latency.mean() / 1e9).to_json(),
        ),
        (
            "writer_batch_p99_s",
            ns_to_s(writer_latency.p99()).to_json(),
        ),
        ("speedup_vs_serial", speedup.to_json()),
        ("batches_applied", (concurrent_batches as f64).to_json()),
        ("consistency_errors", (consistency_errors as f64).to_json()),
        (
            "publish_scaling",
            // Full-rebuild cost at bootstrap vs mean per-churn-batch cost:
            // publish work tracks the delta, not the population.
            Json::obj([
                (
                    "full_rebuild",
                    publish_sample_json(
                        num_ids,
                        boot_outcome.snapshot_buckets_rebuilt,
                        boot_outcome.snapshot_publish_seconds,
                    ),
                ),
                (
                    "churn_batch_mean",
                    publish_sample_json(
                        churn_publish_mean(|(changed, _, _)| *changed as f64) as usize,
                        churn_publish_mean(|(_, buckets, _)| *buckets as f64) as usize,
                        churn_publish_mean(|(_, _, seconds)| *seconds),
                    ),
                ),
            ]),
        ),
    ]);

    write_report(&out_path, cli.value("merge-into"), loadgen, loadgen_info);

    if consistency_errors > 0 {
        eprintln!("loadgen: FAILED — {consistency_errors} inconsistent lookup(s)");
        std::process::exit(1);
    }
    if concurrent_lookups == 0 || serial_lookups == 0 {
        eprintln!("loadgen: FAILED — no lookups completed");
        std::process::exit(1);
    }
    // The point of epoch snapshots: lookups keep flowing while batches
    // apply. With 2+ closed-loop readers the per-lookup cost must beat
    // the serial apply-then-lookup loop by well over 3x (observed margins
    // are in the thousands); a ratio is robust to machine speed where
    // absolute throughput is not.
    if clients >= 2 && speedup < 3.0 {
        eprintln!(
            "loadgen: FAILED — concurrent lookups only {speedup:.2}x serial (reads are \
             being blocked by writes; expected ≥ 3x)"
        );
        std::process::exit(1);
    }
    println!(
        "loadgen ok: {concurrent_lookups} concurrent lookups at {:.0}/s ({speedup:.1}x serial), \
         0 consistency errors → {out_path}",
        concurrent_lookups as f64 / concurrent_elapsed
    );
}

/// Multi-tenant concurrent phase: readers spread round-robin across the
/// listed domains, one churn writer round-robining batches across them.
/// Perf-gated metrics are *not* produced in this mode — the report's
/// `loadgen_tenants` object is informational, and correctness (per-answer
/// consistency + per-tenant epoch isolation) is enforced by exit code.
#[allow(clippy::too_many_arguments)]
fn run_multi_tenant(
    cli: &BenchCli,
    scale: Scale,
    domains: &str,
    clients: usize,
    duration: Duration,
    write_pause: Duration,
    shards: usize,
    out_path: &str,
) {
    let domains: Vec<&str> = domains.split(',').map(str::trim).collect();
    eprintln!(
        "loadgen: multi-tenant [{}] scale {} shards {shards}, {clients} reader(s), {:.1}s",
        domains.join(", "),
        scale.0,
        duration.as_secs_f64()
    );
    let financial = prepare_synthetic(scale).data;
    let mut host = EngineHost::new();
    let mut drivers: Vec<(String, TenantDriver)> = Vec::new();
    for domain in &domains {
        fn boot<R: ServeDomain>(
            host: &mut EngineHost,
            records: Vec<R>,
            shards: usize,
            wrap: fn(ChurnStream<R>) -> TenantDriver,
        ) -> (String, TenantDriver) {
            let (tenant, _) = bootstrap_tenant::<R>(records.clone(), ShardPlan::new(shards), None)
                .expect("tenant bootstraps");
            host.add_tenant(R::DOMAIN, Box::new(tenant))
                .expect("tenant registers");
            (R::DOMAIN.to_string(), wrap(ChurnStream::new(records)))
        }
        drivers.push(match *domain {
            "companies" => boot(
                &mut host,
                financial.companies.records().to_vec(),
                shards,
                TenantDriver::Companies,
            ),
            "securities" => boot(
                &mut host,
                financial.securities.records().to_vec(),
                shards,
                TenantDriver::Securities,
            ),
            "products" => {
                let config = WdcConfig {
                    num_entities: ((760.0 * scale.0) as usize).max(40),
                    ..WdcConfig::default()
                };
                boot(
                    &mut host,
                    generate_wdc(&config).products.records().to_vec(),
                    shards,
                    TenantDriver::Products,
                )
            }
            other => panic!("--tenants got unknown domain {other:?}"),
        });
    }
    let mut session = HostSession::new(host).expect("at least one tenant");
    let populations: Vec<usize> = session
        .host()
        .names()
        .iter()
        .map(|name| session.host().tenant(name).unwrap().stats().num_live)
        .collect();

    let stop = AtomicBool::new(false);
    let sources: Vec<_> = session
        .host()
        .iter()
        .map(|(_, tenant)| tenant.snapshot_source())
        .collect();
    let mut batches_per_tenant = vec![0u64; drivers.len()];
    let mut writer_latency = LatencyHistogram::new();
    let start = Instant::now();
    // Reader i serves tenant i % k — every tenant gets concurrent readers
    // when clients >= k.
    let reader_reports: Vec<(usize, ReaderReport)> = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..clients.max(drivers.len()))
            .map(|client| {
                let tenant_index = client % sources.len();
                let source = sources[tenant_index].clone();
                let num_ids = populations[tenant_index];
                let stop = &stop;
                scope.spawn(move || {
                    (
                        tenant_index,
                        run_reader(source, 500 + client as u64, num_ids, stop),
                    )
                })
            })
            .collect();

        let mut round = 0usize;
        while start.elapsed() < duration {
            let index = round % drivers.len();
            round += 1;
            let (name, driver) = &mut drivers[index];
            let apply_start = Instant::now();
            driver.apply_next(&mut session, name);
            writer_latency.record_duration(apply_start.elapsed());
            batches_per_tenant[index] += 1;
            if !write_pause.is_zero() {
                std::thread::sleep(write_pause);
            }
        }
        stop.store(true, Ordering::Release);
        readers
            .into_iter()
            .map(|handle| handle.join().expect("reader panicked"))
            .collect()
    });
    let elapsed = start.elapsed().as_secs_f64();

    // Fold reader tallies per tenant.
    let mut per_tenant: Vec<(u64, u64, LatencyHistogram)> = drivers
        .iter()
        .map(|_| (0, 0, LatencyHistogram::new()))
        .collect();
    for (tenant_index, report) in &reader_reports {
        let (lookups, errors, histogram) = &mut per_tenant[*tenant_index];
        *lookups += report.lookups;
        *errors += report.consistency_errors;
        histogram.merge(&report.histogram);
    }

    let ns_to_s = |ns: u64| ns as f64 / 1e9;
    let mut total_lookups = 0u64;
    let mut total_errors = 0u64;
    let mut isolation_violations = 0u64;
    let mut tenant_rows: Vec<(String, Json)> = Vec::new();
    for (index, (name, _)) in drivers.iter().enumerate() {
        let (lookups, errors, histogram) = &per_tenant[index];
        let epoch = session.host().tenant(name).unwrap().snapshot().epoch();
        let expected_epoch = 1 + batches_per_tenant[index];
        // Isolation: a tenant's epoch moves only for its own batches —
        // churn on the others must not perturb it.
        if epoch != expected_epoch {
            isolation_violations += 1;
        }
        total_lookups += lookups;
        total_errors += errors;
        eprintln!(
            "loadgen: tenant {name}: {lookups} lookups ({} errors), {} batches, epoch {epoch} \
             (expected {expected_epoch}), latency {}",
            errors,
            batches_per_tenant[index],
            histogram.summary()
        );
        tenant_rows.push((
            name.clone(),
            Json::obj([
                ("lookups", (*lookups as f64).to_json()),
                ("consistency_errors", (*errors as f64).to_json()),
                (
                    "batches_applied",
                    (batches_per_tenant[index] as f64).to_json(),
                ),
                ("epoch", (epoch as f64).to_json()),
                ("lookup_p50_s", ns_to_s(histogram.p50()).to_json()),
                ("lookup_p99_s", ns_to_s(histogram.p99()).to_json()),
                ("lookup_p999_s", ns_to_s(histogram.p999()).to_json()),
            ]),
        ));
    }
    let loadgen_tenants = Json::obj([
        ("duration_secs", elapsed.to_json()),
        ("readers", (reader_reports.len() as f64).to_json()),
        (
            "writer_batch_mean_s",
            (writer_latency.mean() / 1e9).to_json(),
        ),
        ("tenants", Json::Obj(tenant_rows.into_iter().collect())),
    ]);
    let report = Json::obj([("loadgen_tenants", loadgen_tenants.clone())]);
    std::fs::write(out_path, report.to_pretty_string()).expect("write loadgen report");
    if let Some(path) = cli.value("merge-into") {
        merge_section(path, "loadgen_tenants", loadgen_tenants);
    }

    if total_errors > 0 {
        eprintln!("loadgen: FAILED — {total_errors} inconsistent lookup(s)");
        std::process::exit(1);
    }
    if isolation_violations > 0 {
        eprintln!(
            "loadgen: FAILED — {isolation_violations} tenant(s) saw epochs move without their \
             own batches (cross-tenant bleed)"
        );
        std::process::exit(1);
    }
    if total_lookups == 0 {
        eprintln!("loadgen: FAILED — no lookups completed");
        std::process::exit(1);
    }
    println!(
        "loadgen ok: {} tenants, {total_lookups} lookups at {:.0}/s, 0 consistency errors, \
         0 isolation violations → {out_path}",
        drivers.len(),
        total_lookups as f64 / elapsed
    );
}

fn publish_sample_json(changed_nodes: usize, buckets_rebuilt: usize, seconds: f64) -> Json {
    Json::obj([
        ("changed_nodes", (changed_nodes as f64).to_json()),
        ("buckets_rebuilt", (buckets_rebuilt as f64).to_json()),
        ("publish_s", seconds.to_json()),
    ])
}

/// Replace `key` in the JSON object at `path` with `value`.
fn merge_section(path: &str, key: &str, value: Json) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    let mut target = Json::parse(&text).unwrap_or_else(|e| panic!("{path}: {}", e.message));
    let Json::Obj(fields) = &mut target else {
        panic!("{path} is not a JSON object");
    };
    fields.retain(|(k, _)| k != key);
    fields.push((key.to_string(), value));
    std::fs::write(path, target.to_pretty_string()).expect("write merged report");
    eprintln!("loadgen: merged {key} into {path}");
}

/// Write the standalone report, and optionally merge the two loadgen
/// sections into an existing repro report (replacing prior ones).
fn write_report(out_path: &str, merge_into: Option<&str>, loadgen: Json, loadgen_info: Json) {
    let report = Json::obj([
        ("loadgen", loadgen.clone()),
        ("loadgen_info", loadgen_info.clone()),
    ]);
    std::fs::write(out_path, report.to_pretty_string()).expect("write loadgen report");
    let Some(path) = merge_into else { return };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    let mut target = Json::parse(&text).unwrap_or_else(|e| panic!("{path}: {}", e.message));
    let Json::Obj(fields) = &mut target else {
        panic!("{path} is not a JSON object");
    };
    fields.retain(|(key, _)| key != "loadgen" && key != "loadgen_info");
    fields.push(("loadgen".to_string(), loadgen));
    fields.push(("loadgen_info".to_string(), loadgen_info));
    std::fs::write(path, target.to_pretty_string()).expect("write merged report");
    eprintln!("loadgen: merged loadgen sections into {path}");
}
