//! The match *service*: a long-lived `MatchEngine` over securities that
//! loads a persisted `PipelineState` + trained matcher from disk, applies
//! `UpsertBatch` streams from files and stdin, and answers group lookups
//! with per-batch latency traces.
//!
//! Two subcommands:
//!
//! ```text
//! serve bootstrap [--shards N] [--deltas K] [--model model.json]
//!                 [--state serve-state.json] [--deltas-out serve-deltas]
//! ```
//! generates the synthetic securities benchmark (`GRALMATCH_SCALE`),
//! bootstraps an engine over the leading 70 % of the records, persists
//! its state, and writes `K` delta-batch files over the remainder —
//! **with delete/re-insert churn woven through them**, so replaying the
//! deltas exercises component re-cleaning, not just growth.
//!
//! ```text
//! serve run --state serve-state.json [--model model.json]
//!           [--apply delta-1.json]… [--save-state out.json]
//! ```
//! resumes the engine from the state file (scoring through the loaded
//! model, or the heuristic matcher when none is given), applies each
//! `--apply` batch with a latency trace, then reads protocol lines from
//! stdin until EOF: `group_of <id>`, `members <id>`, `stats`,
//! `apply <file>`, `save_state <file>`, or an inline batch JSON object.
//! Malformed lines (bad commands, broken batch JSON, even invalid UTF-8)
//! answer with an `error: …` line and the service keeps running.
//!
//! With `--listen ADDR` the session serves the same line protocol over
//! TCP instead of stdin: `--readers N` lookup threads answer from epoch
//! snapshots while the main thread applies writes (see
//! `gralmatch_bench::net`); a client sending `shutdown` stops the server.

use gralmatch_bench::cli::BenchCli;
use gralmatch_bench::harness::{prepare_synthetic, Scale};
use gralmatch_bench::net::serve_tcp;
use gralmatch_bench::serve::{
    latency_line, load_batch, parse_request, save_batch, scorer_fingerprint, serve_provider,
    ServeRequest, ServeSession,
};
use gralmatch_core::{ShardPlan, UpsertBatch};
use gralmatch_lm::SavedModel;
use gralmatch_records::{Record, SecurityRecord};
use gralmatch_util::LatencyHistogram;
use std::io::BufRead;
use std::net::TcpListener;
use std::path::Path;
use std::time::Duration;

fn load_model(cli: &BenchCli) -> Option<SavedModel> {
    cli.value("model").map(|path| {
        SavedModel::load(Path::new(path)).unwrap_or_else(|e| panic!("loading {path}: {e:?}"))
    })
}

/// Sidecar recording which scorer a state file was built with.
fn fingerprint_path(state_path: &str) -> String {
    format!("{state_path}.scorer")
}

fn bootstrap(cli: &BenchCli) {
    let scale = Scale::from_env();
    let shards = cli.shards_or(4);
    let deltas = cli.usize_value("deltas").unwrap_or(3);
    let state_path = cli.value("state").unwrap_or("serve-state.json").to_string();
    let deltas_dir = cli
        .value("deltas-out")
        .unwrap_or("serve-deltas")
        .to_string();
    eprintln!(
        "serve bootstrap: scale {} shards {shards} deltas {deltas} -> {state_path}, {deltas_dir}/",
        scale.0
    );

    let prepared = prepare_synthetic(scale);
    let records: Vec<SecurityRecord> = prepared.data.securities.records().to_vec();
    let initial = records.len() * 7 / 10;

    let model = load_model(cli);
    let fingerprint = scorer_fingerprint(model.as_ref());
    let (session, outcome) = ServeSession::bootstrap(
        records[..initial].to_vec(),
        ShardPlan::new(shards),
        serve_provider(model),
    )
    .expect("bootstrap succeeds");
    eprintln!("serve bootstrap: {}", latency_line(&outcome, 0.0));
    std::fs::write(&state_path, session.state_json()).expect("write state");
    // Record which scorer produced the standing predictions — `run`
    // refuses to reconcile this state under a different one.
    std::fs::write(fingerprint_path(&state_path), &fingerprint).expect("write scorer sidecar");

    // Delta files over the remainder, with churn: batch j deletes a small
    // slice of already-loaded records, batch j+1 re-inserts it — so a
    // replay exercises retraction and component re-cleaning.
    std::fs::create_dir_all(&deltas_dir).expect("create deltas dir");
    let remainder = &records[initial..];
    let chunk = remainder.len().div_ceil(deltas.max(1)).max(1);
    let mut pending: Vec<SecurityRecord> = Vec::new();
    for (j, slice) in remainder.chunks(chunk).take(deltas).enumerate() {
        let churn: Vec<SecurityRecord> = records[gralmatch_core::churn_window(initial, j, 5)]
            .iter()
            .filter(|record| !pending.iter().any(|p| p.id == record.id))
            .cloned()
            .collect();
        let mut batch = UpsertBatch::inserting(slice.to_vec());
        batch.inserts.append(&mut pending);
        batch.deletes = churn.iter().map(|record| record.id()).collect();
        pending = churn;
        let path = format!("{deltas_dir}/delta-{}.json", j + 1);
        save_batch(&path, &batch).expect("write delta batch");
        eprintln!(
            "serve bootstrap: wrote {path} (+{} inserts, -{} deletes)",
            batch.inserts.len(),
            batch.deletes.len()
        );
    }
    // A final restore batch keeps the delta set closed: applying every
    // file ends with the full population live.
    let mut delta_files = remainder.chunks(chunk).take(deltas).count();
    if !pending.is_empty() {
        let path = format!("{deltas_dir}/delta-{}.json", delta_files + 1);
        save_batch(&path, &UpsertBatch::inserting(pending)).expect("write restore batch");
        eprintln!("serve bootstrap: wrote {path} (churn restore)");
        delta_files += 1;
    }
    println!(
        "bootstrapped {state_path} ({initial} records live, {delta_files} delta files — \
         apply all of them to reach the full population)"
    );
}

fn run(cli: &BenchCli) {
    let state_path = cli.value("state").unwrap_or("serve-state.json");
    let text =
        std::fs::read_to_string(state_path).unwrap_or_else(|e| panic!("reading {state_path}: {e}"));
    let model = load_model(cli);
    // Standing predictions were scored under the bootstrap scorer; mixing
    // in a different one would silently blend scoring regimes. The
    // sidecar is advisory (absent for hand-built states) but a recorded
    // mismatch is fatal.
    let fingerprint = scorer_fingerprint(model.as_ref());
    if let Ok(recorded) = std::fs::read_to_string(fingerprint_path(state_path)) {
        assert_eq!(
            recorded.trim(),
            fingerprint,
            "{state_path} was built with a different scorer — pass the matching --model"
        );
    }
    let load_watch = gralmatch_util::Stopwatch::start();
    let mut session = ServeSession::resume(&text, serve_provider(model))
        .unwrap_or_else(|e| panic!("resuming {state_path}: {e:?}"));
    let stats = session.stats();
    eprintln!(
        "serve: resumed {state_path} in {:.3}s ({} live records, {} groups)",
        load_watch.elapsed_secs(),
        stats.num_live,
        stats.num_groups
    );

    let mut apply_latency = LatencyHistogram::new();
    for path in cli.all("apply") {
        let batch = load_batch(path).unwrap_or_else(|e| panic!("{path}: {e:?}"));
        let (outcome, seconds) = session.apply(&batch).expect("batch applies");
        apply_latency.record_duration(Duration::from_secs_f64(seconds));
        println!("{path}: {}", latency_line(&outcome, seconds));
    }

    if let Some(addr) = cli.value("listen") {
        let readers = cli.usize_value("readers").unwrap_or(4);
        let listener = TcpListener::bind(addr).unwrap_or_else(|e| panic!("binding {addr}: {e}"));
        eprintln!(
            "serve: listening on {} with {readers} reader thread(s); send `shutdown` to stop",
            listener.local_addr().expect("bound socket has an address")
        );
        let (finished, report) = serve_tcp(listener, session, readers).expect("serve loop");
        session = finished;
        eprintln!(
            "serve: served {} request(s) over {} connection(s)",
            report.requests, report.connections
        );
    } else {
        serve_stdin(&mut session, &mut apply_latency);
    }

    if apply_latency.count() > 0 {
        eprintln!("serve: batch apply latency {}", apply_latency.summary());
    }
    if let Some(path) = cli.value("save-state") {
        std::fs::write(path, session.state_json()).expect("write state");
        eprintln!("serve: state saved to {path}");
    }
}

/// The stdin protocol loop. Every failure — unknown command, malformed
/// inline batch JSON, rejected apply, even non-UTF-8 input — answers with
/// an in-stream `error: …` line; only EOF (or an unreadable stdin) ends
/// the loop.
fn serve_stdin(session: &mut ServeSession, apply_latency: &mut LatencyHistogram) {
    let stdin = std::io::stdin();
    let mut input = stdin.lock();
    let mut buf = Vec::new();
    loop {
        buf.clear();
        match input.read_until(b'\n', &mut buf) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                println!("error: stdin read failed: {e}");
                break;
            }
        }
        // Invalid UTF-8 turns into replacement characters and falls
        // through to a protocol error instead of terminating the service.
        let line = String::from_utf8_lossy(&buf);
        let request = match parse_request(&line) {
            Ok(Some(request)) => request,
            Ok(None) => continue,
            Err(message) => {
                println!("error: {message}");
                continue;
            }
        };
        let applies_batch = matches!(
            request,
            ServeRequest::InlineBatch(_) | ServeRequest::ApplyFile(_)
        );
        let watch = gralmatch_util::Stopwatch::start();
        match session.execute(&request) {
            Ok(response) => {
                if applies_batch {
                    apply_latency.record_duration(Duration::from_secs_f64(watch.elapsed_secs()));
                }
                if !response.is_empty() {
                    println!("{response}");
                }
            }
            Err(message) => println!("error: {message}"),
        }
    }
}

fn main() {
    let cli = BenchCli::parse(&[
        "shards",
        "deltas",
        "deltas-out",
        "state",
        "model",
        "apply",
        "save-state",
        "listen",
        "readers",
    ]);
    match cli.positional().first().map(String::as_str) {
        Some("bootstrap") => bootstrap(&cli),
        Some("run") => run(&cli),
        other => {
            eprintln!(
                "usage: serve bootstrap|run [--shards N] [--deltas K] [--deltas-out DIR] \
                 [--state FILE] [--model FILE] [--apply FILE]... [--save-state FILE] \
                 [--listen ADDR] [--readers N] (got {other:?})"
            );
            std::process::exit(2);
        }
    }
}
